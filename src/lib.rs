//! `rsbt` — facade crate for the reproduction of *Fraigniaud, Gelles,
//! Lotker, "The Topology of Randomized Symmetry-Breaking Distributed
//! Computing"* (PODC 2021).
//!
//! Re-exports every workspace crate under a short module name:
//!
//! * [`complex`] — chromatic simplicial complexes, maps, homology;
//! * [`random`] — correlated randomness sources, assignments, realizations;
//! * [`sim`] — synchronous anonymous execution engine (blackboard and
//!   message-passing models);
//! * [`tasks`] — output complexes for symmetry-breaking tasks;
//! * [`core`] — the paper's topological framework: `P(t)`, `R(t)`,
//!   consistency projections, solvability, probabilities;
//! * [`protocols`] — executable algorithms (leader election, matching,
//!   Appendix C reduction).
//!
//! See the workspace `README.md` for a tour and `DESIGN.md` for the
//! paper-to-code mapping.

#![deny(deprecated)]
#![forbid(unsafe_code)]

pub use rsbt_complex as complex;
pub use rsbt_core as core;
pub use rsbt_protocols as protocols;
pub use rsbt_random as random;
pub use rsbt_sim as sim;
pub use rsbt_tasks as tasks;
