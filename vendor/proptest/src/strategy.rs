//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic function of the [`TestRng`] stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then uses it to pick a second-stage strategy.
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;

    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for RangeInclusive<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        if end - start == u64::MAX {
            return rng.next_u64();
        }
        start + rng.below(end - start + 1)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// One boxed arm of a [`Union`].
type Arm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// A uniform choice among boxed same-typed strategies; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    arms: Vec<Arm<V>>,
}

impl<V> Default for Union<V> {
    fn default() -> Self {
        Union::new()
    }
}

impl<V> Union<V> {
    /// Creates an empty union; generation panics until an arm is added.
    pub fn new() -> Self {
        Union { arms: Vec::new() }
    }

    /// Adds one strategy as an equally weighted arm.
    pub fn or<S>(mut self, strategy: S) -> Self
    where
        S: Strategy<Value = V> + 'static,
    {
        self.arms.push(Box::new(move |rng| strategy.generate(rng)));
        self
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let arm = rng.below(self.arms.len() as u64) as usize;
        (self.arms[arm])(rng)
    }
}
