//! Collection strategies: [`vec`].

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies: a fixed `usize`, a
/// `Range<usize>`, or a `RangeInclusive<usize>`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange { min: len, max: len }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

/// See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
