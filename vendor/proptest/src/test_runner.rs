//! Test-runner types: [`ProptestConfig`], [`TestRng`], [`TestCaseError`].

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a [`proptest!`](crate::proptest) block.
///
/// Supports struct-update syntax, e.g.
/// `ProptestConfig { cases: 128, ..ProptestConfig::default() }`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
    /// Base seed mixed into every property's deterministic RNG seed.
    pub rng_seed: u64,
    /// Upper bound on `prop_assume!` rejections before the run aborts.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            rng_seed: 0x5b57_2021_f6a1_9e11,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// A default configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// The deterministic generator driving value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds the generator from a test identifier (FNV-1a hashed) XORed
    /// with the configured base seed, so every property has its own fixed
    /// stream.
    pub fn deterministic(test_id: &str, base_seed: u64) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_id.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash ^ base_seed),
        }
    }

    /// Returns the next random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Returns a uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let word = self.next_u64();
            if word <= zone {
                return word % bound;
            }
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it is skipped.
    Reject(String),
    /// A `prop_assert!` failed; the whole property fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure error.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection error.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}
