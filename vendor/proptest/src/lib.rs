//! Offline, API-compatible stand-in for the parts of the [`proptest`] crate
//! that the `rsbt` workspace uses.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal property-testing harness instead of the real crate:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`);
//! * [`strategy::Strategy`] with `prop_map`, plus strategies for integer
//!   ranges, tuples, [`strategy::Just`], [`arbitrary::any`], and
//!   [`prop_oneof!`] unions;
//! * [`collection::vec`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`].
//!
//! **Deliberate simplifications** versus upstream: no shrinking (a failing
//! case is reported as-is), and generation is always deterministic — the
//! RNG seed is derived from the test's module path and name, XORed with
//! [`test_runner::ProptestConfig::rng_seed`]. Failures therefore reproduce
//! exactly under `cargo test` with no persistence files.
//!
//! [`proptest`]: https://docs.rs/proptest/1

#![deny(deprecated)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The traits and macros most suites need, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// mid-search) when it is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Asserts two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Rejects the current case (it is skipped, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($strategy))+
    };
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, seed in any::<u64>()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($config:expr);) => {};
    (
        ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
                config.rng_seed,
            );
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                )+
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match result {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(r)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest {}: too many rejected cases ({rejected}), last: {r}",
                                stringify!($name),
                            );
                        }
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {} (seed {:#x}): {msg}",
                            stringify!($name),
                            accepted,
                            config.rng_seed,
                        );
                    }
                }
            }
        }
        $crate::__proptest_each! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0usize..10, y in 1u8..=4) {
            prop_assert!(x < 10);
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u32..5, 2..=6)) {
            prop_assert!((2..=6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn map_and_oneof(x in prop_oneof![Just(1u64), Just(2u64)], y in any::<u64>().prop_map(|w| w % 3)) {
            prop_assert!(x == 1 || x == 2);
            prop_assert!(y < 3);
            prop_assume!(x != 3); // never rejects
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_is_respected(t in (0u32..3, 0u8..2)) {
            prop_assert!(t.0 < 3 && t.1 < 2);
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_panics() {
        proptest! {
            fn inner(x in 0usize..4) {
                prop_assert!(x < 2, "x = {x} too big");
            }
        }
        inner();
    }
}
