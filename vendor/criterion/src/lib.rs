//! Offline, API-compatible stand-in for the parts of the [`criterion`]
//! benchmarking crate that the `rsbt` workspace uses.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal harness instead of the real crate. It supports
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::bench_function`],
//! benchmark groups with `bench_with_input` / `sample_size`, [`BenchmarkId`],
//! and [`black_box`], and prints a simple mean-time report per benchmark.
//!
//! Behavior under `cargo test`: when the binary is invoked with `--test`
//! (as `cargo test` does for `harness = false` bench targets), every
//! benchmark body runs exactly once, so the tier-1 suite stays fast while
//! still smoke-testing each bench. A full run performs a warmup plus a
//! fixed number of timed iterations (tunable with the
//! `CRITERION_STUB_ITERS` environment variable).
//!
//! [`criterion`]: https://docs.rs/criterion/0.5

#![deny(deprecated)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::time::Instant;

/// Opaque value barrier; prevents the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn default_iters() -> u64 {
    if test_mode() {
        return 1;
    }
    std::env::var("CRITERION_STUB_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

/// A benchmark identifier: a function name plus a parameter, rendered as
/// `name/param`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an identifier from a name and a displayed parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Creates an identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.id.fmt(f)
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Runs `routine` in a timed loop and records the mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup (skipped in --test mode where iters == 1).
        if self.iters > 1 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let total = start.elapsed();
        let mean_ns = total.as_nanos() / u128::from(self.iters.max(1));
        println!("    mean {:>12} ns/iter ({} iters)", mean_ns, self.iters);
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            iters: default_iters(),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        println!("bench: {id}");
        let mut b = Bencher { iters: self.iters };
        f(&mut b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores the sample count
    /// (iteration count comes from the driver).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        println!("  bench: {id}");
        let mut b = Bencher {
            iters: self.criterion.iters,
        };
        f(&mut b);
        self
    }

    /// Runs one named benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        println!("  bench: {id}");
        let mut b = Bencher {
            iters: self.criterion.iters,
        };
        f(&mut b, input);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &n| b.iter(|| n * n));
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion { iters: 2 };
        sample_bench(&mut c);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
