//! Offline, API-compatible stand-in for the parts of the [`rand`] crate
//! (0.8.x line) that the `rsbt` workspace uses.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors a minimal implementation instead of pulling the real
//! crate from crates.io. The surface is deliberately small:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_bool`, `gen_range`;
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed` / `from_entropy`;
//! * [`rngs::StdRng`] — a deterministic SplitMix64-seeded generator;
//! * [`rngs::StreamRng`] — independent streams keyed `(seed, stream)` by
//!   SplitMix64 seed-splitting (the Monte-Carlo layers' per-sample RNG);
//! * [`rngs::mock::StepRng`] — the arithmetic-progression mock generator;
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`;
//! * [`thread_rng`] — deterministic here (the `i`-th call process-wide
//!   returns stream `i` of a fixed family), which is exactly what
//!   reproducible experiments want: distinct call sites are decorrelated,
//!   yet a fixed call sequence replays bit-for-bit.
//!
//! Statistical quality is adequate for tests and experiments (SplitMix64
//! passes BigCrush); the bit streams are *not* identical to upstream
//! `rand`, so seeds chosen against upstream may produce different runs.
//!
//! [`rand`]: https://docs.rs/rand/0.8

#![deny(deprecated)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// The core of a random number generator: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value in the range from `rng`.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                let offset = uniform_u128_below(rng, span);
                ((self.start as u128) + offset) as $t
            }
        }

        impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let offset = uniform_u128_below(rng, span);
                ((start as u128) + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Uniform draw in `[0, bound)` by rejection sampling on 64-bit words
/// (`bound` ≤ 2^64 in practice for the integer widths above).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound == 1 {
        return 0;
    }
    if bound.is_power_of_two() {
        return u128::from(rng.next_u64()) & (bound - 1);
    }
    let zone = (u128::from(u64::MAX) + 1) - ((u128::from(u64::MAX) + 1) % bound);
    loop {
        let word = u128::from(rng.next_u64());
        if word < zone {
            return word % bound;
        }
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` seed (SplitMix64 expansion,
    /// as recommended by the upstream `rand` documentation).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = rngs::SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Constructs the generator from "entropy". This offline stand-in is
    /// deliberately deterministic: it seeds from a fixed constant so that
    /// every experiment is reproducible.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x5eed_5eed_5eed_5eed)
    }
}

/// Counts [`thread_rng`] calls process-wide, so every call site gets its
/// own decorrelated stream (the old implementation returned an
/// identically-seeded generator on every call, which made "independent"
/// samples at different call sites perfectly correlated).
static THREAD_RNG_CALLS: core::sync::atomic::AtomicU64 = core::sync::atomic::AtomicU64::new(0);

/// A deterministic stand-in for `rand::thread_rng()`.
///
/// Unlike upstream, the `i`-th call (counting process-wide) returns
/// stream `i` of a fixed [`StreamRng`](rngs::StreamRng) family: distinct
/// calls return decorrelated streams, so two call sites no longer draw
/// identical bits, and a fixed **call sequence** reproduces bit-for-bit.
/// Note the caveat: when multiple threads race on this function, which
/// caller receives which stream index depends on scheduling — replay is
/// only guaranteed for a deterministic call order (single-threaded use,
/// as in this workspace's doctests). Code that needs cross-thread
/// determinism should key streams explicitly via
/// [`StreamRng::new`](rngs::StreamRng::new), as the Monte-Carlo layers
/// do.
pub fn thread_rng() -> rngs::ThreadRng {
    let call = THREAD_RNG_CALLS.fetch_add(1, core::sync::atomic::Ordering::Relaxed);
    rngs::ThreadRng::nth(call)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::mock::StepRng;
    use crate::rngs::StdRng;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn step_rng_is_an_arithmetic_progression() {
        let mut rng = StepRng::new(10, 3);
        assert_eq!(rng.next_u64(), 10);
        assert_eq!(rng.next_u64(), 13);
        assert_eq!(rng.next_u64(), 16);
    }

    #[test]
    fn thread_rng_calls_are_decorrelated() {
        // Regression: two thread_rng() instances must diverge — the old
        // implementation returned identically-seeded generators, making
        // "independent" samples at different call sites equal bit-for-bit.
        let mut a = thread_rng();
        let mut b = thread_rng();
        let draws_a: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(draws_a, draws_b, "call sites must not share a stream");
        // And each word pair should differ too (not merely a shift).
        let equal = draws_a.iter().zip(&draws_b).filter(|(x, y)| x == y).count();
        assert_eq!(equal, 0, "streams share {equal}/16 words");
    }

    #[test]
    fn stream_rng_is_deterministic_per_key() {
        use crate::rngs::StreamRng;
        let mut a = StreamRng::new(7, 42);
        let mut b = StreamRng::new(7, 42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Different stream index, different seed: both diverge.
        let mut c = StreamRng::new(7, 43);
        let mut d = StreamRng::new(8, 42);
        let a_words: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        assert_ne!(a_words, (0..16).map(|_| c.next_u64()).collect::<Vec<_>>());
        assert_ne!(a_words, (0..16).map(|_| d.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn bool_and_f64_are_plausible() {
        let mut rng = StdRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
