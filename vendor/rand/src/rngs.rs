//! Concrete generators: [`StdRng`], [`ThreadRng`], and the [`mock`] module.

use crate::{RngCore, SeedableRng};

/// SplitMix64: the seed-expansion generator from Steele, Lea & Flood,
/// "Fast splittable pseudorandom number generators" (OOPSLA 2014).
#[derive(Clone, Debug)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        split_mix_finalize(self.state)
    }
}

/// The SplitMix64 output finalizer (Stafford's Mix13 variant): a bijective
/// avalanche over `u64`, also used standalone to key stream seeds.
pub(crate) fn split_mix_finalize(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The workspace's standard deterministic generator.
///
/// Internally xoshiro256**-style state seeded via SplitMix64. Not the same
/// bit stream as upstream `rand::rngs::StdRng` (which is ChaCha12), but
/// fully deterministic for a given seed.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_words(words: [u64; 4]) -> Self {
        // All-zero state would be a fixed point; nudge it.
        let s = if words == [0; 4] {
            [0x9e37_79b9_7f4a_7c15, 1, 2, 3]
        } else {
            words
        };
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna.
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut words = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            words[i] = u64::from_le_bytes(buf);
        }
        StdRng::from_words(words)
    }
}

/// An independent generator stream keyed by `(seed, stream)`.
///
/// SplitMix64 seed-splitting: the pair is folded through the SplitMix64
/// finalizer (`state = finalize(seed ⊕ finalize(stream + φ))`, with `φ`
/// the 64-bit golden-ratio constant) before the usual four-word SplitMix64
/// expansion seeds a [`StdRng`]. Two consequences the Monte-Carlo layers
/// rely on:
///
/// * **determinism** — `StreamRng::new(seed, i)` is a pure function of its
///   arguments; sample `i` draws the same bits no matter which worker
///   thread constructs it, so sharded estimates are bit-identical for any
///   thread count;
/// * **decorrelation** — distinct stream indices land on unrelated
///   SplitMix64 states (the finalizer is a full-avalanche bijection, so
///   consecutive indices do not produce overlapping expansion windows the
///   way `seed + i` seeding would).
#[derive(Clone, Debug)]
pub struct StreamRng {
    inner: StdRng,
}

impl StreamRng {
    /// The generator for stream `stream` of the family keyed by `seed`.
    pub fn new(seed: u64, stream: u64) -> StreamRng {
        let keyed = split_mix_finalize(
            seed ^ split_mix_finalize(stream.wrapping_add(0x9e37_79b9_7f4a_7c15)),
        );
        let mut sm = SplitMix64::new(keyed);
        StreamRng {
            inner: StdRng::from_words([sm.next(), sm.next(), sm.next(), sm.next()]),
        }
    }
}

impl RngCore for StreamRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Deterministic stand-in for the thread-local generator.
#[derive(Clone, Debug)]
pub struct ThreadRng {
    inner: StreamRng,
}

/// The fixed family seed of all [`ThreadRng`] instances (kept from the
/// original fixed-seed implementation so the family stays recognizable in
/// reproductions).
const THREAD_RNG_SEED: u64 = 0x7472_6561_645f_726e;

impl ThreadRng {
    /// The `call`-th generator of the process ([`crate::thread_rng`]
    /// passes its global call counter, so successive call sites draw from
    /// distinct, decorrelated streams while staying fully deterministic
    /// per process).
    pub(crate) fn nth(call: u64) -> Self {
        ThreadRng {
            inner: StreamRng::new(THREAD_RNG_SEED, call),
        }
    }
}

impl Default for ThreadRng {
    fn default() -> Self {
        ThreadRng::nth(0)
    }
}

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Mock generators for tests.
pub mod mock {
    use crate::RngCore;

    /// A mock generator yielding an arithmetic progression of `u64`s:
    /// `initial, initial + increment, initial + 2·increment, …` (wrapping).
    #[derive(Clone, Debug)]
    pub struct StepRng {
        v: u64,
        increment: u64,
    }

    impl StepRng {
        /// Creates the generator with the given start value and step.
        pub fn new(initial: u64, increment: u64) -> Self {
            StepRng {
                v: initial,
                increment,
            }
        }
    }

    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.v;
            self.v = self.v.wrapping_add(self.increment);
            out
        }
    }
}
