//! Integration tests on the topology of the paper's complexes: the shapes
//! the framework predicts, verified through the homology machinery.

use rsbt::complex::{connectivity, generators, homology, iso, ops, subdivision};
use rsbt::core::{consistency, realization_complex};
use rsbt::random::Assignment;
use rsbt::sim::{KnowledgeArena, Model};
use rsbt::tasks::{projection, LeaderElection, Task, WeakSymmetryBreaking};

/// `R(1)` with independent bits is the octahedral `(n−1)`-sphere: same
/// facet/vertex counts and isomorphic as chromatic complexes.
#[test]
fn r1_is_an_octahedral_sphere() {
    for n in 2..=4usize {
        let r1 = realization_complex::full(n, 1);
        let sphere = generators::octahedral_sphere(n - 1);
        assert_eq!(r1.facet_count(), sphere.facet_count(), "n={n}");
        assert_eq!(r1.vertex_count(), sphere.vertex_count());
        assert_eq!(
            homology::betti_numbers(&r1),
            homology::betti_numbers(&sphere),
            "R(1) has sphere homology for n={n}"
        );
        assert!(iso::are_isomorphic(&r1, &sphere), "n={n}");
    }
}

/// `R(t)` is `(n−2)`-connected but has top-dimensional homology — the
/// sphere-like shape persists across rounds (t·n bounded for enumeration).
#[test]
fn rt_homology_is_spherelike() {
    // n = 2: R(t) is a cycle-like 1-complex: β = [1, (2^t − 1)^2] for the
    // complete bipartite K_{2^t,2^t}... measured directly:
    let r2 = realization_complex::full(2, 2);
    let b = homology::betti_numbers(&r2);
    assert_eq!(b[0], 1, "connected");
    // K_{4,4}: β_1 = (4−1)(4−1) = 9.
    assert_eq!(b[1], 9);
    assert!(connectivity::is_connected(&r2));
}

/// `π(O_LE)` is a disjoint union of `n` leader points and the boundary of
/// the defeated simplex structure: for n = 3, three points plus a
/// *hollow* triangle (the three defeated edges form a cycle).
#[test]
fn projected_ole_topology() {
    let ole = LeaderElection.output_complex(3);
    let pi = projection::project_complex(&ole);
    let b = homology::betti_numbers(&pi);
    // Components: 3 leader points + 1 defeated cycle = 4; the cycle
    // contributes β_1 = 1.
    assert_eq!(b, vec![4, 1]);
    // For n = 4 the defeated part is the boundary of the tetrahedron
    // minus nothing... defeated simplices are {(j,0): j ≠ i}, i.e. all
    // 2-faces of the 3-simplex on the 0-vertices: the 2-sphere.
    let ole4 = LeaderElection.output_complex(4);
    let pi4 = projection::project_complex(&ole4);
    let b4 = homology::betti_numbers(&pi4);
    assert_eq!(b4, vec![5, 0, 1], "4 points + a 2-sphere");
}

/// `O_LE` itself is contractible-ish for small n: its facets all share no
/// common vertex but pairwise intersect; measured Betti numbers are a
/// regression fixture.
#[test]
fn ole_homology_fixture() {
    // O_LE(2): facets {(0,1),(1,0)} and {(0,0),(1,1)} are disjoint edges.
    assert_eq!(
        homology::betti_numbers(&LeaderElection.output_complex(2)),
        vec![2, 0]
    );
    let b3 = homology::betti_numbers(&LeaderElection.output_complex(3));
    assert_eq!(b3[0], 1, "O_LE(3) is connected");
    let bw = homology::betti_numbers(&WeakSymmetryBreaking.output_complex(3));
    assert_eq!(bw[0], 1, "O_WSB(3) is connected");
}

/// Barycentric subdivision preserves the homology of every task complex.
#[test]
fn subdivision_preserves_task_homology() {
    for n in 2..=3usize {
        let ole = LeaderElection.output_complex(n);
        let sub = subdivision::barycentric(&ole);
        assert_eq!(
            homology::betti_numbers(&ole),
            homology::betti_numbers(&sub),
            "n={n}"
        );
    }
    let pi = projection::project_complex(&LeaderElection.output_complex(3));
    let sub = subdivision::barycentric(&pi);
    assert_eq!(homology::betti_numbers(&pi), homology::betti_numbers(&sub));
}

/// `π̃(R(t))` under a shared source is the disjoint union of `2^t` full
/// simplices — `β_0 = 2^t`, acyclic components.
#[test]
fn pi_tilde_support_shared_source_shape() {
    let alpha = Assignment::shared(3);
    let mut arena = KnowledgeArena::new();
    for t in 1..=3usize {
        let u = consistency::pi_tilde_of_support(&Model::Blackboard, &alpha, t, &mut arena);
        let b = homology::betti_numbers(&u);
        assert_eq!(b[0], 1 << t, "t={t}");
        assert!(b[1..].iter().all(|&x| x == 0));
    }
}

/// The union `π̃(R(t))` *erases* the symmetry-breaking structure: the
/// isolated vertices of individual `π̃(ρ)` get absorbed as faces of the
/// all-equal realizations' big simplices, leaving a pure complex with no
/// isolated vertex. This is precisely why Definition 3.4 quantifies over
/// single facets — the paper's key observation, verified mechanically.
#[test]
fn pi_tilde_union_erases_per_facet_structure() {
    use rsbt::random::{BitString, Realization};
    let alpha = Assignment::private(3);
    let mut arena = KnowledgeArena::new();
    // A symmetry-broken realization has an isolated vertex...
    let rho = Realization::new(vec![
        BitString::from_bits([true]),
        BitString::from_bits([false]),
        BitString::from_bits([false]),
    ])
    .unwrap();
    let pi_rho = consistency::pi_tilde(&Model::Blackboard, &rho, &mut arena);
    assert_eq!(pi_rho.isolated_vertices().len(), 1);
    assert!(!pi_rho.is_pure());
    // ...but the union over all realizations absorbs it.
    let u = consistency::pi_tilde_of_support(&Model::Blackboard, &alpha, 1, &mut arena);
    assert!(u.is_pure());
    assert!(u.isolated_vertices().is_empty());
    assert_eq!(u.facet_count(), 2, "the two all-equal triangles remain");
    assert_eq!(u.dimension(), Some(2));
}

/// The star/link/induced operators interact with projections as expected:
/// the link of an isolated leader vertex in `π(τ)` is empty.
#[test]
fn leader_vertex_is_isolated_in_projection() {
    use rsbt::complex::{ProcessName, Vertex};
    for n in 2..=4usize {
        let tau = LeaderElection::tau(n, 0);
        let pi = projection::project_facet(&tau);
        let leader = Vertex::new(ProcessName::new(0), 1u64);
        assert!(ops::link(&pi, &leader).is_empty(), "n={n}");
        let star = ops::star(&pi, &leader);
        assert_eq!(star.vertex_count(), 1);
    }
}
