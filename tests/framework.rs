//! Integration tests spanning all crates: the framework's verdicts must
//! agree with each other, with the closed forms, and with the executable
//! protocols.

use rsbt::core::{bounds, consistency, eventual, iso_h, probability, solvability};
use rsbt::random::{Assignment, Realization};
use rsbt::sim::{KnowledgeArena, Model, PortNumbering};
use rsbt::tasks::{KLeaderElection, LeaderElection, Task};

/// Theorem 4.1 end-to-end: for every profile of n ≤ 6 nodes, the exact
/// probability series classifies exactly as the `∃ n_i = 1` predicate.
#[test]
fn theorem_4_1_end_to_end() {
    for n in 1..=6usize {
        for alpha in Assignment::iter_profiles(n) {
            let t_max = 3.min(15 / alpha.k().max(1)).max(1);
            let series =
                probability::exact_series(&Model::Blackboard, &LeaderElection, &alpha, t_max);
            let observed = eventual::lemma_3_2_limit(&series) == eventual::LimitClass::One;
            assert_eq!(
                observed,
                eventual::blackboard_eventually_solvable(&alpha),
                "profile {:?}",
                alpha.group_sizes()
            );
        }
    }
}

/// Theorem 4.2 end-to-end under the adversarial numbering.
#[test]
fn theorem_4_2_end_to_end() {
    for n in 2..=6usize {
        for alpha in Assignment::iter_profiles(n) {
            let g = alpha.gcd_of_group_sizes() as usize;
            let model = Model::MessagePassing(PortNumbering::adversarial(n, g));
            let t_max = 2.min(14 / alpha.k().max(1)).max(1);
            let series = probability::exact_series(&model, &LeaderElection, &alpha, t_max);
            let observed = eventual::lemma_3_2_limit(&series) == eventual::LimitClass::One;
            // For gcd = 1 the positive probability may need t ≥ 2; our t_max
            // suffices for n ≤ 6 (checked by the assertion itself).
            assert_eq!(
                observed,
                eventual::message_passing_worst_case_solvable(&alpha),
                "profile {:?}",
                alpha.group_sizes()
            );
        }
    }
}

/// The closed form of `bounds` agrees with brute-force framework
/// enumeration on every singleton-bearing profile.
#[test]
fn closed_form_matches_enumeration() {
    for sizes in [
        vec![1usize, 1],
        vec![1, 2],
        vec![1, 2, 2],
        vec![2, 2],
        vec![1, 1, 2],
    ] {
        let alpha = Assignment::from_group_sizes(&sizes).unwrap();
        for t in 1..=3usize {
            let exact = probability::exact(&Model::Blackboard, &LeaderElection, &alpha, t);
            let formula = bounds::exact_blackboard_le_probability(&sizes, t);
            assert!(
                (exact - formula).abs() < 1e-12,
                "sizes {sizes:?} t {t}: {exact} vs {formula}"
            );
        }
    }
}

/// Lemma 3.5: the three solvability definitions agree on every realization
/// across models and tasks.
#[test]
fn lemma_3_5_equivalence_sweep() {
    let models = [
        Model::Blackboard,
        Model::message_passing_cyclic(3),
        Model::MessagePassing(PortNumbering::adversarial(3, 3)),
    ];
    let le = LeaderElection;
    let three = KLeaderElection::new(3);
    let mut arena = KnowledgeArena::new();
    // One output complex per task across the whole sweep (the cached
    // definition-search variants take-or-build instead of rebuilding).
    let mut cache = rsbt::core::output_cache::OutputComplexCache::new();
    for model in &models {
        for rho in Realization::enumerate_all(3, 2) {
            for task in [&le as &dyn Task, &three] {
                let fast = solvability::solves(model, &rho, task, &mut arena);
                let proj = solvability::solves_via_projection_cached(
                    model, &rho, task, &mut arena, &mut cache,
                );
                let d31 = solvability::solves_via_definition_3_1_cached(
                    model, &rho, task, &mut arena, &mut cache,
                );
                assert_eq!(fast, proj, "{model} {rho} {}", task.name());
                assert_eq!(fast, d31, "{model} {rho} {}", task.name());
            }
        }
    }
}

/// The h map is a facet bijection for every model/size combination small
/// enough to enumerate.
#[test]
fn h_isomorphism_sweep() {
    for (model, n, t) in [
        (Model::Blackboard, 2, 3),
        (Model::Blackboard, 4, 1),
        (Model::message_passing_cyclic(4), 4, 1),
        (
            Model::MessagePassing(PortNumbering::adversarial(4, 2)),
            4,
            2,
        ),
    ] {
        let checked = iso_h::verify_facet_isomorphism(&model, n, t);
        assert_eq!(checked, 1usize << (n * t));
    }
}

/// Lemma 4.3 divisibility, full sweep over group profiles with g > 1.
#[test]
fn lemma_4_3_sweep() {
    for (sizes, g) in [
        (vec![2usize, 2], 2usize),
        (vec![3, 3], 3),
        (vec![2, 2, 2], 2),
    ] {
        let n: usize = sizes.iter().sum();
        let alpha = Assignment::from_group_sizes(&sizes).unwrap();
        let model = Model::MessagePassing(PortNumbering::adversarial(n, g));
        let mut arena = KnowledgeArena::new();
        let checked = consistency::verify_lemma_4_3(&model, &alpha, g, 2, &mut arena);
        assert!(checked > 0);
    }
}

/// Protocol-vs-framework agreement: the blackboard election protocol
/// terminates exactly on the configurations the framework declares
/// solvable.
#[test]
fn protocol_agrees_with_framework_blackboard() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rsbt::protocols::{leader_count, BlackboardLeaderElection};
    use rsbt::sim::runner;

    let mut rng = StdRng::seed_from_u64(77);
    for n in 2..=5usize {
        for alpha in Assignment::iter_profiles(n) {
            let solvable = eventual::blackboard_eventually_solvable(&alpha);
            let out = runner::run(
                &Model::Blackboard,
                &alpha,
                256,
                BlackboardLeaderElection::new,
                &mut rng,
            );
            if solvable {
                assert!(out.completed, "profile {:?}", alpha.group_sizes());
                assert_eq!(leader_count(&out.outputs), 1);
            } else {
                assert!(!out.completed, "profile {:?}", alpha.group_sizes());
            }
        }
    }
}

/// Protocol-vs-framework agreement in the message-passing model: Euclid LE
/// terminates with one leader iff gcd = 1, under adversarial ports.
#[test]
fn protocol_agrees_with_framework_message_passing() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rsbt::protocols::{leader_count, EuclidLeaderElection};
    use rsbt::sim::runner;

    let mut rng = StdRng::seed_from_u64(99);
    for sizes in [
        vec![2usize, 3],
        vec![1, 3],
        vec![2, 2],
        vec![3, 3],
        vec![2, 2, 3],
    ] {
        let alpha = Assignment::from_group_sizes(&sizes).unwrap();
        let n = alpha.n();
        let g = alpha.gcd_of_group_sizes();
        let ports = PortNumbering::adversarial(n, g as usize);
        let out = runner::run(
            &Model::MessagePassing(ports),
            &alpha,
            6000,
            || EuclidLeaderElection::new(sizes.len()),
            &mut rng,
        );
        if eventual::message_passing_worst_case_solvable(&alpha) {
            assert!(out.completed, "sizes {sizes:?}");
            assert_eq!(leader_count(&out.outputs), 1, "sizes {sizes:?}");
        } else {
            assert!(!out.completed, "sizes {sizes:?}");
        }
    }
}

/// Monte-Carlo estimates agree with exact enumeration across models.
#[test]
fn monte_carlo_agrees_with_exact() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(5);
    let cases = [
        (Model::Blackboard, vec![1usize, 2]),
        (Model::message_passing_cyclic(4), vec![2, 2]),
    ];
    for (model, sizes) in cases {
        let alpha = Assignment::from_group_sizes(&sizes).unwrap();
        let t = 3;
        let exact = probability::exact(&model, &LeaderElection, &alpha, t);
        let est = probability::monte_carlo(&model, &LeaderElection, &alpha, t, 30_000, &mut rng);
        assert!(
            est.is_consistent_with(exact, 4.5),
            "{model} {sizes:?}: exact {exact} vs {est:?}"
        );
    }
}
