//! Smoke tests for the `rsbt` facade: every re-exported module must
//! resolve, and the `examples/quickstart.rs` flow must run to completion
//! with the values the paper predicts.

use rsbt::core::{eventual, probability, solvability};
use rsbt::random::{Assignment, BitString, Realization};
use rsbt::sim::{Execution, KnowledgeArena, Model};
use rsbt::tasks::{projection, LeaderElection, Task};

/// One symbol from each of the six re-exported crates resolves and works.
#[test]
fn all_reexports_resolve() {
    // rsbt::complex
    let mut c: rsbt::complex::Complex<u8> = rsbt::complex::Complex::new();
    c.add_facet([rsbt::complex::Vertex::new(
        rsbt::complex::ProcessName::new(0),
        1u8,
    )])
    .unwrap();
    assert_eq!(c.facet_count(), 1);

    // rsbt::random
    let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
    assert_eq!(alpha.k(), 2);

    // rsbt::sim
    let rho = Realization::new(vec![
        BitString::from_bits([true]),
        BitString::from_bits([false]),
        BitString::from_bits([false]),
    ])
    .unwrap();
    let mut arena = KnowledgeArena::new();
    let exec = Execution::run(&Model::Blackboard, &rho, &mut arena);
    assert_eq!(exec.consistency_partition(1).len(), 2);

    // rsbt::tasks
    assert!(LeaderElection.output_complex(3).is_symmetric());

    // rsbt::core
    assert!(solvability::solves(
        &Model::Blackboard,
        &rho,
        &LeaderElection,
        &mut arena
    ));

    // rsbt::protocols
    use rsbt::protocols::{leader_count, Role};
    assert_eq!(
        leader_count(&[Some(Role::Leader), Some(Role::Follower), None]),
        1
    );
}

/// The quickstart example's flow, end to end, with its expected outputs.
#[test]
fn quickstart_flow_runs_to_completion() {
    // 1. The task: leader election for three processes.
    let ole = LeaderElection.output_complex(3);
    assert_eq!(ole.facet_count(), 3);
    assert!(ole.is_symmetric());

    // 2. Figure 3: π(τ_0) is an isolated leader vertex plus a defeated edge.
    let tau = LeaderElection::tau(3, 0);
    let pi_tau = projection::project_facet(&tau);
    assert_eq!(pi_tau.facet_count(), 2);
    assert_eq!(pi_tau.isolated_vertices().len(), 1);

    // 3. Symmetry broken at t = 1 solves LE (Definition 3.4).
    let rho = Realization::new(vec![
        BitString::from_bits([true]),
        BitString::from_bits([false]),
        BitString::from_bits([false]),
    ])
    .unwrap();
    let mut arena = KnowledgeArena::new();
    assert!(solvability::solves(
        &Model::Blackboard,
        &rho,
        &LeaderElection,
        &mut arena
    ));

    // 4. One singleton among k = 2 sources: p(t) = 1 − 2^{−t}.
    let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
    for t in 1..=5 {
        let p = probability::exact(&Model::Blackboard, &LeaderElection, &alpha, t);
        let expect = 1.0 - 0.5f64.powi(t as i32);
        assert!((p - expect).abs() < 1e-12, "t={t}: {p} vs {expect}");
    }

    // 5. Theorem 4.1 / 4.2 predicates on the quickstart's three configs.
    let cases = [
        (vec![1usize, 2], true, true),
        (vec![2, 2], false, false),
        (vec![2, 3], false, true),
    ];
    for (sizes, bb, mp) in cases {
        let alpha = Assignment::from_group_sizes(&sizes).unwrap();
        assert_eq!(
            eventual::blackboard_eventually_solvable(&alpha),
            bb,
            "{sizes:?}"
        );
        assert_eq!(
            eventual::message_passing_worst_case_solvable(&alpha),
            mp,
            "{sizes:?}"
        );
    }
}
