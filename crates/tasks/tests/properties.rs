//! Property tests for the closed-form partition verdicts.
//!
//! Every built-in task overrides `Task::solves_partition`; these tests pin
//! each closed form to the ground truth it compresses — "some facet of
//! `output_complex(n)` holds a single value on every class" — on random
//! partitions for `n ≤ 6`, plus fixed vectors for the subtle cases.

use proptest::prelude::*;
use rsbt_complex::ProcessName;
use rsbt_tasks::{KLeaderElection, LeaderAndDeputy, LeaderElection, Task, WeakSymmetryBreaking};

/// The facet-scan ground truth for a partition given as per-node labels.
fn scan_verdict<T: Task + ?Sized>(task: &T, labels: &[u8]) -> bool {
    task.output_complex(labels.len()).facets().any(|tau| {
        (0..labels.len()).all(|i| {
            let rep = (0..labels.len())
                .find(|&j| labels[j] == labels[i])
                .expect("i matches itself");
            tau.value_of(ProcessName::new(i as u32)) == tau.value_of(ProcessName::new(rep as u32))
        })
    })
}

fn assert_closed_form_matches<T: Task + ?Sized>(task: &T, labels: &[u8]) {
    let closed = task
        .solves_partition(labels)
        .expect("built-in tasks have closed forms");
    let scanned = scan_verdict(task, labels);
    assert_eq!(
        closed,
        scanned,
        "{} diverges from the facet scan on labels {labels:?}",
        task.name()
    );
}

/// Strategy: a partition of `2..=6` nodes as arbitrary per-node labels
/// (labels need not be canonical — only equality matters).
fn arb_labels() -> impl Strategy<Value = Vec<u8>> {
    (2usize..=6).prop_flat_map(|n| proptest::collection::vec(0u8..6, n..=n))
}

proptest! {
    // Fixed RNG configuration so tier-1 is deterministic in CI (same
    // convention as the other proptest suites in this workspace).
    #![proptest_config(ProptestConfig {
        cases: 128,
        rng_seed: 0x5253_4254, // "RSBT"
        ..ProptestConfig::default()
    })]

    #[test]
    fn leader_election_closed_form(labels in arb_labels()) {
        assert_closed_form_matches(&LeaderElection, &labels);
    }

    #[test]
    fn k_leader_closed_form(labels in arb_labels(), k in 1usize..=6) {
        let k = k.min(labels.len());
        assert_closed_form_matches(&KLeaderElection::new(k), &labels);
    }

    #[test]
    fn wsb_closed_form(labels in arb_labels()) {
        assert_closed_form_matches(&WeakSymmetryBreaking, &labels);
    }

    #[test]
    fn unconstrained_deputy_closed_form(labels in arb_labels()) {
        assert_closed_form_matches(&LeaderAndDeputy::unconstrained(labels.len()), &labels);
    }

    #[test]
    fn constrained_deputy_closed_form(
        labels in arb_labels(),
        lead_mask in 1u8..63,
        deputy_mask in 1u8..63,
    ) {
        let n = labels.len();
        let lead: Vec<bool> = (0..n).map(|i| lead_mask >> i & 1 == 1).collect();
        let deputy: Vec<bool> = (0..n).map(|i| deputy_mask >> i & 1 == 1).collect();
        // Skip constraint sets with no admissible pair (output_complex
        // panics there by contract).
        let admissible = (0..n).any(|l| (0..n).any(|d| l != d && lead[l] && deputy[d]));
        prop_assume!(admissible);
        assert_closed_form_matches(&LeaderAndDeputy::new(lead, deputy), &labels);
    }
}

/// The k-leader verdict is a genuine subset-sum, not a threshold check:
/// class sizes [3, 3, 2] reach 2, 3, 5, 6, 8 — but neither 4 nor 7.
#[test]
fn k_leader_subset_sum_pins_tricky_partition() {
    // 8 nodes, classes {0,1,2}, {3,4,5}, {6,7}.
    let labels = [0u8, 0, 0, 1, 1, 1, 2, 2];
    for (k, expect) in [
        (2, true),
        (3, true),
        (4, false), // between min and max class-sum, yet unreachable
        (5, true),
        (6, true),
        (7, false),
        (8, true),
    ] {
        let task = KLeaderElection::new(k);
        assert_eq!(
            task.solves_partition(&labels),
            Some(expect),
            "k={k} on sizes [3,3,2]"
        );
        assert_eq!(scan_verdict(&task, &labels), expect, "scan k={k}");
    }
}

/// Labels are compared by equality only — non-canonical labelings must
/// give the same verdict as their canonical form.
#[test]
fn non_canonical_labels_are_equivalent() {
    let canonical = [0u8, 1, 1, 2];
    let scrambled = [5u8, 3, 3, 0];
    for task in [
        Box::new(LeaderElection) as Box<dyn Task>,
        Box::new(KLeaderElection::new(2)),
        Box::new(WeakSymmetryBreaking),
        Box::new(LeaderAndDeputy::unconstrained(4)),
    ] {
        assert_eq!(
            task.solves_partition(&canonical),
            task.solves_partition(&scrambled),
            "{}",
            task.name()
        );
    }
}

/// Independent ground truth for the facet streams: the expected facet
/// sets built from first principles (bit-mask enumeration and explicit
/// role vertices — a different algorithm than the streams' combination
/// generators, and independent of `output_complex`, which is itself
/// defined as `facet_stream(n).collect()` since the streaming rewrite).
#[test]
fn facet_streams_match_first_principles() {
    use rsbt_complex::{Simplex, Vertex};
    use std::collections::BTreeSet;
    type Case = (Box<dyn Task>, BTreeSet<Simplex<u64>>);
    let facet_from_values = |values: Vec<u64>| {
        Simplex::from_vertices(
            values
                .into_iter()
                .enumerate()
                .map(|(i, v)| Vertex::new(ProcessName::new(i as u32), v)),
        )
        .expect("distinct names")
    };
    for n in 1..=6usize {
        let mut cases: Vec<Case> = Vec::new();
        // Leader election: value vectors with exactly one 1.
        cases.push((
            Box::new(LeaderElection),
            (0..n)
                .map(|leader| facet_from_values((0..n).map(|i| u64::from(i == leader)).collect()))
                .collect(),
        ));
        // k-leader election: masks with popcount k (vs the stream's
        // lexicographic combination walk).
        for k in 1..=n {
            cases.push((
                Box::new(KLeaderElection::new(k)),
                (0u64..1 << n)
                    .filter(|m| m.count_ones() as usize == k)
                    .map(|m| facet_from_values((0..n).map(|i| m >> i & 1).collect()))
                    .collect(),
            ));
        }
        if n >= 2 {
            // WSB: every non-constant bit vector.
            cases.push((
                Box::new(WeakSymmetryBreaking),
                (1u64..(1 << n) - 1)
                    .map(|m| facet_from_values((0..n).map(|i| m >> i & 1).collect()))
                    .collect(),
            ));
            // Leader-and-deputy: explicit role vectors per ordered pair.
            cases.push((
                Box::new(LeaderAndDeputy::unconstrained(n)),
                (0..n)
                    .flat_map(|l| (0..n).filter(move |&d| d != l).map(move |d| (l, d)))
                    .map(|(l, d)| {
                        facet_from_values(
                            (0..n)
                                .map(|i| {
                                    if i == l {
                                        2 // ROLE_LEADER
                                    } else if i == d {
                                        1 // ROLE_DEPUTY
                                    } else {
                                        0 // ROLE_FOLLOWER
                                    }
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            ));
        }
        for (task, expected) in cases {
            let streamed: Vec<Simplex<u64>> = task.facets_vec(n);
            let streamed_set: BTreeSet<Simplex<u64>> = streamed.iter().cloned().collect();
            assert_eq!(streamed_set, expected, "{} n={n}", task.name());
            assert_eq!(
                streamed.len(),
                expected.len(),
                "{} n={n}: streams are duplicate-free",
                task.name()
            );
            // And output_complex (= collected stream) stores the same set.
            let complex_facets: BTreeSet<Simplex<u64>> =
                task.output_complex(n).facets().cloned().collect();
            assert_eq!(complex_facets, expected, "{} n={n}", task.name());
        }
    }
}
