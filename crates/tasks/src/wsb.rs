//! Weak symmetry breaking: outputs in `{0,1}`, not all equal.
//!
//! The classic companion task of leader election in topological
//! distributed computing (cf. HKR14): every node outputs a bit, and the
//! all-zero and all-one outputs are forbidden. It is strictly weaker than
//! leader election (any leader can set itself to `1` and the rest to `0`),
//! and under the paper's framework its blackboard characterization is
//! `k ≥ 2` — two sources eventually diverge, and the two sides output
//! different bits — in contrast to leader election's `∃ n_i = 1`.

use std::borrow::Cow;

use rsbt_complex::{Complex, ProcessName, Simplex, Vertex};

use crate::plan::{PlanBuilder, VerdictPlan};
use crate::task::{class_sizes, FacetStream, Task};

/// The weak-symmetry-breaking task.
///
/// For `n ≥ 2` the output complex has `2^n − 2` facets (every non-constant
/// bit assignment). The task is undefined for `n = 1` (a single node can
/// never "not all agree"), and [`Task::output_complex`] panics there.
///
/// # Example
///
/// ```
/// use rsbt_tasks::{Task, WeakSymmetryBreaking};
///
/// let wsb = WeakSymmetryBreaking;
/// assert_eq!(wsb.output_complex(3).facet_count(), 6);
/// assert!(wsb.is_symmetric_for(3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WeakSymmetryBreaking;

impl WeakSymmetryBreaking {
    /// The facet in which the nodes of `ones` output 1 and the rest 0.
    ///
    /// Returns `None` for the two forbidden constant assignments.
    pub fn facet_for(n: usize, ones: &[usize]) -> Option<Simplex<u64>> {
        if ones.is_empty() || ones.len() >= n {
            return None;
        }
        Some(
            Simplex::from_vertices(
                (0..n)
                    .map(|i| Vertex::new(ProcessName::new(i as u32), u64::from(ones.contains(&i)))),
            )
            .expect("distinct names"),
        )
    }
}

impl Task for WeakSymmetryBreaking {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("weak-symmetry-breaking")
    }

    /// # Panics
    ///
    /// Panics for `n < 2`: a single node cannot break symmetry with
    /// itself.
    fn output_complex(&self, n: usize) -> Complex<u64> {
        self.facet_stream(n).collect()
    }

    /// Lazily enumerates the `2^n − 2` non-constant bit assignments in
    /// mask order.
    ///
    /// # Panics
    ///
    /// Panics for `n < 2` (undefined) and `n > 62` (mask overflow).
    fn facet_stream(&self, n: usize) -> FacetStream<'_> {
        assert!(n >= 2, "weak symmetry breaking needs n ≥ 2");
        assert!(n <= 62, "facet enumeration limited to 62 nodes");
        Box::new((1u64..(1 << n) - 1).map(move |mask| {
            Simplex::from_vertices(
                (0..n).map(|i| Vertex::new(ProcessName::new(i as u32), mask >> i & 1)),
            )
            .expect("distinct names")
        }))
    }

    /// Closed form: a facet is a non-constant bit assignment; it is
    /// class-monochromatic iff the 1-side is a union of classes. A proper
    /// non-empty union of classes exists iff there are at least two
    /// classes — the `k ≥ 2` characterization the module docs cite.
    fn solves_partition(&self, labels: &[u8]) -> Option<bool> {
        assert!(labels.len() >= 2, "weak symmetry breaking needs n ≥ 2");
        let (_, classes) = class_sizes(labels);
        Some(classes >= 2)
    }

    /// Lane lowering of "≥ 2 classes": equality is transitive, so at
    /// least two classes exist iff *some* unit differs from unit 0 —
    /// an OR of `units − 1` pair words. One unit means one class.
    fn lane_plan(&self, unit_of_node: &[usize], units: usize) -> Option<VerdictPlan> {
        assert!(
            unit_of_node.len() >= 2,
            "weak symmetry breaking needs n ≥ 2"
        );
        let mut b = PlanBuilder::new(units);
        for v in 1..units {
            b.or_not_eq(0, 0, v);
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facet_count_is_two_to_n_minus_two() {
        for n in 2..=6usize {
            assert_eq!(
                WeakSymmetryBreaking.output_complex(n).facet_count(),
                (1usize << n) - 2,
                "n={n}"
            );
        }
    }

    #[test]
    fn symmetric() {
        for n in 2..=5 {
            assert!(WeakSymmetryBreaking.is_symmetric_for(n));
        }
    }

    #[test]
    fn constant_assignments_rejected() {
        assert!(WeakSymmetryBreaking::facet_for(3, &[]).is_none());
        assert!(WeakSymmetryBreaking::facet_for(3, &[0, 1, 2]).is_none());
        assert!(WeakSymmetryBreaking::facet_for(3, &[1]).is_some());
    }

    #[test]
    #[should_panic(expected = "n ≥ 2")]
    fn single_node_undefined() {
        let _ = WeakSymmetryBreaking.output_complex(1);
    }

    #[test]
    fn projection_has_two_sides() {
        for pi in WeakSymmetryBreaking.projected_facets(4) {
            // Each facet splits into the 1-side and the 0-side.
            assert_eq!(pi.facet_count(), 2);
        }
    }

    #[test]
    fn strictly_weaker_than_leader_election() {
        // Every O_LE facet is a WSB facet (one 1, rest 0): the LE output
        // complex is a subcomplex of the WSB output complex.
        use crate::leader::LeaderElection;
        use rsbt_complex::ops;
        for n in 2..=5 {
            let le = LeaderElection.output_complex(n);
            let wsb = WeakSymmetryBreaking.output_complex(n);
            assert!(ops::is_subcomplex(&le, &wsb), "n={n}");
        }
    }
}
