//! Compiled lane-parallel verdict plans: `solves_partition` lowered to
//! straight-line bitwise ops over pairwise-equality words.
//!
//! The bit-sliced Monte-Carlo kernel tracks, for 64 samples at once, the
//! pairwise knowledge-equality relation over *units* (sources on the
//! blackboard, nodes under message passing) as packed `u64` words — bit
//! `l` of `eq[pair_index(units, a, b)]` says whether units `a` and `b`
//! are consistent in sample `l`. A [`VerdictPlan`] is the task's
//! closed-form [`crate::Task::solves_partition`] verdict compiled once
//! per `(task, unit layout)` into a short branch-free program over those
//! words: one [`VerdictPlan::eval`] answers all 64 samples in a handful
//! of ANDs and ORs, in the spirit of a JIT — compile the decision once,
//! run it per word — instead of re-interpreting the closed form per
//! sample.
//!
//! The lowerings exploit that the equality relation is an *equivalence*:
//! literal bit-string (or hash-consed id) equality is transitive, so
//! e.g. "≥ 2 classes" is simply "some unit differs from unit 0", and "a
//! weight-1 unit forms a singleton node class" is "that unit differs
//! from every other unit".

/// The packed index of unit pair `(a, b)`, `a < b`, among `units` units
/// (row-major upper triangle). Must match the convention of the caller's
/// equality words — `rsbt_sim::lanes` uses the same formula.
pub fn pair_index(units: usize, a: usize, b: usize) -> usize {
    debug_assert!(a < b && b < units, "need a < b < units");
    a * (2 * units - a - 1) / 2 + (b - a - 1)
}

/// The number of packed unit pairs: `units·(units − 1)/2`.
pub fn pair_count(units: usize) -> usize {
    units * (units - 1) / 2
}

/// Plans longer than this are refused at compile time
/// ([`crate::Task::lane_plan`] returns `None` and the caller peels lanes
/// to the scalar path): past a few thousand ops the straight-line
/// program loses to the scalar verdict it replaces.
pub(crate) const MAX_PLAN_OPS: usize = 4096;

/// One straight-line instruction over lane words. Register 0 is the
/// verdict accumulator; all registers start zeroed.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// `regs[dst] = !0`.
    Ones { dst: u16 },
    /// `regs[dst] &= !eq[pair]` — "…and the units of `pair` differ".
    AndNotEq { dst: u16, pair: u32 },
    /// `regs[dst] |= !eq[pair]` — "…or the units of `pair` differ".
    OrNotEq { dst: u16, pair: u32 },
    /// `regs[dst] |= regs[src]`.
    Or { dst: u16, src: u16 },
    /// `regs[dst] |= regs[a] & regs[b]`.
    OrAnd { dst: u16, a: u16, b: u16 },
}

/// The introspection view of one plan instruction, mirroring the private
/// op encoding one-for-one. `rsbt-analyze`'s abstract interpreter walks
/// plans through this view ([`VerdictPlan::ops`]) and rebuilds corrupted
/// plans for its rejection tests ([`VerdictPlan::from_raw_ops`]); the
/// execution path never touches it.
///
/// Every op is monotone non-decreasing in the pairwise *distinction*
/// inputs `!eq[pair]` — the structural fact behind the verifier's
/// refinement-monotonicity argument. A new op kind added here must keep
/// that property or the static verifier will reject every plan using it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlanOp {
    /// `regs[dst] = !0`.
    Ones {
        /// Destination register.
        dst: u16,
    },
    /// `regs[dst] &= !eq[pair]`.
    AndNotEq {
        /// Destination register (read-modify-write).
        dst: u16,
        /// Packed pair index (see [`pair_index`]).
        pair: u32,
    },
    /// `regs[dst] |= !eq[pair]`.
    OrNotEq {
        /// Destination register (read-modify-write).
        dst: u16,
        /// Packed pair index (see [`pair_index`]).
        pair: u32,
    },
    /// `regs[dst] |= regs[src]`.
    Or {
        /// Destination register (read-modify-write).
        dst: u16,
        /// Source register.
        src: u16,
    },
    /// `regs[dst] |= regs[a] & regs[b]`.
    OrAnd {
        /// Destination register (read-modify-write).
        dst: u16,
        /// First source register.
        a: u16,
        /// Second source register.
        b: u16,
    },
}

/// A compiled lane-parallel solvability verdict (see the module docs).
///
/// Built by [`crate::Task::lane_plan`]; evaluated once per 64-sample
/// word by [`VerdictPlan::eval`].
#[derive(Clone, Debug)]
pub struct VerdictPlan {
    units: usize,
    regs: usize,
    ops: Vec<Op>,
}

impl VerdictPlan {
    /// The unit count the plan was compiled for.
    pub fn units(&self) -> usize {
        self.units
    }

    /// The size of the plan's register file (register 0 is the verdict).
    pub fn regs(&self) -> usize {
        self.regs
    }

    /// The op budget compilation refuses to exceed — the bound the static
    /// verifier re-checks on every built plan.
    pub fn max_ops() -> usize {
        MAX_PLAN_OPS
    }

    /// The instruction stream as introspection ops, in execution order.
    pub fn ops(&self) -> impl Iterator<Item = PlanOp> + '_ {
        self.ops.iter().map(|op| match *op {
            Op::Ones { dst } => PlanOp::Ones { dst },
            Op::AndNotEq { dst, pair } => PlanOp::AndNotEq { dst, pair },
            Op::OrNotEq { dst, pair } => PlanOp::OrNotEq { dst, pair },
            Op::Or { dst, src } => PlanOp::Or { dst, src },
            Op::OrAnd { dst, a, b } => PlanOp::OrAnd { dst, a, b },
        })
    }

    /// Assembles a plan from raw introspection ops, bypassing the task
    /// lowerings and every builder invariant.
    ///
    /// This is an analysis/testing hook: `rsbt-analyze` uses it to build
    /// deliberately corrupted plans and prove its verifier rejects them.
    /// Nothing validates the ops — evaluating a plan with out-of-range
    /// registers or pair indices panics.
    pub fn from_raw_ops(units: usize, regs: usize, ops: &[PlanOp]) -> VerdictPlan {
        VerdictPlan {
            units,
            regs,
            ops: ops
                .iter()
                .map(|op| match *op {
                    PlanOp::Ones { dst } => Op::Ones { dst },
                    PlanOp::AndNotEq { dst, pair } => Op::AndNotEq { dst, pair },
                    PlanOp::OrNotEq { dst, pair } => Op::OrNotEq { dst, pair },
                    PlanOp::Or { dst, src } => Op::Or { dst, src },
                    PlanOp::OrAnd { dst, a, b } => Op::OrAnd { dst, a, b },
                })
                .collect(),
        }
    }

    /// The number of straight-line ops (diagnostics only).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the plan is the empty (constant-false) program.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Runs the plan over packed pairwise-equality words: bit `l` of the
    /// result is the task's verdict for lane `l`'s partition. `regs` is
    /// caller-owned scratch, reused across calls without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if `eq` is not the packed upper triangle for the plan's
    /// unit count.
    pub fn eval(&self, eq: &[u64], regs: &mut Vec<u64>) -> u64 {
        assert_eq!(
            eq.len(),
            pair_count(self.units),
            "equality words do not match the plan's {} units",
            self.units
        );
        regs.clear();
        regs.resize(self.regs, 0);
        for op in &self.ops {
            match *op {
                Op::Ones { dst } => regs[dst as usize] = !0,
                Op::AndNotEq { dst, pair } => regs[dst as usize] &= !eq[pair as usize],
                Op::OrNotEq { dst, pair } => regs[dst as usize] |= !eq[pair as usize],
                Op::Or { dst, src } => regs[dst as usize] |= regs[src as usize],
                Op::OrAnd { dst, a, b } => {
                    let v = regs[a as usize] & regs[b as usize];
                    regs[dst as usize] |= v;
                }
            }
        }
        regs[0]
    }
}

/// Incremental [`VerdictPlan`] assembly for the task lowerings.
pub(crate) struct PlanBuilder {
    units: usize,
    regs: usize,
    ops: Vec<Op>,
}

impl PlanBuilder {
    /// A builder with register 0 (the verdict) allocated and zeroed.
    pub(crate) fn new(units: usize) -> Self {
        PlanBuilder {
            units,
            regs: 1,
            ops: Vec::new(),
        }
    }

    /// Allocates a fresh scratch register (starts zeroed).
    pub(crate) fn reg(&mut self) -> u16 {
        let r = self.regs;
        self.regs += 1;
        u16::try_from(r).expect("plan register file overflow")
    }

    pub(crate) fn ones(&mut self, dst: u16) {
        self.ops.push(Op::Ones { dst });
    }

    /// `regs[dst] &= !eq[(a, b)]` for distinct units `a`, `b`.
    pub(crate) fn and_not_eq(&mut self, dst: u16, a: usize, b: usize) {
        let pair = pair_index(self.units, a.min(b), a.max(b)) as u32;
        self.ops.push(Op::AndNotEq { dst, pair });
    }

    /// `regs[dst] |= !eq[(a, b)]` for distinct units `a`, `b`.
    pub(crate) fn or_not_eq(&mut self, dst: u16, a: usize, b: usize) {
        let pair = pair_index(self.units, a.min(b), a.max(b)) as u32;
        self.ops.push(Op::OrNotEq { dst, pair });
    }

    pub(crate) fn or(&mut self, dst: u16, src: u16) {
        self.ops.push(Op::Or { dst, src });
    }

    pub(crate) fn or_and(&mut self, dst: u16, a: u16, b: u16) {
        self.ops.push(Op::OrAnd { dst, a, b });
    }

    pub(crate) fn len(&self) -> usize {
        self.ops.len()
    }

    /// Finishes the plan, or `None` when it overran [`MAX_PLAN_OPS`].
    pub(crate) fn finish(self) -> Option<VerdictPlan> {
        if self.ops.len() > MAX_PLAN_OPS {
            return None;
        }
        Some(VerdictPlan {
            units: self.units,
            regs: self.regs,
            ops: self.ops,
        })
    }
}

/// The number of nodes each unit covers, from the node → unit map.
pub(crate) fn unit_weights(unit_of_node: &[usize], units: usize) -> Vec<u32> {
    let mut w = vec![0u32; units];
    for &u in unit_of_node {
        w[u] += 1;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;
    use crate::{KLeaderElection, LeaderAndDeputy, LeaderElection, WeakSymmetryBreaking};

    /// Packs per-lane node partitions into unit-equality words for the
    /// identity unit layout (units = nodes).
    fn eq_words_from_labels(lanes: &[Vec<u8>], n: usize) -> Vec<u64> {
        let mut eq = vec![0u64; pair_count(n)];
        for (l, labels) in lanes.iter().enumerate() {
            for a in 0..n {
                for b in a + 1..n {
                    if labels[a] == labels[b] {
                        eq[pair_index(n, a, b)] |= 1 << l;
                    }
                }
            }
        }
        eq
    }

    fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^ (z >> 31)
    }

    /// 64 independently randomized partitions of `n` nodes.
    fn random_lanes(n: usize, salt: u64) -> Vec<Vec<u8>> {
        (0..64u64)
            .map(|l| {
                (0..n)
                    .map(|i| (mix(salt ^ (l << 16) ^ i as u64) % n as u64) as u8)
                    .collect()
            })
            .collect()
    }

    fn assert_plan_matches_scalar(task: &dyn Task, n: usize, salt: u64) {
        let unit_of_node: Vec<usize> = (0..n).collect();
        let plan = task
            .lane_plan(&unit_of_node, n)
            .unwrap_or_else(|| panic!("{} has no plan for n={n}", task.name()));
        let lanes = random_lanes(n, salt);
        let eq = eq_words_from_labels(&lanes, n);
        let mut regs = Vec::new();
        let got = plan.eval(&eq, &mut regs);
        for (l, labels) in lanes.iter().enumerate() {
            let want = task.solves_partition(labels).expect("closed form");
            assert_eq!(
                got >> l & 1 == 1,
                want,
                "{} n={n} lane {l} labels {labels:?}",
                task.name()
            );
        }
    }

    #[test]
    fn plans_match_scalar_closed_forms_on_random_partitions() {
        for n in 1..=8 {
            assert_plan_matches_scalar(&LeaderElection, n, 101 + n as u64);
        }
        for n in 2..=8 {
            assert_plan_matches_scalar(&WeakSymmetryBreaking, n, 211 + n as u64);
            assert_plan_matches_scalar(&LeaderAndDeputy::unconstrained(n), n, 307 + n as u64);
            for k in 1..=n {
                let task = KLeaderElection::new(k);
                assert_plan_matches_scalar(&task, n, 401 + (n * 16 + k) as u64);
            }
        }
    }

    #[test]
    fn constrained_deputy_plans_match_scalar() {
        let t = LeaderAndDeputy::new(
            vec![true, true, false, false],
            vec![false, false, true, true],
        );
        assert_plan_matches_scalar(&t, 4, 997);
    }

    #[test]
    fn k_leader_subset_sum_pin() {
        // Sizes [3, 3, 2] reach k = 5 (3 + 2) but not k = 4.
        let labels = [0u8, 0, 0, 1, 1, 1, 2, 2];
        let unit_of_node: Vec<usize> = (0..8).collect();
        let eq = eq_words_from_labels(&[labels.to_vec()], 8);
        let mut regs = Vec::new();
        let five = KLeaderElection::new(5);
        let four = KLeaderElection::new(4);
        assert_eq!(five.solves_partition(&labels), Some(true));
        assert_eq!(four.solves_partition(&labels), Some(false));
        let p5 = five.lane_plan(&unit_of_node, 8).unwrap();
        let p4 = four.lane_plan(&unit_of_node, 8).unwrap();
        assert_eq!(p5.eval(&eq, &mut regs) & 1, 1);
        assert_eq!(p4.eval(&eq, &mut regs) & 1, 0);
    }

    #[test]
    fn grouped_units_carry_their_weights() {
        // Blackboard-style layout: 3 nodes on 2 units ([1, 2]). The
        // weight-2 unit can never be a singleton class, so leader
        // election solves iff unit 0 is alone.
        let unit_of_node = [0usize, 1, 1];
        let plan = LeaderElection.lane_plan(&unit_of_node, 2).unwrap();
        let mut regs = Vec::new();
        assert_eq!(plan.eval(&[u64::MAX], &mut regs), 0, "one class of 3");
        assert_eq!(plan.eval(&[0], &mut regs), u64::MAX, "unit 0 split off");
    }

    #[test]
    fn oversized_plans_are_refused() {
        // 2-leader election over 17+ units bails out of the subset
        // enumeration rather than compile an enormous program.
        let unit_of_node: Vec<usize> = (0..32).collect();
        assert!(KLeaderElection::new(2)
            .lane_plan(&unit_of_node, 32)
            .is_none());
    }

    #[test]
    fn introspection_roundtrips_through_raw_ops() {
        let unit_of_node: Vec<usize> = (0..5).collect();
        let plan = KLeaderElection::new(2).lane_plan(&unit_of_node, 5).unwrap();
        let ops: Vec<PlanOp> = plan.ops().collect();
        assert_eq!(ops.len(), plan.len());
        assert!(plan.regs() >= 1 && plan.len() <= VerdictPlan::max_ops());
        let rebuilt = VerdictPlan::from_raw_ops(plan.units(), plan.regs(), &ops);
        let lanes = random_lanes(5, 77);
        let eq = eq_words_from_labels(&lanes, 5);
        let mut regs = Vec::new();
        let want = plan.eval(&eq, &mut regs);
        assert_eq!(rebuilt.eval(&eq, &mut regs), want);
    }

    #[test]
    fn default_lane_plan_is_none() {
        struct Opaque;
        impl Task for Opaque {
            fn name(&self) -> std::borrow::Cow<'static, str> {
                std::borrow::Cow::Borrowed("opaque")
            }
            fn output_complex(&self, n: usize) -> rsbt_complex::Complex<u64> {
                LeaderElection.output_complex(n)
            }
        }
        assert!(Opaque.lane_plan(&[0, 1], 2).is_none());
    }

    #[test]
    #[should_panic(expected = "do not match")]
    fn eval_checks_the_pair_word_count() {
        let plan = LeaderElection.lane_plan(&[0, 1], 2).unwrap();
        let _ = plan.eval(&[], &mut Vec::new());
    }
}
