//! Leader election: the output complex `O_LE`.

use std::borrow::Cow;

use rsbt_complex::{Complex, ProcessName, Simplex, Vertex};

use crate::plan::{unit_weights, PlanBuilder, VerdictPlan};
use crate::task::{class_sizes, FacetStream, Task};

/// Output value of the elected leader.
pub const LEADER: u64 = 1;
/// Output value of a defeated (non-leader) node.
pub const DEFEATED: u64 = 0;

/// The leader-election task: exactly one node outputs [`LEADER`], all
/// others output [`DEFEATED`].
///
/// `O_LE` has `n` facets
/// `τ_i = {(0,0), …, (i−1,0), (i,1), (i+1,0), …, (n−1,0)}`.
///
/// # Example
///
/// ```
/// use rsbt_tasks::{LeaderElection, Task};
///
/// let ole = LeaderElection.output_complex(4);
/// assert_eq!(ole.facet_count(), 4);
/// assert!(ole.is_pure());
/// assert!(LeaderElection.is_symmetric_for(4));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LeaderElection;

impl LeaderElection {
    /// The facet `τ_i` in which node `leader` is elected.
    ///
    /// # Panics
    ///
    /// Panics if `leader >= n` or `n == 0`.
    pub fn tau(n: usize, leader: usize) -> Simplex<u64> {
        assert!(leader < n, "leader index out of range");
        Simplex::from_vertices((0..n).map(|i| {
            Vertex::new(
                ProcessName::new(i as u32),
                if i == leader { LEADER } else { DEFEATED },
            )
        }))
        .expect("distinct names")
    }
}

impl Task for LeaderElection {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("leader-election")
    }

    fn output_complex(&self, n: usize) -> Complex<u64> {
        self.facet_stream(n).collect()
    }

    fn facet_stream(&self, n: usize) -> FacetStream<'_> {
        assert!(n >= 1, "leader election needs at least one node");
        Box::new((0..n).map(move |leader| LeaderElection::tau(n, leader)))
    }

    /// Closed form: some facet `τ_i` is class-monochromatic iff the class
    /// of the elected `i` is the singleton `{i}` — i.e. iff the partition
    /// has a singleton class (Theorem 4.1's combinatorial core).
    fn solves_partition(&self, labels: &[u8]) -> Option<bool> {
        assert!(
            !labels.is_empty(),
            "leader election needs at least one node"
        );
        let (sizes, _) = class_sizes(labels);
        Some(sizes.contains(&1))
    }

    /// Lane lowering of the singleton-class test: a node class is a
    /// singleton iff it is a *weight-1 unit* split from every other unit
    /// (units of weight ≥ 2 contain ≥ 2 always-consistent nodes). So:
    /// OR over weight-1 units `u` of AND over `v ≠ u` of "u ≠ v".
    fn lane_plan(&self, unit_of_node: &[usize], units: usize) -> Option<VerdictPlan> {
        assert!(
            !unit_of_node.is_empty(),
            "leader election needs at least one node"
        );
        let w = unit_weights(unit_of_node, units);
        let mut b = PlanBuilder::new(units);
        let term = b.reg();
        for u in (0..units).filter(|&u| w[u] == 1) {
            if units == 1 {
                // A lone weight-1 unit is a singleton unconditionally.
                b.ones(0);
                break;
            }
            b.ones(term);
            for v in (0..units).filter(|&v| v != u) {
                b.and_not_eq(term, u, v);
            }
            b.or(0, term);
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection;

    #[test]
    fn facet_structure() {
        let ole = LeaderElection.output_complex(3);
        assert_eq!(ole.facet_count(), 3);
        assert_eq!(ole.dimension(), Some(2));
        assert!(ole.is_pure());
        assert_eq!(ole.vertex_count(), 6);
    }

    #[test]
    fn single_node_degenerates() {
        let ole = LeaderElection.output_complex(1);
        assert_eq!(ole.facet_count(), 1);
        assert_eq!(ole.dimension(), Some(0));
        // The single facet is the elected vertex.
        assert_eq!(ole.isolated_vertices().len(), 1);
    }

    #[test]
    fn symmetric_for_all_small_n() {
        for n in 1..=5 {
            assert!(LeaderElection.is_symmetric_for(n), "n={n}");
        }
    }

    #[test]
    fn tau_has_unique_leader() {
        let tau = LeaderElection::tau(4, 2);
        let leaders: Vec<_> = tau.vertices().filter(|v| *v.value() == LEADER).collect();
        assert_eq!(leaders.len(), 1);
        assert_eq!(leaders[0].name().index(), 2);
    }

    #[test]
    fn projected_facets_shape() {
        // π(τ_i): isolated leader + one defeated simplex of dim n−2.
        for n in 2..=5 {
            for pi in LeaderElection.projected_facets(n) {
                assert_eq!(pi.facet_count(), 2);
                // For n = 2 the lone defeated node is also isolated.
                let expected_isolated = if n == 2 { 2 } else { 1 };
                assert_eq!(pi.isolated_vertices().len(), expected_isolated);
                assert_eq!(pi.dimension(), Some(n - 2));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tau_rejects_bad_leader() {
        let _ = LeaderElection::tau(3, 3);
    }

    #[test]
    fn projection_of_whole_complex_matches_paper() {
        // π(O_LE) has facets {(i,1)} and {(j,0) : j ≠ i} for every i.
        let ole = LeaderElection.output_complex(3);
        let pi = projection::project_complex(&ole);
        // 3 isolated leader vertices + 3 defeated edges.
        assert_eq!(pi.facet_count(), 6);
        assert_eq!(pi.isolated_vertices().len(), 3);
    }
}
