//! `k`-leader election: exactly `k` nodes output [`crate::LEADER`].
//!
//! Section 1.2 of the paper challenges the reader to characterize
//! "2-leader election" directly and compare with the characterization the
//! topological framework produces; this module supplies the output complex
//! so `rsbt-core` can run that exercise mechanically (see the
//! `exp_two_leader` experiment).

use std::borrow::Cow;

use rsbt_complex::generators::Combinations;
use rsbt_complex::{Complex, ProcessName, Simplex, Vertex};

use crate::leader::{DEFEATED, LEADER};
use crate::plan::{unit_weights, PlanBuilder, VerdictPlan};
use crate::task::{class_sizes, FacetStream, Task};

/// The exactly-`k`-leaders task.
///
/// Facets are indexed by the `C(n, k)` leader sets: the nodes of the set
/// output [`LEADER`], everyone else [`DEFEATED`].
///
/// # Example
///
/// ```
/// use rsbt_tasks::{KLeaderElection, Task};
///
/// let two = KLeaderElection::new(2);
/// assert_eq!(two.output_complex(4).facet_count(), 6); // C(4,2)
/// assert!(two.is_symmetric_for(4));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KLeaderElection {
    k: usize,
}

impl KLeaderElection {
    /// Creates the exactly-`k`-leaders task.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (electing nobody is the trivial task).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k-leader election needs k ≥ 1");
        KLeaderElection { k }
    }

    /// The number of leaders `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The facet in which exactly the nodes of `leaders` are elected.
    ///
    /// # Panics
    ///
    /// Panics if `leaders` has the wrong size or out-of-range members.
    pub fn facet_for(&self, n: usize, leaders: &[usize]) -> Simplex<u64> {
        assert_eq!(leaders.len(), self.k, "need exactly k leaders");
        assert!(leaders.iter().all(|&l| l < n), "leader out of range");
        Simplex::from_vertices((0..n).map(|i| {
            Vertex::new(
                ProcessName::new(i as u32),
                if leaders.contains(&i) {
                    LEADER
                } else {
                    DEFEATED
                },
            )
        }))
        .expect("distinct names")
    }
}

impl Task for KLeaderElection {
    fn name(&self) -> Cow<'static, str> {
        Cow::Owned(format!("{}-leader-election", self.k))
    }

    /// # Panics
    ///
    /// Panics if `k > n` (no valid outputs exist).
    fn output_complex(&self, n: usize) -> Complex<u64> {
        self.facet_stream(n).collect()
    }

    /// Lazily enumerates the `C(n, k)` leader sets in combination order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n` (no valid outputs exist).
    fn facet_stream(&self, n: usize) -> FacetStream<'_> {
        assert!(self.k <= n, "cannot elect {} leaders among {n}", self.k);
        let task = *self;
        Box::new(Combinations::new(n, self.k).map(move |subset| task.facet_for(n, &subset)))
    }

    /// Closed form: a facet elects a leader set `S` with `|S| = k`; `S` is
    /// class-monochromatic iff it is a union of whole classes. So the task
    /// solves iff some subset of the class sizes sums to exactly `k` — a
    /// subset-sum over at most `n` parts, decided by a dense DP instead of
    /// a `C(n, k)`-facet scan.
    fn solves_partition(&self, labels: &[u8]) -> Option<bool> {
        let n = labels.len();
        assert!(self.k <= n, "cannot elect {} leaders among {n}", self.k);
        let (sizes, _) = class_sizes(labels);
        // Stack DP table: labels are u8, so n ≤ usize::from(u8::MAX) + 1
        // and k ≤ n fits in 256 slots — no allocation on the verdict path.
        let mut reachable = [false; 257];
        reachable[0] = true;
        for &s in sizes.iter().filter(|&&s| s > 0) {
            let s = s as usize;
            if s > self.k {
                continue;
            }
            for total in (s..=self.k).rev() {
                if reachable[total - s] {
                    reachable[total] = true;
                }
            }
        }
        Some(reachable[self.k])
    }

    /// Lane lowering of the subset-sum verdict: the class sizes reach
    /// `k` iff some unit subset `S` of total node weight `k` is *closed
    /// under equality* — no unit of `S` consistent with a unit outside
    /// it (then `S` is exactly a union of classes). One AND-term per
    /// such subset, enumerated over at most `2^units` masks; refused
    /// (`None` — callers peel to the scalar DP) when the unit count or
    /// the op budget makes the enumeration a bad trade.
    fn lane_plan(&self, unit_of_node: &[usize], units: usize) -> Option<VerdictPlan> {
        let n = unit_of_node.len();
        assert!(self.k <= n, "cannot elect {} leaders among {n}", self.k);
        if units > 16 {
            return None;
        }
        let w = unit_weights(unit_of_node, units);
        let mut b = PlanBuilder::new(units);
        let term = b.reg();
        for mask in 1u32..1 << units {
            let weight: u32 = (0..units)
                .filter(|&u| mask >> u & 1 == 1)
                .map(|u| w[u])
                .sum();
            if weight != self.k as u32 {
                continue;
            }
            if mask == (1 << units) - 1 {
                // The full unit set: closed under anything (k = n).
                b.ones(0);
                continue;
            }
            b.ones(term);
            for u in (0..units).filter(|&u| mask >> u & 1 == 1) {
                for v in (0..units).filter(|&v| mask >> v & 1 == 0) {
                    b.and_not_eq(term, u, v);
                }
            }
            b.or(0, term);
            if b.len() > crate::plan::MAX_PLAN_OPS {
                return None;
            }
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binomial(n: usize, k: usize) -> usize {
        if k > n {
            return 0;
        }
        (0..k).fold(1, |acc, i| acc * (n - i) / (i + 1))
    }

    #[test]
    fn facet_counts_are_binomial() {
        for n in 1..=6 {
            for k in 1..=n {
                let t = KLeaderElection::new(k);
                assert_eq!(
                    t.output_complex(n).facet_count(),
                    binomial(n, k),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn one_leader_matches_leader_election() {
        use crate::leader::LeaderElection;
        for n in 1..=5 {
            assert_eq!(
                KLeaderElection::new(1).output_complex(n),
                LeaderElection.output_complex(n)
            );
        }
    }

    #[test]
    fn symmetric() {
        for n in 2..=5 {
            for k in 1..=n {
                assert!(KLeaderElection::new(k).is_symmetric_for(n), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn projected_facet_shape() {
        // π(τ) for 2-LE on n=4: a leader edge + a defeated edge.
        let t = KLeaderElection::new(2);
        for pi in t.projected_facets(4) {
            assert_eq!(pi.facet_count(), 2);
            assert!(pi.is_pure());
            assert_eq!(pi.dimension(), Some(1));
        }
        // All leaders (k = n): the projection is the full simplex.
        let all = KLeaderElection::new(3);
        for pi in all.projected_facets(3) {
            assert_eq!(pi.facet_count(), 1);
            assert_eq!(pi.dimension(), Some(2));
        }
    }

    #[test]
    #[should_panic(expected = "cannot elect")]
    fn k_larger_than_n_panics() {
        let _ = KLeaderElection::new(3).output_complex(2);
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn zero_k_rejected() {
        let _ = KLeaderElection::new(0);
    }

    #[test]
    fn name_mentions_k() {
        assert_eq!(KLeaderElection::new(2).name(), "2-leader-election");
    }
}
