//! Leader + deputy-leader election: the paper's future-work example.
//!
//! Section 5 of the paper proposes "electing a leader and a deputy leader
//! (…) under the constraint that some nodes may only be leaders, some nodes
//! may only be deputy leaders, some nodes may be either of the two, and
//! some nodes may be neither" as a first step beyond symmetric output
//! complexes. We implement the output complex so the framework's
//! *per-facet* solvability machinery (which never needed symmetry) can be
//! exercised on it; the `is_symmetric_for` check correctly reports when the
//! constraints break symmetry.

use std::borrow::Cow;

use rsbt_complex::{Complex, ProcessName, Simplex, Vertex};

use crate::plan::{unit_weights, PlanBuilder, VerdictPlan};
use crate::task::{FacetStream, Task};

/// Output value for the elected leader in [`LeaderAndDeputy`].
pub const ROLE_LEADER: u64 = 2;
/// Output value for the deputy leader.
pub const ROLE_DEPUTY: u64 = 1;
/// Output value for everyone else.
pub const ROLE_FOLLOWER: u64 = 0;

/// The leader-and-deputy task with per-node role constraints.
///
/// A facet elects a leader `i` (allowed by `may_lead`) and a distinct
/// deputy `j` (allowed by `may_deputy`); all other nodes are followers.
///
/// # Example
///
/// ```
/// use rsbt_tasks::{LeaderAndDeputy, Task};
///
/// // Unconstrained: any of 3 leaders × 2 remaining deputies = 6 facets.
/// let t = LeaderAndDeputy::unconstrained(3);
/// assert_eq!(t.output_complex(3).facet_count(), 6);
/// assert!(t.is_symmetric_for(3));
///
/// // Node 0 may only lead, node 1 may only deputize: not symmetric.
/// let c = LeaderAndDeputy::new(vec![true, false, false], vec![false, true, false]);
/// assert_eq!(c.output_complex(3).facet_count(), 1);
/// assert!(!c.is_symmetric_for(3));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LeaderAndDeputy {
    may_lead: Vec<bool>,
    may_deputy: Vec<bool>,
}

impl LeaderAndDeputy {
    /// Creates the task with explicit per-node role permissions.
    ///
    /// # Panics
    ///
    /// Panics if the two permission vectors have different lengths or are
    /// empty.
    pub fn new(may_lead: Vec<bool>, may_deputy: Vec<bool>) -> Self {
        assert_eq!(may_lead.len(), may_deputy.len(), "one flag pair per node");
        assert!(!may_lead.is_empty(), "need at least one node");
        LeaderAndDeputy {
            may_lead,
            may_deputy,
        }
    }

    /// Every node may take either role (symmetric output complex).
    pub fn unconstrained(n: usize) -> Self {
        LeaderAndDeputy::new(vec![true; n], vec![true; n])
    }

    /// The number of nodes the constraints cover.
    pub fn n(&self) -> usize {
        self.may_lead.len()
    }

    /// The facet electing leader `i` and deputy `j`.
    ///
    /// Returns `None` when the pair violates the constraints (or `i == j`).
    pub fn facet_for(&self, leader: usize, deputy: usize) -> Option<Simplex<u64>> {
        let n = self.n();
        if leader == deputy
            || leader >= n
            || deputy >= n
            || !self.may_lead[leader]
            || !self.may_deputy[deputy]
        {
            return None;
        }
        Some(
            Simplex::from_vertices((0..n).map(|i| {
                let role = if i == leader {
                    ROLE_LEADER
                } else if i == deputy {
                    ROLE_DEPUTY
                } else {
                    ROLE_FOLLOWER
                };
                Vertex::new(ProcessName::new(i as u32), role)
            }))
            .expect("distinct names"),
        )
    }
}

impl Task for LeaderAndDeputy {
    fn name(&self) -> Cow<'static, str> {
        // The name doubles as a memoization key (`rsbt_core::probability`
        // caches on it), so constrained variants must not alias the
        // unconstrained task.
        if self.may_lead.iter().all(|&b| b) && self.may_deputy.iter().all(|&b| b) {
            Cow::Borrowed("leader-and-deputy")
        } else {
            let enc = |v: &[bool]| {
                v.iter()
                    .map(|&b| if b { '1' } else { '0' })
                    .collect::<String>()
            };
            Cow::Owned(format!(
                "leader-and-deputy[L:{},D:{}]",
                enc(&self.may_lead),
                enc(&self.may_deputy)
            ))
        }
    }

    /// # Panics
    ///
    /// Panics if `n` differs from the constraint vectors' length, or if no
    /// valid (leader, deputy) pair exists.
    fn output_complex(&self, n: usize) -> Complex<u64> {
        self.facet_stream(n).collect()
    }

    /// Lazily enumerates the admissible `(leader, deputy)` facets in
    /// leader-major order.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Task::output_complex`]: the constraint check
    /// runs eagerly (it is `O(n²)` on booleans), so an impossible
    /// constraint set panics before the first facet is demanded.
    fn facet_stream(&self, n: usize) -> FacetStream<'_> {
        assert_eq!(n, self.n(), "constraints defined for {} nodes", self.n());
        assert!(
            (0..n).any(|l| (0..n).any(|d| l != d && self.may_lead[l] && self.may_deputy[d])),
            "role constraints admit no (leader, deputy) pair"
        );
        Box::new((0..n).flat_map(move |leader| {
            (0..n).filter_map(move |deputy| self.facet_for(leader, deputy))
        }))
    }

    /// Closed form: leader and deputy carry distinct non-follower roles,
    /// so a facet is class-monochromatic iff its leader and deputy each
    /// form a *singleton* class and everyone else (all followers — always
    /// permitted) fills the rest. Hence: two distinct singleton classes
    /// `{i}`, `{j}` with `may_lead[i]` and `may_deputy[j]`.
    fn solves_partition(&self, labels: &[u8]) -> Option<bool> {
        let n = self.n();
        assert_eq!(
            labels.len(),
            n,
            "constraints defined for {} nodes",
            self.n()
        );
        // Panic-parity with `output_complex`/`facet_stream`: an impossible
        // constraint set must not silently read as "unsolvable".
        assert!(
            (0..n).any(|l| (0..n).any(|d| l != d && self.may_lead[l] && self.may_deputy[d])),
            "role constraints admit no (leader, deputy) pair"
        );
        // Singleton classes, identified by their unique member.
        let singleton = |i: usize| labels.iter().filter(|&&l| l == labels[i]).count() == 1;
        Some((0..n).any(|i| {
            self.may_lead[i]
                && singleton(i)
                && (0..n).any(|j| j != i && self.may_deputy[j] && singleton(j))
        }))
    }

    /// Lane lowering of the two-singletons test: only a *weight-1 unit*
    /// can be a singleton node class, and it is one iff it differs from
    /// every other unit ("alone"). Materialize an alone-flag register
    /// per weight-1 unit whose node may hold a role, then OR over the
    /// admissible `(leader unit, deputy unit)` pairs the AND of the two
    /// flags.
    fn lane_plan(&self, unit_of_node: &[usize], units: usize) -> Option<VerdictPlan> {
        let n = self.n();
        assert_eq!(
            unit_of_node.len(),
            n,
            "constraints defined for {} nodes",
            self.n()
        );
        // Panic-parity with `solves_partition` on impossible constraints.
        assert!(
            (0..n).any(|l| (0..n).any(|d| l != d && self.may_lead[l] && self.may_deputy[d])),
            "role constraints admit no (leader, deputy) pair"
        );
        let w = unit_weights(unit_of_node, units);
        // The unique node of each weight-1 unit carries the unit's role
        // permissions.
        let mut lead = vec![false; units];
        let mut deputy = vec![false; units];
        for (i, &u) in unit_of_node.iter().enumerate() {
            if w[u] == 1 {
                lead[u] = self.may_lead[i];
                deputy[u] = self.may_deputy[i];
            }
        }
        let mut b = PlanBuilder::new(units);
        // Only units that can actually appear in a (leader, deputy) pair
        // get a singleton register: a lead-capable unit with no
        // deputy-capable partner (or vice versa) would compute a value the
        // pair loop never reads, and the static plan verifier flags such
        // dead ops.
        let paired = |u: usize| -> bool {
            let partner = |cap: &[bool]| (0..units).any(|v| v != u && w[v] == 1 && cap[v]);
            w[u] == 1 && ((lead[u] && partner(&deputy)) || (deputy[u] && partner(&lead)))
        };
        let mut alone = vec![0u16; units];
        for u in (0..units).filter(|&u| paired(u)) {
            let r = b.reg();
            b.ones(r);
            for v in (0..units).filter(|&v| v != u) {
                b.and_not_eq(r, u, v);
            }
            alone[u] = r;
        }
        for u in (0..units).filter(|&u| w[u] == 1 && lead[u]) {
            for v in (0..units).filter(|&v| v != u && w[v] == 1 && deputy[v]) {
                b.or_and(0, alone[u], alone[v]);
            }
            if b.len() > crate::plan::MAX_PLAN_OPS {
                return None;
            }
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_counts() {
        for n in 2..=5 {
            let t = LeaderAndDeputy::unconstrained(n);
            assert_eq!(t.output_complex(n).facet_count(), n * (n - 1));
            assert!(t.is_symmetric_for(n));
        }
    }

    #[test]
    fn unpaired_singleton_units_compile_to_nothing() {
        // One weight-1 unit among weight-2 units: no (leader, deputy)
        // pair of singletons is ever possible, so the plan must be the
        // empty constant-false program — not dead singleton computations.
        let t = LeaderAndDeputy::unconstrained(3);
        let plan = t.lane_plan(&[0, 1, 1], 2).unwrap();
        assert!(plan.is_empty(), "expected no ops, got {}", plan.len());
        assert_eq!(plan.eval(&[0], &mut Vec::new()), 0);
        // A lead-capable singleton whose only deputy-capable peers sit on
        // a weight-2 unit likewise contributes nothing.
        let t = LeaderAndDeputy::new(vec![true, false, false], vec![false, true, true]);
        let plan = t.lane_plan(&[0, 1, 1], 2).unwrap();
        assert!(plan.is_empty(), "expected no ops, got {}", plan.len());
    }

    #[test]
    fn constraints_prune_facets() {
        // Nodes 0,1 may lead; only node 2 may deputize.
        let t = LeaderAndDeputy::new(vec![true, true, false], vec![false, false, true]);
        let c = t.output_complex(3);
        assert_eq!(c.facet_count(), 2); // leaders 0 or 1, deputy always 2
        assert!(!t.is_symmetric_for(3));
    }

    #[test]
    fn facet_for_validates() {
        let t = LeaderAndDeputy::unconstrained(3);
        assert!(t.facet_for(0, 0).is_none(), "leader ≠ deputy");
        assert!(t.facet_for(0, 3).is_none(), "range check");
        let f = t.facet_for(1, 2).unwrap();
        assert_eq!(f.value_of(ProcessName::new(1)), Some(&ROLE_LEADER));
        assert_eq!(f.value_of(ProcessName::new(2)), Some(&ROLE_DEPUTY));
        assert_eq!(f.value_of(ProcessName::new(0)), Some(&ROLE_FOLLOWER));
    }

    #[test]
    fn projection_isolates_both_roles() {
        let t = LeaderAndDeputy::unconstrained(4);
        for pi in t.projected_facets(4) {
            // Leader and deputy are singletons; followers form a simplex.
            assert_eq!(pi.isolated_vertices().len(), 2);
            assert_eq!(pi.facet_count(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "no (leader, deputy) pair")]
    fn impossible_constraints_panic() {
        let t = LeaderAndDeputy::new(vec![true, false], vec![true, false]);
        // Only node 0 may hold either role, but roles must differ.
        let _ = t.output_complex(2);
    }

    #[test]
    #[should_panic(expected = "no (leader, deputy) pair")]
    fn impossible_constraints_panic_in_closed_form_too() {
        // Panic-parity: the closed form must refuse the same constraint
        // sets `output_complex` refuses, not report "unsolvable".
        let t = LeaderAndDeputy::new(vec![true, false], vec![true, false]);
        let _ = t.solves_partition(&[0, 1]);
    }

    #[test]
    #[should_panic(expected = "one flag pair per node")]
    fn mismatched_constraint_lengths_panic() {
        let _ = LeaderAndDeputy::new(vec![true], vec![true, false]);
    }
}
