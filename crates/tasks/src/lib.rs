//! Output complexes for input-free symmetry-breaking tasks.
//!
//! A symmetry-breaking task is defined solely by its output complex `O`
//! (Section 3.1 of the paper), required to be *symmetric*: stable under
//! permutations of the process names. This crate provides:
//!
//! * [`Task`] — the task abstraction (an output-complex family indexed by
//!   the system size `n`);
//! * [`LeaderElection`] — the complex `O_LE` with facets `τ_i` (one leader,
//!   `n − 1` defeated);
//! * [`KLeaderElection`] — exactly `k` leaders (the paper's "2-leader
//!   election" teaser in Section 1.2);
//! * [`WeakSymmetryBreaking`] — the classic companion task: 0/1 outputs,
//!   not all equal;
//! * [`LeaderAndDeputy`] — the paper's future-work example (Section 5): a
//!   leader plus a deputy leader, with per-node role constraints; its
//!   output complex is *not* symmetric in general, which is exactly why the
//!   paper flags it as future work;
//! * [`projection`] — the consistency projection `π` (Eq. 3): subsets of a
//!   facet holding *identical values*.
//!
//! # Example
//!
//! ```
//! use rsbt_tasks::{projection, LeaderElection, Task};
//!
//! let ole = LeaderElection.output_complex(3);
//! assert_eq!(ole.facet_count(), 3);
//! assert!(ole.is_symmetric());
//!
//! // Figure 3: π(τ_1) is an isolated leader vertex plus a defeated edge.
//! let tau = ole.facets().next().unwrap();
//! let pi = projection::project_facet(tau);
//! assert_eq!(pi.facet_count(), 2);
//! assert_eq!(pi.isolated_vertices().len(), 1);
//! ```

#![deny(deprecated)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deputy;
mod k_leader;
mod leader;
mod plan;
pub mod projection;
mod task;
mod wsb;

pub use crate::deputy::LeaderAndDeputy;
pub use crate::k_leader::KLeaderElection;
pub use crate::leader::{LeaderElection, DEFEATED, LEADER};
pub use crate::plan::{pair_count, pair_index, PlanOp, VerdictPlan};
pub use crate::task::{FacetStream, Task};
pub use crate::wsb::WeakSymmetryBreaking;
