//! The consistency projection `π` (Eq. 3 of the paper).
//!
//! For a facet `σ = {(i, v_i) : i ∈ [n]}`, the projected complex `π(σ)`
//! keeps exactly the subsets whose members hold **identical values**:
//!
//! ```text
//! {(i, v_i) : i ∈ I} ∈ π(σ)  ⟺  ∀ (i, j) ∈ I×I . v_i = v_j
//! ```
//!
//! `π(σ)` is therefore a disjoint union of simplices — one per
//! value-equality class — which is the "structure" the paper grafts onto
//! single facets so topological arguments keep working.

use std::collections::BTreeMap;

use rsbt_complex::{Complex, Simplex, Value, Vertex};

/// Projects a single facet: the result's facets are the value-equality
/// classes of `σ`.
///
/// # Example
///
/// Figure 3 of the paper: `π(τ_1)` for 3-process leader election is the
/// isolated vertex `(1, 1)` plus the edge `{(2, 0), (3, 0)}` (0-indexed
/// here).
///
/// ```
/// use rsbt_complex::{ProcessName, Simplex, Vertex};
/// use rsbt_tasks::projection;
///
/// let tau = Simplex::from_vertices(vec![
///     Vertex::new(ProcessName::new(0), 1u64),
///     Vertex::new(ProcessName::new(1), 0u64),
///     Vertex::new(ProcessName::new(2), 0u64),
/// ]).unwrap();
/// let pi = projection::project_facet(&tau);
/// assert_eq!(pi.facet_count(), 2);
/// assert_eq!(pi.isolated_vertices().len(), 1);
/// ```
pub fn project_facet<V: Value>(sigma: &Simplex<V>) -> Complex<V> {
    let mut classes: BTreeMap<&V, Vec<Vertex<V>>> = BTreeMap::new();
    for v in sigma.vertices() {
        classes.entry(v.value()).or_default().push(v.clone());
    }
    let mut out = Complex::new();
    for (_, class) in classes {
        out.add_facet(class)
            .expect("classes partition a valid simplex");
    }
    out
}

/// Projects every facet of a complex and unions the results:
/// `π(K) = ⋃_{σ facet of K} π(σ)`, a subcomplex of `K`.
pub fn project_complex<V: Value>(k: &Complex<V>) -> Complex<V> {
    let mut out = Complex::new();
    for f in k.facets() {
        for pf in project_facet(f).facets() {
            out.add_simplex(pf.clone());
        }
    }
    out
}

/// The value-equality classes of a facet (the facets of `π(σ)`), as vertex
/// groups sorted by value.
pub fn equality_classes<V: Value>(sigma: &Simplex<V>) -> Vec<Vec<Vertex<V>>> {
    let mut classes: BTreeMap<&V, Vec<Vertex<V>>> = BTreeMap::new();
    for v in sigma.vertices() {
        classes.entry(v.value()).or_default().push(v.clone());
    }
    classes.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsbt_complex::{connectivity, ops, ProcessName};

    fn v(name: u32, value: u64) -> Vertex<u64> {
        Vertex::new(ProcessName::new(name), value)
    }

    fn facet(vals: &[u64]) -> Simplex<u64> {
        Simplex::from_vertices(
            vals.iter()
                .enumerate()
                .map(|(i, &x)| v(i as u32, x))
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn all_equal_projects_to_whole_simplex() {
        let s = facet(&[5, 5, 5]);
        let pi = project_facet(&s);
        assert_eq!(pi.facet_count(), 1);
        assert_eq!(pi.dimension(), Some(2));
    }

    #[test]
    fn all_distinct_projects_to_isolated_vertices() {
        let s = facet(&[1, 2, 3]);
        let pi = project_facet(&s);
        assert_eq!(pi.facet_count(), 3);
        assert_eq!(pi.dimension(), Some(0));
        assert_eq!(pi.isolated_vertices().len(), 3);
    }

    #[test]
    fn figure3_leader_projection() {
        // τ_0 = {(0,1),(1,0),(2,0)}: isolated leader + defeated edge.
        let s = facet(&[1, 0, 0]);
        let pi = project_facet(&s);
        assert_eq!(pi.facet_count(), 2);
        let iso = pi.isolated_vertices();
        assert_eq!(iso, vec![v(0, 1)]);
        // Components = classes.
        assert_eq!(connectivity::components(&pi).len(), 2);
    }

    #[test]
    fn projection_is_subcomplex_of_facet() {
        let s = facet(&[1, 0, 0, 1]);
        let pi = project_facet(&s);
        let whole = ops::facet_as_complex(&s);
        assert!(ops::is_subcomplex(&pi, &whole));
    }

    #[test]
    fn project_complex_unions_facet_projections() {
        // O_LE for n=2: facets {(0,1),(1,0)} and {(0,0),(1,1)}.
        let mut ole = Complex::new();
        ole.add_simplex(facet(&[1, 0]));
        ole.add_simplex(facet(&[0, 1]));
        let pi = project_complex(&ole);
        // π(O_LE): 4 isolated vertices.
        assert_eq!(pi.facet_count(), 4);
        assert_eq!(pi.dimension(), Some(0));
    }

    #[test]
    fn equality_classes_partition() {
        let s = facet(&[7, 7, 9, 7]);
        let classes = equality_classes(&s);
        assert_eq!(classes.len(), 2);
        let total: usize = classes.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
        let sizes: Vec<usize> = classes.iter().map(Vec::len).collect();
        assert!(sizes.contains(&3) && sizes.contains(&1));
    }
}
