//! The task abstraction: a family of output complexes indexed by `n`.

use rsbt_complex::{Complex, Simplex};

use crate::projection;

/// An input-free task, defined by its output complex for each system size.
///
/// Output values are `u64` role codes (e.g. [`crate::LEADER`] /
/// [`crate::DEFEATED`] for leader election).
///
/// The paper's framework additionally *requires* the output complex of a
/// symmetry-breaking task to be symmetric ([`Task::is_symmetric_for`]);
/// tasks violating this (such as [`crate::LeaderAndDeputy`] with
/// heterogeneous role constraints) are provided as explicitly-flagged
/// extensions.
pub trait Task {
    /// A short human-readable task name (for experiment tables).
    fn name(&self) -> String;

    /// The output complex `O` for `n` processes.
    ///
    /// # Panics
    ///
    /// Implementations may panic when the task is undefined for `n` (e.g.
    /// `k`-leader election with `k > n`).
    fn output_complex(&self, n: usize) -> Complex<u64>;

    /// Whether the output complex for `n` processes is symmetric (stable
    /// under name permutations), the paper's admissibility condition.
    fn is_symmetric_for(&self, n: usize) -> bool {
        self.output_complex(n).is_symmetric()
    }

    /// The projected facets `{ π(τ) : τ facet of O }` (Definition 3.4's
    /// codomains). Provided for all tasks via [`projection::project_facet`].
    fn projected_facets(&self, n: usize) -> Vec<Complex<u64>> {
        self.output_complex(n)
            .facets()
            .map(projection::project_facet)
            .collect()
    }

    /// The facets of the output complex (convenience accessor).
    fn facets(&self, n: usize) -> Vec<Simplex<u64>> {
        self.output_complex(n).facets().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsbt_complex::{ProcessName, Vertex};

    /// A trivial "everyone outputs 0" task to exercise default methods.
    struct Constant;

    impl Task for Constant {
        fn name(&self) -> String {
            "constant".into()
        }

        fn output_complex(&self, n: usize) -> Complex<u64> {
            let mut c = Complex::new();
            c.add_facet((0..n as u32).map(|i| Vertex::new(ProcessName::new(i), 0u64)))
                .unwrap();
            c
        }
    }

    #[test]
    fn defaults_work() {
        let t = Constant;
        assert!(t.is_symmetric_for(3));
        assert_eq!(t.facets(3).len(), 1);
        let proj = t.projected_facets(3);
        assert_eq!(proj.len(), 1);
        // All values equal: projection is the whole facet.
        assert_eq!(proj[0].dimension(), Some(2));
    }
}
