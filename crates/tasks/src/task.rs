//! The task abstraction: a family of output complexes indexed by `n`.

use std::borrow::Cow;

use rsbt_complex::{Complex, Simplex};

use crate::plan::VerdictPlan;
use crate::projection;

/// A boxed lazy facet iterator (the return type of [`Task::facet_stream`]).
pub type FacetStream<'a> = Box<dyn Iterator<Item = Simplex<u64>> + 'a>;

/// An input-free task, defined by its output complex for each system size.
///
/// Output values are `u64` role codes (e.g. [`crate::LEADER`] /
/// [`crate::DEFEATED`] for leader election).
///
/// The paper's framework additionally *requires* the output complex of a
/// symmetry-breaking task to be symmetric ([`Task::is_symmetric_for`]);
/// tasks violating this (such as [`crate::LeaderAndDeputy`] with
/// heterogeneous role constraints) are provided as explicitly-flagged
/// extensions.
///
/// # Solvability hooks
///
/// A realization solves a task iff some facet of the output complex is
/// monochromatic on every consistency class (Definition 3.4 forced into
/// its combinatorial form: name preservation pins the simplicial map
/// `δ(i, x_i) = (i, τ_i)`, and simpliciality is exactly
/// class-monochromaticity). Two optional hooks let `rsbt_core` decide
/// that without ever materializing the output complex:
///
/// * [`Task::facet_stream`] yields the facets lazily (the built-in tasks
///   override it with closed generators), so callers can build a dense
///   [`rsbt_complex::FacetTable`] straight from the stream;
/// * [`Task::solves_partition`] answers the verdict in closed form from
///   the consistency partition alone — `O(n)`-ish instead of a scan over
///   every facet. Returning `None` (the default) falls back to the scan.
pub trait Task {
    /// A short human-readable task name (for experiment tables).
    ///
    /// The name doubles as a memoization key in `rsbt_core`, so it must
    /// uniquely identify the task's output-complex family. Fixed tasks
    /// return `Cow::Borrowed` (no allocation per call); parameterized
    /// tasks encode their parameters.
    fn name(&self) -> Cow<'static, str>;

    /// The output complex `O` for `n` processes.
    ///
    /// # Panics
    ///
    /// Implementations may panic when the task is undefined for `n` (e.g.
    /// `k`-leader election with `k > n`).
    fn output_complex(&self, n: usize) -> Complex<u64>;

    /// The facets of `O` for `n` processes, as a lazy stream.
    ///
    /// Must yield exactly the facet set of [`Task::output_complex`] (in
    /// any order; duplicates are tolerated by the dense-table consumer).
    /// The default collects from `output_complex`; implementations
    /// override it with a direct generator so no [`Complex`] is ever
    /// built on the hot path.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Task::output_complex`].
    fn facet_stream(&self, n: usize) -> FacetStream<'_> {
        Box::new(
            self.output_complex(n)
                .facets()
                .cloned()
                .collect::<Vec<_>>()
                .into_iter(),
        )
    }

    /// Closed-form solvability from a consistency partition, if this task
    /// has one.
    ///
    /// `labels[i]` is the class label of process `i` (`labels.len() = n`);
    /// labels are arbitrary `u8` tags — equal label ⟺ same class. The
    /// verdict must equal "some facet of `output_complex(n)` holds a
    /// single value on every class". Return `None` (the default) when no
    /// closed form is known; callers then scan the facets.
    ///
    /// For a fixed task value and `n`, the result must be uniformly
    /// `Some(_)` or uniformly `None` across all partitions: callers probe
    /// one partition per run to decide whether the dense fallback table
    /// needs building at all.
    ///
    /// # Panics
    ///
    /// Implementations panic exactly where [`Task::output_complex`] would
    /// (e.g. `k > n`), so both paths agree on the defined domain.
    fn solves_partition(&self, labels: &[u8]) -> Option<bool> {
        let _ = labels;
        None
    }

    /// [`Task::solves_partition`] compiled to a lane-parallel
    /// [`VerdictPlan`], if this task supports it.
    ///
    /// `unit_of_node[i]` names the knowledge *unit* tracking node `i`
    /// (`0 ≤ unit_of_node[i] < units`; every unit is some node's); the
    /// plan evaluates over packed pairwise unit-equality words (see
    /// [`crate::pair_index`]). The contract: for every lane, the plan's
    /// verdict bit must equal `solves_partition(labels)` on the node
    /// partition induced by the lane — `i ∼ j` iff
    /// `unit_of_node[i] == unit_of_node[j]` or the pair's equality bit is
    /// set. Implementations may assume the relation is an equivalence
    /// (unit equality is transitive for the callers' executions).
    ///
    /// Return `None` (the default) when no plan exists — because the
    /// task has no closed form, or the lowering would exceed the op
    /// budget; callers then peel lanes to the scalar path.
    ///
    /// # Panics
    ///
    /// Implementations panic exactly where [`Task::solves_partition`]
    /// would on `n = unit_of_node.len()` nodes, so both paths agree on
    /// the defined domain.
    fn lane_plan(&self, unit_of_node: &[usize], units: usize) -> Option<VerdictPlan> {
        let _ = (unit_of_node, units);
        None
    }

    /// Whether the output complex for `n` processes is symmetric (stable
    /// under name permutations), the paper's admissibility condition.
    fn is_symmetric_for(&self, n: usize) -> bool {
        self.output_complex(n).is_symmetric()
    }

    /// The projected facets `{ π(τ) : τ facet of O }` (Definition 3.4's
    /// codomains), as a lazy stream over [`Task::facet_stream`].
    fn projected_facets(&self, n: usize) -> Box<dyn Iterator<Item = Complex<u64>> + '_> {
        Box::new(
            self.facet_stream(n)
                .map(|tau| projection::project_facet(&tau)),
        )
    }

    /// [`Task::projected_facets`], collected (convenience for tests).
    fn projected_facets_vec(&self, n: usize) -> Vec<Complex<u64>> {
        self.projected_facets(n).collect()
    }

    /// [`Task::facet_stream`], collected (convenience for tests).
    fn facets_vec(&self, n: usize) -> Vec<Simplex<u64>> {
        self.facet_stream(n).collect()
    }
}

/// Helper for closed-form verdicts: the number of members of each class,
/// indexed by label, plus the class count. Allocation-free (labels are
/// `u8`, so 256 counters cover every partition).
pub(crate) fn class_sizes(labels: &[u8]) -> ([u32; 256], usize) {
    assert!(
        labels.len() <= 256,
        "closed-form verdicts support at most 256 nodes"
    );
    let mut sizes = [0u32; 256];
    let mut classes = 0usize;
    for &l in labels {
        if sizes[l as usize] == 0 {
            classes += 1;
        }
        sizes[l as usize] += 1;
    }
    (sizes, classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsbt_complex::{ProcessName, Vertex};

    /// A trivial "everyone outputs 0" task to exercise default methods.
    struct Constant;

    impl Task for Constant {
        fn name(&self) -> Cow<'static, str> {
            Cow::Borrowed("constant")
        }

        fn output_complex(&self, n: usize) -> Complex<u64> {
            let mut c = Complex::new();
            c.add_facet((0..n as u32).map(|i| Vertex::new(ProcessName::new(i), 0u64)))
                .unwrap();
            c
        }
    }

    #[test]
    fn defaults_work() {
        let t = Constant;
        assert!(t.is_symmetric_for(3));
        assert_eq!(t.facets_vec(3).len(), 1);
        assert_eq!(t.facet_stream(3).count(), 1);
        assert_eq!(t.solves_partition(&[0, 0, 1]), None, "no closed form");
        let proj = t.projected_facets_vec(3);
        assert_eq!(proj.len(), 1);
        // All values equal: projection is the whole facet.
        assert_eq!(proj[0].dimension(), Some(2));
    }

    #[test]
    fn default_stream_matches_output_complex() {
        let t = Constant;
        let from_stream: Complex<u64> = t.facet_stream(4).collect();
        assert_eq!(from_stream, t.output_complex(4));
    }

    #[test]
    fn class_size_helper_counts() {
        let (sizes, classes) = class_sizes(&[0, 2, 0, 2, 2]);
        assert_eq!(classes, 2);
        assert_eq!(sizes[0], 2);
        assert_eq!(sizes[2], 3);
        assert_eq!(sizes[1], 0);
    }
}
