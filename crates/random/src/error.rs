//! Error type for randomness-configuration construction.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing assignments or realizations.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum RandomError {
    /// An assignment needs at least one node.
    EmptyAssignment,
    /// A group size of zero was supplied (every source must feed ≥ 1 node).
    EmptyGroup,
    /// A realization mixed bit strings of different lengths.
    RaggedRealization,
    /// A realization's node count does not match the assignment's.
    NodeCountMismatch {
        /// Nodes in the realization.
        realization: usize,
        /// Nodes in the assignment.
        assignment: usize,
    },
}

impl fmt::Display for RandomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RandomError::EmptyAssignment => write!(f, "assignment must cover at least one node"),
            RandomError::EmptyGroup => {
                write!(f, "every randomness source must feed at least one node")
            }
            RandomError::RaggedRealization => {
                write!(f, "realization bit strings must all have the same length")
            }
            RandomError::NodeCountMismatch {
                realization,
                assignment,
            } => write!(
                f,
                "realization covers {realization} node(s) but assignment covers {assignment}"
            ),
        }
    }
}

impl Error for RandomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let variants = [
            RandomError::EmptyAssignment,
            RandomError::EmptyGroup,
            RandomError::RaggedRealization,
            RandomError::NodeCountMismatch {
                realization: 1,
                assignment: 2,
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
