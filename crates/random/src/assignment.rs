//! Randomness-configurations `α ∈ A`: which node is wired to which source.

use std::fmt;

use crate::error::RandomError;
use crate::gcd;

/// A randomness-configuration (a facet of the paper's assignment complex
/// `A`): a surjective map from nodes `[n]` onto sources `[k]`.
///
/// Stored in *canonical form*: sources are renumbered in order of first
/// appearance (the paper's "without loss of generality we rename the `k`
/// different sources to be contiguous"), so two assignments inducing the
/// same partition of nodes compare equal iff their ordered source labels
/// agree after canonicalization.
///
/// Group structure (sizes and members per source) is precomputed at
/// construction, so the accessors used inside `2^{k·t}` enumeration loops
/// ([`Assignment::group_sizes`], [`Assignment::groups`]) return borrowed
/// slices instead of allocating.
///
/// # Example
///
/// ```
/// use rsbt_random::Assignment;
///
/// let alpha = Assignment::from_sources(vec![7, 7, 3])?; // canonicalized
/// assert_eq!(alpha.source_of(0), 0);
/// assert_eq!(alpha.source_of(2), 1);
/// assert_eq!(alpha.group_sizes(), &[2, 1]);
/// assert!(alpha.has_singleton_group()); // Theorem 4.1's condition
/// # Ok::<(), rsbt_random::RandomError>(())
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Assignment {
    /// `source[i]` = canonical source index of node `i`, in `0..k`.
    source: Vec<usize>,
    k: usize,
    /// Cached group sizes `n_1, …, n_k` (canonical source order).
    sizes: Vec<usize>,
    /// Nodes sorted by group: `members[offsets[s]..offsets[s+1]]` is the
    /// (ascending) node list of group `s`.
    members: Vec<usize>,
    /// `k + 1` cumulative boundaries into `members`.
    offsets: Vec<usize>,
}

impl Assignment {
    /// Builds from an already-canonical source vector, precomputing the
    /// group structure. All public constructors funnel through here.
    fn from_canonical(source: Vec<usize>, k: usize) -> Self {
        let mut sizes = vec![0usize; k];
        for &s in &source {
            sizes[s] += 1;
        }
        let mut offsets = Vec::with_capacity(k + 1);
        let mut acc = 0;
        offsets.push(0);
        for &sz in &sizes {
            acc += sz;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut members = vec![0usize; source.len()];
        for (i, &s) in source.iter().enumerate() {
            members[cursor[s]] = i;
            cursor[s] += 1;
        }
        Assignment {
            source,
            k,
            sizes,
            members,
            offsets,
        }
    }

    /// Builds an assignment from raw per-node source labels, renumbering
    /// sources in order of first appearance.
    ///
    /// # Errors
    ///
    /// [`RandomError::EmptyAssignment`] if `labels` is empty.
    pub fn from_sources(labels: Vec<usize>) -> Result<Self, RandomError> {
        if labels.is_empty() {
            return Err(RandomError::EmptyAssignment);
        }
        let mut canonical: Vec<usize> = Vec::new();
        let mut source = Vec::with_capacity(labels.len());
        for l in labels {
            let idx = match canonical.iter().position(|&c| c == l) {
                Some(i) => i,
                None => {
                    canonical.push(l);
                    canonical.len() - 1
                }
            };
            source.push(idx);
        }
        let k = canonical.len();
        Ok(Assignment::from_canonical(source, k))
    }

    /// Builds the assignment with the given group sizes `n_1, …, n_k`:
    /// the first `n_1` nodes are wired to source 0, the next `n_2` to
    /// source 1, and so on.
    ///
    /// # Errors
    ///
    /// * [`RandomError::EmptyAssignment`] if `sizes` is empty;
    /// * [`RandomError::EmptyGroup`] if any size is zero.
    pub fn from_group_sizes(sizes: &[usize]) -> Result<Self, RandomError> {
        if sizes.is_empty() {
            return Err(RandomError::EmptyAssignment);
        }
        if sizes.contains(&0) {
            return Err(RandomError::EmptyGroup);
        }
        let mut source = Vec::with_capacity(sizes.iter().sum());
        for (s, &size) in sizes.iter().enumerate() {
            source.extend(std::iter::repeat_n(s, size));
        }
        Ok(Assignment::from_canonical(source, sizes.len()))
    }

    /// Private randomness: every node has its own source (`k = n`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn private(n: usize) -> Self {
        assert!(n > 0, "assignment needs at least one node");
        Assignment::from_canonical((0..n).collect(), n)
    }

    /// Shared randomness: all nodes wired to the same source (`k = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn shared(n: usize) -> Self {
        assert!(n > 0, "assignment needs at least one node");
        Assignment::from_canonical(vec![0; n], 1)
    }

    /// The number of nodes `n`.
    pub fn n(&self) -> usize {
        self.source.len()
    }

    /// The number of distinct sources `k = k(α)`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The canonical source index of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n()`.
    pub fn source_of(&self, i: usize) -> usize {
        self.source[i]
    }

    /// Per-node source indices.
    pub fn sources(&self) -> &[usize] {
        &self.source
    }

    /// The group sizes `n_1, …, n_k` in canonical source order (borrowed
    /// from the cache built at construction — no allocation).
    pub fn group_sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The (ascending) nodes of group `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= k()`.
    pub fn group(&self, s: usize) -> &[usize] {
        &self.members[self.offsets[s]..self.offsets[s + 1]]
    }

    /// The nodes of each group, in canonical source order, as borrowed
    /// slices (no allocation).
    pub fn groups(&self) -> impl Iterator<Item = &[usize]> + '_ {
        (0..self.k).map(move |s| self.group(s))
    }

    /// Whether two nodes share a randomness source.
    pub fn same_source(&self, i: usize, j: usize) -> bool {
        self.source[i] == self.source[j]
    }

    /// Theorem 4.1's condition: does some source feed exactly one node?
    pub fn has_singleton_group(&self) -> bool {
        self.sizes.contains(&1)
    }

    /// Theorem 4.2's quantity: `gcd(n_1, …, n_k)`.
    pub fn gcd_of_group_sizes(&self) -> u64 {
        let sizes: Vec<u64> = self.sizes.iter().map(|&s| s as u64).collect();
        gcd::gcd_many(&sizes)
    }

    /// Lazily enumerates every randomness-configuration on `n` nodes, i.e.
    /// every set partition of `[n]` (via restricted-growth strings). There
    /// are Bell(n) of them (e.g. 203 for `n = 6`), so the streaming form
    /// matters: sweeps can filter and early-exit without materializing the
    /// whole family.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn iter_all(n: usize) -> AllAssignments {
        assert!(n > 0, "assignment needs at least one node");
        AllAssignments {
            rgs: Some(vec![0usize; n]),
        }
    }

    /// Lazily enumerates one representative per *group-size profile*
    /// (unordered multiset of `n_i`): the integer partitions of `n` in
    /// descending lexicographic order. Sufficient for solvability sweeps
    /// because both theorems depend only on the sizes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn iter_profiles(n: usize) -> Profiles {
        assert!(n > 0, "assignment needs at least one node");
        Profiles {
            parts: Some(vec![n]),
        }
    }

    /// Materialized form of [`Assignment::iter_all`] (compatibility
    /// wrapper; prefer the iterator in sweep loops).
    pub fn enumerate_all(n: usize) -> Vec<Assignment> {
        Assignment::iter_all(n).collect()
    }

    /// Materialized form of [`Assignment::iter_profiles`] (compatibility
    /// wrapper; prefer the iterator in sweep loops).
    pub fn enumerate_profiles(n: usize) -> Vec<Assignment> {
        Assignment::iter_profiles(n).collect()
    }
}

/// Streaming enumeration of all set partitions of `[n]` (restricted-growth
/// strings), yielded as canonical [`Assignment`]s. Created by
/// [`Assignment::iter_all`].
#[derive(Clone, Debug)]
pub struct AllAssignments {
    /// The next restricted-growth string to yield; `None` when exhausted.
    rgs: Option<Vec<usize>>,
}

impl Iterator for AllAssignments {
    type Item = Assignment;

    fn next(&mut self) -> Option<Assignment> {
        let rgs = self.rgs.as_mut()?;
        let out = Assignment::from_canonical(
            rgs.clone(),
            rgs.iter().copied().max().expect("nonempty") + 1,
        );
        // Advance to the next restricted-growth string.
        let n = rgs.len();
        let mut i = n;
        loop {
            if i == 1 {
                self.rgs = None;
                break;
            }
            i -= 1;
            let cap = rgs[..i].iter().copied().max().expect("nonempty") + 1;
            if rgs[i] < cap {
                rgs[i] += 1;
                for slot in rgs.iter_mut().skip(i + 1) {
                    *slot = 0;
                }
                break;
            }
        }
        Some(out)
    }
}

/// Streaming enumeration of the integer partitions of `n` (descending
/// lexicographic order), yielded as canonical [`Assignment`]s. Created by
/// [`Assignment::iter_profiles`].
#[derive(Clone, Debug)]
pub struct Profiles {
    /// The next partition (parts in non-increasing order); `None` when
    /// exhausted.
    parts: Option<Vec<usize>>,
}

impl Iterator for Profiles {
    type Item = Assignment;

    fn next(&mut self) -> Option<Assignment> {
        let parts = self.parts.as_mut()?;
        let out = Assignment::from_group_sizes(parts).expect("nonempty parts");
        // Advance: decrement the rightmost part > 1 and re-fill greedily.
        match parts.iter().rposition(|&p| p > 1) {
            None => self.parts = None,
            Some(i) => {
                let mut rem: usize = parts[i + 1..].iter().sum::<usize>() + 1;
                parts.truncate(i + 1);
                parts[i] -= 1;
                let cap = parts[i];
                while rem > 0 {
                    let p = cap.min(rem);
                    parts.push(p);
                    rem -= p;
                }
            }
        }
        Some(out)
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "α[")?;
        for (i, &s) in self.source.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "p{i}→R{s}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization_renumbers_in_first_appearance_order() {
        let a = Assignment::from_sources(vec![9, 2, 9, 5]).unwrap();
        assert_eq!(a.sources(), &[0, 1, 0, 2]);
        assert_eq!(a.k(), 3);
        let b = Assignment::from_sources(vec![0, 1, 0, 2]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn group_sizes_and_groups() {
        let a = Assignment::from_group_sizes(&[2, 3, 1]).unwrap();
        assert_eq!(a.n(), 6);
        assert_eq!(a.k(), 3);
        assert_eq!(a.group_sizes(), &[2, 3, 1]);
        assert_eq!(a.group(1), &[2, 3, 4]);
        assert_eq!(a.groups().count(), 3);
        assert!(a.same_source(2, 4));
        assert!(!a.same_source(0, 2));
    }

    #[test]
    fn groups_cached_for_interleaved_sources() {
        // Non-contiguous groups: nodes 0 and 2 share source 0.
        let a = Assignment::from_sources(vec![4, 7, 4, 1]).unwrap();
        assert_eq!(a.group_sizes(), &[2, 1, 1]);
        assert_eq!(a.group(0), &[0, 2]);
        assert_eq!(a.group(1), &[1]);
        assert_eq!(a.group(2), &[3]);
        let collected: Vec<&[usize]> = a.groups().collect();
        assert_eq!(collected, vec![&[0usize, 2][..], &[1], &[3]]);
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(matches!(
            Assignment::from_sources(Vec::new()),
            Err(RandomError::EmptyAssignment)
        ));
        assert!(matches!(
            Assignment::from_group_sizes(&[]),
            Err(RandomError::EmptyAssignment)
        ));
        assert!(matches!(
            Assignment::from_group_sizes(&[1, 0]),
            Err(RandomError::EmptyGroup)
        ));
    }

    #[test]
    fn private_and_shared() {
        let p = Assignment::private(4);
        assert_eq!(p.k(), 4);
        assert!(p.has_singleton_group());
        assert_eq!(p.gcd_of_group_sizes(), 1);
        let s = Assignment::shared(4);
        assert_eq!(s.k(), 1);
        assert!(!s.has_singleton_group());
        assert_eq!(s.gcd_of_group_sizes(), 4);
    }

    #[test]
    fn theorem_conditions() {
        let a = Assignment::from_group_sizes(&[2, 2]).unwrap();
        assert!(!a.has_singleton_group());
        assert_eq!(a.gcd_of_group_sizes(), 2);
        let b = Assignment::from_group_sizes(&[2, 3]).unwrap();
        assert!(!b.has_singleton_group());
        assert_eq!(b.gcd_of_group_sizes(), 1);
        let c = Assignment::from_group_sizes(&[1, 4]).unwrap();
        assert!(c.has_singleton_group());
        assert_eq!(c.gcd_of_group_sizes(), 1);
    }

    #[test]
    fn enumerate_all_counts_bell_numbers() {
        // Bell numbers: 1, 2, 5, 15, 52, 203.
        let bell = [1usize, 2, 5, 15, 52, 203];
        for (i, &b) in bell.iter().enumerate() {
            let n = i + 1;
            let all = Assignment::enumerate_all(n);
            assert_eq!(all.len(), b, "Bell({n})");
            // All distinct and canonical.
            let set: std::collections::BTreeSet<_> = all.iter().collect();
            assert_eq!(set.len(), b);
            for a in &all {
                assert_eq!(a.n(), n);
                let re = Assignment::from_sources(a.sources().to_vec()).unwrap();
                assert_eq!(&re, a, "already canonical");
            }
        }
    }

    /// The pre-refactor materializing enumerator (restricted-growth
    /// strings, recursive-free loop), kept verbatim as an independent
    /// reference for the streaming iterator.
    fn reference_enumerate_all(n: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut rgs = vec![0usize; n];
        loop {
            out.push(rgs.clone());
            let mut i = n;
            loop {
                if i == 1 {
                    return out;
                }
                i -= 1;
                let cap = rgs[..i].iter().copied().max().unwrap() + 1;
                if rgs[i] < cap {
                    rgs[i] += 1;
                    for slot in rgs.iter_mut().skip(i + 1) {
                        *slot = 0;
                    }
                    break;
                }
            }
        }
    }

    /// The pre-refactor recursive partition enumerator, kept verbatim as
    /// an independent reference for the streaming iterator.
    fn reference_enumerate_profiles(n: usize) -> Vec<Vec<usize>> {
        fn rec(remaining: usize, max: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            if remaining == 0 {
                out.push(current.clone());
                return;
            }
            for part in (1..=remaining.min(max)).rev() {
                current.push(part);
                rec(remaining - part, part, current, out);
                current.pop();
            }
        }
        let mut out = Vec::new();
        rec(n, n, &mut Vec::new(), &mut out);
        out
    }

    #[test]
    fn iter_all_matches_reference_enumeration() {
        for n in 1..=7 {
            let lazy: Vec<Vec<usize>> = Assignment::iter_all(n)
                .map(|a| a.sources().to_vec())
                .collect();
            assert_eq!(lazy, reference_enumerate_all(n), "n={n}");
        }
    }

    #[test]
    fn iter_all_is_streaming() {
        // Taking a prefix must not require materializing Bell(12) ≈ 4.2M
        // assignments: just check it terminates fast and yields valid ones.
        let prefix: Vec<Assignment> = Assignment::iter_all(12).take(10).collect();
        assert_eq!(prefix.len(), 10);
        assert!(prefix.iter().all(|a| a.n() == 12));
    }

    #[test]
    fn enumerate_profiles_counts_integer_partitions() {
        // Partition numbers p(n): 1, 2, 3, 5, 7, 11.
        let partitions = [1usize, 2, 3, 5, 7, 11];
        for (i, &p) in partitions.iter().enumerate() {
            let n = i + 1;
            assert_eq!(Assignment::enumerate_profiles(n).len(), p, "p({n})");
        }
    }

    #[test]
    fn iter_profiles_matches_reference_enumeration() {
        for n in 1..=9 {
            let lazy: Vec<Vec<usize>> = Assignment::iter_profiles(n)
                .map(|a| a.group_sizes().to_vec())
                .collect();
            assert_eq!(lazy, reference_enumerate_profiles(n), "n={n}");
        }
    }

    #[test]
    fn iter_profiles_descending_lexicographic() {
        let profiles: Vec<Vec<usize>> = Assignment::iter_profiles(4)
            .map(|a| a.group_sizes().to_vec())
            .collect();
        assert_eq!(
            profiles,
            vec![
                vec![4],
                vec![3, 1],
                vec![2, 2],
                vec![2, 1, 1],
                vec![1, 1, 1, 1]
            ]
        );
    }

    #[test]
    fn display_mentions_wiring() {
        let a = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let s = a.to_string();
        assert!(s.contains("p0→R0"));
        assert!(s.contains("p2→R1"));
    }
}
