//! Greatest-common-divisor utilities over group sizes.
//!
//! Theorem 4.2 characterizes message-passing leader election by
//! `gcd(n_1, …, n_k)`; the 'if'-direction algorithm imitates Euclid's
//! algorithm on group sizes, so we also expose the Euclidean trace.

/// The greatest common divisor of two numbers; `gcd(0, b) = b`.
///
/// # Example
///
/// ```
/// assert_eq!(rsbt_random::gcd::gcd(12, 18), 6);
/// assert_eq!(rsbt_random::gcd::gcd(0, 7), 7);
/// ```
pub fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// The gcd of a slice; `0` for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(rsbt_random::gcd::gcd_many(&[4, 6, 10]), 2);
/// assert_eq!(rsbt_random::gcd::gcd_many(&[3, 5]), 1);
/// assert_eq!(rsbt_random::gcd::gcd_many(&[]), 0);
/// ```
pub fn gcd_many(xs: &[u64]) -> u64 {
    xs.iter().copied().fold(0, gcd)
}

/// One step of the subtractive Euclid process used by the paper's
/// leader-election algorithm (proof of Theorem 4.2): match the smaller
/// group against the larger, deactivate the matched nodes of the larger
/// side, leaving group sizes `(a, b − a)` for `a ≤ b`.
///
/// Returns `None` when a group has reached zero (process finished).
pub fn euclid_step(a: u64, b: u64) -> Option<(u64, u64)> {
    if a == 0 || b == 0 {
        return None;
    }
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    Some((lo, hi - lo))
}

/// The full subtractive-Euclid trace starting from `(a, b)`, ending at
/// `(g, 0)` where `g = gcd(a, b)`.
///
/// # Example
///
/// ```
/// let trace = rsbt_random::gcd::euclid_trace(3, 5);
/// assert_eq!(*trace.last().unwrap(), (1, 0));
/// ```
pub fn euclid_trace(a: u64, b: u64) -> Vec<(u64, u64)> {
    let mut out = vec![(a, b)];
    let (mut a, mut b) = (a, b);
    while let Some((x, y)) = euclid_step(a, b) {
        out.push((x, y));
        (a, b) = (x, y);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 8), 4);
        assert_eq!(gcd(8, 12), 4);
        assert_eq!(gcd(1, 99), 1);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(7, 7), 7);
    }

    #[test]
    fn gcd_many_matches_pairwise() {
        assert_eq!(gcd_many(&[6]), 6);
        assert_eq!(gcd_many(&[6, 4]), 2);
        assert_eq!(gcd_many(&[6, 4, 3]), 1);
        assert_eq!(gcd_many(&[10, 20, 30]), 10);
    }

    #[test]
    fn euclid_step_subtracts() {
        assert_eq!(euclid_step(3, 5), Some((3, 2)));
        assert_eq!(euclid_step(5, 3), Some((3, 2)));
        assert_eq!(euclid_step(4, 4), Some((4, 0)));
        assert_eq!(euclid_step(0, 5), None);
    }

    #[test]
    fn trace_terminates_at_gcd() {
        for (a, b) in [(3u64, 5u64), (12, 18), (1, 9), (7, 7)] {
            let trace = euclid_trace(a, b);
            let last = *trace.last().unwrap();
            assert_eq!(last.1, 0);
            assert_eq!(last.0, gcd(a, b));
            // Sizes never increase along the trace.
            for w in trace.windows(2) {
                assert!(w[1].0 + w[1].1 <= w[0].0 + w[0].1);
            }
        }
    }
}
