//! Correlated randomness sources, assignments, and realizations.
//!
//! The paper's model (Section 2.1): `k ≤ n` independent sources
//! `R_1, …, R_k` each emit one uniform bit per round; every node is wired to
//! exactly one source, so nodes sharing a source see *identical* randomness.
//! This crate provides:
//!
//! * [`BitString`] — the bit strings `x_i(1..t) ∈ {0,1}^t`;
//! * [`Assignment`] — a randomness-configuration `α ∈ A` (which node is
//!   connected to which source), with canonical renumbering and exhaustive
//!   enumeration over all set partitions of `[n]`;
//! * [`Realization`] — a facet `ρ = {(i, x_i)}` of the realization complex
//!   `R(t)`, with exact probability `Pr[ρ | α]` (Lemma B.1), enumeration of
//!   all positive-probability realizations, and sampling;
//! * [`gcd`] — gcd utilities over group sizes (the quantity Theorem 4.2
//!   keys on).
//!
//! # Example
//!
//! ```
//! use rsbt_random::{Assignment, Realization};
//!
//! // Four nodes: two wired to source 0, two to source 1 (n_i = [2, 2]).
//! let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
//! assert_eq!(alpha.k(), 2);
//! assert_eq!(alpha.gcd_of_group_sizes(), 2);
//! assert!(!alpha.has_singleton_group());
//!
//! // All positive-probability realizations at time t=1: 2^{k·t} = 4.
//! let all: Vec<Realization> = Realization::enumerate_consistent(&alpha, 1).collect();
//! assert_eq!(all.len(), 4);
//! assert!(all.iter().all(|r| (r.probability(&alpha) - 0.25).abs() < 1e-12));
//! ```

#![deny(deprecated)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod bits;
mod error;
pub mod gcd;
mod realization;

pub use crate::assignment::{AllAssignments, Assignment, Profiles};
pub use crate::bits::{BitString, MAX_BITS};
pub use crate::error::RandomError;
pub use crate::realization::{ConsistentRealizations, Realization};
