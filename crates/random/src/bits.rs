//! Fixed-length bit strings `x ∈ {0,1}^t`.

use std::fmt;

use rand::Rng;

/// Maximum supported bit-string length (bits are packed in one `u64`).
pub const MAX_BITS: usize = 63;

/// A bit string of length at most [`MAX_BITS`], ordered round-by-round:
/// bit `0` is the bit emitted in round 1.
///
/// `BitString` models both the per-round output of a randomness source
/// `R_i(1..t)` and the randomness `x_i(t)` received by a node.
///
/// # Example
///
/// ```
/// use rsbt_random::BitString;
///
/// let mut x = BitString::empty();
/// x.push(true);
/// x.push(false);
/// assert_eq!(x.len(), 2);
/// assert_eq!(x.bit(0), true);
/// assert_eq!(x.to_string(), "10");
/// assert_eq!(x.prefix(1), BitString::from_bits([true]));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct BitString {
    bits: u64,
    len: u8,
}

impl BitString {
    /// The empty string `⊥` (the paper's initial knowledge placeholder).
    pub fn empty() -> Self {
        BitString { bits: 0, len: 0 }
    }

    /// Builds a bit string from an iterator of bits (round order).
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields more than [`MAX_BITS`] bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut s = BitString::empty();
        for b in bits {
            s.push(b);
        }
        s
    }

    /// Decodes the `len` low bits of `word` as a bit string (bit `i` of
    /// `word` is round `i+1`).
    ///
    /// # Panics
    ///
    /// Panics if `len > MAX_BITS`.
    pub fn from_word(word: u64, len: usize) -> Self {
        assert!(len <= MAX_BITS, "bit strings limited to {MAX_BITS} bits");
        let mask = if len == 0 { 0 } else { u64::MAX >> (64 - len) };
        BitString {
            bits: word & mask,
            len: len as u8,
        }
    }

    /// The number of rounds covered, `t`.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether this is the empty string `⊥`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit of round `i + 1` (zero-based index).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len(), "bit index {i} out of range");
        self.bits >> i & 1 == 1
    }

    /// Appends one round's bit.
    ///
    /// # Panics
    ///
    /// Panics if the string is already [`MAX_BITS`] long.
    pub fn push(&mut self, b: bool) {
        assert!(self.len() < MAX_BITS, "bit string full");
        if b {
            self.bits |= 1 << self.len;
        }
        self.len += 1;
    }

    /// The prefix covering the first `t` rounds, `x(1..t)`.
    ///
    /// # Panics
    ///
    /// Panics if `t > len()`.
    pub fn prefix(&self, t: usize) -> BitString {
        assert!(t <= self.len(), "prefix length {t} exceeds string");
        BitString::from_word(self.bits, t)
    }

    /// Whether `self` extends `other` (i.e. `other` is a prefix of `self`).
    pub fn extends(&self, other: &BitString) -> bool {
        other.len() <= self.len() && self.prefix(other.len()) == *other
    }

    /// Concatenates `other` after `self`.
    ///
    /// # Panics
    ///
    /// Panics if the combined length exceeds [`MAX_BITS`].
    pub fn concat(&self, other: &BitString) -> BitString {
        let total = self.len() + other.len();
        assert!(total <= MAX_BITS, "concatenation exceeds {MAX_BITS} bits");
        BitString {
            bits: self.bits | other.bits << self.len,
            len: total as u8,
        }
    }

    /// Iterates over the bits in round order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len()).map(|i| self.bit(i))
    }

    /// The packed representation (low `len` bits).
    pub fn as_word(&self) -> u64 {
        self.bits
    }

    /// All `2^t` bit strings of length `t`, in numeric order.
    ///
    /// # Panics
    ///
    /// Panics if `t > MAX_BITS` or `2^t` overflows the iterator bound
    /// (practically `t ≤ 62`).
    pub fn all_of_length(t: usize) -> impl Iterator<Item = BitString> {
        assert!(t <= MAX_BITS);
        (0..1u64 << t).map(move |w| BitString::from_word(w, t))
    }

    /// Samples a uniform bit string of length `t`.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, t: usize) -> BitString {
        assert!(t <= MAX_BITS);
        BitString::from_word(rng.gen::<u64>(), t)
    }
}

impl fmt::Display for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "⊥");
        }
        for b in self.iter() {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_displays_bottom() {
        assert_eq!(BitString::empty().to_string(), "⊥");
        assert!(BitString::empty().is_empty());
    }

    #[test]
    fn push_and_bit() {
        let x = BitString::from_bits([true, false, true]);
        assert_eq!(x.len(), 3);
        assert!(x.bit(0));
        assert!(!x.bit(1));
        assert!(x.bit(2));
        assert_eq!(x.to_string(), "101");
    }

    #[test]
    fn word_roundtrip() {
        let x = BitString::from_word(0b101, 3);
        assert_eq!(x, BitString::from_bits([true, false, true]));
        assert_eq!(x.as_word(), 0b101);
        // Extra high bits are masked.
        assert_eq!(BitString::from_word(0b1111, 2).as_word(), 0b11);
    }

    #[test]
    fn prefix_and_extends() {
        let x = BitString::from_bits([true, false, true, true]);
        let p = x.prefix(2);
        assert_eq!(p.to_string(), "10");
        assert!(x.extends(&p));
        assert!(x.extends(&x));
        assert!(!p.extends(&x));
        let other = BitString::from_bits([false, false]);
        assert!(!x.extends(&other));
    }

    #[test]
    fn concat_orders_rounds() {
        let a = BitString::from_bits([true]);
        let b = BitString::from_bits([false, true]);
        assert_eq!(a.concat(&b).to_string(), "101");
    }

    #[test]
    fn all_of_length_counts() {
        assert_eq!(BitString::all_of_length(0).count(), 1);
        assert_eq!(BitString::all_of_length(3).count(), 8);
        let all: Vec<_> = BitString::all_of_length(2).collect();
        assert_eq!(all.len(), 4);
        // Distinct.
        let set: std::collections::BTreeSet<_> = all.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        let _ = BitString::empty().bit(0);
    }

    #[test]
    fn sample_has_requested_length() {
        let mut rng = rand::rngs::mock::StepRng::new(0xdead_beef, 0x9e37_79b9);
        for t in 0..10 {
            assert_eq!(BitString::sample(&mut rng, t).len(), t);
        }
    }
}
