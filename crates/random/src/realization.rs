//! Realizations `ρ = {(i, x_i)} ∈ R(t)`: the randomness received by every
//! node up to time `t`.

use std::fmt;

use rand::Rng;

use crate::assignment::Assignment;
use crate::bits::BitString;
use crate::error::RandomError;

/// A facet of the realization complex `R(t)`: one bit string per node, all
/// of the same length `t`.
///
/// # Example
///
/// ```
/// use rsbt_random::{Assignment, BitString, Realization};
///
/// let rho = Realization::new(vec![
///     BitString::from_bits([true]),
///     BitString::from_bits([true]),
/// ])?;
/// let shared = Assignment::shared(2);
/// let private = Assignment::private(2);
/// // Lemma B.1: consistent realizations have probability 2^{-tk}.
/// assert_eq!(rho.probability(&shared), 0.5);   // k = 1, t = 1
/// assert_eq!(rho.probability(&private), 0.25); // k = 2, t = 1
/// # Ok::<(), rsbt_random::RandomError>(())
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Realization {
    strings: Vec<BitString>,
    t: usize,
}

impl Realization {
    /// Builds a realization from per-node bit strings.
    ///
    /// # Errors
    ///
    /// * [`RandomError::EmptyAssignment`] if `strings` is empty;
    /// * [`RandomError::RaggedRealization`] if lengths differ.
    pub fn new(strings: Vec<BitString>) -> Result<Self, RandomError> {
        let t = match strings.first() {
            None => return Err(RandomError::EmptyAssignment),
            Some(s) => s.len(),
        };
        if strings.iter().any(|s| s.len() != t) {
            return Err(RandomError::RaggedRealization);
        }
        Ok(Realization { strings, t })
    }

    /// The time `t` covered by this realization.
    pub fn time(&self) -> usize {
        self.t
    }

    /// The number of nodes `n`.
    pub fn n(&self) -> usize {
        self.strings.len()
    }

    /// The bit string received by node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n()`.
    pub fn node(&self, i: usize) -> BitString {
        self.strings[i]
    }

    /// All per-node bit strings, node order.
    pub fn strings(&self) -> &[BitString] {
        &self.strings
    }

    /// Whether this realization can occur under `α`: nodes wired to the
    /// same source must have received identical strings (the complement of
    /// the paper's `B_α` set).
    ///
    /// Returns `false` when the node counts disagree.
    pub fn is_consistent_with(&self, alpha: &Assignment) -> bool {
        if alpha.n() != self.n() {
            return false;
        }
        alpha.groups().all(|group| {
            group
                .windows(2)
                .all(|w| self.strings[w[0]] == self.strings[w[1]])
        })
    }

    /// Exact probability `Pr[ρ | α]` (Lemma B.1): `0` for `α`-inconsistent
    /// realizations and `2^{−t·k}` otherwise.
    pub fn probability(&self, alpha: &Assignment) -> f64 {
        if !self.is_consistent_with(alpha) {
            return 0.0;
        }
        0.5f64.powi((self.t * alpha.k()) as i32)
    }

    /// The realization truncated to its first `t` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `t > time()`.
    pub fn prefix(&self, t: usize) -> Realization {
        Realization {
            strings: self.strings.iter().map(|s| s.prefix(t)).collect(),
            t,
        }
    }

    /// Definition 4.6: whether `self` succeeds `earlier` (`earlier ≺ self`):
    /// strictly later time and node-wise prefix agreement.
    pub fn succeeds(&self, earlier: &Realization) -> bool {
        self.n() == earlier.n()
            && self.t > earlier.t
            && self
                .strings
                .iter()
                .zip(&earlier.strings)
                .all(|(long, short)| long.extends(short))
    }

    /// Enumerates every realization with positive probability under `α` at
    /// time `t` — one per choice of the `k` source strings, `2^{k·t}` total
    /// (Lemma B.1's support).
    ///
    /// # Panics
    ///
    /// Panics if `k·t` exceeds 62 bits (enumeration would not fit memory
    /// long before that).
    pub fn enumerate_consistent(
        alpha: &Assignment,
        t: usize,
    ) -> impl Iterator<Item = Realization> + '_ {
        let k = alpha.k();
        assert!(k * t <= 62, "2^(k*t) enumeration too large");
        (0..1u64 << (k * t)).map(move |word| {
            let sources: Vec<BitString> = (0..k)
                .map(|s| BitString::from_word(word >> (s * t), t))
                .collect();
            Realization {
                strings: (0..alpha.n())
                    .map(|i| sources[alpha.source_of(i)])
                    .collect(),
                t,
            }
        })
    }

    /// Enumerates *all* facets of `R(t)` on `n` nodes (`2^{n·t}` of them),
    /// consistent or not — the full realization complex.
    ///
    /// # Panics
    ///
    /// Panics if `n·t` exceeds 62 bits.
    pub fn enumerate_all(n: usize, t: usize) -> impl Iterator<Item = Realization> {
        assert!(n * t <= 62, "2^(n*t) enumeration too large");
        (0..1u64 << (n * t)).map(move |word| Realization {
            strings: (0..n)
                .map(|i| BitString::from_word(word >> (i * t), t))
                .collect(),
            t,
        })
    }

    /// Samples a realization at time `t` by drawing the `k` source strings
    /// uniformly and wiring them through `α`.
    pub fn sample<R: Rng + ?Sized>(alpha: &Assignment, t: usize, rng: &mut R) -> Realization {
        let sources: Vec<BitString> = (0..alpha.k()).map(|_| BitString::sample(rng, t)).collect();
        Realization {
            strings: (0..alpha.n())
                .map(|i| sources[alpha.source_of(i)])
                .collect(),
            t,
        }
    }

    /// Extends this realization by `extra` additional rounds of sampled
    /// source bits, preserving `α`-consistency.
    pub fn extend<R: Rng + ?Sized>(
        &self,
        alpha: &Assignment,
        extra: usize,
        rng: &mut R,
    ) -> Result<Realization, RandomError> {
        if alpha.n() != self.n() {
            return Err(RandomError::NodeCountMismatch {
                realization: self.n(),
                assignment: alpha.n(),
            });
        }
        let suffixes: Vec<BitString> = (0..alpha.k())
            .map(|_| BitString::sample(rng, extra))
            .collect();
        Ok(Realization {
            strings: self
                .strings
                .iter()
                .enumerate()
                .map(|(i, s)| s.concat(&suffixes[alpha.source_of(i)]))
                .collect(),
            t: self.t + extra,
        })
    }
}

impl fmt::Display for Realization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ρ(t={})[", self.t)?;
        for (i, s) in self.strings.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "p{i}:{s}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> BitString {
        BitString::from_bits(s.chars().map(|c| c == '1'))
    }

    fn rho(strs: &[&str]) -> Realization {
        Realization::new(strs.iter().map(|s| bits(s)).collect()).unwrap()
    }

    #[test]
    fn constructor_validation() {
        assert!(matches!(
            Realization::new(Vec::new()),
            Err(RandomError::EmptyAssignment)
        ));
        assert!(matches!(
            Realization::new(vec![bits("0"), bits("01")]),
            Err(RandomError::RaggedRealization)
        ));
    }

    #[test]
    fn consistency_with_assignment() {
        let alpha = Assignment::from_group_sizes(&[2, 1]).unwrap();
        assert!(rho(&["01", "01", "11"]).is_consistent_with(&alpha));
        assert!(!rho(&["01", "11", "11"]).is_consistent_with(&alpha));
        // Node-count mismatch is inconsistent, not a panic.
        assert!(!rho(&["01", "01"]).is_consistent_with(&alpha));
    }

    #[test]
    fn lemma_b1_probabilities() {
        let alpha = Assignment::from_group_sizes(&[2, 1]).unwrap(); // k=2
        let consistent = rho(&["01", "01", "11"]); // t=2
        let inconsistent = rho(&["01", "11", "11"]);
        assert_eq!(consistent.probability(&alpha), 0.0625); // 2^{-4}
        assert_eq!(inconsistent.probability(&alpha), 0.0);
    }

    #[test]
    fn probabilities_sum_to_one_over_support() {
        for sizes in [vec![1usize], vec![2, 1], vec![2, 2], vec![1, 1, 1]] {
            let alpha = Assignment::from_group_sizes(&sizes).unwrap();
            for t in 1..=2 {
                let total: f64 = Realization::enumerate_consistent(&alpha, t)
                    .map(|r| r.probability(&alpha))
                    .sum();
                assert!((total - 1.0).abs() < 1e-9, "sizes={sizes:?} t={t}");
            }
        }
    }

    #[test]
    fn enumerate_consistent_counts() {
        let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
        assert_eq!(Realization::enumerate_consistent(&alpha, 2).count(), 16); // 2^{2*2}
        let all: std::collections::BTreeSet<_> =
            Realization::enumerate_consistent(&alpha, 2).collect();
        assert_eq!(all.len(), 16, "distinct realizations");
        assert!(all.iter().all(|r| r.is_consistent_with(&alpha)));
    }

    #[test]
    fn enumerate_all_counts() {
        assert_eq!(Realization::enumerate_all(3, 1).count(), 8);
        assert_eq!(Realization::enumerate_all(2, 2).count(), 16);
    }

    #[test]
    fn succession() {
        let early = rho(&["0", "1"]);
        let late = rho(&["01", "10"]);
        let unrelated = rho(&["11", "10"]);
        assert!(late.succeeds(&early));
        assert!(!early.succeeds(&late));
        assert!(!early.succeeds(&early)); // strict time
        assert!(!unrelated.succeeds(&early));
        assert_eq!(late.prefix(1), early);
    }

    #[test]
    fn sample_and_extend_stay_consistent() {
        let mut rng = rand::rngs::mock::StepRng::new(42, 0x9e37_79b9_97f4_a7c1);
        let alpha = Assignment::from_group_sizes(&[3, 2]).unwrap();
        let r = Realization::sample(&alpha, 4, &mut rng);
        assert_eq!(r.time(), 4);
        assert!(r.is_consistent_with(&alpha));
        let ext = r.extend(&alpha, 3, &mut rng).unwrap();
        assert_eq!(ext.time(), 7);
        assert!(ext.is_consistent_with(&alpha));
        assert!(ext.succeeds(&r));
        // Wrong node count errors.
        let beta = Assignment::private(2);
        assert!(r.extend(&beta, 1, &mut rng).is_err());
    }

    #[test]
    fn display_mentions_nodes() {
        let r = rho(&["01", "10"]);
        let s = r.to_string();
        assert!(s.contains("p0:01"));
        assert!(s.contains("p1:10"));
    }
}
