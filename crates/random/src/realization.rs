//! Realizations `ρ = {(i, x_i)} ∈ R(t)`: the randomness received by every
//! node up to time `t`.

use std::fmt;

use rand::Rng;

use crate::assignment::Assignment;
use crate::bits::BitString;
use crate::error::RandomError;

/// A facet of the realization complex `R(t)`: one bit string per node, all
/// of the same length `t`.
///
/// # Example
///
/// ```
/// use rsbt_random::{Assignment, BitString, Realization};
///
/// let rho = Realization::new(vec![
///     BitString::from_bits([true]),
///     BitString::from_bits([true]),
/// ])?;
/// let shared = Assignment::shared(2);
/// let private = Assignment::private(2);
/// // Lemma B.1: consistent realizations have probability 2^{-tk}.
/// assert_eq!(rho.probability(&shared), 0.5);   // k = 1, t = 1
/// assert_eq!(rho.probability(&private), 0.25); // k = 2, t = 1
/// # Ok::<(), rsbt_random::RandomError>(())
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Realization {
    strings: Vec<BitString>,
    t: usize,
}

impl Realization {
    /// Builds a realization from per-node bit strings.
    ///
    /// # Errors
    ///
    /// * [`RandomError::EmptyAssignment`] if `strings` is empty;
    /// * [`RandomError::RaggedRealization`] if lengths differ.
    pub fn new(strings: Vec<BitString>) -> Result<Self, RandomError> {
        let t = match strings.first() {
            None => return Err(RandomError::EmptyAssignment),
            Some(s) => s.len(),
        };
        if strings.iter().any(|s| s.len() != t) {
            return Err(RandomError::RaggedRealization);
        }
        Ok(Realization { strings, t })
    }

    /// The time `t` covered by this realization.
    pub fn time(&self) -> usize {
        self.t
    }

    /// The number of nodes `n`.
    pub fn n(&self) -> usize {
        self.strings.len()
    }

    /// The bit string received by node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n()`.
    pub fn node(&self, i: usize) -> BitString {
        self.strings[i]
    }

    /// All per-node bit strings, node order.
    pub fn strings(&self) -> &[BitString] {
        &self.strings
    }

    /// Whether this realization can occur under `α`: nodes wired to the
    /// same source must have received identical strings (the complement of
    /// the paper's `B_α` set).
    ///
    /// Returns `false` when the node counts disagree.
    pub fn is_consistent_with(&self, alpha: &Assignment) -> bool {
        if alpha.n() != self.n() {
            return false;
        }
        alpha.groups().all(|group| {
            group
                .windows(2)
                .all(|w| self.strings[w[0]] == self.strings[w[1]])
        })
    }

    /// Exact probability `Pr[ρ | α]` (Lemma B.1): `0` for `α`-inconsistent
    /// realizations and `2^{−t·k}` otherwise.
    pub fn probability(&self, alpha: &Assignment) -> f64 {
        if !self.is_consistent_with(alpha) {
            return 0.0;
        }
        0.5f64.powi((self.t * alpha.k()) as i32)
    }

    /// The realization truncated to its first `t` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `t > time()`.
    pub fn prefix(&self, t: usize) -> Realization {
        Realization {
            strings: self.strings.iter().map(|s| s.prefix(t)).collect(),
            t,
        }
    }

    /// Definition 4.6: whether `self` succeeds `earlier` (`earlier ≺ self`):
    /// strictly later time and node-wise prefix agreement.
    pub fn succeeds(&self, earlier: &Realization) -> bool {
        self.n() == earlier.n()
            && self.t > earlier.t
            && self
                .strings
                .iter()
                .zip(&earlier.strings)
                .all(|(long, short)| long.extends(short))
    }

    /// Enumerates every realization with positive probability under `α` at
    /// time `t` — one per choice of the `k` source strings, `2^{k·t}` total
    /// (Lemma B.1's support).
    ///
    /// The enumeration order is *round-major* ([tree
    /// order](Realization::from_tree_index)): index `0` is the all-zero
    /// realization, and realizations sharing a longer round prefix are
    /// closer together. This is exactly the leaf order of the
    /// prefix-sharing execution-tree DFS in `rsbt-core`, so chunking the
    /// enumeration splits the tree into contiguous subtrees. The returned
    /// [`ConsistentRealizations`] iterator seeks in constant time
    /// (`Iterator::nth`, and hence `skip`, does not materialize skipped
    /// realizations).
    ///
    /// # Panics
    ///
    /// Panics if `k·t` exceeds 62 bits (enumeration would not fit memory
    /// long before that).
    pub fn enumerate_consistent(alpha: &Assignment, t: usize) -> ConsistentRealizations<'_> {
        let k = alpha.k();
        assert!(k * t <= 62, "2^(k*t) enumeration too large");
        ConsistentRealizations {
            alpha,
            t,
            next: 0,
            end: 1u64 << (k * t),
        }
    }

    /// The `α`-consistent realization at *tree index* `index`: the
    /// round-major encoding where bit `(t − r)·k + s` of `index` is the bit
    /// emitted by source `s` in round `r` (round 1 occupies the most
    /// significant `k`-bit digit). Equivalently, the `index`-th leaf of the
    /// execution tree whose depth-`r` branches are the `2^k` choices of
    /// per-round source bits, and the `index`-th item of
    /// [`Realization::enumerate_consistent`] — reached here in `O(n + t)`
    /// instead of by iteration.
    ///
    /// # Panics
    ///
    /// Panics if `k·t` exceeds 62 bits or `index ≥ 2^{k·t}`.
    pub fn from_tree_index(alpha: &Assignment, t: usize, index: u64) -> Realization {
        let k = alpha.k();
        assert!(k * t <= 62, "2^(k*t) enumeration too large");
        assert!(index < 1u64 << (k * t), "tree index out of range");
        let sources: Vec<BitString> = (0..k)
            .map(|s| BitString::from_bits((1..=t).map(|r| index >> ((t - r) * k + s) & 1 == 1)))
            .collect();
        Realization {
            strings: (0..alpha.n())
                .map(|i| sources[alpha.source_of(i)])
                .collect(),
            t,
        }
    }

    /// Enumerates *all* facets of `R(t)` on `n` nodes (`2^{n·t}` of them),
    /// consistent or not — the full realization complex.
    ///
    /// # Panics
    ///
    /// Panics if `n·t` exceeds 62 bits.
    pub fn enumerate_all(n: usize, t: usize) -> impl Iterator<Item = Realization> {
        assert!(n * t <= 62, "2^(n*t) enumeration too large");
        (0..1u64 << (n * t)).map(move |word| Realization {
            strings: (0..n)
                .map(|i| BitString::from_word(word >> (i * t), t))
                .collect(),
            t,
        })
    }

    /// Samples a realization at time `t` by drawing the `k` source strings
    /// uniformly and wiring them through `α`.
    pub fn sample<R: Rng + ?Sized>(alpha: &Assignment, t: usize, rng: &mut R) -> Realization {
        let sources: Vec<BitString> = (0..alpha.k()).map(|_| BitString::sample(rng, t)).collect();
        Realization {
            strings: (0..alpha.n())
                .map(|i| sources[alpha.source_of(i)])
                .collect(),
            t,
        }
    }

    /// Extends this realization by `extra` additional rounds of sampled
    /// source bits, preserving `α`-consistency.
    pub fn extend<R: Rng + ?Sized>(
        &self,
        alpha: &Assignment,
        extra: usize,
        rng: &mut R,
    ) -> Result<Realization, RandomError> {
        if alpha.n() != self.n() {
            return Err(RandomError::NodeCountMismatch {
                realization: self.n(),
                assignment: alpha.n(),
            });
        }
        let suffixes: Vec<BitString> = (0..alpha.k())
            .map(|_| BitString::sample(rng, extra))
            .collect();
        Ok(Realization {
            strings: self
                .strings
                .iter()
                .enumerate()
                .map(|(i, s)| s.concat(&suffixes[alpha.source_of(i)]))
                .collect(),
            t: self.t + extra,
        })
    }
}

/// Streaming enumeration of the `α`-consistent realizations at time `t`,
/// in round-major tree order (see [`Realization::from_tree_index`]).
/// Created by [`Realization::enumerate_consistent`].
///
/// Seeks in constant time: `nth`/`skip` advance the tree index without
/// materializing the skipped realizations, so a worker reaching for the
/// `lo`-th chunk of a `2^{k·t}` enumeration pays `O(1)`, not `O(lo)`.
#[derive(Clone, Debug)]
pub struct ConsistentRealizations<'a> {
    alpha: &'a Assignment,
    t: usize,
    next: u64,
    end: u64,
}

impl ConsistentRealizations<'_> {
    /// The tree index of the realization `next` would yield (equal to the
    /// number of items already consumed plus any seek offset).
    pub fn position(&self) -> u64 {
        self.next
    }

    /// Seeks directly to tree index `index` (clamped to the end); the next
    /// item yielded is `Realization::from_tree_index(alpha, t, index)`.
    pub fn seek(&mut self, index: u64) {
        self.next = index.min(self.end);
    }
}

impl Iterator for ConsistentRealizations<'_> {
    type Item = Realization;

    fn next(&mut self) -> Option<Realization> {
        if self.next >= self.end {
            return None;
        }
        let out = Realization::from_tree_index(self.alpha, self.t, self.next);
        self.next += 1;
        Some(out)
    }

    fn nth(&mut self, n: usize) -> Option<Realization> {
        self.next = self.next.saturating_add(n as u64);
        self.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.end - self.next) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for ConsistentRealizations<'_> {}

impl fmt::Display for Realization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ρ(t={})[", self.t)?;
        for (i, s) in self.strings.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "p{i}:{s}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> BitString {
        BitString::from_bits(s.chars().map(|c| c == '1'))
    }

    fn rho(strs: &[&str]) -> Realization {
        Realization::new(strs.iter().map(|s| bits(s)).collect()).unwrap()
    }

    #[test]
    fn constructor_validation() {
        assert!(matches!(
            Realization::new(Vec::new()),
            Err(RandomError::EmptyAssignment)
        ));
        assert!(matches!(
            Realization::new(vec![bits("0"), bits("01")]),
            Err(RandomError::RaggedRealization)
        ));
    }

    #[test]
    fn consistency_with_assignment() {
        let alpha = Assignment::from_group_sizes(&[2, 1]).unwrap();
        assert!(rho(&["01", "01", "11"]).is_consistent_with(&alpha));
        assert!(!rho(&["01", "11", "11"]).is_consistent_with(&alpha));
        // Node-count mismatch is inconsistent, not a panic.
        assert!(!rho(&["01", "01"]).is_consistent_with(&alpha));
    }

    #[test]
    fn lemma_b1_probabilities() {
        let alpha = Assignment::from_group_sizes(&[2, 1]).unwrap(); // k=2
        let consistent = rho(&["01", "01", "11"]); // t=2
        let inconsistent = rho(&["01", "11", "11"]);
        assert_eq!(consistent.probability(&alpha), 0.0625); // 2^{-4}
        assert_eq!(inconsistent.probability(&alpha), 0.0);
    }

    #[test]
    fn probabilities_sum_to_one_over_support() {
        for sizes in [vec![1usize], vec![2, 1], vec![2, 2], vec![1, 1, 1]] {
            let alpha = Assignment::from_group_sizes(&sizes).unwrap();
            for t in 1..=2 {
                let total: f64 = Realization::enumerate_consistent(&alpha, t)
                    .map(|r| r.probability(&alpha))
                    .sum();
                assert!((total - 1.0).abs() < 1e-9, "sizes={sizes:?} t={t}");
            }
        }
    }

    #[test]
    fn enumerate_consistent_counts() {
        let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
        assert_eq!(Realization::enumerate_consistent(&alpha, 2).count(), 16); // 2^{2*2}
        let all: std::collections::BTreeSet<_> =
            Realization::enumerate_consistent(&alpha, 2).collect();
        assert_eq!(all.len(), 16, "distinct realizations");
        assert!(all.iter().all(|r| r.is_consistent_with(&alpha)));
    }

    #[test]
    fn enumerate_all_counts() {
        assert_eq!(Realization::enumerate_all(3, 1).count(), 8);
        assert_eq!(Realization::enumerate_all(2, 2).count(), 16);
    }

    #[test]
    fn tree_index_matches_enumeration_order() {
        for sizes in [vec![1usize, 2], vec![2, 2], vec![1, 1, 1]] {
            let alpha = Assignment::from_group_sizes(&sizes).unwrap();
            for t in 0..=3 {
                let all: Vec<Realization> = Realization::enumerate_consistent(&alpha, t).collect();
                assert_eq!(all.len(), 1usize << (alpha.k() * t));
                for (w, r) in all.iter().enumerate() {
                    let direct = Realization::from_tree_index(&alpha, t, w as u64);
                    assert_eq!(&direct, r, "sizes {sizes:?} t {t} index {w}");
                }
            }
        }
    }

    #[test]
    fn tree_order_is_round_major() {
        // Round 1 is the most significant digit: realizations sharing a
        // round prefix are contiguous, so the tree index bisects by the
        // first round's source bits.
        let alpha = Assignment::private(1); // k = 1
        let all: Vec<Realization> = Realization::enumerate_consistent(&alpha, 2).collect();
        let strings: Vec<String> = all.iter().map(|r| r.node(0).to_string()).collect();
        // Indices 0,1 start with round-1 bit 0; indices 2,3 with bit 1.
        assert_eq!(strings, vec!["00", "01", "10", "11"]);
    }

    #[test]
    fn nth_seeks_without_iterating() {
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let all: Vec<Realization> = Realization::enumerate_consistent(&alpha, 3).collect();
        for start in [0usize, 1, 5, 17, 40, 63] {
            let mut it = Realization::enumerate_consistent(&alpha, 3);
            assert_eq!(it.nth(start).as_ref(), all.get(start), "start={start}");
        }
        // skip() rides on nth: tail from a deep offset matches the slice.
        let tail: Vec<Realization> = Realization::enumerate_consistent(&alpha, 3)
            .skip(60)
            .collect();
        assert_eq!(tail, all[60..]);
        // Past-the-end seeks terminate cleanly.
        assert_eq!(Realization::enumerate_consistent(&alpha, 3).nth(64), None);
        let mut it = Realization::enumerate_consistent(&alpha, 3);
        it.seek(9999);
        assert_eq!(it.next(), None);
    }

    #[test]
    fn seek_and_position_round_trip() {
        let alpha = Assignment::from_group_sizes(&[2, 1]).unwrap();
        let mut it = Realization::enumerate_consistent(&alpha, 2);
        assert_eq!(it.len(), 16);
        it.seek(7);
        assert_eq!(it.position(), 7);
        assert_eq!(
            it.next().unwrap(),
            Realization::from_tree_index(&alpha, 2, 7)
        );
        assert_eq!(it.len(), 8);
    }

    #[test]
    fn succession() {
        let early = rho(&["0", "1"]);
        let late = rho(&["01", "10"]);
        let unrelated = rho(&["11", "10"]);
        assert!(late.succeeds(&early));
        assert!(!early.succeeds(&late));
        assert!(!early.succeeds(&early)); // strict time
        assert!(!unrelated.succeeds(&early));
        assert_eq!(late.prefix(1), early);
    }

    #[test]
    fn sample_and_extend_stay_consistent() {
        let mut rng = rand::rngs::mock::StepRng::new(42, 0x9e37_79b9_97f4_a7c1);
        let alpha = Assignment::from_group_sizes(&[3, 2]).unwrap();
        let r = Realization::sample(&alpha, 4, &mut rng);
        assert_eq!(r.time(), 4);
        assert!(r.is_consistent_with(&alpha));
        let ext = r.extend(&alpha, 3, &mut rng).unwrap();
        assert_eq!(ext.time(), 7);
        assert!(ext.is_consistent_with(&alpha));
        assert!(ext.succeeds(&r));
        // Wrong node count errors.
        let beta = Assignment::private(2);
        assert!(r.extend(&beta, 1, &mut rng).is_err());
    }

    #[test]
    fn display_mentions_nodes() {
        let r = rho(&["01", "10"]);
        let s = r.to_string();
        assert!(s.contains("p0:01"));
        assert!(s.contains("p1:10"));
    }
}
