//! Property-based tests for assignments, realizations, and probabilities.

use proptest::prelude::*;
use rsbt_random::{gcd, Assignment, BitString, Realization};

fn arb_assignment(max_n: usize) -> impl Strategy<Value = Assignment> {
    proptest::collection::vec(0usize..4, 1..=max_n)
        .prop_map(|labels| Assignment::from_sources(labels).expect("non-empty"))
}

proptest! {
    // Fixed RNG configuration so tier-1 is deterministic in CI: the
    // vendored proptest derives each property's stream from this seed
    // and the test's module path, with no persistence files.
    #![proptest_config(ProptestConfig {
        cases: 64,
        rng_seed: 0x5253_4254, // "RSBT"
        ..ProptestConfig::default()
    })]
    /// Canonicalization is idempotent and preserves the partition.
    #[test]
    fn canonicalization_idempotent(alpha in arb_assignment(8)) {
        let re = Assignment::from_sources(alpha.sources().to_vec()).unwrap();
        prop_assert_eq!(&re, &alpha);
        // Same-source relation must be preserved by any relabeling.
        for i in 0..alpha.n() {
            for j in 0..alpha.n() {
                prop_assert_eq!(
                    alpha.same_source(i, j),
                    alpha.source_of(i) == alpha.source_of(j)
                );
            }
        }
    }

    /// Group sizes sum to n and there are exactly k groups.
    #[test]
    fn group_sizes_partition(alpha in arb_assignment(8)) {
        let sizes = alpha.group_sizes();
        prop_assert_eq!(sizes.len(), alpha.k());
        prop_assert_eq!(sizes.iter().sum::<usize>(), alpha.n());
        prop_assert!(sizes.iter().all(|&s| s >= 1));
        let total: usize = alpha.groups().map(<[usize]>::len).sum();
        prop_assert_eq!(total, alpha.n());
        // The cached members cover each node exactly once, grouped by source.
        for (s, group) in alpha.groups().enumerate() {
            prop_assert_eq!(group.len(), alpha.group_sizes()[s]);
            prop_assert!(group.iter().all(|&i| alpha.source_of(i) == s));
        }
    }

    /// gcd of group sizes divides every group size and n.
    #[test]
    fn gcd_divides(alpha in arb_assignment(8)) {
        let g = alpha.gcd_of_group_sizes();
        prop_assert!(g >= 1);
        for &s in alpha.group_sizes() {
            prop_assert_eq!(s as u64 % g, 0);
        }
        prop_assert_eq!(alpha.n() as u64 % g, 0);
    }

    /// Sampled realizations are always consistent and have the stated
    /// probability.
    #[test]
    fn sampled_realizations_consistent(alpha in arb_assignment(6), t in 0usize..8, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rho = Realization::sample(&alpha, t, &mut rng);
        prop_assert!(rho.is_consistent_with(&alpha));
        let expect = 0.5f64.powi((t * alpha.k()) as i32);
        prop_assert!((rho.probability(&alpha) - expect).abs() < 1e-15);
    }

    /// Prefixes of consistent realizations remain consistent, and
    /// succession is transitive.
    #[test]
    fn prefix_consistency(alpha in arb_assignment(5), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rho = Realization::sample(&alpha, 6, &mut rng);
        for t in 0..6 {
            prop_assert!(rho.prefix(t).is_consistent_with(&alpha));
            if t >= 1 {
                prop_assert!(rho.succeeds(&rho.prefix(t)));
                prop_assert!(rho.prefix(t + 1).succeeds(&rho.prefix(t)) || t + 1 == 6);
            }
        }
    }

    /// Probabilities over the consistent support sum to 1.
    #[test]
    fn support_sums_to_one(alpha in arb_assignment(4), t in 1usize..3) {
        prop_assume!(alpha.k() * t <= 10);
        let total: f64 = Realization::enumerate_consistent(&alpha, t)
            .map(|r| r.probability(&alpha))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// BitString word roundtrip and prefix laws.
    #[test]
    fn bitstring_laws(word in any::<u64>(), len in 0usize..32, cut in 0usize..32) {
        let s = BitString::from_word(word, len);
        prop_assert_eq!(s.len(), len);
        let cut = cut.min(len);
        let p = s.prefix(cut);
        prop_assert!(s.extends(&p));
        // Rebuilding from bits is identity.
        let rebuilt = BitString::from_bits(s.iter());
        prop_assert_eq!(rebuilt, s);
    }

    /// Euclid trace ends at (gcd, 0) and never grows.
    #[test]
    fn euclid_trace_laws(a in 1u64..200, b in 1u64..200) {
        let trace = gcd::euclid_trace(a, b);
        let last = *trace.last().unwrap();
        prop_assert_eq!(last, (gcd::gcd(a, b), 0));
        for w in trace.windows(2) {
            prop_assert!(w[1].0 + w[1].1 <= w[0].0 + w[0].1);
            // The gcd is invariant along the trace (gcd(x, 0) = x).
            prop_assert_eq!(gcd::gcd(w[1].0, w[1].1), gcd::gcd(a, b));
        }
    }
}
