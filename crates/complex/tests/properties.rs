//! Property-based tests for the simplicial-complex substrate.

use proptest::prelude::*;
use rsbt_complex::{connectivity, homology, iso, ops, search, Complex, ProcessName, Vertex};

/// Strategy: a random chromatic complex on up to `n` names with values in
/// `0..vals`, built from up to `max_facets` random facets.
fn arb_complex(n: u32, vals: u8, max_facets: usize) -> impl Strategy<Value = Complex<u8>> {
    let facet = proptest::collection::vec((0..n, 0..vals), 1..=(n as usize));
    proptest::collection::vec(facet, 1..=max_facets).prop_map(|facets| {
        let mut c = Complex::new();
        for f in facets {
            // Deduplicate names inside the candidate facet (keep first value).
            let mut seen = std::collections::BTreeMap::new();
            for (name, val) in f {
                seen.entry(name).or_insert(val);
            }
            let vs: Vec<Vertex<u8>> = seen
                .into_iter()
                .map(|(name, val)| Vertex::new(ProcessName::new(name), val))
                .collect();
            c.add_facet(vs).expect("distinct names by construction");
        }
        c
    })
}

proptest! {
    // Fixed RNG configuration so tier-1 is deterministic in CI: the
    // vendored proptest derives each property's stream from this seed
    // and the test's module path, with no persistence files.
    #![proptest_config(ProptestConfig {
        cases: 64,
        rng_seed: 0x5253_4254, // "RSBT"
        ..ProptestConfig::default()
    })]
    /// No facet is a face of another facet (maximality invariant).
    #[test]
    fn facets_are_maximal(c in arb_complex(5, 3, 8)) {
        let facets: Vec<_> = c.facets().cloned().collect();
        for (i, a) in facets.iter().enumerate() {
            for (j, b) in facets.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.is_face_of(b), "facet {a:?} ⊆ facet {b:?}");
                }
            }
        }
    }

    /// Every face of every facet is contained in the complex.
    #[test]
    fn downward_closure(c in arb_complex(4, 3, 6)) {
        for f in c.facets() {
            for face in f.faces() {
                prop_assert!(c.contains_simplex(&face));
            }
        }
    }

    /// Insertion is idempotent and order-independent.
    #[test]
    fn insertion_order_irrelevant(c in arb_complex(5, 3, 8)) {
        let facets: Vec<_> = c.facets().cloned().collect();
        let mut rev = Complex::new();
        for f in facets.iter().rev() {
            rev.add_simplex(f.clone());
            rev.add_simplex(f.clone()); // idempotence
        }
        prop_assert_eq!(c, rev);
    }

    /// β_0 equals the number of connected components.
    #[test]
    fn betti0_is_component_count(c in arb_complex(5, 2, 6)) {
        let b = homology::betti_numbers(&c);
        let comps = connectivity::components(&c).len();
        if comps == 0 {
            prop_assert!(b.is_empty());
        } else {
            prop_assert_eq!(b[0], comps);
        }
    }

    /// Euler characteristic equals the alternating sum of Betti numbers.
    #[test]
    fn euler_poincare(c in arb_complex(5, 2, 6)) {
        let b = homology::betti_numbers(&c);
        let alt: i64 = b.iter().enumerate()
            .map(|(d, &x)| if d % 2 == 0 { x as i64 } else { -(x as i64) })
            .sum();
        prop_assert_eq!(homology::euler_characteristic(&c), alt);
    }

    /// A single facet viewed as a complex is mod-2 acyclic (contractible).
    #[test]
    fn facet_complexes_are_acyclic(c in arb_complex(5, 3, 6)) {
        for f in c.facets() {
            let fc = ops::facet_as_complex(f);
            prop_assert!(homology::is_acyclic(&fc));
        }
    }

    /// The induced subcomplex on the full vertex set is the identity.
    #[test]
    fn induced_on_everything_is_identity(c in arb_complex(5, 3, 6)) {
        let all = c.vertices();
        prop_assert_eq!(ops::induced_subcomplex(&c, &all), c);
    }

    /// Induced subcomplexes are monotone: restricting to fewer vertices
    /// yields a subcomplex.
    #[test]
    fn induced_is_subcomplex(c in arb_complex(5, 3, 6), keep in 0usize..32) {
        let all = c.vertices();
        let subset: Vec<_> = all.iter().enumerate()
            .filter(|(i, _)| keep & (1 << (i % 5)) != 0)
            .map(|(_, v)| v.clone())
            .collect();
        let sub = ops::induced_subcomplex(&c, &subset);
        prop_assert!(ops::is_subcomplex(&sub, &c));
    }

    /// Every complex is isomorphic to itself, and isomorphic to a version
    /// with values shifted by a constant.
    #[test]
    fn iso_reflexive_and_value_shift(c in arb_complex(4, 2, 4)) {
        prop_assert!(iso::are_isomorphic(&c, &c));
        let shifted = Complex::from_facets(c.facets().map(|f| {
            f.vertices().map(|v| Vertex::new(v.name(), v.value() + 10)).collect::<Vec<_>>()
        })).unwrap();
        prop_assert!(iso::are_isomorphic(&c, &shifted));
    }

    /// A name-preserving simplicial map into a full simplex over the same
    /// names always exists, and the search returns a valid map.
    #[test]
    fn map_to_cone_exists(c in arb_complex(4, 3, 6)) {
        let names = c.names();
        if names.is_empty() { return Ok(()); }
        let full: Vec<Vertex<u8>> = names.iter().map(|n| Vertex::new(*n, 0)).collect();
        let mut l = Complex::new();
        l.add_facet(full).unwrap();
        let m = search::find_name_preserving_map(&c, &l);
        prop_assert!(m.is_some());
        let m = m.unwrap();
        prop_assert!(m.validate_chromatic(&c, &l).is_ok());
    }

    /// The star of a vertex contains its link joined with the vertex.
    #[test]
    fn star_contains_link(c in arb_complex(4, 2, 5)) {
        for v in c.vertices() {
            let star = ops::star(&c, &v);
            let link = ops::link(&c, &v);
            prop_assert!(ops::is_subcomplex(&link, &star));
            prop_assert!(star.is_empty() || star.contains_vertex(&v));
            prop_assert!(!link.contains_vertex(&v));
        }
    }

    /// Skeleton dimension is capped, and skeleton of skeleton is skeleton.
    #[test]
    fn skeleton_properties(c in arb_complex(5, 2, 6), d in 0usize..4) {
        let sk = ops::skeleton(&c, d);
        if let Some(dim) = sk.dimension() {
            prop_assert!(dim <= d);
        }
        prop_assert_eq!(ops::skeleton(&sk, d), sk.clone());
        prop_assert!(ops::is_subcomplex(&sk, &c));
    }
}
