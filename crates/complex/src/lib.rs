//! Chromatic (colored) abstract simplicial complexes for distributed computing.
//!
//! This crate is the topological substrate of the `rsbt` workspace, the
//! reproduction of *Fraigniaud, Gelles, Lotker — "The Topology of Randomized
//! Symmetry-Breaking Distributed Computing"* (PODC 2021). It provides:
//!
//! * [`Vertex`]: chromatic vertices `(name, value)` where the *name* is the
//!   identity (color) of a processing node and the *value* is its local state;
//! * [`Simplex`] and [`Complex`]: abstract simplicial complexes stored by
//!   their facets (maximal simplices);
//! * [`FacetTable`]: a dense, canonical facet store for full-support
//!   complexes (one value per name `0..n`), with `O(1)` value lookup —
//!   the hot-path representation behind `rsbt_core`'s solvability scans;
//! * combinatorial operators ([`ops`]): induced subcomplexes, star, link,
//!   skeleton, join, union;
//! * [`connectivity`]: connected components of the 1-skeleton;
//! * [`homology`]: mod-2 simplicial homology (Betti numbers, Euler
//!   characteristic), computed with dense GF(2) Gaussian elimination;
//! * [`maps`]: vertex maps with *simplicial*, *name-preserving* and
//!   *name-independent* predicates (the three properties the paper's
//!   solvability definitions hinge on);
//! * [`search`]: exhaustive existence search for name-preserving simplicial
//!   maps between two complexes (used as the "generic" solvability checker);
//! * [`iso`]: chromatic isomorphism testing.
//!
//! # Example
//!
//! Build the leader-election output complex for three processes and check
//! its basic shape:
//!
//! ```
//! use rsbt_complex::{Complex, ProcessName, Vertex};
//!
//! let mut o_le: Complex<u8> = Complex::new();
//! for leader in 0..3u32 {
//!     let facet = (0..3u32).map(|i| {
//!         Vertex::new(ProcessName::new(i), u8::from(i == leader))
//!     });
//!     o_le.add_facet(facet).unwrap();
//! }
//! assert_eq!(o_le.facets().count(), 3);
//! assert_eq!(o_le.dimension(), Some(2));
//! assert!(o_le.is_pure());
//! ```

#![deny(deprecated)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
pub mod connectivity;
mod error;
mod facet_table;
pub mod generators;
pub mod homology;
pub mod iso;
pub mod maps;
pub mod ops;
pub mod render;
pub mod search;
mod simplex;
pub mod subdivision;
mod vertex;

pub use crate::complex::Complex;
pub use crate::error::ComplexError;
pub use crate::facet_table::FacetTable;
pub use crate::simplex::{Faces, Simplex, SubsetsOfLen};
pub use crate::vertex::{ProcessName, Value, Vertex};
