//! Chromatic vertices: `(name, value)` pairs.

use std::fmt;
use std::hash::Hash;

/// The identity ("color") of a processing node in a chromatic complex.
///
/// The paper writes vertices as pairs `(i, x)` with `i ∈ [n]`; `ProcessName`
/// is that `i`. Names start at `0` in this implementation.
///
/// # Example
///
/// ```
/// use rsbt_complex::ProcessName;
/// let p = ProcessName::new(2);
/// assert_eq!(p.index(), 2);
/// assert_eq!(p.to_string(), "p2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcessName(u32);

impl ProcessName {
    /// Creates a process name from a zero-based index.
    pub fn new(index: u32) -> Self {
        ProcessName(index)
    }

    /// Returns the zero-based index of the process.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Returns the first `n` process names `p0, …, p(n-1)`.
    ///
    /// # Example
    ///
    /// ```
    /// use rsbt_complex::ProcessName;
    /// let names: Vec<_> = ProcessName::first(3).collect();
    /// assert_eq!(names.len(), 3);
    /// assert_eq!(names[2].index(), 2);
    /// ```
    pub fn first(n: u32) -> impl Iterator<Item = ProcessName> {
        (0..n).map(ProcessName)
    }
}

impl fmt::Display for ProcessName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProcessName {
    fn from(index: u32) -> Self {
        ProcessName(index)
    }
}

/// Bound alias for the value (local state / output) carried by a vertex.
///
/// Values must support structural equality, hashing (for vertex interning),
/// and a total order (for canonical simplex ordering).
pub trait Value: Clone + Eq + Ord + Hash + fmt::Debug {}

impl<T: Clone + Eq + Ord + Hash + fmt::Debug> Value for T {}

/// A chromatic vertex `(name, value)`.
///
/// Two vertices are equal iff both name and value are equal; a complex may
/// contain several vertices with the same name (e.g. `O_LE` contains `(i, 0)`
/// and `(i, 1)` for every `i`), but a *simplex* never contains two vertices
/// with the same name (proper coloring).
///
/// # Example
///
/// ```
/// use rsbt_complex::{ProcessName, Vertex};
/// let v = Vertex::new(ProcessName::new(0), "elected");
/// assert_eq!(v.name().index(), 0);
/// assert_eq!(*v.value(), "elected");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Vertex<V> {
    name: ProcessName,
    value: V,
}

impl<V: Value> Vertex<V> {
    /// Creates a vertex with the given name (color) and value.
    pub fn new(name: ProcessName, value: V) -> Self {
        Vertex { name, value }
    }

    /// Returns the name (color) of the vertex.
    pub fn name(&self) -> ProcessName {
        self.name
    }

    /// Returns a reference to the value carried by the vertex.
    pub fn value(&self) -> &V {
        &self.value
    }

    /// Consumes the vertex and returns its `(name, value)` pair.
    pub fn into_parts(self) -> (ProcessName, V) {
        (self.name, self.value)
    }
}

impl<V: Value + fmt::Display> fmt::Display for Vertex<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.name, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_roundtrip() {
        assert_eq!(ProcessName::new(7).index(), 7);
        assert_eq!(ProcessName::from(3).index(), 3);
    }

    #[test]
    fn first_yields_contiguous_names() {
        let names: Vec<u32> = ProcessName::first(5).map(ProcessName::index).collect();
        assert_eq!(names, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn vertex_accessors() {
        let v = Vertex::new(ProcessName::new(1), 42u8);
        assert_eq!(v.name(), ProcessName::new(1));
        assert_eq!(*v.value(), 42);
        let (n, val) = v.into_parts();
        assert_eq!((n.index(), val), (1, 42));
    }

    #[test]
    fn vertex_equality_requires_both_fields() {
        let a = Vertex::new(ProcessName::new(0), 1u8);
        let b = Vertex::new(ProcessName::new(0), 2u8);
        let c = Vertex::new(ProcessName::new(1), 1u8);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, Vertex::new(ProcessName::new(0), 1u8));
    }

    #[test]
    fn vertex_ordering_is_name_major() {
        let a = Vertex::new(ProcessName::new(0), 9u8);
        let b = Vertex::new(ProcessName::new(1), 0u8);
        assert!(a < b);
    }

    #[test]
    fn display_formats() {
        let v = Vertex::new(ProcessName::new(2), 1u8);
        assert_eq!(v.to_string(), "(p2, 1)");
    }
}
