//! Abstract chromatic simplicial complexes stored by their facets.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::ComplexError;
use crate::simplex::Simplex;
use crate::vertex::{ProcessName, Value, Vertex};

/// An abstract chromatic simplicial complex.
///
/// The complex is stored by its *facets* (maximal simplices), which fully
/// determine it: a set is a simplex iff it is a face of some facet. Inserting
/// a simplex that is already a face of an existing facet is a no-op;
/// inserting a simplex that strictly contains existing facets absorbs them.
///
/// All simplices are properly colored (no repeated [`ProcessName`] inside a
/// simplex), matching the paper's standing chromatic assumption.
///
/// # Example
///
/// ```
/// use rsbt_complex::{Complex, ProcessName, Vertex};
///
/// let mut k: Complex<&str> = Complex::new();
/// let a = Vertex::new(ProcessName::new(0), "a");
/// let b = Vertex::new(ProcessName::new(1), "b");
/// k.add_facet([a.clone(), b.clone()])?;
/// k.add_facet([a.clone()])?; // absorbed: {a} ⊆ {a, b}
/// assert_eq!(k.facets().count(), 1);
/// assert_eq!(k.dimension(), Some(1));
/// # Ok::<(), rsbt_complex::ComplexError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Complex<V> {
    /// Facets, kept sorted for canonical equality.
    facets: BTreeSet<Simplex<V>>,
}

impl<V: Value> Complex<V> {
    /// Creates an empty complex (no simplices).
    pub fn new() -> Self {
        Complex {
            facets: BTreeSet::new(),
        }
    }

    /// Builds a complex from an iterator of facets (vertex iterators).
    ///
    /// # Errors
    ///
    /// Propagates [`ComplexError`] from simplex construction (empty facet or
    /// duplicate names within a facet).
    pub fn from_facets<I, J>(facets: I) -> Result<Self, ComplexError>
    where
        I: IntoIterator<Item = J>,
        J: IntoIterator<Item = Vertex<V>>,
    {
        let mut c = Complex::new();
        for f in facets {
            c.add_facet(f)?;
        }
        Ok(c)
    }

    /// Builds a complex from already-constructed simplices.
    pub fn from_simplices<I>(simplices: I) -> Self
    where
        I: IntoIterator<Item = Simplex<V>>,
    {
        let mut c = Complex::new();
        for s in simplices {
            c.add_simplex(s);
        }
        c
    }

    /// Inserts the simplex spanned by `vertices`, maintaining facet
    /// maximality. Returns `true` if the complex changed.
    ///
    /// # Errors
    ///
    /// * [`ComplexError::EmptySimplex`] for an empty vertex iterator;
    /// * [`ComplexError::DuplicateName`] if two vertices share a name.
    pub fn add_facet<I>(&mut self, vertices: I) -> Result<bool, ComplexError>
    where
        I: IntoIterator<Item = Vertex<V>>,
    {
        let s = Simplex::from_vertices(vertices)?;
        Ok(self.add_simplex(s))
    }

    /// Inserts a pre-built simplex, maintaining facet maximality. Returns
    /// `true` if the complex changed.
    pub fn add_simplex(&mut self, s: Simplex<V>) -> bool {
        if self.contains_simplex(&s) {
            return false;
        }
        // Absorb facets that are faces of the new simplex.
        let absorbed: Vec<Simplex<V>> = self
            .facets
            .iter()
            .filter(|f| f.is_face_of(&s))
            .cloned()
            .collect();
        for f in absorbed {
            self.facets.remove(&f);
        }
        self.facets.insert(s);
        true
    }

    /// Iterates over the facets (maximal simplices) in canonical order.
    pub fn facets(&self) -> impl Iterator<Item = &Simplex<V>> {
        self.facets.iter()
    }

    /// The number of facets.
    pub fn facet_count(&self) -> usize {
        self.facets.len()
    }

    /// Whether the complex has no simplices at all.
    pub fn is_empty(&self) -> bool {
        self.facets.is_empty()
    }

    /// Whether `s` is a simplex of the complex (a face of some facet).
    pub fn contains_simplex(&self, s: &Simplex<V>) -> bool {
        self.facets.iter().any(|f| s.is_face_of(f))
    }

    /// Whether `v` is a vertex of the complex.
    pub fn contains_vertex(&self, v: &Vertex<V>) -> bool {
        self.facets.iter().any(|f| f.contains(v))
    }

    /// The vertex set `V(K)`, sorted and deduplicated.
    pub fn vertices(&self) -> Vec<Vertex<V>> {
        let set: BTreeSet<Vertex<V>> = self
            .facets
            .iter()
            .flat_map(|f| f.vertices().cloned())
            .collect();
        set.into_iter().collect()
    }

    /// The number of distinct vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices().len()
    }

    /// All distinct simplices of the complex (every non-empty face of every
    /// facet), sorted.
    ///
    /// The count is exponential in facet dimension; intended for the small
    /// complexes of this workspace.
    pub fn simplices(&self) -> Vec<Simplex<V>> {
        let set: BTreeSet<Simplex<V>> = self.facets.iter().flat_map(Simplex::faces).collect();
        set.into_iter().collect()
    }

    /// All distinct simplices of exactly dimension `d`.
    pub fn simplices_of_dimension(&self, d: usize) -> Vec<Simplex<V>> {
        let set: BTreeSet<Simplex<V>> = self
            .facets
            .iter()
            .flat_map(|f| f.faces_of_dimension(d))
            .collect();
        set.into_iter().collect()
    }

    /// The dimension of the complex (max facet dimension), or `None` if the
    /// complex is empty.
    pub fn dimension(&self) -> Option<usize> {
        self.facets.iter().map(Simplex::dimension).max()
    }

    /// Whether all facets have the same dimension.
    ///
    /// The empty complex is vacuously pure.
    pub fn is_pure(&self) -> bool {
        let mut dims = self.facets.iter().map(Simplex::dimension);
        match dims.next() {
            None => true,
            Some(d0) => dims.all(|d| d == d0),
        }
    }

    /// Vertices that form facets of dimension 0 ("isolated nodes" in the
    /// paper — e.g. the elected leader in `π(τ_i)`).
    pub fn isolated_vertices(&self) -> Vec<Vertex<V>> {
        self.facets
            .iter()
            .filter(|f| f.dimension() == 0)
            .map(|f| f.as_slice()[0].clone())
            .collect()
    }

    /// The set of process names appearing in the complex, sorted.
    pub fn names(&self) -> Vec<ProcessName> {
        let set: BTreeSet<ProcessName> = self
            .facets
            .iter()
            .flat_map(|f| f.names().collect::<Vec<_>>())
            .collect();
        set.into_iter().collect()
    }

    /// Whether the complex is *symmetric* (stable under permutations of the
    /// process names), the paper's requirement on output complexes of
    /// symmetry-breaking tasks.
    ///
    /// For every facet `{(i, v_i)}` and every transposition `π` of the name
    /// set, the renamed facet must also be a simplex. Checking all
    /// transpositions suffices since they generate the symmetric group and
    /// the property is closed under composition.
    pub fn is_symmetric(&self) -> bool {
        let names = self.names();
        for facet in &self.facets {
            for (ai, a) in names.iter().enumerate() {
                for b in names.iter().skip(ai + 1) {
                    let swapped: Vec<Vertex<V>> = facet
                        .vertices()
                        .map(|v| {
                            let n = if v.name() == *a {
                                *b
                            } else if v.name() == *b {
                                *a
                            } else {
                                v.name()
                            };
                            Vertex::new(n, v.value().clone())
                        })
                        .collect();
                    match Simplex::from_vertices(swapped) {
                        Ok(s) => {
                            if !self.contains_simplex(&s) {
                                return false;
                            }
                        }
                        Err(_) => return false,
                    }
                }
            }
        }
        true
    }
}

impl<V: Value> FromIterator<Simplex<V>> for Complex<V> {
    fn from_iter<I: IntoIterator<Item = Simplex<V>>>(iter: I) -> Self {
        Complex::from_simplices(iter)
    }
}

impl<V: Value> Extend<Simplex<V>> for Complex<V> {
    fn extend<I: IntoIterator<Item = Simplex<V>>>(&mut self, iter: I) {
        for s in iter {
            self.add_simplex(s);
        }
    }
}

impl<V: Value + fmt::Display> fmt::Display for Complex<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "complex with {} facet(s):", self.facets.len())?;
        for facet in &self.facets {
            writeln!(f, "  {facet}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: u32, value: u8) -> Vertex<u8> {
        Vertex::new(ProcessName::new(name), value)
    }

    fn o_le(n: u32) -> Complex<u8> {
        Complex::from_facets((0..n).map(|leader| {
            (0..n)
                .map(|i| v(i, u8::from(i == leader)))
                .collect::<Vec<_>>()
        }))
        .unwrap()
    }

    #[test]
    fn empty_complex() {
        let c: Complex<u8> = Complex::new();
        assert!(c.is_empty());
        assert_eq!(c.dimension(), None);
        assert!(c.is_pure());
        assert_eq!(c.vertex_count(), 0);
    }

    #[test]
    fn facet_absorption() {
        let mut c = Complex::new();
        assert!(c.add_facet([v(0, 1)]).unwrap());
        assert!(c.add_facet([v(0, 1), v(1, 0)]).unwrap());
        assert_eq!(c.facet_count(), 1);
        assert_eq!(c.dimension(), Some(1));
        // Re-adding a face changes nothing.
        assert!(!c.add_facet([v(0, 1)]).unwrap());
    }

    #[test]
    fn contains_faces_of_facets() {
        let mut c = Complex::new();
        c.add_facet([v(0, 1), v(1, 0), v(2, 0)]).unwrap();
        let edge = Simplex::from_vertices(vec![v(0, 1), v(2, 0)]).unwrap();
        assert!(c.contains_simplex(&edge));
        let other = Simplex::from_vertices(vec![v(0, 0)]).unwrap();
        assert!(!c.contains_simplex(&other));
    }

    #[test]
    fn ole_shape() {
        let c = o_le(3);
        assert_eq!(c.facet_count(), 3);
        assert_eq!(c.dimension(), Some(2));
        assert!(c.is_pure());
        assert_eq!(c.vertex_count(), 6); // (i,0) and (i,1) for each i
        assert_eq!(c.names().len(), 3);
    }

    #[test]
    fn ole_is_symmetric() {
        for n in 1..5 {
            assert!(o_le(n).is_symmetric(), "O_LE symmetric for n={n}");
        }
    }

    #[test]
    fn asymmetric_complex_detected() {
        // Only process 0 may be the leader: not stable under name swap.
        let mut c = Complex::new();
        c.add_facet([v(0, 1), v(1, 0)]).unwrap();
        assert!(!c.is_symmetric());
    }

    #[test]
    fn simplices_enumeration() {
        let mut c = Complex::new();
        c.add_facet([v(0, 1), v(1, 0)]).unwrap();
        // {a}, {b}, {a,b}
        assert_eq!(c.simplices().len(), 3);
        assert_eq!(c.simplices_of_dimension(0).len(), 2);
        assert_eq!(c.simplices_of_dimension(1).len(), 1);
        assert_eq!(c.simplices_of_dimension(2).len(), 0);
    }

    #[test]
    fn isolated_vertices_only_dim0_facets() {
        let mut c = Complex::new();
        c.add_facet([v(0, 1)]).unwrap();
        c.add_facet([v(1, 0), v(2, 0)]).unwrap();
        let iso = c.isolated_vertices();
        assert_eq!(iso, vec![v(0, 1)]);
    }

    #[test]
    fn impure_complex() {
        let mut c = Complex::new();
        c.add_facet([v(0, 1)]).unwrap();
        c.add_facet([v(1, 0), v(2, 0)]).unwrap();
        assert!(!c.is_pure());
    }

    #[test]
    fn from_iterator_collects() {
        let s1 = Simplex::from_vertices(vec![v(0, 1)]).unwrap();
        let s2 = Simplex::from_vertices(vec![v(0, 1), v(1, 0)]).unwrap();
        let c: Complex<u8> = vec![s1, s2].into_iter().collect();
        assert_eq!(c.facet_count(), 1);
    }

    #[test]
    fn canonical_equality() {
        let a = o_le(3);
        let mut b = Complex::new();
        for leader in [2u32, 0, 1] {
            b.add_facet((0..3).map(|i| v(i, u8::from(i == leader))))
                .unwrap();
        }
        assert_eq!(a, b);
    }
}
