//! Simplices of chromatic complexes: properly-colored vertex sets.

use std::fmt;

use crate::error::ComplexError;
use crate::generators::Combinations;
use crate::vertex::{ProcessName, Value, Vertex};

/// A non-empty, properly colored set of vertices.
///
/// "Properly colored" means no two vertices share a [`ProcessName`] — the
/// standing assumption for every complex in the paper. Vertices are stored
/// sorted by `(name, value)` so structural equality and hashing are
/// canonical.
///
/// # Example
///
/// ```
/// use rsbt_complex::{ProcessName, Simplex, Vertex};
///
/// let s = Simplex::from_vertices(vec![
///     Vertex::new(ProcessName::new(1), 0u8),
///     Vertex::new(ProcessName::new(0), 1u8),
/// ])?;
/// assert_eq!(s.dimension(), 1);
/// assert_eq!(s.vertices().next().unwrap().name().index(), 0); // sorted
/// # Ok::<(), rsbt_complex::ComplexError>(())
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Simplex<V> {
    /// Sorted by `(name, value)`; names pairwise distinct.
    vertices: Vec<Vertex<V>>,
}

impl<V: Value> Simplex<V> {
    /// Builds a simplex from an iterator of vertices.
    ///
    /// Duplicate *vertices* (same name and value) are collapsed; duplicate
    /// *names* with different values are rejected.
    ///
    /// # Errors
    ///
    /// * [`ComplexError::EmptySimplex`] if the iterator is empty;
    /// * [`ComplexError::DuplicateName`] if two vertices share a name but
    ///   carry different values.
    pub fn from_vertices<I>(vertices: I) -> Result<Self, ComplexError>
    where
        I: IntoIterator<Item = Vertex<V>>,
    {
        let mut vs: Vec<Vertex<V>> = vertices.into_iter().collect();
        if vs.is_empty() {
            return Err(ComplexError::EmptySimplex);
        }
        vs.sort();
        vs.dedup();
        for w in vs.windows(2) {
            if w[0].name() == w[1].name() {
                return Err(ComplexError::DuplicateName(w[0].name()));
            }
        }
        Ok(Simplex { vertices: vs })
    }

    /// Builds the 0-dimensional simplex `{v}`.
    pub fn singleton(v: Vertex<V>) -> Self {
        Simplex { vertices: vec![v] }
    }

    /// The dimension `|V(σ)| − 1`.
    pub fn dimension(&self) -> usize {
        self.vertices.len() - 1
    }

    /// The number of vertices `|V(σ)| = dim(σ) + 1`.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// A simplex is never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over the vertices in canonical `(name, value)` order.
    pub fn vertices(&self) -> impl Iterator<Item = &Vertex<V>> {
        self.vertices.iter()
    }

    /// Returns the sorted vertex slice.
    pub fn as_slice(&self) -> &[Vertex<V>] {
        &self.vertices
    }

    /// Whether `v` is a vertex of this simplex.
    pub fn contains(&self, v: &Vertex<V>) -> bool {
        self.vertices.binary_search(v).is_ok()
    }

    /// Whether this simplex is a (non-strict) face of `other`, i.e.
    /// `V(self) ⊆ V(other)`.
    pub fn is_face_of(&self, other: &Simplex<V>) -> bool {
        // Both sides sorted: merge scan.
        let mut it = other.vertices.iter();
        'outer: for v in &self.vertices {
            for w in it.by_ref() {
                match w.cmp(v) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// The names (colors) appearing in the simplex, sorted.
    ///
    /// This is the paper's `names(σ)`.
    pub fn names(&self) -> impl Iterator<Item = ProcessName> + '_ {
        self.vertices.iter().map(Vertex::name)
    }

    /// Returns the value held by process `name`, if that process appears.
    pub fn value_of(&self, name: ProcessName) -> Option<&V> {
        self.vertices
            .binary_search_by_key(&name, |v| v.name())
            .ok()
            .map(|i| self.vertices[i].value())
    }

    /// Enumerates every non-empty face of the simplex (`2^{dim+1} − 1` of
    /// them), lazily, in subset-mask order. Each face is built only when
    /// the iterator reaches it — nothing is materialized up front.
    ///
    /// # Panics
    ///
    /// Panics if the simplex has more than 62 vertices (mask overflow); the
    /// complexes in this workspace are orders of magnitude smaller.
    pub fn faces(&self) -> Faces<'_, V> {
        let k = self.vertices.len();
        assert!(k <= 62, "face enumeration limited to 62 vertices");
        Faces {
            simplex: self,
            mask: 1,
            end: 1u64 << k,
        }
    }

    /// Enumerates the faces of exactly dimension `d` (i.e. `d+1` vertices),
    /// lazily, in combination order.
    pub fn faces_of_dimension(&self, d: usize) -> SubsetsOfLen<'_, V> {
        self.subsets_of_len(d + 1)
    }

    /// The boundary: all faces of codimension 1, lazily. Empty for a
    /// 0-simplex.
    pub fn boundary(&self) -> SubsetsOfLen<'_, V> {
        if self.dimension() == 0 {
            return self.subsets_of_len(0);
        }
        self.subsets_of_len(self.vertices.len() - 1)
    }

    fn subsets_of_len(&self, len: usize) -> SubsetsOfLen<'_, V> {
        SubsetsOfLen {
            simplex: self,
            // A simplex has no empty face, so len == 0 yields nothing
            // (Combinations::new(_, 0) would yield the empty subset).
            combinations: if len == 0 {
                Combinations::empty()
            } else {
                Combinations::new(self.vertices.len(), len)
            },
        }
    }
}

/// Lazy iterator over every non-empty face of a simplex, in subset-mask
/// order (see [`Simplex::faces`]).
#[derive(Clone, Debug)]
pub struct Faces<'a, V> {
    simplex: &'a Simplex<V>,
    mask: u64,
    end: u64,
}

impl<V: Value> Iterator for Faces<'_, V> {
    type Item = Simplex<V>;

    fn next(&mut self) -> Option<Simplex<V>> {
        if self.mask >= self.end {
            return None;
        }
        let mask = self.mask;
        self.mask += 1;
        let vertices: Vec<Vertex<V>> = (0..self.simplex.vertices.len())
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| self.simplex.vertices[i].clone())
            .collect();
        Some(Simplex { vertices })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.end - self.mask) as usize;
        (left, Some(left))
    }
}

impl<V: Value> ExactSizeIterator for Faces<'_, V> {}

/// Lazy iterator over the faces with a fixed vertex count, in combination
/// order (see [`Simplex::faces_of_dimension`] and [`Simplex::boundary`]):
/// [`Combinations`] over the vertex indices, mapped to sub-simplices.
#[derive(Clone, Debug)]
pub struct SubsetsOfLen<'a, V> {
    simplex: &'a Simplex<V>,
    combinations: Combinations,
}

impl<V: Value> Iterator for SubsetsOfLen<'_, V> {
    type Item = Simplex<V>;

    fn next(&mut self) -> Option<Simplex<V>> {
        let idx = self.combinations.next()?;
        Some(Simplex {
            vertices: idx
                .iter()
                .map(|&i| self.simplex.vertices[i].clone())
                .collect(),
        })
    }
}

impl<V: Value + fmt::Display> fmt::Display for Simplex<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: u32, value: u8) -> Vertex<u8> {
        Vertex::new(ProcessName::new(name), value)
    }

    fn s(vs: Vec<Vertex<u8>>) -> Simplex<u8> {
        Simplex::from_vertices(vs).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            Simplex::<u8>::from_vertices(Vec::new()),
            Err(ComplexError::EmptySimplex)
        ));
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Simplex::from_vertices(vec![v(0, 0), v(0, 1)]).unwrap_err();
        assert!(matches!(err, ComplexError::DuplicateName(n) if n.index() == 0));
    }

    #[test]
    fn collapses_duplicate_vertices() {
        let sx = s(vec![v(0, 1), v(0, 1), v(1, 0)]);
        assert_eq!(sx.dimension(), 1);
    }

    #[test]
    fn canonical_order() {
        let a = s(vec![v(2, 0), v(0, 1), v(1, 0)]);
        let b = s(vec![v(0, 1), v(1, 0), v(2, 0)]);
        assert_eq!(a, b);
        let names: Vec<u32> = a.names().map(ProcessName::index).collect();
        assert_eq!(names, vec![0, 1, 2]);
    }

    #[test]
    fn face_relation() {
        let big = s(vec![v(0, 1), v(1, 0), v(2, 0)]);
        let small = s(vec![v(0, 1), v(2, 0)]);
        let not_face = s(vec![v(0, 0), v(2, 0)]);
        assert!(small.is_face_of(&big));
        assert!(big.is_face_of(&big));
        assert!(!not_face.is_face_of(&big));
        assert!(!big.is_face_of(&small));
    }

    #[test]
    fn faces_count_matches_powerset() {
        let sx = s(vec![v(0, 1), v(1, 0), v(2, 0)]);
        assert_eq!(sx.faces().len(), 7);
        assert_eq!(sx.faces().count(), 7);
        assert_eq!(sx.faces_of_dimension(1).count(), 3);
        assert_eq!(sx.faces_of_dimension(0).count(), 3);
        assert_eq!(sx.faces_of_dimension(2).count(), 1);
        assert_eq!(sx.faces_of_dimension(3).count(), 0);
    }

    #[test]
    fn boundary_of_edge_is_two_points() {
        let e = s(vec![v(0, 1), v(1, 0)]);
        let b: Vec<_> = e.boundary().collect();
        assert_eq!(b.len(), 2);
        assert!(b.iter().all(|f| f.dimension() == 0));
    }

    #[test]
    fn boundary_of_point_is_empty() {
        let p = s(vec![v(0, 1)]);
        assert_eq!(p.boundary().count(), 0);
    }

    #[test]
    fn value_lookup() {
        let sx = s(vec![v(0, 1), v(1, 0)]);
        assert_eq!(sx.value_of(ProcessName::new(0)), Some(&1));
        assert_eq!(sx.value_of(ProcessName::new(1)), Some(&0));
        assert_eq!(sx.value_of(ProcessName::new(2)), None);
    }

    #[test]
    fn contains_vertex() {
        let sx = s(vec![v(0, 1), v(1, 0)]);
        assert!(sx.contains(&v(0, 1)));
        assert!(!sx.contains(&v(0, 0)));
    }
}
