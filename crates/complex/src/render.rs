//! Rendering complexes for inspection: Graphviz DOT (1-skeleton) and a
//! canonical text format with a parser (round-trip tested).

use std::collections::BTreeSet;
use std::fmt::Display;

use crate::complex::Complex;
use crate::error::ComplexError;
use crate::simplex::Simplex;
use crate::vertex::{ProcessName, Value, Vertex};

/// Renders the 1-skeleton of `k` as a Graphviz DOT graph. Vertices are
/// labeled `name:value`; facets of dimension ≥ 1 contribute their edges,
/// isolated vertices appear as lone nodes.
///
/// # Example
///
/// ```
/// use rsbt_complex::{render, Complex, ProcessName, Vertex};
/// let mut k = Complex::new();
/// k.add_facet([Vertex::new(ProcessName::new(0), 1u8)])?;
/// let dot = render::to_dot(&k, "pi_tau");
/// assert!(dot.contains("graph pi_tau"));
/// assert!(dot.contains("p0:1"));
/// # Ok::<(), rsbt_complex::ComplexError>(())
/// ```
pub fn to_dot<V: Value + Display>(k: &Complex<V>, name: &str) -> String {
    let mut out = format!("graph {name} {{\n");
    let node_id = |v: &Vertex<V>| format!("\"{}:{}\"", v.name(), v.value());
    let mut emitted_edges: BTreeSet<(String, String)> = BTreeSet::new();
    for v in k.vertices() {
        out.push_str(&format!(
            "  {} [label=\"{}:{}\"];\n",
            node_id(&v),
            v.name(),
            v.value()
        ));
    }
    for facet in k.facets() {
        let vs: Vec<&Vertex<V>> = facet.vertices().collect();
        for (i, a) in vs.iter().enumerate() {
            for b in vs.iter().skip(i + 1) {
                let key = (node_id(a), node_id(b));
                if emitted_edges.insert(key.clone()) {
                    out.push_str(&format!("  {} -- {};\n", key.0, key.1));
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Serializes a complex to the canonical text format: one facet per line,
/// vertices as `name:value` separated by spaces, sorted.
pub fn to_text<V: Value + Display>(k: &Complex<V>) -> String {
    let mut out = String::new();
    for facet in k.facets() {
        let cells: Vec<String> = facet
            .vertices()
            .map(|v| format!("{}:{}", v.name().index(), v.value()))
            .collect();
        out.push_str(&cells.join(" "));
        out.push('\n');
    }
    out
}

/// Parses the [`to_text`] format back into a complex with `u64` values.
///
/// # Errors
///
/// Returns [`ComplexError`] wrapped in a message when a line is malformed
/// (bad `name:value` cell, duplicate names in a facet, empty facet).
pub fn from_text(text: &str) -> Result<Complex<u64>, String> {
    let mut c = Complex::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut vs = Vec::new();
        for cell in line.split_whitespace() {
            let (name, value) = cell
                .split_once(':')
                .ok_or_else(|| format!("line {}: cell `{cell}` is not name:value", lineno + 1))?;
            let name: u32 = name
                .parse()
                .map_err(|e| format!("line {}: bad name `{name}`: {e}", lineno + 1))?;
            let value: u64 = value
                .parse()
                .map_err(|e| format!("line {}: bad value `{value}`: {e}", lineno + 1))?;
            vs.push(Vertex::new(ProcessName::new(name), value));
        }
        let simplex: Simplex<u64> = Simplex::from_vertices(vs)
            .map_err(|e: ComplexError| format!("line {}: {e}", lineno + 1))?;
        c.add_simplex(simplex);
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: u32, value: u64) -> Vertex<u64> {
        Vertex::new(ProcessName::new(name), value)
    }

    #[test]
    fn dot_contains_vertices_and_edges() {
        let mut k = Complex::new();
        k.add_facet([v(0, 1)]).unwrap();
        k.add_facet([v(1, 0), v(2, 0)]).unwrap();
        let dot = to_dot(&k, "g");
        assert!(dot.starts_with("graph g {"));
        assert!(dot.contains("\"p0:1\""));
        assert!(dot.contains("\"p1:0\" -- \"p2:0\";"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_dedups_shared_edges() {
        let mut k = Complex::new();
        k.add_facet([v(0, 0), v(1, 0), v(2, 0)]).unwrap();
        let dot = to_dot(&k, "t");
        assert_eq!(dot.matches(" -- ").count(), 3, "triangle has 3 edges");
    }

    #[test]
    fn text_roundtrip() {
        let mut k = Complex::new();
        k.add_facet([v(0, 1)]).unwrap();
        k.add_facet([v(1, 0), v(2, 0)]).unwrap();
        k.add_facet([v(0, 0), v(1, 0), v(2, 7)]).unwrap();
        let text = to_text(&k);
        let back = from_text(&text).unwrap();
        assert_eq!(back, k);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_text("0:1 0:2").is_err(), "duplicate name");
        assert!(from_text("nonsense").is_err());
        assert!(from_text("0:x").is_err());
        assert!(from_text("x:0").is_err());
        // Blank lines are fine.
        let c = from_text("\n0:1\n\n").unwrap();
        assert_eq!(c.facet_count(), 1);
    }

    #[test]
    fn parse_maintains_maximality() {
        let c = from_text("0:1\n0:1 1:0\n").unwrap();
        assert_eq!(c.facet_count(), 1);
    }
}
