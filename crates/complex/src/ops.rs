//! Combinatorial operators on complexes: induced subcomplex, star, link,
//! skeleton, join, union.

use std::collections::BTreeSet;

use crate::complex::Complex;
use crate::simplex::Simplex;
use crate::vertex::{Value, Vertex};

/// The induced subcomplex of `k` on the vertex set `x`:
/// `{ σ ∈ K | V(σ) ⊆ X }`.
///
/// This is the operation the paper uses to define the consistency projection
/// `π(σ)` as an induced subcomplex of `P(t)` on `V(σ)`.
///
/// # Example
///
/// ```
/// use rsbt_complex::{Complex, ProcessName, Vertex, ops};
///
/// let a = Vertex::new(ProcessName::new(0), 0u8);
/// let b = Vertex::new(ProcessName::new(1), 0u8);
/// let c = Vertex::new(ProcessName::new(2), 0u8);
/// let mut k = Complex::new();
/// k.add_facet([a.clone(), b.clone(), c.clone()])?;
/// let sub = ops::induced_subcomplex(&k, &[a.clone(), b.clone()]);
/// assert_eq!(sub.dimension(), Some(1));
/// # Ok::<(), rsbt_complex::ComplexError>(())
/// ```
pub fn induced_subcomplex<V: Value>(k: &Complex<V>, x: &[Vertex<V>]) -> Complex<V> {
    let keep: BTreeSet<&Vertex<V>> = x.iter().collect();
    let mut out = Complex::new();
    for facet in k.facets() {
        let vs: Vec<Vertex<V>> = facet
            .vertices()
            .filter(|v| keep.contains(v))
            .cloned()
            .collect();
        if !vs.is_empty() {
            out.add_facet(vs)
                .expect("subset of a valid simplex is valid");
        }
    }
    out
}

/// The (closed) star of vertex `v`: all simplices contained in a simplex
/// containing `v`.
pub fn star<V: Value>(k: &Complex<V>, v: &Vertex<V>) -> Complex<V> {
    let mut out = Complex::new();
    for facet in k.facets() {
        if facet.contains(v) {
            out.add_simplex(facet.clone());
        }
    }
    out
}

/// The link of vertex `v`: `{ σ ∈ K | v ∉ σ, σ ∪ {v} ∈ K }`.
pub fn link<V: Value>(k: &Complex<V>, v: &Vertex<V>) -> Complex<V> {
    let mut out = Complex::new();
    for facet in k.facets() {
        if facet.contains(v) {
            let rest: Vec<Vertex<V>> = facet.vertices().filter(|w| *w != v).cloned().collect();
            if !rest.is_empty() {
                out.add_facet(rest).expect("valid sub-simplex");
            }
        }
    }
    out
}

/// The `d`-skeleton: all simplices of dimension at most `d`.
pub fn skeleton<V: Value>(k: &Complex<V>, d: usize) -> Complex<V> {
    let mut out = Complex::new();
    for facet in k.facets() {
        if facet.dimension() <= d {
            out.add_simplex(facet.clone());
        } else {
            for f in facet.faces_of_dimension(d) {
                out.add_simplex(f);
            }
        }
    }
    out
}

/// The join `K * L` of two complexes on disjoint name sets: simplices are
/// unions `σ ∪ τ` with `σ ∈ K ∪ {∅}`, `τ ∈ L ∪ {∅}` (minus the empty set).
///
/// # Panics
///
/// Panics if the name sets of `k` and `l` intersect (the join of chromatic
/// complexes is only defined for disjoint colors).
pub fn join<V: Value>(k: &Complex<V>, l: &Complex<V>) -> Complex<V> {
    let kn: BTreeSet<_> = k.names().into_iter().collect();
    let ln: BTreeSet<_> = l.names().into_iter().collect();
    assert!(
        kn.is_disjoint(&ln),
        "join requires disjoint process-name sets"
    );
    if k.is_empty() {
        return l.clone();
    }
    if l.is_empty() {
        return k.clone();
    }
    let mut out = Complex::new();
    for fk in k.facets() {
        for fl in l.facets() {
            let vs: Vec<Vertex<V>> = fk.vertices().chain(fl.vertices()).cloned().collect();
            out.add_facet(vs)
                .expect("disjoint names imply proper coloring");
        }
    }
    out
}

/// The union `K ∪ L` (simplices of either complex).
pub fn union<V: Value>(k: &Complex<V>, l: &Complex<V>) -> Complex<V> {
    let mut out = k.clone();
    for facet in l.facets() {
        out.add_simplex(facet.clone());
    }
    out
}

/// Whether `sub` is a subcomplex of `sup` (every simplex of `sub` is a
/// simplex of `sup`). Facet containment suffices.
pub fn is_subcomplex<V: Value>(sub: &Complex<V>, sup: &Complex<V>) -> bool {
    sub.facets().all(|f| sup.contains_simplex(f))
}

/// The complex consisting of a single facet, viewed as a complex (the paper
/// repeatedly treats a facet `σ ∈ P(t)` "being viewed as a complex").
pub fn facet_as_complex<V: Value>(facet: &Simplex<V>) -> Complex<V> {
    let mut out = Complex::new();
    out.add_simplex(facet.clone());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex::ProcessName;

    fn v(name: u32, value: u8) -> Vertex<u8> {
        Vertex::new(ProcessName::new(name), value)
    }

    fn triangle() -> Complex<u8> {
        let mut c = Complex::new();
        c.add_facet([v(0, 0), v(1, 0), v(2, 0)]).unwrap();
        c
    }

    #[test]
    fn induced_subcomplex_restricts() {
        let c = triangle();
        let sub = induced_subcomplex(&c, &[v(0, 0), v(2, 0)]);
        assert_eq!(sub.dimension(), Some(1));
        assert_eq!(sub.facet_count(), 1);
        let empty = induced_subcomplex(&c, &[v(0, 9)]);
        assert!(empty.is_empty());
    }

    #[test]
    fn induced_subcomplex_keeps_components() {
        // Two disjoint edges; restrict to three of the four vertices.
        let mut c = Complex::new();
        c.add_facet([v(0, 0), v(1, 0)]).unwrap();
        c.add_facet([v(2, 0), v(3, 0)]).unwrap();
        let sub = induced_subcomplex(&c, &[v(0, 0), v(1, 0), v(2, 0)]);
        assert_eq!(sub.facet_count(), 2);
        assert!(!sub.is_pure());
    }

    #[test]
    fn star_and_link() {
        let c = triangle();
        let s = star(&c, &v(0, 0));
        assert_eq!(s.dimension(), Some(2));
        let l = link(&c, &v(0, 0));
        assert_eq!(l.dimension(), Some(1));
        assert!(!l.contains_vertex(&v(0, 0)));
        assert!(l.contains_vertex(&v(1, 0)));
        // Vertex not in the complex: empty star and link.
        assert!(star(&c, &v(0, 9)).is_empty());
        assert!(link(&c, &v(0, 9)).is_empty());
    }

    #[test]
    fn skeleton_cuts_dimension() {
        let c = triangle();
        let sk1 = skeleton(&c, 1);
        assert_eq!(sk1.dimension(), Some(1));
        assert_eq!(sk1.facet_count(), 3); // three edges
        let sk0 = skeleton(&c, 0);
        assert_eq!(sk0.facet_count(), 3); // three isolated vertices

        // Skeleton at or above the dimension is the identity.
        assert_eq!(skeleton(&c, 2), c);
        assert_eq!(skeleton(&c, 5), c);
    }

    #[test]
    fn join_of_point_and_edge_is_triangle() {
        let mut p = Complex::new();
        p.add_facet([v(0, 0)]).unwrap();
        let mut e = Complex::new();
        e.add_facet([v(1, 0), v(2, 0)]).unwrap();
        let j = join(&p, &e);
        assert_eq!(j, triangle());
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn join_rejects_shared_names() {
        let mut p = Complex::new();
        p.add_facet([v(0, 0)]).unwrap();
        let mut q = Complex::new();
        q.add_facet([v(0, 1)]).unwrap();
        let _ = join(&p, &q);
    }

    #[test]
    fn join_with_empty_is_identity() {
        let c = triangle();
        let e: Complex<u8> = Complex::new();
        assert_eq!(join(&c, &e), c);
        assert_eq!(join(&e, &c), c);
    }

    #[test]
    fn union_merges() {
        let mut a = Complex::new();
        a.add_facet([v(0, 0), v(1, 0)]).unwrap();
        let mut b = Complex::new();
        b.add_facet([v(1, 0), v(2, 0)]).unwrap();
        let u = union(&a, &b);
        assert_eq!(u.facet_count(), 2);
        assert!(is_subcomplex(&a, &u));
        assert!(is_subcomplex(&b, &u));
        assert!(!is_subcomplex(&u, &a));
    }

    #[test]
    fn facet_as_complex_roundtrip() {
        let c = triangle();
        let f = c.facets().next().unwrap().clone();
        let fc = facet_as_complex(&f);
        assert_eq!(fc.facet_count(), 1);
        assert!(is_subcomplex(&fc, &c));
    }
}
