//! Mod-2 simplicial homology: Betti numbers and Euler characteristic.
//!
//! The homotopy-type arguments of topological distributed computing are
//! driven by connectivity information; over `GF(2)` the Betti numbers
//! `β_0, β_1, …` are computable with plain Gaussian elimination on boundary
//! matrices, which suffices for the complexes in this workspace (e.g.
//! verifying that `π(O_LE)` is a disjoint union of a point and a simplex:
//! `β_0 = 2`, higher Betti numbers zero).

use std::collections::BTreeMap;

use crate::complex::Complex;
use crate::vertex::Value;

/// The Betti numbers `β_0 … β_dim` of the complex over `GF(2)`.
///
/// Returns an empty vector for the empty complex. `β_0` counts connected
/// components (unreduced homology).
///
/// # Example
///
/// A hollow triangle (three edges, no 2-face) has one loop:
///
/// ```
/// use rsbt_complex::{Complex, ProcessName, Vertex, homology};
///
/// let v = |i: u32| Vertex::new(ProcessName::new(i), 0u8);
/// let mut k = Complex::new();
/// k.add_facet([v(0), v(1)])?;
/// k.add_facet([v(1), v(2)])?;
/// k.add_facet([v(0), v(2)])?;
/// assert_eq!(homology::betti_numbers(&k), vec![1, 1]);
/// # Ok::<(), rsbt_complex::ComplexError>(())
/// ```
pub fn betti_numbers<V: Value>(k: &Complex<V>) -> Vec<usize> {
    let dim = match k.dimension() {
        None => return Vec::new(),
        Some(d) => d,
    };
    // Index simplices per dimension.
    let mut counts = Vec::with_capacity(dim + 1);
    let mut index_by_dim: Vec<BTreeMap<crate::Simplex<V>, usize>> = Vec::with_capacity(dim + 1);
    for d in 0..=dim {
        let simplices = k.simplices_of_dimension(d);
        counts.push(simplices.len());
        index_by_dim.push(simplices.into_iter().zip(0..).collect());
    }
    // rank of ∂_d : C_d → C_{d-1} for d = 1..=dim (∂_0 = 0).
    let mut ranks = vec![0usize; dim + 2];
    for d in 1..=dim {
        let rows = counts[d - 1];
        let mut matrix: Vec<BitRow> = Vec::with_capacity(counts[d]);
        for s in index_by_dim[d].keys() {
            let mut col = BitRow::zero(rows);
            for face in s.boundary() {
                let r = index_by_dim[d - 1][&face];
                col.set(r);
            }
            matrix.push(col);
        }
        ranks[d] = gf2_rank(matrix);
    }
    // β_d = dim C_d − rank ∂_d − rank ∂_{d+1}
    (0..=dim)
        .map(|d| counts[d] - ranks[d] - ranks[d + 1])
        .collect()
}

/// The Euler characteristic `Σ_d (−1)^d · #{d-simplices}`.
///
/// Equal to the alternating sum of Betti numbers (checked by property test).
pub fn euler_characteristic<V: Value>(k: &Complex<V>) -> i64 {
    let dim = match k.dimension() {
        None => return 0,
        Some(d) => d,
    };
    (0..=dim)
        .map(|d| {
            let c = k.simplices_of_dimension(d).len() as i64;
            if d % 2 == 0 {
                c
            } else {
                -c
            }
        })
        .sum()
}

/// Whether the complex has the mod-2 homology of a point
/// (`β = [1, 0, 0, …]`). Every non-empty simplex (as a complex) is
/// mod-2 acyclic.
pub fn is_acyclic<V: Value>(k: &Complex<V>) -> bool {
    let b = betti_numbers(k);
    match b.split_first() {
        None => false,
        Some((first, rest)) => *first == 1 && rest.iter().all(|&x| x == 0),
    }
}

/// A dense GF(2) row backed by `u64` words.
#[derive(Clone)]
struct BitRow {
    words: Vec<u64>,
}

impl BitRow {
    fn zero(bits: usize) -> Self {
        BitRow {
            words: vec![0; bits.div_ceil(64).max(1)],
        }
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] ^= 1 << (i % 64);
    }

    fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    fn xor_assign(&mut self, other: &BitRow) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= *b;
        }
    }

    fn leading_bit(&self) -> Option<usize> {
        for (w, word) in self.words.iter().enumerate() {
            if *word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }
}

/// Rank of a GF(2) matrix given as a list of rows (here: boundary columns).
fn gf2_rank(mut rows: Vec<BitRow>) -> usize {
    let mut pivots: Vec<BitRow> = Vec::new();
    'rows: for mut row in rows.drain(..) {
        loop {
            let lead = match row.leading_bit() {
                None => continue 'rows,
                Some(l) => l,
            };
            match pivots
                .iter()
                .find(|p| p.get(lead) && p.leading_bit() == Some(lead))
            {
                Some(p) => {
                    let p = p.clone();
                    row.xor_assign(&p);
                }
                None => {
                    pivots.push(row);
                    continue 'rows;
                }
            }
        }
    }
    pivots.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex::{ProcessName, Vertex};

    fn v(name: u32, value: u8) -> Vertex<u8> {
        Vertex::new(ProcessName::new(name), value)
    }

    #[test]
    fn empty_complex_has_no_betti() {
        let c: Complex<u8> = Complex::new();
        assert!(betti_numbers(&c).is_empty());
        assert_eq!(euler_characteristic(&c), 0);
        assert!(!is_acyclic(&c));
    }

    #[test]
    fn point_is_acyclic() {
        let mut c = Complex::new();
        c.add_facet([v(0, 0)]).unwrap();
        assert_eq!(betti_numbers(&c), vec![1]);
        assert_eq!(euler_characteristic(&c), 1);
        assert!(is_acyclic(&c));
    }

    #[test]
    fn solid_triangle_is_acyclic() {
        let mut c = Complex::new();
        c.add_facet([v(0, 0), v(1, 0), v(2, 0)]).unwrap();
        assert_eq!(betti_numbers(&c), vec![1, 0, 0]);
        assert_eq!(euler_characteristic(&c), 1);
        assert!(is_acyclic(&c));
    }

    #[test]
    fn hollow_triangle_has_a_loop() {
        let mut c = Complex::new();
        c.add_facet([v(0, 0), v(1, 0)]).unwrap();
        c.add_facet([v(1, 0), v(2, 0)]).unwrap();
        c.add_facet([v(0, 0), v(2, 0)]).unwrap();
        assert_eq!(betti_numbers(&c), vec![1, 1]);
        assert_eq!(euler_characteristic(&c), 0);
        assert!(!is_acyclic(&c));
    }

    #[test]
    fn two_components() {
        let mut c = Complex::new();
        c.add_facet([v(0, 0)]).unwrap();
        c.add_facet([v(1, 0), v(2, 0)]).unwrap();
        assert_eq!(betti_numbers(&c)[0], 2);
        assert_eq!(euler_characteristic(&c), 2);
    }

    #[test]
    fn hollow_tetrahedron_is_a_sphere() {
        // Boundary of a 3-simplex: β = [1, 0, 1].
        let verts = [v(0, 0), v(1, 0), v(2, 0), v(3, 0)];
        let mut c = Complex::new();
        for skip in 0..4 {
            let face: Vec<_> = verts
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, x)| x.clone())
                .collect();
            c.add_facet(face).unwrap();
        }
        assert_eq!(betti_numbers(&c), vec![1, 0, 1]);
        assert_eq!(euler_characteristic(&c), 2);
    }

    #[test]
    fn euler_equals_alternating_betti_sum() {
        // On a mixed complex.
        let mut c = Complex::new();
        c.add_facet([v(0, 0), v(1, 0), v(2, 0)]).unwrap();
        c.add_facet([v(2, 0), v(3, 0)]).unwrap();
        c.add_facet([v(4, 0)]).unwrap();
        let b = betti_numbers(&c);
        let alt: i64 = b
            .iter()
            .enumerate()
            .map(|(d, &x)| if d % 2 == 0 { x as i64 } else { -(x as i64) })
            .sum();
        assert_eq!(euler_characteristic(&c), alt);
    }

    #[test]
    fn betti0_matches_component_count() {
        let mut c = Complex::new();
        c.add_facet([v(0, 0), v(1, 0)]).unwrap();
        c.add_facet([v(2, 0), v(3, 0)]).unwrap();
        c.add_facet([v(4, 0)]).unwrap();
        let comps = crate::connectivity::components(&c).len();
        assert_eq!(betti_numbers(&c)[0], comps);
    }
}
