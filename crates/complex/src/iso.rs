//! Chromatic isomorphism testing between complexes.
//!
//! The paper's map `h : P(t) → R(t)` "induces an isomorphism between facets
//! of `P(t)` and facets of `R(t)`"; this module provides the general notion:
//! a name-preserving bijective simplicial map whose inverse is simplicial.

use std::collections::BTreeSet;

use crate::complex::Complex;
use crate::maps::VertexMap;
use crate::vertex::{Value, Vertex};

/// Searches for a name-preserving isomorphism `k → l`.
///
/// An isomorphism is a bijective simplicial map whose inverse is also
/// simplicial. Returns `None` when the complexes are not isomorphic.
///
/// # Example
///
/// ```
/// use rsbt_complex::{iso, Complex, ProcessName, Vertex};
///
/// let v = |i: u32, x: u8| Vertex::new(ProcessName::new(i), x);
/// let mut k = Complex::new();
/// k.add_facet([v(0, 1), v(1, 2)])?;
/// let mut l = Complex::new();
/// l.add_facet([v(0, 9), v(1, 8)])?;
/// assert!(iso::find_isomorphism(&k, &l).is_some());
/// # Ok::<(), rsbt_complex::ComplexError>(())
/// ```
pub fn find_isomorphism<V: Value, W: Value>(
    k: &Complex<V>,
    l: &Complex<W>,
) -> Option<VertexMap<V, W>> {
    // Cheap invariants first.
    if k.vertex_count() != l.vertex_count()
        || k.facet_count() != l.facet_count()
        || k.dimension() != l.dimension()
    {
        return None;
    }
    let mut facet_dims_k: Vec<usize> = k.facets().map(|f| f.dimension()).collect();
    let mut facet_dims_l: Vec<usize> = l.facets().map(|f| f.dimension()).collect();
    facet_dims_k.sort_unstable();
    facet_dims_l.sort_unstable();
    if facet_dims_k != facet_dims_l {
        return None;
    }
    // Backtracking over injective name-preserving assignments.
    let dom = k.vertices();
    let cod = l.vertices();
    let mut assignment: Vec<Option<Vertex<W>>> = vec![None; dom.len()];
    let mut used: BTreeSet<Vertex<W>> = BTreeSet::new();
    if backtrack(k, l, &dom, &cod, 0, &mut assignment, &mut used) {
        let map: VertexMap<V, W> = dom
            .into_iter()
            .zip(assignment.into_iter().map(|a| a.expect("complete")))
            .collect();
        Some(map)
    } else {
        None
    }
}

/// Whether `k` and `l` are isomorphic as chromatic complexes.
pub fn are_isomorphic<V: Value, W: Value>(k: &Complex<V>, l: &Complex<W>) -> bool {
    find_isomorphism(k, l).is_some()
}

fn backtrack<V: Value, W: Value>(
    k: &Complex<V>,
    l: &Complex<W>,
    dom: &[Vertex<V>],
    cod: &[Vertex<W>],
    next: usize,
    assignment: &mut Vec<Option<Vertex<W>>>,
    used: &mut BTreeSet<Vertex<W>>,
) -> bool {
    if next == dom.len() {
        // Full bijection; verify both directions are simplicial.
        let fwd: VertexMap<V, W> = dom
            .iter()
            .cloned()
            .zip(assignment.iter().map(|a| a.clone().expect("complete")))
            .collect();
        if !fwd.is_simplicial(k, l) {
            return false;
        }
        let bwd: VertexMap<W, V> = assignment
            .iter()
            .map(|a| a.clone().expect("complete"))
            .zip(dom.iter().cloned())
            .collect();
        return bwd.is_simplicial(l, k);
    }
    for cand in cod {
        if cand.name() != dom[next].name() || used.contains(cand) {
            continue;
        }
        assignment[next] = Some(cand.clone());
        used.insert(cand.clone());
        if backtrack(k, l, dom, cod, next + 1, assignment, used) {
            return true;
        }
        used.remove(cand);
        assignment[next] = None;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex::ProcessName;

    fn v(name: u32, value: u8) -> Vertex<u8> {
        Vertex::new(ProcessName::new(name), value)
    }

    #[test]
    fn relabeled_values_are_isomorphic() {
        let mut k = Complex::new();
        k.add_facet([v(0, 1), v(1, 2)]).unwrap();
        k.add_facet([v(0, 3)]).unwrap();
        let mut l = Complex::new();
        l.add_facet([v(0, 10), v(1, 20)]).unwrap();
        l.add_facet([v(0, 30)]).unwrap();
        let m = find_isomorphism(&k, &l).unwrap();
        assert!(m.is_name_preserving());
        assert!(are_isomorphic(&l, &k));
    }

    #[test]
    fn different_facet_structure_not_isomorphic() {
        // A path of two edges vs a disjoint pair of edges: the cheap vertex
        // count invariant already separates them (3 vs 4 vertices).
        let mut path = Complex::new();
        path.add_facet([v(0, 0), v(1, 0)]).unwrap();
        path.add_facet([v(1, 0), v(2, 0)]).unwrap();
        // Disjoint union of an edge and... must keep 3 vertices, 2 facets,
        // dim 1: edge {p0,p1} + edge {p0',p2} where p0' is another vertex of
        // name 0 — then vertex counts differ (4 vs 3). So expect None by the
        // cheap invariant.
        let mut disj = Complex::new();
        disj.add_facet([v(0, 0), v(1, 0)]).unwrap();
        disj.add_facet([v(0, 1), v(2, 0)]).unwrap();
        assert!(!are_isomorphic(&path, &disj));
    }

    #[test]
    fn simplicial_but_not_iso_rejected() {
        // k: two isolated vertices of p0; l: one vertex of p0.
        let mut k = Complex::new();
        k.add_facet([v(0, 0)]).unwrap();
        k.add_facet([v(0, 1)]).unwrap();
        let mut l = Complex::new();
        l.add_facet([v(0, 0)]).unwrap();
        assert!(crate::search::exists_name_preserving_map(&k, &l));
        assert!(!are_isomorphic(&k, &l));
    }

    #[test]
    fn hollow_vs_solid_triangle_not_isomorphic() {
        let mut solid = Complex::new();
        solid.add_facet([v(0, 0), v(1, 0), v(2, 0)]).unwrap();
        let mut hollow = Complex::new();
        hollow.add_facet([v(0, 0), v(1, 0)]).unwrap();
        hollow.add_facet([v(1, 0), v(2, 0)]).unwrap();
        hollow.add_facet([v(0, 0), v(2, 0)]).unwrap();
        assert!(!are_isomorphic(&solid, &hollow));
    }

    #[test]
    fn identity_is_isomorphism() {
        let mut k = Complex::new();
        k.add_facet([v(0, 0), v(1, 1), v(2, 2)]).unwrap();
        k.add_facet([v(0, 5)]).unwrap();
        assert!(are_isomorphic(&k, &k));
    }

    #[test]
    fn value_permutation_within_name() {
        // k has p0 vertices {0,1} forming two facets with p1; l swaps roles.
        let mut k = Complex::new();
        k.add_facet([v(0, 0), v(1, 0)]).unwrap();
        k.add_facet([v(0, 1)]).unwrap();
        let mut l = Complex::new();
        l.add_facet([v(0, 1), v(1, 0)]).unwrap();
        l.add_facet([v(0, 0)]).unwrap();
        assert!(are_isomorphic(&k, &l));
    }
}
