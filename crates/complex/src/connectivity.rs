//! Connectivity of the 1-skeleton: components and path-connectedness.
//!
//! Connectivity is the classic obstruction in topological distributed
//! computing (e.g. consensus impossibility); the paper's projection
//! complexes `π̃(ρ)` are disjoint unions of simplices, so their components
//! are exactly the consistency classes.

use std::collections::{BTreeMap, BTreeSet};

use crate::complex::Complex;
use crate::vertex::{Value, Vertex};

/// The connected components of the 1-skeleton of `k`, each returned as a
/// sorted vertex list. Components are sorted by their minimal vertex.
///
/// # Example
///
/// ```
/// use rsbt_complex::{Complex, ProcessName, Vertex, connectivity};
///
/// let mut k = Complex::new();
/// k.add_facet([Vertex::new(ProcessName::new(0), 0u8)])?;
/// k.add_facet([
///     Vertex::new(ProcessName::new(1), 0u8),
///     Vertex::new(ProcessName::new(2), 0u8),
/// ])?;
/// assert_eq!(connectivity::components(&k).len(), 2);
/// # Ok::<(), rsbt_complex::ComplexError>(())
/// ```
pub fn components<V: Value>(k: &Complex<V>) -> Vec<Vec<Vertex<V>>> {
    let vertices = k.vertices();
    let index: BTreeMap<&Vertex<V>, usize> = vertices.iter().zip(0..).collect();
    let mut dsu = Dsu::new(vertices.len());
    for facet in k.facets() {
        let ids: Vec<usize> = facet.vertices().map(|v| index[v]).collect();
        for w in ids.windows(2) {
            dsu.union(w[0], w[1]);
        }
    }
    let mut groups: BTreeMap<usize, Vec<Vertex<V>>> = BTreeMap::new();
    for (i, v) in vertices.iter().enumerate() {
        groups.entry(dsu.find(i)).or_default().push(v.clone());
    }
    let mut out: Vec<Vec<Vertex<V>>> = groups.into_values().collect();
    out.sort();
    out
}

/// Whether the complex is path-connected (has at most one component).
///
/// The empty complex is considered connected.
pub fn is_connected<V: Value>(k: &Complex<V>) -> bool {
    components(k).len() <= 1
}

/// Whether two vertices lie in the same component.
///
/// Returns `false` if either vertex is not in the complex.
pub fn same_component<V: Value>(k: &Complex<V>, a: &Vertex<V>, b: &Vertex<V>) -> bool {
    components(k)
        .iter()
        .any(|c| c.binary_search(a).is_ok() && c.binary_search(b).is_ok())
}

/// The vertex sets of the components, as sets (convenience for membership
/// checks).
pub fn component_sets<V: Value>(k: &Complex<V>) -> Vec<BTreeSet<Vertex<V>>> {
    components(k)
        .into_iter()
        .map(|c| c.into_iter().collect())
        .collect()
}

/// Disjoint-set union with path halving and union by size.
struct Dsu {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex::ProcessName;

    fn v(name: u32, value: u8) -> Vertex<u8> {
        Vertex::new(ProcessName::new(name), value)
    }

    #[test]
    fn empty_is_connected() {
        let c: Complex<u8> = Complex::new();
        assert!(is_connected(&c));
        assert!(components(&c).is_empty());
    }

    #[test]
    fn single_facet_is_connected() {
        let mut c = Complex::new();
        c.add_facet([v(0, 0), v(1, 0), v(2, 0)]).unwrap();
        assert!(is_connected(&c));
        assert_eq!(components(&c).len(), 1);
        assert_eq!(components(&c)[0].len(), 3);
    }

    #[test]
    fn disjoint_simplices_are_components() {
        let mut c = Complex::new();
        c.add_facet([v(0, 0)]).unwrap();
        c.add_facet([v(1, 0), v(2, 0)]).unwrap();
        c.add_facet([v(3, 0), v(4, 0), v(5, 0)]).unwrap();
        let comps = components(&c);
        assert_eq!(comps.len(), 3);
        let sizes: Vec<usize> = comps.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![1, 2, 3]);
        assert!(!is_connected(&c));
    }

    #[test]
    fn shared_vertex_joins_components() {
        let mut c = Complex::new();
        c.add_facet([v(0, 0), v(1, 0)]).unwrap();
        c.add_facet([v(1, 0), v(2, 0)]).unwrap();
        assert!(is_connected(&c));
        assert!(same_component(&c, &v(0, 0), &v(2, 0)));
    }

    #[test]
    fn same_component_false_for_missing_vertex() {
        let mut c = Complex::new();
        c.add_facet([v(0, 0)]).unwrap();
        assert!(!same_component(&c, &v(0, 0), &v(9, 9)));
    }

    #[test]
    fn component_sets_match_components() {
        let mut c = Complex::new();
        c.add_facet([v(0, 0)]).unwrap();
        c.add_facet([v(1, 0), v(2, 0)]).unwrap();
        let sets = component_sets(&c);
        assert_eq!(sets.len(), 2);
        assert!(sets.iter().any(|s| s.contains(&v(0, 0)) && s.len() == 1));
    }
}
