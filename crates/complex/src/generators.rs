//! Generators for standard complexes, with known homotopy types.
//!
//! Useful as test fixtures (their Betti numbers are classical) and as
//! building blocks for output complexes.

use crate::complex::Complex;
use crate::vertex::{ProcessName, Vertex};

/// The full `(n−1)`-simplex on names `0..n`, all values `0`.
///
/// Mod-2 acyclic: `β = [1, 0, …, 0]`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use rsbt_complex::{generators, homology};
/// let s = generators::solid_simplex(4);
/// assert!(homology::is_acyclic(&s));
/// ```
pub fn solid_simplex(n: usize) -> Complex<u64> {
    assert!(n >= 1, "need at least one vertex");
    let mut c = Complex::new();
    c.add_facet((0..n).map(|i| Vertex::new(ProcessName::new(i as u32), 0u64)))
        .expect("distinct names");
    c
}

/// The boundary of the `(n−1)`-simplex: a combinatorial `(n−2)`-sphere.
///
/// `β = [1, 0, …, 0, 1]` with the final 1 in dimension `n − 2`.
///
/// # Panics
///
/// Panics if `n < 2` (the boundary of a point is empty).
pub fn boundary_sphere(n: usize) -> Complex<u64> {
    assert!(n >= 2, "boundary sphere needs n ≥ 2");
    let mut c = Complex::new();
    for skip in 0..n {
        c.add_facet(
            (0..n)
                .filter(|&i| i != skip)
                .map(|i| Vertex::new(ProcessName::new(i as u32), 0u64)),
        )
        .expect("distinct names");
    }
    c
}

/// A cycle (combinatorial circle) on `n ≥ 3` vertices: edges
/// `{i, i+1 mod n}`. `β = [1, 1]`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Complex<u64> {
    assert!(n >= 3, "a combinatorial circle needs n ≥ 3");
    let mut c = Complex::new();
    for i in 0..n {
        let j = (i + 1) % n;
        c.add_facet([
            Vertex::new(ProcessName::new(i as u32), 0u64),
            Vertex::new(ProcessName::new(j as u32), 0u64),
        ])
        .expect("distinct names");
    }
    c
}

/// A path on `n ≥ 1` vertices: edges `{i, i+1}`. Acyclic.
pub fn path(n: usize) -> Complex<u64> {
    assert!(n >= 1);
    let mut c = Complex::new();
    if n == 1 {
        c.add_facet([Vertex::new(ProcessName::new(0), 0u64)])
            .expect("singleton");
        return c;
    }
    for i in 0..n - 1 {
        c.add_facet([
            Vertex::new(ProcessName::new(i as u32), 0u64),
            Vertex::new(ProcessName::new(i as u32 + 1), 0u64),
        ])
        .expect("distinct names");
    }
    c
}

/// `m` disjoint points (names `0..m`, value per name). `β = [m]`.
pub fn points(m: usize) -> Complex<u64> {
    assert!(m >= 1);
    let mut c = Complex::new();
    for i in 0..m {
        c.add_facet([Vertex::new(ProcessName::new(i as u32), 0u64)])
            .expect("singleton");
    }
    c
}

/// The octahedral `(d)`-sphere (boundary of the `(d+1)`-cross-polytope):
/// vertices `(i, 0)` and `(i, 1)` for `i ∈ 0..d+1`; facets pick one of the
/// two values per name. `2^{d+1}` facets, `β = [1, 0, …, 0, 1]`.
///
/// This is also the shape of the *full* realization complex `R(1)` (one
/// round, independent bits) — the paper's Figure 2 for `n = d + 1`.
///
/// # Panics
///
/// Panics if `d + 1 == 0` overflows (practically never).
pub fn octahedral_sphere(d: usize) -> Complex<u64> {
    let n = d + 1;
    let mut c = Complex::new();
    for mask in 0..1u64 << n {
        c.add_facet((0..n).map(|i| Vertex::new(ProcessName::new(i as u32), mask >> i & 1)))
            .expect("distinct names");
    }
    c
}

/// Lazy enumeration of the `len`-element index subsets of `0..n`, in
/// lexicographic combination order — the shared advance logic behind
/// [`Simplex::faces_of_dimension`](crate::Simplex::faces_of_dimension)
/// and the `k`-subset facet generators in `rsbt-tasks`.
///
/// Yields `C(n, len)` subsets; in particular `Combinations::new(n, 0)`
/// yields the single empty subset.
///
/// # Example
///
/// ```
/// use rsbt_complex::generators::Combinations;
/// let pairs: Vec<Vec<usize>> = Combinations::new(3, 2).collect();
/// assert_eq!(pairs, vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
/// ```
#[derive(Clone, Debug)]
pub struct Combinations {
    n: usize,
    /// Current combination (ascending indices).
    idx: Vec<usize>,
    done: bool,
}

impl Combinations {
    /// Starts the enumeration of `len`-subsets of `0..n`.
    pub fn new(n: usize, len: usize) -> Self {
        Combinations {
            n,
            idx: (0..len).collect(),
            done: len > n,
        }
    }

    /// An already-exhausted enumeration (yields nothing).
    pub fn empty() -> Self {
        Combinations {
            n: 0,
            idx: Vec::new(),
            done: true,
        }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let out = self.idx.clone();
        let len = self.idx.len();
        let mut i = len;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.idx[i] != i + self.n - len {
                self.idx[i] += 1;
                for j in i + 1..len {
                    self.idx[j] = self.idx[j - 1] + 1;
                }
                break;
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity;
    use crate::homology;

    #[test]
    fn combinations_counts_are_binomial() {
        fn binomial(n: usize, k: usize) -> usize {
            if k > n {
                return 0;
            }
            (0..k).fold(1, |acc, i| acc * (n - i) / (i + 1))
        }
        for n in 0..=6 {
            for len in 0..=7 {
                let all: Vec<Vec<usize>> = Combinations::new(n, len).collect();
                assert_eq!(all.len(), binomial(n, len), "n={n} len={len}");
                // Strictly increasing within, lexicographic across.
                for c in &all {
                    assert!(c.windows(2).all(|w| w[0] < w[1]));
                    assert!(c.iter().all(|&i| i < n));
                }
                assert!(all.windows(2).all(|w| w[0] < w[1]), "n={n} len={len}");
            }
        }
        assert_eq!(Combinations::empty().count(), 0);
    }

    #[test]
    fn solid_simplices_are_acyclic() {
        for n in 1..=5 {
            let s = solid_simplex(n);
            assert!(homology::is_acyclic(&s), "n={n}");
            assert_eq!(s.dimension(), Some(n - 1));
        }
    }

    #[test]
    fn boundary_spheres_have_top_homology() {
        for n in 3..=5 {
            let s = boundary_sphere(n);
            let mut expect = vec![0usize; n - 1];
            expect[0] = 1;
            expect[n - 2] = 1;
            assert_eq!(homology::betti_numbers(&s), expect, "n={n}");
            // χ(S^d) = 1 + (−1)^d with d = n − 2.
            assert_eq!(
                homology::euler_characteristic(&s),
                if n % 2 == 0 { 2 } else { 0 }
            );
        }
    }

    #[test]
    fn boundary_sphere_n2_is_two_points() {
        let s = boundary_sphere(2);
        assert_eq!(homology::betti_numbers(&s), vec![2]);
    }

    #[test]
    fn cycles_are_circles() {
        for n in 3..=7 {
            assert_eq!(homology::betti_numbers(&cycle(n)), vec![1, 1], "n={n}");
        }
    }

    #[test]
    fn paths_are_contractible() {
        for n in 1..=6 {
            assert!(homology::is_acyclic(&path(n)), "n={n}");
            assert!(connectivity::is_connected(&path(n)));
        }
    }

    #[test]
    fn points_count_components() {
        for m in 1..=5 {
            assert_eq!(homology::betti_numbers(&points(m)), vec![m]);
        }
    }

    #[test]
    fn octahedral_spheres() {
        // d = 1: 4-cycle (circle); d = 2: octahedron (2-sphere).
        assert_eq!(homology::betti_numbers(&octahedral_sphere(1)), vec![1, 1]);
        assert_eq!(
            homology::betti_numbers(&octahedral_sphere(2)),
            vec![1, 0, 1]
        );
        assert_eq!(octahedral_sphere(2).facet_count(), 8);
    }

    #[test]
    fn octahedral_sphere_is_r1() {
        // The paper's R(1) for n nodes equals the octahedral (n−1)-sphere
        // with bit values — same facet and vertex counts, and isomorphic
        // as chromatic complexes after encoding bits as u64.
        let oct = octahedral_sphere(2);
        assert_eq!(oct.vertex_count(), 6);
        assert_eq!(oct.facet_count(), 8);
    }
}
