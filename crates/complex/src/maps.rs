//! Vertex maps between chromatic complexes and the paper's three key
//! predicates: *simplicial*, *name-preserving*, *name-independent*.

use std::collections::BTreeMap;
use std::fmt;

use crate::complex::Complex;
use crate::error::ComplexError;
use crate::simplex::Simplex;
use crate::vertex::{Value, Vertex};

/// A total map on a finite vertex set, from vertices over `V` to vertices
/// over `W`.
///
/// Wraps a finite table; apply it to simplices and complexes with
/// [`VertexMap::apply`] and [`VertexMap::image`].
///
/// # Example
///
/// ```
/// use rsbt_complex::{maps::VertexMap, Complex, ProcessName, Vertex};
///
/// let k0 = Vertex::new(ProcessName::new(0), "knowledge-a");
/// let mut delta = VertexMap::new();
/// delta.insert(k0.clone(), Vertex::new(ProcessName::new(0), 1u8));
/// assert_eq!(delta.get(&k0).unwrap().value(), &1u8);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct VertexMap<V, W> {
    table: BTreeMap<Vertex<V>, Vertex<W>>,
}

impl<V: Value, W: Value> VertexMap<V, W> {
    /// Creates an empty map.
    pub fn new() -> Self {
        VertexMap {
            table: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) the image of `from`, returning the previous image
    /// if any.
    pub fn insert(&mut self, from: Vertex<V>, to: Vertex<W>) -> Option<Vertex<W>> {
        self.table.insert(from, to)
    }

    /// Looks up the image of a vertex.
    pub fn get(&self, from: &Vertex<V>) -> Option<&Vertex<W>> {
        self.table.get(from)
    }

    /// The number of vertices in the domain.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Iterates over `(domain vertex, image vertex)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Vertex<V>, &Vertex<W>)> {
        self.table.iter()
    }

    /// Applies the map to a simplex.
    ///
    /// # Errors
    ///
    /// * [`ComplexError::VertexNotInDomain`] if a vertex has no image;
    /// * [`ComplexError::DuplicateName`] if two vertices map to the same name
    ///   with different values (the image is not properly colored).
    pub fn apply(&self, s: &Simplex<V>) -> Result<Simplex<W>, ComplexError> {
        let images: Result<Vec<Vertex<W>>, ComplexError> = s
            .vertices()
            .map(|v| {
                self.table
                    .get(v)
                    .cloned()
                    .ok_or(ComplexError::VertexNotInDomain)
            })
            .collect();
        Simplex::from_vertices(images?)
    }

    /// The image complex `{ f(σ) : σ ∈ K }` restricted to simplices whose
    /// image is well defined.
    ///
    /// # Errors
    ///
    /// Same conditions as [`VertexMap::apply`], on any facet.
    pub fn image(&self, k: &Complex<V>) -> Result<Complex<W>, ComplexError> {
        let mut out = Complex::new();
        for f in k.facets() {
            out.add_simplex(self.apply(f)?);
        }
        Ok(out)
    }

    /// Whether the map is *simplicial* from `k` to `l`: every simplex of `k`
    /// maps to a simplex of `l`. Checking facets suffices because `l` is
    /// closed under taking faces.
    pub fn is_simplicial(&self, k: &Complex<V>, l: &Complex<W>) -> bool {
        k.facets().all(|f| match self.apply(f) {
            Ok(img) => l.contains_simplex(&img),
            Err(_) => false,
        })
    }

    /// Whether the map is *name-preserving*: `δ(i, x) = (i, y)`.
    pub fn is_name_preserving(&self) -> bool {
        self.table.iter().all(|(a, b)| a.name() == b.name())
    }

    /// Whether the map is *name-independent*: the output value depends only
    /// on the input value, i.e. if `δ(i, x) = (i, y)` then `δ(j, x) = (j, y)`
    /// whenever `(j, x)` is in the domain.
    pub fn is_name_independent(&self) -> bool {
        let mut by_value: BTreeMap<&V, &W> = BTreeMap::new();
        for (a, b) in &self.table {
            match by_value.insert(a.value(), b.value()) {
                Some(prev) if prev != b.value() => return false,
                _ => {}
            }
        }
        true
    }

    /// Composes `self` with `next`, yielding `next ∘ self`.
    ///
    /// # Errors
    ///
    /// [`ComplexError::VertexNotInDomain`] if some image of `self` is outside
    /// the domain of `next`.
    pub fn then<U: Value>(&self, next: &VertexMap<W, U>) -> Result<VertexMap<V, U>, ComplexError> {
        let mut out = VertexMap::new();
        for (a, b) in &self.table {
            let c = next
                .get(b)
                .cloned()
                .ok_or(ComplexError::VertexNotInDomain)?;
            out.insert(a.clone(), c);
        }
        Ok(out)
    }

    /// Validates that the map is a name-preserving simplicial map `k → l`
    /// (the paper's `δ`), returning a descriptive error if not.
    ///
    /// # Errors
    ///
    /// * [`ComplexError::NotNamePreserving`] if some vertex changes name;
    /// * [`ComplexError::NotSimplicial`] if some facet image is not a simplex
    ///   of `l` (or is not well defined).
    pub fn validate_chromatic(&self, k: &Complex<V>, l: &Complex<W>) -> Result<(), ComplexError> {
        if !self.is_name_preserving() {
            return Err(ComplexError::NotNamePreserving);
        }
        if !self.is_simplicial(k, l) {
            return Err(ComplexError::NotSimplicial);
        }
        Ok(())
    }
}

impl<V: Value, W: Value> FromIterator<(Vertex<V>, Vertex<W>)> for VertexMap<V, W> {
    fn from_iter<I: IntoIterator<Item = (Vertex<V>, Vertex<W>)>>(iter: I) -> Self {
        VertexMap {
            table: iter.into_iter().collect(),
        }
    }
}

impl<V: Value + fmt::Display, W: Value + fmt::Display> fmt::Display for VertexMap<V, W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "vertex map with {} entries:", self.table.len())?;
        for (a, b) in &self.table {
            writeln!(f, "  {a} ↦ {b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex::ProcessName;

    fn v(name: u32, value: u8) -> Vertex<u8> {
        Vertex::new(ProcessName::new(name), value)
    }

    fn o_le(n: u32) -> Complex<u8> {
        Complex::from_facets((0..n).map(|leader| {
            (0..n)
                .map(|i| v(i, u8::from(i == leader)))
                .collect::<Vec<_>>()
        }))
        .unwrap()
    }

    /// A 1-round protocol-like complex on two vertices per process.
    fn square() -> Complex<u8> {
        // Values 0/1 per process; all four edges (i.e. all combinations).
        let mut c = Complex::new();
        for a in 0..2u8 {
            for b in 0..2u8 {
                c.add_facet([v(0, a), v(1, b)]).unwrap();
            }
        }
        c
    }

    #[test]
    fn apply_and_missing_domain() {
        let mut m: VertexMap<u8, u8> = VertexMap::new();
        m.insert(v(0, 0), v(0, 1));
        let s = Simplex::from_vertices(vec![v(0, 0), v(1, 0)]).unwrap();
        assert!(matches!(m.apply(&s), Err(ComplexError::VertexNotInDomain)));
        m.insert(v(1, 0), v(1, 0));
        assert_eq!(m.apply(&s).unwrap().dimension(), 1);
    }

    #[test]
    fn name_preserving_detection() {
        let mut m: VertexMap<u8, u8> = VertexMap::new();
        m.insert(v(0, 0), v(0, 1));
        assert!(m.is_name_preserving());
        m.insert(v(1, 0), v(2, 1));
        assert!(!m.is_name_preserving());
    }

    #[test]
    fn name_independent_detection() {
        let mut m: VertexMap<u8, u8> = VertexMap::new();
        m.insert(v(0, 7), v(0, 1));
        m.insert(v(1, 7), v(1, 1));
        m.insert(v(1, 8), v(1, 0));
        assert!(m.is_name_independent());
        // Same input value 7, different output values: dependent on name.
        m.insert(v(2, 7), v(2, 0));
        assert!(!m.is_name_independent());
    }

    #[test]
    fn simplicial_into_ole() {
        // Map the asymmetric vertices of the square onto O_LE outputs:
        // value 1 -> leader (1), value 0 -> defeated (0). The facet {00}
        // and {11} would map to all-0 / all-1 which are NOT in O_LE, so the
        // full square is not simplicial into O_LE...
        let mut m: VertexMap<u8, u8> = VertexMap::new();
        for i in 0..2u32 {
            m.insert(v(i, 0), v(i, 0));
            m.insert(v(i, 1), v(i, 1));
        }
        let sq = square();
        let ole = o_le(2);
        assert!(!m.is_simplicial(&sq, &ole));
        // ...but restricted to the symmetric-breaking facet {01} it is.
        let mut broken = Complex::new();
        broken.add_facet([v(0, 0), v(1, 1)]).unwrap();
        assert!(m.is_simplicial(&broken, &ole));
        m.validate_chromatic(&broken, &ole).unwrap();
    }

    #[test]
    fn validate_reports_name_violation_first() {
        let mut m: VertexMap<u8, u8> = VertexMap::new();
        m.insert(v(0, 0), v(1, 0));
        let mut k = Complex::new();
        k.add_facet([v(0, 0)]).unwrap();
        let mut l = Complex::new();
        l.add_facet([v(1, 0)]).unwrap();
        assert_eq!(
            m.validate_chromatic(&k, &l),
            Err(ComplexError::NotNamePreserving)
        );
    }

    #[test]
    fn image_collapses() {
        // Both knowledge vertices of p0 map to the same output vertex.
        let mut m: VertexMap<u8, u8> = VertexMap::new();
        m.insert(v(0, 0), v(0, 0));
        m.insert(v(0, 1), v(0, 0));
        let mut k = Complex::new();
        k.add_facet([v(0, 0)]).unwrap();
        k.add_facet([v(0, 1)]).unwrap();
        let img = m.image(&k).unwrap();
        assert_eq!(img.vertex_count(), 1);
    }

    #[test]
    fn composition() {
        let mut f: VertexMap<u8, u8> = VertexMap::new();
        f.insert(v(0, 0), v(0, 1));
        let mut g: VertexMap<u8, u8> = VertexMap::new();
        g.insert(v(0, 1), v(0, 2));
        let h = f.then(&g).unwrap();
        assert_eq!(h.get(&v(0, 0)), Some(&v(0, 2)));
        // Composition with a map missing the intermediate vertex fails.
        let empty: VertexMap<u8, u8> = VertexMap::new();
        assert!(f.then(&empty).is_err());
    }

    #[test]
    fn collapsing_to_duplicate_names_is_error() {
        let mut m: VertexMap<u8, u8> = VertexMap::new();
        m.insert(v(0, 0), v(0, 0));
        m.insert(v(1, 0), v(0, 1));
        let s = Simplex::from_vertices(vec![v(0, 0), v(1, 0)]).unwrap();
        assert!(matches!(m.apply(&s), Err(ComplexError::DuplicateName(_))));
    }

    #[test]
    fn from_iterator() {
        let m: VertexMap<u8, u8> = vec![(v(0, 0), v(0, 1))].into_iter().collect();
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }
}
