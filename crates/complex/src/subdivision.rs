//! Barycentric subdivision.
//!
//! The subdivision `Bary(K)` has one vertex per simplex of `K`, and a
//! simplex per chain `σ_0 ⊊ σ_1 ⊊ … ⊊ σ_m` of simplices of `K`. It is the
//! standard "refinement" operator of combinatorial topology: it preserves
//! the homotopy type (checked here through mod-2 Betti numbers), and
//! iterated subdivisions model multi-round full-information protocol
//! evolution in the HKR framework that this paper builds on.
//!
//! Chromatic note: subdivision vertices are colored by the *dimension* of
//! the simplex they came from — the standard coloring making `Bary(K)` a
//! chromatic complex when `K` is pure.

use std::collections::BTreeMap;

use crate::complex::Complex;
use crate::simplex::Simplex;
use crate::vertex::{ProcessName, Value, Vertex};

/// A vertex of the subdivision: the simplex of `K` it stands for, encoded
/// canonically as its sorted vertex list.
pub type BaryValue<V> = Vec<Vertex<V>>;

/// Computes the barycentric subdivision of `k`.
///
/// The resulting vertices carry the originating simplex as their value and
/// its dimension as their name.
///
/// # Example
///
/// Subdividing an edge yields a path of two edges (3 vertices):
///
/// ```
/// use rsbt_complex::{subdivision, Complex, ProcessName, Vertex};
///
/// let mut k = Complex::new();
/// k.add_facet([
///     Vertex::new(ProcessName::new(0), 0u8),
///     Vertex::new(ProcessName::new(1), 0u8),
/// ])?;
/// let bary = subdivision::barycentric(&k);
/// assert_eq!(bary.vertex_count(), 3);
/// assert_eq!(bary.facet_count(), 2);
/// # Ok::<(), rsbt_complex::ComplexError>(())
/// ```
pub fn barycentric<V: Value>(k: &Complex<V>) -> Complex<BaryValue<V>> {
    let mut out = Complex::new();
    for facet in k.facets() {
        // Chains within a single facet: enumerate all maximal chains of
        // its face lattice. A maximal chain of an m-simplex picks a
        // permutation of its vertices (add one vertex at a time).
        let vs: Vec<Vertex<V>> = facet.vertices().cloned().collect();
        let mut order: Vec<usize> = (0..vs.len()).collect();
        permute_chains(&vs, &mut order, 0, &mut out);
    }
    out
}

/// Recursively enumerates vertex orders of a facet, emitting the chain
/// simplex for each order.
fn permute_chains<V: Value>(
    vs: &[Vertex<V>],
    order: &mut Vec<usize>,
    fixed: usize,
    out: &mut Complex<BaryValue<V>>,
) {
    if fixed == vs.len() {
        let chain: Vec<Vertex<BaryValue<V>>> = (0..vs.len())
            .map(|d| {
                let mut prefix: Vec<Vertex<V>> =
                    order[..=d].iter().map(|&i| vs[i].clone()).collect();
                prefix.sort();
                Vertex::new(ProcessName::new(d as u32), prefix)
            })
            .collect();
        out.add_facet(chain)
            .expect("chain vertices have distinct dims");
        return;
    }
    for i in fixed..vs.len() {
        order.swap(fixed, i);
        permute_chains(vs, order, fixed + 1, out);
        order.swap(fixed, i);
    }
}

/// The number of simplices of each dimension in `k`, as a map — the
/// f-vector. Useful for checking subdivision counts.
pub fn f_vector<V: Value>(k: &Complex<V>) -> BTreeMap<usize, usize> {
    let mut out = BTreeMap::new();
    if let Some(dim) = k.dimension() {
        for d in 0..=dim {
            out.insert(d, k.simplices_of_dimension(d).len());
        }
    }
    out
}

/// The simplex of `K` represented by a subdivision vertex.
pub fn carrier<V: Value>(v: &Vertex<BaryValue<V>>) -> Simplex<V> {
    Simplex::from_vertices(v.value().clone()).expect("non-empty carrier")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homology;

    fn v(name: u32, value: u8) -> Vertex<u8> {
        Vertex::new(ProcessName::new(name), value)
    }

    #[test]
    fn point_subdivides_to_point() {
        let mut k = Complex::new();
        k.add_facet([v(0, 0)]).unwrap();
        let b = barycentric(&k);
        assert_eq!(b.vertex_count(), 1);
        assert_eq!(b.facet_count(), 1);
    }

    #[test]
    fn triangle_subdivision_counts() {
        // A 2-simplex subdivides into 6 triangles on 7 vertices.
        let mut k = Complex::new();
        k.add_facet([v(0, 0), v(1, 0), v(2, 0)]).unwrap();
        let b = barycentric(&k);
        assert_eq!(b.vertex_count(), 7); // 3 + 3 + 1 simplices of K
        assert_eq!(b.facet_count(), 6); // 3! maximal chains
        assert!(b.is_pure());
        assert_eq!(b.dimension(), Some(2));
    }

    #[test]
    fn subdivision_preserves_betti_numbers() {
        // Hollow triangle (a circle): β = [1, 1] before and after.
        let mut k = Complex::new();
        k.add_facet([v(0, 0), v(1, 0)]).unwrap();
        k.add_facet([v(1, 0), v(2, 0)]).unwrap();
        k.add_facet([v(0, 0), v(2, 0)]).unwrap();
        let b = barycentric(&k);
        assert_eq!(
            homology::betti_numbers(&k),
            homology::betti_numbers(&b),
            "subdivision is a homeomorphism"
        );
        // And once more.
        let bb = barycentric(&b);
        assert_eq!(homology::betti_numbers(&k), homology::betti_numbers(&bb));
    }

    #[test]
    fn subdivision_of_disjoint_pieces() {
        let mut k = Complex::new();
        k.add_facet([v(0, 0)]).unwrap();
        k.add_facet([v(1, 0), v(2, 0)]).unwrap();
        let b = barycentric(&k);
        assert_eq!(homology::betti_numbers(&b)[0], 2);
    }

    #[test]
    fn colors_are_dimensions() {
        let mut k = Complex::new();
        k.add_facet([v(0, 0), v(1, 0)]).unwrap();
        let b = barycentric(&k);
        for facet in b.facets() {
            let names: Vec<u32> = facet.names().map(ProcessName::index).collect();
            assert_eq!(names, vec![0, 1], "chain colored by dimension");
        }
    }

    #[test]
    fn carriers_nest_along_chains() {
        let mut k = Complex::new();
        k.add_facet([v(0, 0), v(1, 0), v(2, 0)]).unwrap();
        let b = barycentric(&k);
        for facet in b.facets() {
            let carriers: Vec<Simplex<u8>> = facet.vertices().map(carrier).collect();
            for w in carriers.windows(2) {
                assert!(w[0].is_face_of(&w[1]), "chains are nested");
            }
        }
    }

    #[test]
    fn f_vector_counts() {
        let mut k = Complex::new();
        k.add_facet([v(0, 0), v(1, 0), v(2, 0)]).unwrap();
        let f = f_vector(&k);
        assert_eq!(f[&0], 3);
        assert_eq!(f[&1], 3);
        assert_eq!(f[&2], 1);
    }
}
