//! Error type for complex construction and map validation.

use std::error::Error;
use std::fmt;

use crate::vertex::ProcessName;

/// Errors produced while constructing simplices, complexes, or maps.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ComplexError {
    /// A simplex must contain at least one vertex.
    EmptySimplex,
    /// Two vertices of one simplex carried the same process name with
    /// different values (complexes are properly colored).
    DuplicateName(ProcessName),
    /// A facet handed to a dense table does not cover the expected
    /// contiguous name range `0..n` (it misses this name).
    MissingName(ProcessName),
    /// A vertex map was queried on a vertex outside its domain.
    VertexNotInDomain,
    /// A vertex map does not preserve simplices (it is not simplicial).
    NotSimplicial,
    /// A vertex map does not preserve names.
    NotNamePreserving,
}

impl fmt::Display for ComplexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComplexError::EmptySimplex => write!(f, "simplex must be non-empty"),
            ComplexError::DuplicateName(n) => {
                write!(f, "simplex contains two vertices named {n}")
            }
            ComplexError::MissingName(n) => {
                write!(
                    f,
                    "facet does not cover process name {n} (dense tables need 0..n)"
                )
            }
            ComplexError::VertexNotInDomain => {
                write!(f, "vertex map queried outside its domain")
            }
            ComplexError::NotSimplicial => write!(f, "vertex map does not preserve simplices"),
            ComplexError::NotNamePreserving => write!(f, "vertex map does not preserve names"),
        }
    }
}

impl Error for ComplexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let variants = [
            ComplexError::EmptySimplex,
            ComplexError::DuplicateName(ProcessName::new(1)),
            ComplexError::MissingName(ProcessName::new(2)),
            ComplexError::VertexNotInDomain,
            ComplexError::NotSimplicial,
            ComplexError::NotNamePreserving,
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
