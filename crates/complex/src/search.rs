//! Exhaustive existence search for name-preserving simplicial maps.
//!
//! Definition 3.4 of the paper asks whether a *name-preserving simplicial
//! map* `δ : π̃(ρ) → π(τ)` exists; Definition 3.1 additionally requires
//! *name-independence*. This module implements both searches by vertex-wise
//! backtracking: each vertex `(i, x)` of the domain can only map to a vertex
//! of the codomain with the same name `i`, and every facet image must be a
//! simplex of the codomain.

use std::collections::BTreeMap;

use crate::complex::Complex;
use crate::maps::VertexMap;
use crate::simplex::Simplex;
use crate::vertex::{Value, Vertex};

/// Searches for a name-preserving simplicial map from `k` to `l`.
///
/// Returns the first map found (in canonical vertex order), or `None` if no
/// such map exists.
///
/// # Example
///
/// Any complex maps into a full simplex on the same names:
///
/// ```
/// use rsbt_complex::{search, Complex, ProcessName, Vertex};
///
/// let v = |i: u32, x: u8| Vertex::new(ProcessName::new(i), x);
/// let mut k = Complex::new();
/// k.add_facet([v(0, 3), v(1, 4)])?;
/// let mut l = Complex::new();
/// l.add_facet([v(0, 0), v(1, 0)])?;
/// assert!(search::find_name_preserving_map(&k, &l).is_some());
/// # Ok::<(), rsbt_complex::ComplexError>(())
/// ```
pub fn find_name_preserving_map<V: Value, W: Value>(
    k: &Complex<V>,
    l: &Complex<W>,
) -> Option<VertexMap<V, W>> {
    Search::new(k, l, false).run()
}

/// Searches for a map that is name-preserving, simplicial, **and**
/// name-independent (equal domain values get equal image values) — the map
/// class of Definition 3.1.
pub fn find_name_independent_map<V: Value, W: Value>(
    k: &Complex<V>,
    l: &Complex<W>,
) -> Option<VertexMap<V, W>> {
    Search::new(k, l, true).run()
}

/// Whether a name-preserving simplicial map `k → l` exists.
pub fn exists_name_preserving_map<V: Value, W: Value>(k: &Complex<V>, l: &Complex<W>) -> bool {
    find_name_preserving_map(k, l).is_some()
}

/// Whether a name-preserving, name-independent simplicial map `k → l`
/// exists.
pub fn exists_name_independent_map<V: Value, W: Value>(k: &Complex<V>, l: &Complex<W>) -> bool {
    find_name_independent_map(k, l).is_some()
}

struct Search<'a, V: Value, W: Value> {
    domain_vertices: Vec<Vertex<V>>,
    /// Candidate images per domain vertex (same name).
    candidates: Vec<Vec<Vertex<W>>>,
    /// Facets of the domain, as indices into `domain_vertices`.
    facets: Vec<Vec<usize>>,
    codomain: &'a Complex<W>,
    name_independent: bool,
}

impl<'a, V: Value, W: Value> Search<'a, V, W> {
    fn new(k: &Complex<V>, l: &'a Complex<W>, name_independent: bool) -> Self {
        let domain_vertices = k.vertices();
        let index: BTreeMap<&Vertex<V>, usize> = domain_vertices.iter().zip(0..).collect();
        let codomain_vertices = l.vertices();
        let candidates = domain_vertices
            .iter()
            .map(|v| {
                codomain_vertices
                    .iter()
                    .filter(|w| w.name() == v.name())
                    .cloned()
                    .collect()
            })
            .collect();
        let facets = k
            .facets()
            .map(|f| f.vertices().map(|v| index[v]).collect())
            .collect();
        Search {
            domain_vertices,
            candidates,
            facets,
            codomain: l,
            name_independent,
        }
    }

    fn run(&self) -> Option<VertexMap<V, W>> {
        let mut assignment: Vec<Option<Vertex<W>>> = vec![None; self.domain_vertices.len()];
        if self.backtrack(0, &mut assignment) {
            let mut map = VertexMap::new();
            for (v, img) in self.domain_vertices.iter().zip(assignment) {
                map.insert(v.clone(), img.expect("complete assignment"));
            }
            Some(map)
        } else {
            None
        }
    }

    fn backtrack(&self, next: usize, assignment: &mut Vec<Option<Vertex<W>>>) -> bool {
        if next == self.domain_vertices.len() {
            return true;
        }
        'cands: for cand in &self.candidates[next] {
            if self.name_independent {
                // Equal domain values must receive equal image values.
                let value = self.domain_vertices[next].value();
                for (i, img) in assignment.iter().enumerate().take(next) {
                    if self.domain_vertices[i].value() == value {
                        let img = img.as_ref().expect("prefix assigned");
                        if img.value() != cand.value() {
                            continue 'cands;
                        }
                    }
                }
            }
            assignment[next] = Some(cand.clone());
            // Every facet's assigned prefix must map to a simplex of `l`.
            let consistent = self.facets.iter().all(|facet| {
                if !facet.contains(&next) {
                    return true;
                }
                let imgs: Vec<Vertex<W>> = facet
                    .iter()
                    .filter_map(|&i| assignment[i].clone())
                    .collect();
                match Simplex::from_vertices(imgs) {
                    Ok(s) => self.codomain.contains_simplex(&s),
                    Err(_) => false,
                }
            });
            if consistent && self.backtrack(next + 1, assignment) {
                return true;
            }
            assignment[next] = None;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex::ProcessName;

    fn v(name: u32, value: u8) -> Vertex<u8> {
        Vertex::new(ProcessName::new(name), value)
    }

    fn o_le(n: u32) -> Complex<u8> {
        Complex::from_facets((0..n).map(|leader| {
            (0..n)
                .map(|i| v(i, u8::from(i == leader)))
                .collect::<Vec<_>>()
        }))
        .unwrap()
    }

    /// π(τ_i) for O_LE on n processes: facets {(i,1)} and {(j,0) : j ≠ i}.
    fn pi_tau(n: u32, i: u32) -> Complex<u8> {
        let mut c = Complex::new();
        c.add_facet([v(i, 1)]).unwrap();
        let others: Vec<_> = (0..n).filter(|j| *j != i).map(|j| v(j, 0)).collect();
        if !others.is_empty() {
            c.add_facet(others).unwrap();
        }
        c
    }

    /// π(O_LE) = ∪_i π(τ_i).
    fn pi_o_le(n: u32) -> Complex<u8> {
        let mut c = Complex::new();
        for i in 0..n {
            for f in pi_tau(n, i).facets() {
                c.add_simplex(f.clone());
            }
        }
        c
    }

    #[test]
    fn map_into_full_simplex_always_exists() {
        let mut k = Complex::new();
        k.add_facet([v(0, 3), v(1, 4), v(2, 5)]).unwrap();
        let mut l = Complex::new();
        l.add_facet([v(0, 0), v(1, 0), v(2, 0)]).unwrap();
        let m = find_name_preserving_map(&k, &l).unwrap();
        assert!(m.is_name_preserving());
        assert!(m.is_simplicial(&k, &l));
    }

    #[test]
    fn no_map_when_names_missing() {
        let mut k = Complex::new();
        k.add_facet([v(0, 0), v(1, 0)]).unwrap();
        let mut l = Complex::new();
        l.add_facet([v(0, 0)]).unwrap(); // no vertex named p1
        assert!(!exists_name_preserving_map(&k, &l));
    }

    #[test]
    fn broken_symmetry_maps_to_projected_ole() {
        // π̃(ρ) with an isolated vertex p0 and an edge {p1, p2}:
        let mut k = Complex::new();
        k.add_facet([v(0, 10)]).unwrap();
        k.add_facet([v(1, 20), v(2, 20)]).unwrap();
        assert!(exists_name_preserving_map(&k, &pi_tau(3, 0)));
    }

    #[test]
    fn unbroken_symmetry_cannot_map_to_projected_ole() {
        // Full triangle (everyone consistent): no facet of π(O_LE) contains
        // an edge with a leader, so the 2-simplex has no image.
        let mut k = Complex::new();
        k.add_facet([v(0, 20), v(1, 20), v(2, 20)]).unwrap();
        assert!(!exists_name_preserving_map(&k, &pi_o_le(3)));
    }

    #[test]
    fn pair_without_singleton_cannot_map_to_any_projected_facet() {
        // Two consistency classes of size 2 (n = 4): nobody is isolated.
        // Definition 3.4 asks for a map into π(τ) for a SINGLE facet τ; in
        // π(τ_i) the only vertex named i is the isolated (i,1), so the class
        // containing i would have to map an edge onto a simplex containing
        // the isolated leader — impossible.
        let mut k = Complex::new();
        k.add_facet([v(0, 10), v(1, 10)]).unwrap();
        k.add_facet([v(2, 20), v(3, 20)]).unwrap();
        for i in 0..4 {
            assert!(
                !exists_name_preserving_map(&k, &pi_tau(4, i)),
                "no map into π(τ_{i})"
            );
        }
        // Into the UNION π(O_LE) a map does exist (map everyone to 0): this
        // is exactly why the paper quantifies over single facets.
        assert!(exists_name_preserving_map(&k, &pi_o_le(4)));
    }

    #[test]
    fn name_independence_restricts() {
        // Domain: p0 and p1 both hold value 7, as two isolated vertices.
        let mut k = Complex::new();
        k.add_facet([v(0, 7)]).unwrap();
        k.add_facet([v(1, 7)]).unwrap();
        // Codomain O_LE(2): facets {(0,1),(1,0)} and {(0,0),(1,1)}.
        let l = o_le(2);
        // Name-preserving maps exist (send p0 ↦ 1, p1 ↦ 0 — both isolated
        // vertices, and O_LE contains the singletons).
        assert!(exists_name_preserving_map(&k, &l));
        // But name-independence forces equal outputs for the equal value 7,
        // and {(0,1),(1,1)} / {(0,0),(1,0)} are simplices? No — singletons
        // {(0,1)} and {(1,1)} are faces of different facets, which is fine!
        // Each image singleton only needs to be a simplex individually.
        assert!(exists_name_independent_map(&k, &l));
        // Joining the two vertices into one edge kills it: the image edge
        // {(0,c),(1,c)} is not a simplex of O_LE for any constant c.
        let mut k2 = Complex::new();
        k2.add_facet([v(0, 7), v(1, 7)]).unwrap();
        assert!(exists_name_preserving_map(&k2, &l)); // (0,1),(1,0) works
        assert!(!exists_name_independent_map(&k2, &l));
    }

    #[test]
    fn found_map_validates() {
        let mut k = Complex::new();
        k.add_facet([v(0, 10)]).unwrap();
        k.add_facet([v(1, 20), v(2, 20)]).unwrap();
        let l = pi_o_le(3);
        let m = find_name_independent_map(&k, &l).unwrap();
        m.validate_chromatic(&k, &l).unwrap();
        assert!(m.is_name_independent());
    }

    #[test]
    fn empty_domain_trivially_maps() {
        let k: Complex<u8> = Complex::new();
        let l = o_le(2);
        assert!(exists_name_preserving_map(&k, &l));
    }
}
