//! Dense facet storage for full-support chromatic complexes.
//!
//! Every output complex in this workspace is *full-support*: each facet
//! carries exactly one value per process name `0..n`. [`Simplex`] stores
//! such a facet as a sorted `Vec<Vertex<u64>>` and answers `value_of` by
//! binary search — fine for one facet, wasteful when a solvability check
//! scans hundreds of facets per verdict. [`FacetTable`] stores the same
//! information densely: one flat `u32` buffer holding, for every facet, a
//! name-indexed row of *palette codes* (indices into the sorted list of
//! distinct `u64` values). Lookups are `O(1)` array reads, two cells of
//! one row compare with a single `u32` comparison, and the whole table
//! lives in two allocations regardless of facet count.
//!
//! Construction canonicalizes: the palette is sorted, rows are sorted
//! lexicographically and deduplicated. Two tables built from the same
//! facet *set* — in any order, from streams or from a [`Complex`] — are
//! therefore equal and hash identically (`#[derive(Hash)]` over the dense
//! buffers). Conversions back to [`Simplex`]/[`Complex`] are lossless.

use crate::complex::Complex;
use crate::error::ComplexError;
use crate::simplex::Simplex;
use crate::vertex::{ProcessName, Vertex};

/// A dense, canonical store for the facets of a full-support chromatic
/// complex over names `0..n` with `u64` values.
///
/// # Example
///
/// ```
/// use rsbt_complex::{Complex, FacetTable, ProcessName, Vertex};
///
/// // O_LE for n = 2: facets {(0,1),(1,0)} and {(0,0),(1,1)}.
/// let mut ole: Complex<u64> = Complex::new();
/// for leader in 0..2u32 {
///     ole.add_facet((0..2u32).map(|i| {
///         Vertex::new(ProcessName::new(i), u64::from(i == leader))
///     }))?;
/// }
/// let table = FacetTable::from_complex(&ole)?;
/// assert_eq!(table.facet_count(), 2);
/// assert_eq!(table.n(), 2);
/// assert_eq!(table.value_of(0, ProcessName::new(0)), 0); // rows sorted
/// assert_eq!(table.to_complex(), ole); // lossless
/// # Ok::<(), rsbt_complex::ComplexError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct FacetTable {
    /// Number of names (row width); every facet covers `0..n`.
    n: usize,
    /// Sorted distinct values; row cells index into this palette.
    palette: Vec<u64>,
    /// Facet-major flat buffer of palette codes, `facet_count * n` cells,
    /// rows sorted lexicographically and deduplicated.
    rows: Vec<u32>,
}

impl FacetTable {
    /// Builds a table from a stream of full-support facets over `0..n`,
    /// without materializing a [`Complex`].
    ///
    /// Duplicate facets collapse; the result is canonical regardless of
    /// stream order.
    ///
    /// # Errors
    ///
    /// [`ComplexError::MissingName`] if a facet does not cover exactly the
    /// names `0..n`.
    pub fn from_facets<I>(n: usize, facets: I) -> Result<Self, ComplexError>
    where
        I: IntoIterator<Item = Simplex<u64>>,
    {
        // Pass 1: dense u64 rows (checking full support) + palette values.
        let mut raw: Vec<u64> = Vec::new();
        for facet in facets {
            if facet.len() != n {
                let missing = (0..n as u32)
                    .map(ProcessName::new)
                    .find(|&p| facet.value_of(p).is_none())
                    .unwrap_or_else(|| ProcessName::new(n as u32));
                return Err(ComplexError::MissingName(missing));
            }
            for (i, v) in facet.vertices().enumerate() {
                // Sorted distinct names of the right count are exactly 0..n.
                if v.name().index() != i as u32 {
                    return Err(ComplexError::MissingName(ProcessName::new(i as u32)));
                }
                raw.push(*v.value());
            }
        }
        let mut palette: Vec<u64> = raw.clone();
        palette.sort_unstable();
        palette.dedup();
        // Pass 2: encode rows as palette codes (order-preserving, so
        // lexicographic order by code equals lexicographic order by value),
        // then canonicalize the row set.
        let mut rows: Vec<u32> = raw
            .iter()
            .map(|v| palette.binary_search(v).expect("value in palette") as u32)
            .collect();
        if n > 0 {
            let mut indexed: Vec<&[u32]> = rows.chunks_exact(n).collect();
            indexed.sort_unstable();
            indexed.dedup();
            rows = indexed.concat();
        }
        Ok(FacetTable { n, palette, rows })
    }

    /// Builds a table from a [`Complex`] whose facets all cover the same
    /// contiguous name range `0..n` (with `n` inferred from the complex).
    ///
    /// # Errors
    ///
    /// [`ComplexError::MissingName`] if the complex is impure or its names
    /// are not contiguous from 0.
    pub fn from_complex(k: &Complex<u64>) -> Result<Self, ComplexError> {
        let n = k
            .names()
            .last()
            .map(|p| p.index() as usize + 1)
            .unwrap_or(0);
        FacetTable::from_facets(n, k.facets().cloned())
    }

    /// The number of names (the width of every row).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The number of (distinct) facets stored.
    pub fn facet_count(&self) -> usize {
        self.rows.len().checked_div(self.n).unwrap_or(0)
    }

    /// Whether the table holds no facets.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The sorted distinct values the rows index into.
    pub fn palette(&self) -> &[u64] {
        &self.palette
    }

    /// The dense code row of facet `f` (`n` palette codes, name-indexed).
    ///
    /// Codes are order-preserving: comparing two cells compares the
    /// underlying values.
    ///
    /// # Panics
    ///
    /// Panics if `f >= facet_count()`.
    pub fn row(&self, f: usize) -> &[u32] {
        &self.rows[f * self.n..(f + 1) * self.n]
    }

    /// `O(1)` value lookup: the value facet `f` assigns to `name`.
    ///
    /// # Panics
    ///
    /// Panics if `f` or `name` is out of range.
    pub fn value_of(&self, f: usize, name: ProcessName) -> u64 {
        self.palette[self.rows[f * self.n + name.index() as usize] as usize]
    }

    /// Iterates over the dense code rows in canonical order.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> {
        self.rows.chunks_exact(self.n.max(1))
    }

    /// Reconstructs facet `f` as a [`Simplex`] (lossless).
    ///
    /// # Panics
    ///
    /// Panics if `f >= facet_count()`.
    pub fn facet_simplex(&self, f: usize) -> Simplex<u64> {
        Simplex::from_vertices(
            self.row(f).iter().enumerate().map(|(i, &code)| {
                Vertex::new(ProcessName::new(i as u32), self.palette[code as usize])
            }),
        )
        .expect("dense rows have distinct names")
    }

    /// Reconstructs the whole complex (lossless: full-support facets of
    /// equal dimension never absorb each other).
    pub fn to_complex(&self) -> Complex<u64> {
        (0..self.facet_count())
            .map(|f| self.facet_simplex(f))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: u32, value: u64) -> Vertex<u64> {
        Vertex::new(ProcessName::new(name), value)
    }

    fn facet(vals: &[u64]) -> Simplex<u64> {
        Simplex::from_vertices(
            vals.iter()
                .enumerate()
                .map(|(i, &x)| v(i as u32, x))
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn dense_lookup_matches_simplex_lookup() {
        let facets = vec![facet(&[7, 0, 7]), facet(&[0, 7, 9]), facet(&[9, 9, 0])];
        let table = FacetTable::from_facets(3, facets.clone()).unwrap();
        assert_eq!(table.facet_count(), 3);
        assert_eq!(table.palette(), &[0, 7, 9]);
        for f in 0..table.facet_count() {
            let s = table.facet_simplex(f);
            assert!(facets.contains(&s), "row {f} round-trips to an input");
            for i in 0..3u32 {
                let p = ProcessName::new(i);
                assert_eq!(Some(&table.value_of(f, p)), s.value_of(p));
            }
        }
    }

    #[test]
    fn canonical_across_insertion_orders_and_sources() {
        let a = vec![facet(&[1, 0, 0]), facet(&[0, 1, 0]), facet(&[0, 0, 1])];
        let mut b = a.clone();
        b.reverse();
        b.push(facet(&[0, 1, 0])); // duplicate collapses
        let ta = FacetTable::from_facets(3, a.clone()).unwrap();
        let tb = FacetTable::from_facets(3, b).unwrap();
        assert_eq!(ta, tb);
        use std::hash::{BuildHasher, RandomState};
        let s = RandomState::new();
        assert_eq!(s.hash_one(&ta), s.hash_one(&tb));
        let from_complex = FacetTable::from_complex(&Complex::from_simplices(a)).unwrap();
        assert_eq!(ta, from_complex);
    }

    #[test]
    fn complex_round_trip_is_lossless() {
        let facets = vec![
            facet(&[1, 0, 0, 1]),
            facet(&[0, 0, 1, 1]),
            facet(&[2, 2, 2, 2]),
        ];
        let k = Complex::from_simplices(facets);
        let table = FacetTable::from_complex(&k).unwrap();
        assert_eq!(table.to_complex(), k);
    }

    #[test]
    fn rejects_partial_support() {
        let short = Simplex::from_vertices(vec![v(0, 1), v(2, 0)]).unwrap();
        let err = FacetTable::from_facets(3, vec![short]).unwrap_err();
        assert!(matches!(err, ComplexError::MissingName(p) if p.index() == 1));
        // Wrong length is caught too.
        let err = FacetTable::from_facets(4, vec![facet(&[1, 0, 0])]).unwrap_err();
        assert!(matches!(err, ComplexError::MissingName(_)));
    }

    #[test]
    fn from_complex_rejects_impure_support() {
        let mut k = Complex::new();
        k.add_simplex(facet(&[1, 0, 0]));
        k.add_simplex(Simplex::from_vertices(vec![v(0, 5), v(1, 5)]).unwrap());
        assert!(FacetTable::from_complex(&k).is_err());
    }

    #[test]
    fn empty_table() {
        let table = FacetTable::from_facets(3, Vec::new()).unwrap();
        assert!(table.is_empty());
        assert_eq!(table.facet_count(), 0);
        assert_eq!(table.rows().count(), 0);
        assert!(table.to_complex().is_empty());
        let from_empty = FacetTable::from_complex(&Complex::new()).unwrap();
        assert!(from_empty.is_empty());
    }

    #[test]
    fn row_cells_compare_like_values() {
        let table = FacetTable::from_facets(3, vec![facet(&[5, 5, 9])]).unwrap();
        let row = table.row(0);
        assert_eq!(row[0], row[1]);
        assert!(row[2] > row[0], "codes are order-preserving");
    }
}
