//! The paper's topological framework for randomized symmetry-breaking
//! distributed computing.
//!
//! This crate assembles the substrates (`rsbt-complex`, `rsbt-random`,
//! `rsbt-sim`, `rsbt-tasks`) into the machinery of Sections 3 and 4 of
//! *Fraigniaud, Gelles, Lotker (PODC 2021)*:
//!
//! * [`realization_complex`] — the complex `R(t)` whose facets are the
//!   possible randomness realizations (Figure 2);
//! * [`protocol_complex`] — the complex `P(t)` of knowledge vectors
//!   (Figure 1), built by running the full-information dynamics;
//! * [`iso_h`] — the facet isomorphism `h : P(t) → R(t)` (Section 3.3);
//! * [`consistency`] — the projection `π̃(ρ)` (Eq. 5): the consistency
//!   classes of `K_i(t) = K_j(t)`, materialized as a complex;
//! * [`solvability`] — Definitions 3.1 and 3.4, implemented three ways
//!   (fast combinatorial path, generic simplicial-map search on `π̃(ρ)`,
//!   and the Definition 3.1 map search on the protocol facet) which are
//!   cross-validated in tests — a mechanical proof of Lemma 3.5 on every
//!   instance we can enumerate;
//! * [`engine`] — the prefix-sharing execution-tree enumerator: one round
//!   of interning per tree node instead of `t` per leaf, solvability
//!   memoized per consistency partition, monotone subtree pruning;
//! * [`engine_dp`] — the quotient exact engine: dynamic programming over
//!   knowledge-equality states (the transposition table), `u128` dyadic
//!   counts to `k·t ≤ 126`, per-round cost flat in `t`;
//! * [`probability`] — `Pr[S(t) | α]` exactly (engine traversal over the
//!   `2^{kt}` source words) and by Monte-Carlo;
//! * [`eventual`] — the eventual-solvability predicates of Theorems 4.1
//!   and 4.2 and zero-one-law helpers (Lemma 3.2);
//! * [`bounds`] — the closed forms appearing in the proof of Theorem 4.1.
//!
//! # Example
//!
//! Decide whether a realization solves leader election, and check the
//! Theorem 4.1 predicate:
//!
//! ```
//! use rsbt_core::{eventual, solvability};
//! use rsbt_random::{Assignment, BitString, Realization};
//! use rsbt_sim::{KnowledgeArena, Model};
//! use rsbt_tasks::LeaderElection;
//!
//! let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
//! assert!(eventual::blackboard_eventually_solvable(&alpha));
//!
//! // Node 0 got "1", nodes 1-2 got "0": symmetry broken, task solved.
//! let rho = Realization::new(vec![
//!     BitString::from_bits([true]),
//!     BitString::from_bits([false]),
//!     BitString::from_bits([false]),
//! ]).unwrap();
//! let mut arena = KnowledgeArena::new();
//! assert!(solvability::solves(&Model::Blackboard, &rho, &LeaderElection, &mut arena));
//! ```

#![deny(deprecated)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitsliced;
pub mod bounds;
pub mod consistency;
pub mod engine;
pub mod engine_dp;
pub mod eventual;
pub mod evolution;
pub mod iso_h;
pub mod output_cache;
pub mod probability;
pub mod protocol_complex;
pub mod realization_complex;
pub mod solvability;
