//! The bit-sliced Monte-Carlo kernel: 64 samples per `u64` lane word.
//!
//! The PR 5 estimators ([`probability::monte_carlo_parallel`] and
//! friends) advance one sample at a time through a [`RoundStepper`] and
//! decide each partition with a branchy scalar closed form. This module
//! packs 64 independent samples into the bit positions ("lanes") of
//! `u64` words and advances them together: a
//! [`LaneStepper`](rsbt_sim::LaneStepper) tracks the pairwise
//! knowledge-equality relation per round as packed words, and a
//! [`VerdictPlan`](rsbt_tasks::VerdictPlan) — the task's closed form
//! compiled once per run to straight-line bitwise ops — answers all 64
//! verdicts per evaluation.
//!
//! **Determinism.** Lane `l` of word `w` is sample index `w·64 + l` and
//! draws its per-source words from `StreamRng(seed, w·64 + l)` — the
//! identical per-sample stream discipline of the scalar kernel — and the
//! equality tracking and compiled verdicts are exact (not approximate),
//! so every per-sample first-solving-round equals the scalar kernel's
//! and the estimates are **bit-identical to
//! [`probability::monte_carlo_parallel`] for any thread count and any
//! lane fill**. Worker chunks are word-aligned
//! ([`pool::map_sample_chunks_aligned`] with `align = 64`), so lane ↔
//! stream mapping never depends on the worker count; the last partial
//! word masks its dead lanes out of every tally.
//!
//! **Early exit.** Monotonicity (a solving round-`r` prefix solves at
//! every later round — the same fact the exact engine prunes subtrees
//! with) makes per-lane verdicts monotone in `r`, so each word keeps a
//! `solved` mask, tallies `newly = verdict & live & !solved` per round,
//! and stops stepping as soon as `solved` covers every live lane.
//!
//! Tasks that compile no plan (no closed form, or an op budget overrun)
//! peel every lane to the scalar [`SampleKernel`] path, counted in
//! [`McStats::peeled_lanes`] — estimates stay bit-identical either way.
//!
//! [`probability::monte_carlo_parallel`]: crate::probability::monte_carlo_parallel
//! [`RoundStepper`]: rsbt_sim::RoundStepper
//! [`SampleKernel`]: crate::probability
//! [`McStats::peeled_lanes`]: crate::probability::McStats::peeled_lanes

use rand::rngs::StreamRng;
use rand::RngCore;
use rsbt_random::Assignment;
use rsbt_sim::{pool, FaultSchedule, FaultSpec, LaneStepper, Model};
use rsbt_tasks::{Task, VerdictPlan};

use crate::engine::{self, SolvabilityMemo, TaskKernel};
use crate::probability::{check_mc_args, Estimate, McStats, SampleKernel};

/// Bit-sliced Monte-Carlo `Pr[S(t) | α]`: bit-identical to
/// [`monte_carlo_parallel`](crate::probability::monte_carlo_parallel)
/// with the same `(seed, samples)` — for any `threads` on either side —
/// at a fraction of the cost (see the module docs).
///
/// # Panics
///
/// Same conditions as
/// [`monte_carlo_parallel`](crate::probability::monte_carlo_parallel).
pub fn monte_carlo_bitsliced<T>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    samples: usize,
    seed: u64,
    threads: usize,
) -> Estimate
where
    T: Task + Sync + ?Sized,
{
    monte_carlo_bitsliced_with_stats(model, task, alpha, t, samples, seed, threads).0
}

/// [`monte_carlo_bitsliced`] exposing the verdict-path statistics
/// (summed across workers).
///
/// # Panics
///
/// Same conditions as [`monte_carlo_bitsliced`].
pub fn monte_carlo_bitsliced_with_stats<T>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    samples: usize,
    seed: u64,
    threads: usize,
) -> (Estimate, McStats)
where
    T: Task + Sync + ?Sized,
{
    assert!(threads >= 1, "need at least one thread");
    check_mc_args(model, alpha, t, samples);
    let (chunks, stats) = fold_lane_chunks(
        model,
        task,
        alpha,
        t,
        samples,
        seed,
        threads,
        None,
        || 0u64,
        |solved: &mut u64, _first, count| *solved += u64::from(count),
    );
    (Estimate::from_counts(chunks.iter().sum(), samples), stats)
}

/// [`monte_carlo_bitsliced`] under a [`FaultSpec`]: lane `l` of word `w`
/// is still sample `w·64 + l`, draws its source words from the identical
/// unsalted stream, and compiles its per-sample [`FaultSchedule`] from
/// the salted fault substream — the 64 schedules of a word become
/// per-round **silence lane words** (bit `l` = lane `l`'s node silent
/// this round) fed to
/// [`LaneStepper::step_faulted`](rsbt_sim::LaneStepper::step_faulted).
/// Faulted lanes track every node as its own unit (silence is
/// per-node), so the plan compiles over the identity unit layout;
/// estimates are bit-identical to
/// [`monte_carlo_parallel_faulted`](crate::probability::monte_carlo_parallel_faulted)
/// for any thread count, and with a rate-zero spec bit-identical to the
/// fault-free kernels (asserted by tests).
///
/// # Panics
///
/// Same conditions as [`monte_carlo_bitsliced`].
#[allow(clippy::too_many_arguments)]
pub fn monte_carlo_bitsliced_faulted<T>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    samples: usize,
    seed: u64,
    threads: usize,
    faults: &FaultSpec,
) -> Estimate
where
    T: Task + Sync + ?Sized,
{
    monte_carlo_bitsliced_faulted_with_stats(model, task, alpha, t, samples, seed, threads, faults)
        .0
}

/// [`monte_carlo_bitsliced_faulted`] exposing the verdict-path
/// statistics (summed across workers).
///
/// # Panics
///
/// Same conditions as [`monte_carlo_bitsliced`].
#[allow(clippy::too_many_arguments)]
pub fn monte_carlo_bitsliced_faulted_with_stats<T>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    samples: usize,
    seed: u64,
    threads: usize,
    faults: &FaultSpec,
) -> (Estimate, McStats)
where
    T: Task + Sync + ?Sized,
{
    assert!(threads >= 1, "need at least one thread");
    check_mc_args(model, alpha, t, samples);
    let (chunks, stats) = fold_lane_chunks(
        model,
        task,
        alpha,
        t,
        samples,
        seed,
        threads,
        Some(faults),
        || 0u64,
        |solved: &mut u64, _first, count| *solved += u64::from(count),
    );
    (Estimate::from_counts(chunks.iter().sum(), samples), stats)
}

/// Bit-sliced `p̂(1), …, p̂(t_max)` from one sampling pass: bit-identical
/// to
/// [`monte_carlo_series_parallel`](crate::probability::monte_carlo_series_parallel)
/// with the same `(seed, samples)`, for any thread count.
///
/// # Panics
///
/// Same conditions as
/// [`monte_carlo_series_parallel`](crate::probability::monte_carlo_series_parallel).
pub fn monte_carlo_bitsliced_series<T>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    samples: usize,
    seed: u64,
    threads: usize,
) -> Vec<Estimate>
where
    T: Task + Sync + ?Sized,
{
    monte_carlo_bitsliced_series_with_stats(model, task, alpha, t_max, samples, seed, threads).0
}

/// [`monte_carlo_bitsliced_series`] exposing the verdict-path statistics.
///
/// # Panics
///
/// Same conditions as [`monte_carlo_bitsliced_series`].
pub fn monte_carlo_bitsliced_series_with_stats<T>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    samples: usize,
    seed: u64,
    threads: usize,
) -> (Vec<Estimate>, McStats)
where
    T: Task + Sync + ?Sized,
{
    assert!(threads >= 1, "need at least one thread");
    assert!(t_max >= 1, "need at least one round");
    check_mc_args(model, alpha, t_max, samples);
    // first_solved[r] = samples whose first solving round is exactly
    // r + 1 (round 0 counts as round 1, matching the scalar series).
    let (chunks, stats) = fold_lane_chunks(
        model,
        task,
        alpha,
        t_max,
        samples,
        seed,
        threads,
        None,
        || vec![0u64; t_max],
        |first_solved: &mut Vec<u64>, first, count| {
            first_solved[first.saturating_sub(1)] += u64::from(count);
        },
    );
    prefix_sum_series(&chunks, t_max, samples, stats)
}

/// [`monte_carlo_bitsliced_series`] under a [`FaultSpec`] (see
/// [`monte_carlo_bitsliced_faulted`] for the lane discipline): the whole
/// degradation curve `p̂(1), …, p̂(t_max)` from one faulted sampling
/// pass. Sample `i`'s schedule is compiled once at horizon `t_max` and
/// every prefix time reads the same silence pattern — common random
/// numbers *and* common faults across the series.
///
/// # Panics
///
/// Same conditions as [`monte_carlo_bitsliced_series`].
#[allow(clippy::too_many_arguments)]
pub fn monte_carlo_bitsliced_series_faulted<T>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    samples: usize,
    seed: u64,
    threads: usize,
    faults: &FaultSpec,
) -> Vec<Estimate>
where
    T: Task + Sync + ?Sized,
{
    monte_carlo_bitsliced_series_faulted_with_stats(
        model, task, alpha, t_max, samples, seed, threads, faults,
    )
    .0
}

/// [`monte_carlo_bitsliced_series_faulted`] exposing the verdict-path
/// statistics.
///
/// # Panics
///
/// Same conditions as [`monte_carlo_bitsliced_series`].
#[allow(clippy::too_many_arguments)]
pub fn monte_carlo_bitsliced_series_faulted_with_stats<T>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    samples: usize,
    seed: u64,
    threads: usize,
    faults: &FaultSpec,
) -> (Vec<Estimate>, McStats)
where
    T: Task + Sync + ?Sized,
{
    assert!(threads >= 1, "need at least one thread");
    assert!(t_max >= 1, "need at least one round");
    check_mc_args(model, alpha, t_max, samples);
    let (chunks, stats) = fold_lane_chunks(
        model,
        task,
        alpha,
        t_max,
        samples,
        seed,
        threads,
        Some(faults),
        || vec![0u64; t_max],
        |first_solved: &mut Vec<u64>, first, count| {
            first_solved[first.saturating_sub(1)] += u64::from(count);
        },
    );
    prefix_sum_series(&chunks, t_max, samples, stats)
}

/// Merges per-chunk first-solving-round tallies into the cumulative
/// estimate series (shared by the fault-free and faulted series entry
/// points).
fn prefix_sum_series(
    chunks: &[Vec<u64>],
    t_max: usize,
    samples: usize,
    stats: McStats,
) -> (Vec<Estimate>, McStats) {
    let mut first_solved = vec![0u64; t_max];
    for chunk in chunks {
        for (acc, c) in first_solved.iter_mut().zip(chunk) {
            *acc += c;
        }
    }
    let mut solved = 0u64;
    let series = first_solved
        .iter()
        .map(|&c| {
            solved += c;
            Estimate::from_counts(solved, samples)
        })
        .collect();
    (series, stats)
}

/// The one sharded lane loop both bit-sliced estimators run on: per
/// word-aligned chunk, either the compiled-plan path or the scalar peel,
/// tallying `(first_solving_round, lane count)` pairs into a per-chunk
/// accumulator. Mirrors the scalar `fold_sample_chunks` so the two
/// entry-point families cannot drift apart structurally.
#[allow(clippy::too_many_arguments)]
fn fold_lane_chunks<T, A, I, F>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    samples: usize,
    seed: u64,
    threads: usize,
    faults: Option<&FaultSpec>,
    init: I,
    tally: F,
) -> (Vec<A>, McStats)
where
    T: Task + Sync + ?Sized,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize, u32) + Sync,
{
    // Compile once per run: the unit layout is a pure function of
    // (model, alpha) — and of whether faults are in play: silence is
    // per-node, so the faulted stepper tracks every node as its own
    // unit instead of collapsing source groups.
    let probe = match faults {
        None => LaneStepper::new(model, alpha),
        Some(_) => LaneStepper::new_faulted(model, alpha),
    };
    let plan = task.lane_plan(probe.unit_of_node(), probe.units());
    // The dense fallback is only reachable from the peel path.
    let table = if plan.is_some() {
        None
    } else {
        engine::fallback_table(task, alpha.n())
    };
    let per_chunk = pool::map_sample_chunks_aligned(samples, threads, 64, |arena, range| {
        let mut acc = init();
        let mut stats = McStats::default();
        match (plan.as_ref(), faults) {
            (Some(plan), None) => run_plan_words(
                model, alpha, plan, t, seed, &range, &mut acc, &tally, &mut stats,
            ),
            (Some(plan), Some(spec)) => run_plan_words_faulted(
                model, alpha, plan, t, seed, spec, &range, &mut acc, &tally, &mut stats,
            ),
            (None, _) => {
                let kernel = match table.as_ref() {
                    Some(table) => TaskKernel::new(task, table),
                    None => TaskKernel::closed_form_only(task),
                };
                let mut memo = SolvabilityMemo::new();
                let mut sampler = SampleKernel::new(model, kernel, alpha, t, arena);
                let mut schedule = FaultSchedule::empty(alpha.n(), t);
                for i in range.clone() {
                    let mut rng = StreamRng::new(seed, i as u64);
                    let first = match faults {
                        None => sampler.first_solving_round(&mut rng, &mut memo, arena),
                        Some(spec) => {
                            spec.fill_schedule(alpha.n(), t, seed, i as u64, &mut schedule);
                            sampler
                                .first_solving_round_faulted(&mut rng, &schedule, &mut memo, arena)
                        }
                    };
                    if let Some(first) = first {
                        tally(&mut acc, first, 1);
                    }
                }
                stats.peeled_lanes += range.len() as u64;
                stats.absorb(&memo);
            }
        }
        (acc, stats)
    });
    let mut accs = Vec::with_capacity(per_chunk.len());
    let mut stats = McStats::default();
    for (acc, st) in per_chunk {
        accs.push(acc);
        stats.merge(&st);
    }
    (accs, stats)
}

/// The compiled-plan word loop (see the module docs for the layout and
/// early-exit argument). `range` is word-aligned: `range.start % 64 == 0`
/// and only the final word can be partially live.
#[allow(clippy::too_many_arguments)]
fn run_plan_words<A, F>(
    model: &Model,
    alpha: &Assignment,
    plan: &VerdictPlan,
    t: usize,
    seed: u64,
    range: &std::ops::Range<usize>,
    acc: &mut A,
    tally: &F,
    stats: &mut McStats,
) where
    F: Fn(&mut A, usize, u32),
{
    debug_assert_eq!(range.start % 64, 0, "chunks must be word-aligned");
    let k = alpha.k();
    let mut stepper = LaneStepper::new(model, alpha);
    // draws[s·64 + l] = lane l's one-word draw for source s; after the
    // per-source transpose, draws[s·64 + r] bit l = source s's round-r
    // bit in lane l (BitString::sample packs round r at bit r, and
    // t ≤ 63 keeps every round inside one word).
    let mut draws = vec![0u64; k * 64];
    let mut regs: Vec<u64> = Vec::new();
    let mut base = range.start;
    while base < range.end {
        let live = (range.end - base).min(64);
        let live_mask = if live == 64 {
            u64::MAX
        } else {
            (1u64 << live) - 1
        };
        for l in 0..64 {
            if l < live {
                // Exactly the scalar discipline: sample w·64 + l draws k
                // words in source order from its own stream.
                let mut rng = StreamRng::new(seed, (base + l) as u64);
                for s in 0..k {
                    draws[s * 64 + l] = rng.next_u64();
                }
            } else {
                for s in 0..k {
                    draws[s * 64 + l] = 0;
                }
            }
        }
        for s in 0..k {
            transpose64(&mut draws[s * 64..(s + 1) * 64]);
        }
        stepper.reset();
        stats.lane_words += 1;
        // Round 0: the all-⊥ partition (all lanes all-equal) — matches
        // the scalar kernel's `Some(0)` probe.
        let mut solved = plan.eval(stepper.eq_words(), &mut regs) & live_mask;
        if solved != 0 {
            tally(acc, 0, solved.count_ones());
        }
        for r in 0..t {
            if solved == live_mask {
                break;
            }
            stepper.step(|s| draws[s * 64 + r]);
            let newly = plan.eval(stepper.eq_words(), &mut regs) & live_mask & !solved;
            if newly != 0 {
                tally(acc, r + 1, newly.count_ones());
                solved |= newly;
            }
        }
        base += 64;
    }
}

/// The faulted compiled-plan word loop: [`run_plan_words`] plus, per
/// word, the 64 per-lane [`FaultSchedule`]s compiled from the salted
/// fault substream and transposed into per-round **silence lane words**
/// (`sil[i·64 + r]` bit `l` = lane `l`'s node `i` silent in round
/// `r + 1`) for [`LaneStepper::step_faulted`]. Source draws are
/// untouched — same streams, same order — so a rate-zero spec compiles
/// all-zero silence words and reproduces the fault-free verdicts
/// bit-for-bit. Early exit per word stays sound: faulted partitions
/// still only refine over time (each round's knowledge embeds the
/// node's own previous knowledge), so per-lane verdicts stay monotone
/// in `r`.
#[allow(clippy::too_many_arguments)]
fn run_plan_words_faulted<A, F>(
    model: &Model,
    alpha: &Assignment,
    plan: &VerdictPlan,
    t: usize,
    seed: u64,
    spec: &FaultSpec,
    range: &std::ops::Range<usize>,
    acc: &mut A,
    tally: &F,
    stats: &mut McStats,
) where
    F: Fn(&mut A, usize, u32),
{
    debug_assert_eq!(range.start % 64, 0, "chunks must be word-aligned");
    let k = alpha.k();
    let n = alpha.n();
    let mut stepper = LaneStepper::new_faulted(model, alpha);
    let mut draws = vec![0u64; k * 64];
    // sil[i·64 + l] before the transpose: lane l's silence mask for node
    // i (bit r = silent in round r + 1); after: per-round lane words.
    let mut sil = vec![0u64; n * 64];
    let mut schedule = FaultSchedule::empty(n, t);
    let mut regs: Vec<u64> = Vec::new();
    let mut base = range.start;
    while base < range.end {
        let live = (range.end - base).min(64);
        let live_mask = if live == 64 {
            u64::MAX
        } else {
            (1u64 << live) - 1
        };
        for l in 0..64 {
            if l < live {
                let mut rng = StreamRng::new(seed, (base + l) as u64);
                for s in 0..k {
                    draws[s * 64 + l] = rng.next_u64();
                }
                spec.fill_schedule(n, t, seed, (base + l) as u64, &mut schedule);
                for i in 0..n {
                    sil[i * 64 + l] = schedule.silent_mask64(i);
                }
            } else {
                for s in 0..k {
                    draws[s * 64 + l] = 0;
                }
                for i in 0..n {
                    sil[i * 64 + l] = 0;
                }
            }
        }
        for s in 0..k {
            transpose64(&mut draws[s * 64..(s + 1) * 64]);
        }
        for i in 0..n {
            transpose64(&mut sil[i * 64..(i + 1) * 64]);
        }
        stepper.reset();
        stats.lane_words += 1;
        let mut solved = plan.eval(stepper.eq_words(), &mut regs) & live_mask;
        if solved != 0 {
            tally(acc, 0, solved.count_ones());
        }
        for r in 0..t {
            if solved == live_mask {
                break;
            }
            stepper.step_faulted(|s| draws[s * 64 + r], |i| sil[i * 64 + r]);
            let newly = plan.eval(stepper.eq_words(), &mut regs) & live_mask & !solved;
            if newly != 0 {
                tally(acc, r + 1, newly.count_ones());
                solved |= newly;
            }
        }
        base += 64;
    }
}

/// In-place 64×64 bit-matrix transpose (delta-swap ladder): afterwards,
/// bit `l` of `a[r]` equals bit `r` of the original `a[l]`.
fn transpose64(a: &mut [u64]) {
    debug_assert_eq!(a.len(), 64);
    let mut j = 32;
    for m in [
        0x0000_0000_ffff_ffffu64,
        0x0000_ffff_0000_ffff,
        0x00ff_00ff_00ff_00ff,
        0x0f0f_0f0f_0f0f_0f0f,
        0x3333_3333_3333_3333,
        0x5555_5555_5555_5555,
    ] {
        for k in (0..64).filter(|k| k & j == 0) {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
        }
        j >>= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output_cache::build_output_table;
    use crate::probability::{
        monte_carlo_parallel, monte_carlo_parallel_with_stats, monte_carlo_series_parallel,
    };
    use crate::solvability;
    use rsbt_tasks::{
        pair_count, pair_index, KLeaderElection, LeaderAndDeputy, LeaderElection,
        WeakSymmetryBreaking,
    };
    use std::borrow::Cow;

    fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^ (z >> 31)
    }

    #[test]
    fn transpose_is_the_bit_matrix_transpose() {
        let mut a: Vec<u64> = (0..64).map(|i| mix(i ^ 0xdead)).collect();
        let orig = a.clone();
        transpose64(&mut a);
        for (r, &row) in a.iter().enumerate() {
            for (l, &old) in orig.iter().enumerate() {
                assert_eq!(row >> l & 1, old >> r & 1, "({r},{l})");
            }
        }
        transpose64(&mut a);
        assert_eq!(a, orig, "involution");
    }

    fn grid() -> Vec<(Model, Box<dyn Task + Sync>, Assignment, usize)> {
        vec![
            (
                Model::Blackboard,
                Box::new(LeaderElection),
                Assignment::from_group_sizes(&[1, 2, 2]).unwrap(),
                5,
            ),
            (
                Model::Blackboard,
                Box::new(WeakSymmetryBreaking),
                Assignment::from_group_sizes(&[2, 2]).unwrap(),
                6,
            ),
            (
                Model::Blackboard,
                Box::new(KLeaderElection::new(2)),
                Assignment::from_group_sizes(&[1, 1, 2]).unwrap(),
                5,
            ),
            (
                Model::Blackboard,
                Box::new(LeaderAndDeputy::unconstrained(4)),
                Assignment::private(4),
                4,
            ),
            (
                Model::message_passing_cyclic(4),
                Box::new(LeaderElection),
                Assignment::private(4),
                4,
            ),
            (
                Model::message_passing_cyclic(3),
                Box::new(WeakSymmetryBreaking),
                Assignment::from_group_sizes(&[1, 2]).unwrap(),
                5,
            ),
        ]
    }

    #[test]
    fn bitsliced_is_bit_identical_to_the_scalar_kernel() {
        for (model, task, alpha, t) in grid() {
            for samples in [1usize, 63, 64, 65, 200] {
                let reference =
                    monte_carlo_parallel(&model, task.as_ref(), &alpha, t, samples, 42, 1);
                for threads in [1usize, 2, 3, 8] {
                    let sliced = monte_carlo_bitsliced(
                        &model,
                        task.as_ref(),
                        &alpha,
                        t,
                        samples,
                        42,
                        threads,
                    );
                    assert_eq!(
                        sliced,
                        reference,
                        "{} {model} samples={samples} threads={threads}",
                        task.name()
                    );
                }
            }
        }
    }

    #[test]
    fn bitsliced_series_matches_the_scalar_series() {
        for (model, task, alpha, t_max) in grid() {
            let reference =
                monte_carlo_series_parallel(&model, task.as_ref(), &alpha, t_max, 130, 7, 1);
            for threads in [1usize, 2, 4] {
                let sliced = monte_carlo_bitsliced_series(
                    &model,
                    task.as_ref(),
                    &alpha,
                    t_max,
                    130,
                    7,
                    threads,
                );
                assert_eq!(
                    sliced,
                    reference,
                    "{} {model} threads={threads}",
                    task.name()
                );
            }
        }
    }

    #[test]
    fn faulted_bitsliced_matches_the_faulted_scalar_kernel() {
        use crate::probability::monte_carlo_parallel_faulted;
        let specs = [
            FaultSpec::rates(0.05, 0.15),
            FaultSpec::rates(0.0, 0.3),
            FaultSpec::rates(0.2, 0.0),
        ];
        for (model, task, alpha, t) in grid() {
            for spec in &specs {
                for samples in [63usize, 200] {
                    let reference = monte_carlo_parallel_faulted(
                        &model,
                        task.as_ref(),
                        &alpha,
                        t,
                        samples,
                        42,
                        1,
                        spec,
                    );
                    for threads in [1usize, 3] {
                        let sliced = monte_carlo_bitsliced_faulted(
                            &model,
                            task.as_ref(),
                            &alpha,
                            t,
                            samples,
                            42,
                            threads,
                            spec,
                        );
                        assert_eq!(
                            sliced,
                            reference,
                            "{} {model} spec={spec:?} samples={samples} threads={threads}",
                            task.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rate_zero_spec_is_bit_identical_to_the_fault_free_kernels() {
        let spec = FaultSpec::none();
        for (model, task, alpha, t) in grid() {
            let plain = monte_carlo_bitsliced(&model, task.as_ref(), &alpha, t, 200, 11, 2);
            let faulted =
                monte_carlo_bitsliced_faulted(&model, task.as_ref(), &alpha, t, 200, 11, 2, &spec);
            assert_eq!(faulted, plain, "{} {model}", task.name());
            let series = monte_carlo_bitsliced_series(&model, task.as_ref(), &alpha, t, 200, 11, 2);
            let faulted_series = monte_carlo_bitsliced_series_faulted(
                &model,
                task.as_ref(),
                &alpha,
                t,
                200,
                11,
                2,
                &spec,
            );
            assert_eq!(faulted_series, series, "{} {model} series", task.name());
        }
    }

    #[test]
    fn faulted_series_tail_equals_the_point_estimate_and_stays_monotone() {
        // Schedules are compiled at the series horizon, so interior points
        // are *distributionally* p̂(t) but only the tail is bit-identical
        // to the point kernel at the same horizon.
        let spec = FaultSpec::rates(0.1, 0.2);
        for (model, task, alpha, t_max) in grid() {
            let series = monte_carlo_bitsliced_series_faulted(
                &model,
                task.as_ref(),
                &alpha,
                t_max,
                200,
                13,
                2,
                &spec,
            );
            let point = monte_carlo_bitsliced_faulted(
                &model,
                task.as_ref(),
                &alpha,
                t_max,
                200,
                13,
                2,
                &spec,
            );
            assert_eq!(series[t_max - 1], point, "{} {model}", task.name());
            for w in series.windows(2) {
                assert!(w[1].solved >= w[0].solved, "{} {model}", task.name());
            }
        }
    }

    #[test]
    fn faulted_plan_path_actually_engages_lanes() {
        // Leader election on the blackboard compiles a lane plan in the
        // identity unit layout: the faulted kernel must run words, not
        // peel.
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let (_, stats) = monte_carlo_bitsliced_faulted_with_stats(
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            4,
            130,
            9,
            3,
            &FaultSpec::rates(0.1, 0.1),
        );
        assert_eq!(stats.lane_words, 3);
        assert_eq!(stats.peeled_lanes, 0);
    }

    #[test]
    fn faulted_planless_tasks_peel_to_the_scalar_path() {
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let spec = FaultSpec::rates(0.1, 0.2);
        let (est, stats) = monte_carlo_bitsliced_faulted_with_stats(
            &Model::Blackboard,
            &OpaqueLeaderElection,
            &alpha,
            4,
            100,
            5,
            2,
            &spec,
        );
        assert_eq!(stats.peeled_lanes, 100);
        assert_eq!(stats.lane_words, 0);
        // Bit-identical to the plan path on the same underlying task.
        assert_eq!(
            est,
            monte_carlo_bitsliced_faulted(
                &Model::Blackboard,
                &LeaderElection,
                &alpha,
                4,
                100,
                5,
                3,
                &spec,
            )
        );
    }

    #[test]
    fn lane_word_counters_count_words() {
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let (_, stats) = monte_carlo_bitsliced_with_stats(
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            4,
            130,
            9,
            3,
        );
        // 130 samples over word-aligned chunks: 3 words in total.
        assert_eq!(stats.lane_words, 3);
        assert_eq!(stats.peeled_lanes, 0);
        assert_eq!(stats.closed_form_verdicts, 0, "plan path needs no memo");
    }

    /// Leader election with its closed form and lane plan hidden: forces
    /// the dense-table peel path.
    struct OpaqueLeaderElection;

    impl Task for OpaqueLeaderElection {
        fn name(&self) -> Cow<'static, str> {
            Cow::Borrowed("opaque-leader-election")
        }
        fn output_complex(&self, n: usize) -> rsbt_complex::Complex<u64> {
            LeaderElection.output_complex(n)
        }
    }

    #[test]
    fn planless_tasks_peel_to_the_scalar_path() {
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let (est, stats) = monte_carlo_bitsliced_with_stats(
            &Model::Blackboard,
            &OpaqueLeaderElection,
            &alpha,
            4,
            100,
            5,
            2,
        );
        assert_eq!(stats.peeled_lanes, 100);
        assert_eq!(stats.lane_words, 0);
        assert!(stats.dense_scan_verdicts > 0, "no closed form, no plan");
        // Still bit-identical — and equal to the plan path on the
        // same underlying task.
        let (want, scalar_stats) = monte_carlo_parallel_with_stats(
            &Model::Blackboard,
            &OpaqueLeaderElection,
            &alpha,
            4,
            100,
            5,
            1,
        );
        assert_eq!(est, want);
        assert!(scalar_stats.dense_scan_verdicts > 0);
        assert_eq!(
            est,
            monte_carlo_bitsliced(&Model::Blackboard, &LeaderElection, &alpha, 4, 100, 5, 3)
        );
    }

    /// 64 independently randomized node partitions, as both per-lane
    /// label vectors and packed equality words (identity unit layout).
    fn random_lanes(n: usize, salt: u64) -> (Vec<Vec<u8>>, Vec<u64>) {
        let lanes: Vec<Vec<u8>> = (0..64u64)
            .map(|l| {
                (0..n)
                    .map(|i| (mix(salt ^ (l << 16) ^ i as u64) % n as u64) as u8)
                    .collect()
            })
            .collect();
        let mut eq = vec![0u64; pair_count(n)];
        for (l, labels) in lanes.iter().enumerate() {
            for a in 0..n {
                for b in a + 1..n {
                    if labels[a] == labels[b] {
                        eq[pair_index(n, a, b)] |= 1 << l;
                    }
                }
            }
        }
        (lanes, eq)
    }

    /// First-occurrence canonical labels and class representatives (the
    /// layout `facet_scan` expects, mirroring `SolvabilityMemo`).
    fn canonicalize(labels: &[u8]) -> (Vec<u8>, Vec<usize>) {
        let mut canon = Vec::with_capacity(labels.len());
        let mut seen: Vec<u8> = Vec::new();
        let mut reps = Vec::new();
        for (i, &l) in labels.iter().enumerate() {
            match seen.iter().position(|&s| s == l) {
                Some(c) => canon.push(c as u8),
                None => {
                    canon.push(seen.len() as u8);
                    seen.push(l);
                    reps.push(i);
                }
            }
        }
        (canon, reps)
    }

    #[test]
    fn plan_scalar_and_dense_scan_agree_on_random_partitions() {
        // Satellite: VerdictPlan ≡ solves_partition ≡ dense FacetTable
        // scan, for every built-in task, n ≤ 8, 64 random lanes each.
        let mut tasks: Vec<(Box<dyn Task>, usize)> = Vec::new();
        for n in 1..=8usize {
            tasks.push((Box::new(LeaderElection), n));
        }
        for n in 2..=8usize {
            tasks.push((Box::new(WeakSymmetryBreaking), n));
            tasks.push((Box::new(LeaderAndDeputy::unconstrained(n)), n));
            for k in 1..=n {
                tasks.push((Box::new(KLeaderElection::new(k)), n));
            }
        }
        let mut regs = Vec::new();
        for (case, (task, n)) in tasks.iter().enumerate() {
            let n = *n;
            let unit_of_node: Vec<usize> = (0..n).collect();
            let plan = task
                .lane_plan(&unit_of_node, n)
                .unwrap_or_else(|| panic!("{} has no plan for n={n}", task.name()));
            let table = build_output_table(task.as_ref(), n);
            let (lanes, eq) = random_lanes(n, 0x5eed ^ (case as u64) << 8);
            let verdicts = plan.eval(&eq, &mut regs);
            for (l, labels) in lanes.iter().enumerate() {
                let scalar = task.solves_partition(labels).expect("closed form");
                let (canon, reps) = canonicalize(labels);
                let dense = solvability::facet_scan(&table, &canon, &reps);
                assert_eq!(scalar, dense, "{} n={n} lane {l}", task.name());
                assert_eq!(
                    verdicts >> l & 1 == 1,
                    scalar,
                    "{} n={n} lane {l} labels {labels:?}",
                    task.name()
                );
            }
        }
    }

    #[test]
    fn mc_stats_merge_is_fieldwise_addition() {
        // Satellite: sum law plus identity element.
        let a = McStats {
            memo_hits: 1,
            closed_form_verdicts: 2,
            dense_scan_verdicts: 3,
            lane_words: 4,
            peeled_lanes: 5,
        };
        let b = McStats {
            memo_hits: 10,
            closed_form_verdicts: 20,
            dense_scan_verdicts: 30,
            lane_words: 40,
            peeled_lanes: 50,
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(
            m,
            McStats {
                memo_hits: 11,
                closed_form_verdicts: 22,
                dense_scan_verdicts: 33,
                lane_words: 44,
                peeled_lanes: 55,
            }
        );
        let mut id = a;
        id.merge(&McStats::default());
        assert_eq!(id, a, "default is the identity");
        let mut id2 = McStats::default();
        id2.merge(&a);
        assert_eq!(id2, a);
    }
}
