//! Solvability of symmetry-breaking tasks, three ways.
//!
//! * [`solves`] — the fast combinatorial criterion: a realization solves
//!   `O` iff some facet `τ ∈ O` is *monochromatic on every consistency
//!   class*. This is the forced form of the name-preserving simplicial map
//!   `δ : π̃(ρ) → π(τ)` of Definition 3.4: name preservation pins
//!   `δ(i, x_i) = (i, τ_i)`, and simpliciality is exactly
//!   class-monochromaticity. The production path decides it without ever
//!   materializing the output complex: it consults the task's closed-form
//!   [`Task::solves_partition`] first and otherwise scans a dense
//!   [`FacetTable`] (`O(1)` value lookups, single-`u32` cell compares).
//! * [`solves_via_projection`] — Definition 3.4 verbatim: build `π̃(ρ)`
//!   and run the generic name-preserving simplicial-map search into each
//!   `π(τ)`.
//! * [`solves_via_definition_3_1`] — Definition 3.1 verbatim on the
//!   protocol facet `σ = h⁻¹(ρ)`: search for a name-preserving *and
//!   name-independent* simplicial map `σ → τ`.
//!
//! Lemma 3.5 states the three agree; the property tests in this module and
//! in `tests/framework.rs` verify that agreement on every realization small
//! enough to enumerate. [`solves_execution_reference`] preserves the
//! pre-dense path (rebuild `output_complex`, scan `Simplex::value_of` by
//! binary search) verbatim as the independent ground truth for the
//! bit-identity tests and the `exp_perf_solv` benchmark.
//!
//! Checkers that run in a loop over realizations of one `(task, n)` pair
//! should thread an [`OutputComplexCache`] through the `_with_cache`
//! variants so the dense table is built once, not per call.

use rsbt_complex::{ops, search, FacetTable, ProcessName, Simplex};
use rsbt_random::Realization;
use rsbt_sim::{Execution, KnowledgeArena, Model};
use rsbt_tasks::{projection, Task};

use crate::output_cache::{build_output_table, OutputComplexCache};

/// Fast solvability check (the production path).
///
/// # Example
///
/// ```
/// use rsbt_core::solvability::solves;
/// use rsbt_random::{BitString, Realization};
/// use rsbt_sim::{KnowledgeArena, Model};
/// use rsbt_tasks::LeaderElection;
///
/// let mut arena = KnowledgeArena::new();
/// let broken = Realization::new(vec![
///     BitString::from_bits([true]),
///     BitString::from_bits([false]),
/// ]).unwrap();
/// assert!(solves(&Model::Blackboard, &broken, &LeaderElection, &mut arena));
///
/// let symmetric = Realization::new(vec![
///     BitString::from_bits([true]),
///     BitString::from_bits([true]),
/// ]).unwrap();
/// assert!(!solves(&Model::Blackboard, &symmetric, &LeaderElection, &mut arena));
/// ```
pub fn solves<T: Task + ?Sized>(
    model: &Model,
    rho: &Realization,
    task: &T,
    arena: &mut KnowledgeArena,
) -> bool {
    let exec = Execution::run(model, rho, arena);
    solves_execution(&exec, task)
}

/// [`solves`] with a caller-provided [`OutputComplexCache`], so loops over
/// many realizations of one `(task, n)` pair build the dense facet table
/// once instead of per call.
pub fn solves_with_cache<T: Task + ?Sized>(
    model: &Model,
    rho: &Realization,
    task: &T,
    arena: &mut KnowledgeArena,
    cache: &mut OutputComplexCache,
) -> bool {
    let exec = Execution::run(model, rho, arena);
    solves_execution_with_cache(&exec, task, cache)
}

/// Fast solvability check on an existing execution (final time).
///
/// Consults the task's closed-form [`Task::solves_partition`] first; only
/// tasks without one pay for a facet scan, and that scan runs over a
/// dense [`FacetTable`] built by streaming [`Task::facet_stream`] (one
/// table per call here — prefer [`solves_execution_with_cache`] or the
/// engine's memo when calling in a loop).
pub fn solves_execution<T: Task + ?Sized>(exec: &Execution, task: &T) -> bool {
    let classes = exec.consistency_partition(exec.time());
    let (labels, reps) = partition_labels(&classes, exec.n());
    match task.solves_partition(&labels) {
        Some(verdict) => verdict,
        None => facet_scan(&build_output_table(task, exec.n()), &labels, &reps),
    }
}

/// [`solves_execution`] against a take-or-build table cache.
pub fn solves_execution_with_cache<T: Task + ?Sized>(
    exec: &Execution,
    task: &T,
    cache: &mut OutputComplexCache,
) -> bool {
    let classes = exec.consistency_partition(exec.time());
    let (labels, reps) = partition_labels(&classes, exec.n());
    match task.solves_partition(&labels) {
        Some(verdict) => verdict,
        None => facet_scan(cache.table(task, exec.n()), &labels, &reps),
    }
}

/// The pre-dense reference path, kept verbatim: rebuild the output
/// complex and scan its facets with per-vertex binary-search lookups.
/// Ground truth for the closed-form/dense paths' agreement tests and the
/// `exp_perf_solv` before/after benchmark; not used by production callers.
pub fn solves_execution_reference<T: Task + ?Sized>(exec: &Execution, task: &T) -> bool {
    let classes = exec.consistency_partition(exec.time());
    task.output_complex(exec.n())
        .facets()
        .any(|tau| classes_monochromatic(&classes, tau))
}

/// [`solves_execution_reference`] from a realization (runs the execution
/// first) — the per-call cost model `probability::exact_reference` keeps.
pub fn solves_reference<T: Task + ?Sized>(
    model: &Model,
    rho: &Realization,
    task: &T,
    arena: &mut KnowledgeArena,
) -> bool {
    let exec = Execution::run(model, rho, arena);
    solves_execution_reference(&exec, task)
}

/// Whether every class holds a single output value in `tau`.
fn classes_monochromatic(classes: &[Vec<usize>], tau: &Simplex<u64>) -> bool {
    classes.iter().all(|class| {
        let first = tau
            .value_of(ProcessName::new(class[0] as u32))
            .expect("facet covers all names");
        class
            .iter()
            .all(|&i| tau.value_of(ProcessName::new(i as u32)) == Some(first))
    })
}

/// Converts a consistency partition (classes of node indices covering
/// `0..n`) to per-node class labels plus one representative node per
/// class — the form the closed-form verdicts and dense scans consume.
///
/// # Panics
///
/// Panics if there are more than 256 classes (`u8` labels).
pub(crate) fn partition_labels(classes: &[Vec<usize>], n: usize) -> (Vec<u8>, Vec<usize>) {
    assert!(classes.len() <= 256, "too many classes for u8 labels");
    let mut labels = vec![0u8; n];
    let mut reps = Vec::with_capacity(classes.len());
    for (ci, class) in classes.iter().enumerate() {
        reps.push(class[0]);
        for &i in class {
            labels[i] = ci as u8;
        }
    }
    (labels, reps)
}

/// The dense facet scan: does some row of `table` hold a single value on
/// every class? `labels[i]` is node `i`'s class, `reps[c]` the
/// representative node of class `c`. Allocation-free; each check is one
/// `u32` compare thanks to the palette encoding.
pub(crate) fn facet_scan(table: &FacetTable, labels: &[u8], reps: &[usize]) -> bool {
    debug_assert_eq!(table.n(), labels.len(), "table width matches node count");
    table.rows().any(|row| {
        labels
            .iter()
            .enumerate()
            .all(|(i, &c)| row[i] == row[reps[c as usize]])
    })
}

/// Definition 3.4 verbatim: existence of a name-preserving simplicial map
/// `δ : π̃(ρ) → π(τ)` for some facet `τ` of the output complex.
pub fn solves_via_projection<T: Task + ?Sized>(
    model: &Model,
    rho: &Realization,
    task: &T,
    arena: &mut KnowledgeArena,
) -> bool {
    solves_via_projection_cached(model, rho, task, arena, &mut OutputComplexCache::new())
}

/// [`solves_via_projection`] with a take-or-build output-complex cache
/// (the complex is no longer rebuilt per call inside sweeps).
pub fn solves_via_projection_cached<T: Task + ?Sized>(
    model: &Model,
    rho: &Realization,
    task: &T,
    arena: &mut KnowledgeArena,
    cache: &mut OutputComplexCache,
) -> bool {
    let pi_rho = crate::consistency::pi_tilde(model, rho, arena);
    cache.complex(task, rho.n()).facets().any(|tau| {
        let pi_tau = projection::project_facet(tau);
        search::exists_name_preserving_map(&pi_rho, &pi_tau)
    })
}

/// Definition 3.1 verbatim: existence of a name-preserving,
/// name-independent simplicial map `δ : σ → τ` where `σ = h⁻¹(ρ)` is the
/// protocol facet (viewed as a complex).
pub fn solves_via_definition_3_1<T: Task + ?Sized>(
    model: &Model,
    rho: &Realization,
    task: &T,
    arena: &mut KnowledgeArena,
) -> bool {
    solves_via_definition_3_1_cached(model, rho, task, arena, &mut OutputComplexCache::new())
}

/// [`solves_via_definition_3_1`] with a take-or-build output-complex
/// cache.
pub fn solves_via_definition_3_1_cached<T: Task + ?Sized>(
    model: &Model,
    rho: &Realization,
    task: &T,
    arena: &mut KnowledgeArena,
    cache: &mut OutputComplexCache,
) -> bool {
    let sigma = crate::protocol_complex::facet_of(model, rho, arena);
    let sigma_cx = ops::facet_as_complex(&sigma);
    cache.complex(task, rho.n()).facets().any(|tau| {
        let tau_cx = ops::facet_as_complex(tau);
        search::exists_name_independent_map(&sigma_cx, &tau_cx)
    })
}

/// Monotonicity (Section 3.2): once a realization solves a task, every
/// succeeding realization solves it too. Verifies the claim for all
/// one-round extensions of `rho`; returns the number of extensions
/// checked.
///
/// # Panics
///
/// Panics if `rho.n() ≥ 32` (the extension mask is 32-bit), or if a
/// solving realization has a non-solving extension.
pub fn verify_monotonicity<T: Task + ?Sized>(
    model: &Model,
    rho: &Realization,
    task: &T,
    arena: &mut KnowledgeArena,
) -> usize {
    let n = rho.n();
    assert!(
        n < 32,
        "verify_monotonicity enumerates 2^n one-round extensions; \
         n = {n} overflows its 32-bit extension mask"
    );
    let mut cache = OutputComplexCache::new();
    if !solves_with_cache(model, rho, task, arena, &mut cache) {
        return 0;
    }
    let mut checked = 0;
    for mask in 0..1u32 << n {
        let strings: Vec<_> = (0..n)
            .map(|i| {
                let mut s = rho.node(i);
                s.push(mask >> i & 1 == 1);
                s
            })
            .collect();
        let ext = Realization::new(strings).expect("uniform length");
        assert!(ext.succeeds(rho));
        assert!(
            solves_with_cache(model, &ext, task, arena, &mut cache),
            "extension {ext} of a solving realization must solve"
        );
        checked += 1;
    }
    checked
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsbt_random::BitString;
    use rsbt_sim::PortNumbering;
    use rsbt_tasks::{KLeaderElection, LeaderAndDeputy, LeaderElection, WeakSymmetryBreaking};

    fn bits(s: &str) -> BitString {
        BitString::from_bits(s.chars().map(|c| c == '1'))
    }

    fn rho(strs: &[&str]) -> Realization {
        Realization::new(strs.iter().map(|s| bits(s)).collect()).unwrap()
    }

    #[test]
    fn leader_election_needs_singleton_class() {
        let mut arena = KnowledgeArena::new();
        assert!(solves(
            &Model::Blackboard,
            &rho(&["0", "1", "1"]),
            &LeaderElection,
            &mut arena
        ));
        assert!(!solves(
            &Model::Blackboard,
            &rho(&["1", "1", "1"]),
            &LeaderElection,
            &mut arena
        ));
        // Two singletons also solve (pick either leader).
        assert!(solves(
            &Model::Blackboard,
            &rho(&["00", "01", "11"]),
            &LeaderElection,
            &mut arena
        ));
    }

    #[test]
    fn two_leader_election_needs_a_two_split() {
        let mut arena = KnowledgeArena::new();
        let t = KLeaderElection::new(2);
        // Classes {0},{1},{2,3}: elect 0 and 1.
        assert!(solves(
            &Model::Blackboard,
            &rho(&["00", "01", "11", "11"]),
            &t,
            &mut arena
        ));
        // Classes {0,1},{2,3}: elect class {0,1} as the two leaders!
        assert!(solves(
            &Model::Blackboard,
            &rho(&["00", "00", "11", "11"]),
            &t,
            &mut arena
        ));
        // Classes {0,1,2},{3}: cannot pick exactly two.
        assert!(!solves(
            &Model::Blackboard,
            &rho(&["00", "00", "00", "11"]),
            &t,
            &mut arena
        ));
    }

    #[test]
    fn all_three_definitions_agree_blackboard() {
        let mut arena = KnowledgeArena::new();
        let mut cache = OutputComplexCache::new();
        let le = LeaderElection;
        let two = KLeaderElection::new(2);
        for r in Realization::enumerate_all(3, 2) {
            let fast = solves(&Model::Blackboard, &r, &le, &mut arena);
            let proj =
                solves_via_projection_cached(&Model::Blackboard, &r, &le, &mut arena, &mut cache);
            let d31 = solves_via_definition_3_1_cached(
                &Model::Blackboard,
                &r,
                &le,
                &mut arena,
                &mut cache,
            );
            assert_eq!(fast, proj, "Def 3.4 mismatch on {r}");
            assert_eq!(fast, d31, "Def 3.1 mismatch on {r}");
            let fast2 = solves(&Model::Blackboard, &r, &two, &mut arena);
            let proj2 =
                solves_via_projection_cached(&Model::Blackboard, &r, &two, &mut arena, &mut cache);
            assert_eq!(fast2, proj2, "2-LE mismatch on {r}");
        }
        // One output complex per (task, n), not one per realization.
        assert_eq!(cache.builds(), 2);
    }

    #[test]
    fn all_three_definitions_agree_message_passing() {
        let mut arena = KnowledgeArena::new();
        let le = LeaderElection;
        let model = Model::MessagePassing(PortNumbering::adversarial(4, 2));
        for r in Realization::enumerate_all(4, 1) {
            let fast = solves(&model, &r, &le, &mut arena);
            let proj = solves_via_projection(&model, &r, &le, &mut arena);
            let d31 = solves_via_definition_3_1(&model, &r, &le, &mut arena);
            assert_eq!(fast, proj, "Def 3.4 mismatch on {r}");
            assert_eq!(fast, d31, "Def 3.1 mismatch on {r}");
        }
    }

    #[test]
    fn production_path_agrees_with_reference_on_every_execution() {
        // Closed-form / dense verdicts must equal the pre-dense reference
        // on every enumerable realization, both models, all built-ins.
        let mut arena = KnowledgeArena::new();
        let mut cache = OutputComplexCache::new();
        for n in 1..=4usize {
            let mut tasks: Vec<Box<dyn Task>> = vec![
                Box::new(LeaderElection),
                Box::new(KLeaderElection::new(2.min(n))),
            ];
            if n >= 2 {
                tasks.push(Box::new(WeakSymmetryBreaking));
                tasks.push(Box::new(LeaderAndDeputy::unconstrained(n)));
            }
            for model in [Model::Blackboard, Model::message_passing_cyclic(n)] {
                for t in 0..=2usize {
                    for r in Realization::enumerate_all(n, t) {
                        let exec = Execution::run(&model, &r, &mut arena);
                        for task in &tasks {
                            let reference = solves_execution_reference(&exec, task.as_ref());
                            assert_eq!(
                                solves_execution(&exec, task.as_ref()),
                                reference,
                                "{model} n={n} {} on {r}",
                                task.name()
                            );
                            assert_eq!(
                                solves_execution_with_cache(&exec, task.as_ref(), &mut cache),
                                reference,
                                "cached: {model} n={n} {} on {r}",
                                task.name()
                            );
                        }
                    }
                }
            }
        }
    }

    /// Enumerates every set partition of `0..n` as canonical restricted-
    /// growth label strings.
    fn all_partitions(n: usize) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let mut labels = vec![0u8; n];
        fn rec(labels: &mut Vec<u8>, i: usize, max_used: u8, out: &mut Vec<Vec<u8>>) {
            if i == labels.len() {
                out.push(labels.clone());
                return;
            }
            for l in 0..=max_used + 1 {
                labels[i] = l;
                rec(labels, i + 1, max_used.max(l), out);
            }
        }
        if n > 0 {
            rec(&mut labels, 1, 0, &mut out);
        }
        out
    }

    #[test]
    fn dense_scan_and_closed_form_agree_on_every_partition() {
        // Exhaustive over all Bell(n) partitions for n ≤ 6, every built-in
        // task: closed form == dense scan == reference simplex scan.
        for n in 1..=6usize {
            let mut tasks: Vec<Box<dyn Task>> = vec![Box::new(LeaderElection)];
            for k in 1..=n {
                tasks.push(Box::new(KLeaderElection::new(k)));
            }
            if n >= 2 {
                tasks.push(Box::new(WeakSymmetryBreaking));
                tasks.push(Box::new(LeaderAndDeputy::unconstrained(n)));
            }
            for labels in all_partitions(n) {
                // Classes in first-occurrence order (labels are canonical).
                let class_count = labels.iter().map(|&l| l as usize + 1).max().unwrap();
                let classes: Vec<Vec<usize>> = (0..class_count)
                    .map(|c| (0..n).filter(|&i| labels[i] == c as u8).collect())
                    .collect();
                let reps: Vec<usize> = classes.iter().map(|c| c[0]).collect();
                for task in &tasks {
                    let table = build_output_table(task.as_ref(), n);
                    let dense = facet_scan(&table, &labels, &reps);
                    let simplex_scan = task
                        .output_complex(n)
                        .facets()
                        .any(|tau| classes_monochromatic(&classes, tau));
                    assert_eq!(dense, simplex_scan, "{} n={n} {labels:?}", task.name());
                    if let Some(closed) = task.solves_partition(&labels) {
                        assert_eq!(closed, dense, "{} n={n} {labels:?}", task.name());
                    }
                }
            }
        }
    }

    #[test]
    fn monotonicity_holds() {
        let mut arena = KnowledgeArena::new();
        let mut total = 0;
        for r in Realization::enumerate_all(3, 1) {
            total += verify_monotonicity(&Model::Blackboard, &r, &LeaderElection, &mut arena);
        }
        assert!(total > 0, "some realization at t=1 must solve");
    }

    #[test]
    #[should_panic(expected = "overflows its 32-bit extension mask")]
    fn monotonicity_rejects_oversized_systems() {
        // 32 five-bit strings (all distinct, so the realization solves):
        // the 2^32 extension enumeration must be refused up front.
        let strings: Vec<BitString> = (0..32u32)
            .map(|i| BitString::from_bits((0..5).map(|b| i >> b & 1 == 1)))
            .collect();
        let r = Realization::new(strings).unwrap();
        let mut arena = KnowledgeArena::new();
        let _ = verify_monotonicity(&Model::Blackboard, &r, &LeaderElection, &mut arena);
    }

    #[test]
    fn single_node_always_solves() {
        let mut arena = KnowledgeArena::new();
        assert!(solves(
            &Model::Blackboard,
            &rho(&["0"]),
            &LeaderElection,
            &mut arena
        ));
    }

    #[test]
    fn ports_can_solve_what_the_blackboard_cannot() {
        // Sizes [2,2] (no singleton): blackboard never solves; a non-
        // adversarial port numbering can.
        let r = rho(&["01", "01", "11", "11"]);
        let mut arena = KnowledgeArena::new();
        assert!(!solves(&Model::Blackboard, &r, &LeaderElection, &mut arena));
        let mp = Model::message_passing_cyclic(4);
        assert!(
            solves(&mp, &r, &LeaderElection, &mut arena),
            "cyclic ports break the 2+2 symmetry on this realization"
        );
    }
}
