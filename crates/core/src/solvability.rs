//! Solvability of symmetry-breaking tasks, three ways.
//!
//! * [`solves`] — the fast combinatorial criterion: a realization solves
//!   `O` iff some facet `τ ∈ O` is *monochromatic on every consistency
//!   class*. This is the forced form of the name-preserving simplicial map
//!   `δ : π̃(ρ) → π(τ)` of Definition 3.4: name preservation pins
//!   `δ(i, x_i) = (i, τ_i)`, and simpliciality is exactly
//!   class-monochromaticity.
//! * [`solves_via_projection`] — Definition 3.4 verbatim: build `π̃(ρ)`
//!   and run the generic name-preserving simplicial-map search into each
//!   `π(τ)`.
//! * [`solves_via_definition_3_1`] — Definition 3.1 verbatim on the
//!   protocol facet `σ = h⁻¹(ρ)`: search for a name-preserving *and
//!   name-independent* simplicial map `σ → τ`.
//!
//! Lemma 3.5 states the three agree; the property tests in this module and
//! in `tests/framework.rs` verify that agreement on every realization small
//! enough to enumerate.

use rsbt_complex::{ops, search, ProcessName, Simplex};
use rsbt_random::Realization;
use rsbt_sim::{Execution, KnowledgeArena, Model};
use rsbt_tasks::{projection, Task};

/// Fast solvability check (the production path).
///
/// # Example
///
/// ```
/// use rsbt_core::solvability::solves;
/// use rsbt_random::{BitString, Realization};
/// use rsbt_sim::{KnowledgeArena, Model};
/// use rsbt_tasks::LeaderElection;
///
/// let mut arena = KnowledgeArena::new();
/// let broken = Realization::new(vec![
///     BitString::from_bits([true]),
///     BitString::from_bits([false]),
/// ]).unwrap();
/// assert!(solves(&Model::Blackboard, &broken, &LeaderElection, &mut arena));
///
/// let symmetric = Realization::new(vec![
///     BitString::from_bits([true]),
///     BitString::from_bits([true]),
/// ]).unwrap();
/// assert!(!solves(&Model::Blackboard, &symmetric, &LeaderElection, &mut arena));
/// ```
pub fn solves<T: Task + ?Sized>(
    model: &Model,
    rho: &Realization,
    task: &T,
    arena: &mut KnowledgeArena,
) -> bool {
    let exec = Execution::run(model, rho, arena);
    solves_execution(&exec, task)
}

/// Fast solvability check on an existing execution (final time).
pub fn solves_execution<T: Task + ?Sized>(exec: &Execution, task: &T) -> bool {
    let classes = exec.consistency_partition(exec.time());
    task.output_complex(exec.n())
        .facets()
        .any(|tau| classes_monochromatic(&classes, tau))
}

/// Whether every class holds a single output value in `tau`.
fn classes_monochromatic(classes: &[Vec<usize>], tau: &Simplex<u64>) -> bool {
    classes.iter().all(|class| {
        let first = tau
            .value_of(ProcessName::new(class[0] as u32))
            .expect("facet covers all names");
        class
            .iter()
            .all(|&i| tau.value_of(ProcessName::new(i as u32)) == Some(first))
    })
}

/// Definition 3.4 verbatim: existence of a name-preserving simplicial map
/// `δ : π̃(ρ) → π(τ)` for some facet `τ` of the output complex.
pub fn solves_via_projection<T: Task + ?Sized>(
    model: &Model,
    rho: &Realization,
    task: &T,
    arena: &mut KnowledgeArena,
) -> bool {
    let pi_rho = crate::consistency::pi_tilde(model, rho, arena);
    task.output_complex(rho.n()).facets().any(|tau| {
        let pi_tau = projection::project_facet(tau);
        search::exists_name_preserving_map(&pi_rho, &pi_tau)
    })
}

/// Definition 3.1 verbatim: existence of a name-preserving,
/// name-independent simplicial map `δ : σ → τ` where `σ = h⁻¹(ρ)` is the
/// protocol facet (viewed as a complex).
pub fn solves_via_definition_3_1<T: Task + ?Sized>(
    model: &Model,
    rho: &Realization,
    task: &T,
    arena: &mut KnowledgeArena,
) -> bool {
    let sigma = crate::protocol_complex::facet_of(model, rho, arena);
    let sigma_cx = ops::facet_as_complex(&sigma);
    task.output_complex(rho.n()).facets().any(|tau| {
        let tau_cx = ops::facet_as_complex(tau);
        search::exists_name_independent_map(&sigma_cx, &tau_cx)
    })
}

/// Monotonicity (Section 3.2): once a realization solves a task, every
/// succeeding realization solves it too. Verifies the claim for all
/// one-round extensions of `rho`; returns the number of extensions
/// checked.
///
/// # Panics
///
/// Panics if a solving realization has a non-solving extension.
pub fn verify_monotonicity<T: Task + ?Sized>(
    model: &Model,
    rho: &Realization,
    task: &T,
    arena: &mut KnowledgeArena,
) -> usize {
    if !solves(model, rho, task, arena) {
        return 0;
    }
    let n = rho.n();
    let mut checked = 0;
    for mask in 0..1u32 << n {
        let strings: Vec<_> = (0..n)
            .map(|i| {
                let mut s = rho.node(i);
                s.push(mask >> i & 1 == 1);
                s
            })
            .collect();
        let ext = Realization::new(strings).expect("uniform length");
        assert!(ext.succeeds(rho));
        assert!(
            solves(model, &ext, task, arena),
            "extension {ext} of a solving realization must solve"
        );
        checked += 1;
    }
    checked
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsbt_random::BitString;
    use rsbt_sim::PortNumbering;
    use rsbt_tasks::{KLeaderElection, LeaderElection};

    fn bits(s: &str) -> BitString {
        BitString::from_bits(s.chars().map(|c| c == '1'))
    }

    fn rho(strs: &[&str]) -> Realization {
        Realization::new(strs.iter().map(|s| bits(s)).collect()).unwrap()
    }

    #[test]
    fn leader_election_needs_singleton_class() {
        let mut arena = KnowledgeArena::new();
        assert!(solves(
            &Model::Blackboard,
            &rho(&["0", "1", "1"]),
            &LeaderElection,
            &mut arena
        ));
        assert!(!solves(
            &Model::Blackboard,
            &rho(&["1", "1", "1"]),
            &LeaderElection,
            &mut arena
        ));
        // Two singletons also solve (pick either leader).
        assert!(solves(
            &Model::Blackboard,
            &rho(&["00", "01", "11"]),
            &LeaderElection,
            &mut arena
        ));
    }

    #[test]
    fn two_leader_election_needs_a_two_split() {
        let mut arena = KnowledgeArena::new();
        let t = KLeaderElection::new(2);
        // Classes {0},{1},{2,3}: elect 0 and 1.
        assert!(solves(
            &Model::Blackboard,
            &rho(&["00", "01", "11", "11"]),
            &t,
            &mut arena
        ));
        // Classes {0,1},{2,3}: elect class {0,1} as the two leaders!
        assert!(solves(
            &Model::Blackboard,
            &rho(&["00", "00", "11", "11"]),
            &t,
            &mut arena
        ));
        // Classes {0,1,2},{3}: cannot pick exactly two.
        assert!(!solves(
            &Model::Blackboard,
            &rho(&["00", "00", "00", "11"]),
            &t,
            &mut arena
        ));
    }

    #[test]
    fn all_three_definitions_agree_blackboard() {
        let mut arena = KnowledgeArena::new();
        let le = LeaderElection;
        let two = KLeaderElection::new(2);
        for r in Realization::enumerate_all(3, 2) {
            let fast = solves(&Model::Blackboard, &r, &le, &mut arena);
            let proj = solves_via_projection(&Model::Blackboard, &r, &le, &mut arena);
            let d31 = solves_via_definition_3_1(&Model::Blackboard, &r, &le, &mut arena);
            assert_eq!(fast, proj, "Def 3.4 mismatch on {r}");
            assert_eq!(fast, d31, "Def 3.1 mismatch on {r}");
            let fast2 = solves(&Model::Blackboard, &r, &two, &mut arena);
            let proj2 = solves_via_projection(&Model::Blackboard, &r, &two, &mut arena);
            assert_eq!(fast2, proj2, "2-LE mismatch on {r}");
        }
    }

    #[test]
    fn all_three_definitions_agree_message_passing() {
        let mut arena = KnowledgeArena::new();
        let le = LeaderElection;
        let model = Model::MessagePassing(PortNumbering::adversarial(4, 2));
        for r in Realization::enumerate_all(4, 1) {
            let fast = solves(&model, &r, &le, &mut arena);
            let proj = solves_via_projection(&model, &r, &le, &mut arena);
            let d31 = solves_via_definition_3_1(&model, &r, &le, &mut arena);
            assert_eq!(fast, proj, "Def 3.4 mismatch on {r}");
            assert_eq!(fast, d31, "Def 3.1 mismatch on {r}");
        }
    }

    #[test]
    fn monotonicity_holds() {
        let mut arena = KnowledgeArena::new();
        let mut total = 0;
        for r in Realization::enumerate_all(3, 1) {
            total += verify_monotonicity(&Model::Blackboard, &r, &LeaderElection, &mut arena);
        }
        assert!(total > 0, "some realization at t=1 must solve");
    }

    #[test]
    fn single_node_always_solves() {
        let mut arena = KnowledgeArena::new();
        assert!(solves(
            &Model::Blackboard,
            &rho(&["0"]),
            &LeaderElection,
            &mut arena
        ));
    }

    #[test]
    fn ports_can_solve_what_the_blackboard_cannot() {
        // Sizes [2,2] (no singleton): blackboard never solves; a non-
        // adversarial port numbering can.
        let r = rho(&["01", "01", "11", "11"]);
        let mut arena = KnowledgeArena::new();
        assert!(!solves(&Model::Blackboard, &r, &LeaderElection, &mut arena));
        let mp = Model::message_passing_cyclic(4);
        assert!(
            solves(&mp, &r, &LeaderElection, &mut arena),
            "cyclic ports break the 2+2 symmetry on this realization"
        );
    }
}
