//! The quotient exact engine: dynamic programming over knowledge-equality
//! states instead of execution-tree prefixes.
//!
//! The prefix-sharing engine ([`crate::engine`]) walks the raw execution
//! tree — `2^{k·r}` nodes at depth `r` — even though the task verdict at
//! every node depends only on the *consistency partition* of the
//! knowledge vector. `rsbt_sim::lanes` proved the key algebraic fact as
//! code: the round-`(r+1)` equality relation is a pure function of the
//! round-`r` equality relation and the **equality pattern** of the new
//! source bits — never their values (the value-independence lemma; see
//! `DESIGN.md` §4.10). So exponentially many tree prefixes that sit in
//! the same equality state are indistinguishable to every future verdict,
//! and the tree folds into a DP over states:
//!
//! * **State** — a labeled equality relation on *knowledge units*, stored
//!   as canonical first-occurrence class labels. Fault-free blackboard:
//!   the units are the `k` sources (`K_i(t) = K_j(t)` iff the sources of
//!   `i` and `j` emitted identical prefixes), so there are at most
//!   Bell(`k`) states — 203 for `k = 6`. Message passing and every
//!   faulted run: the units are the `n` nodes, bounded by Bell(`n`).
//! * **Transition** — for each of the `2^k` round digits, *meet* the
//!   state with the digit's induced equality pattern, mirroring the
//!   `LaneStepper` rules exactly (shared term lists via
//!   [`rsbt_sim::lanes::aligned_terms`]): blackboard is a per-unit key
//!   refinement, message passing evaluates the port-aligned pairwise rule
//!   and relabels, and faulted runs thread the round's silence mask
//!   through the faulted variants of both.
//! * **Weight** — each state carries the exact number of depth-`r` tree
//!   nodes sitting in it, as a `u128`. All `2^{k·r}` nodes are accounted:
//!   `frontier mass + solved mass = 2^{k·r}` at every depth (the dyadic
//!   count accounting of `DESIGN.md` §4.10), so probabilities stay exact
//!   integer ratios up to `k·t ≤` [`MAX_DP_BITS`] ` = 126` — far past the
//!   old `k·t ≤ 30` enumeration wall.
//! * **Verdict & absorption** — a state's verdict comes from the task's
//!   closed-form [`rsbt_tasks::Task::solves_partition`] with the dense
//!   fallback through [`SolvabilityMemo::solves_labels`] (representatives
//!   synthesized from the labels; no knowledge ids exist here). One round
//!   only refines the partition, so verdicts are monotone and solved
//!   states **absorb**: `solved(r) = solved(r−1)·2^k + newly(r)`, exactly
//!   the [`crate::engine`] subtree-pruning tallies lifted to the quotient
//!   (asserted bit-identical by property test and by the
//!   `exp_perf_quotient` bench).
//!
//! Per-round cost is `O(states · 2^k)` — flat in `t`, so whole exact
//! series at `t` in the dozens are routine where the tree engine needed
//! `2^{k·t}` node visits. Transition rows (`2^k` child ids per state) are
//! cached per state — the transposition table — and, when a round's
//! frontier is large, missing rows are computed in parallel via
//! [`rsbt_sim::pool`] and interned serially in deterministic order, so
//! counts are bit-identical for every thread count.
//!
//! Production dispatch: [`crate::probability::exact`],
//! [`crate::probability::exact_series`] and their faulted/parallel
//! variants route here (the tree engine stays as the reference path).

use rsbt_random::Assignment;
use rsbt_sim::lanes::{self, pair_index};
use rsbt_sim::{pool, FaultSchedule, FxHashMap, Model};
use rsbt_tasks::Task;

use crate::engine::{self, SolvabilityMemo, TaskKernel};

/// Largest `k·t_max` the quotient engine accepts: state weights are exact
/// dyadic integers `≤ 2^{k·t}` carried as `u128`, so 126 bits is the last
/// point where every tally (including the full-tree `2^{k·t}`) is
/// representable. The 126-bit edge is pinned by test.
pub const MAX_DP_BITS: usize = 126;

/// Largest `k` the quotient engine accepts: every state expands `2^k`
/// transition digits per round, so the per-round cost `O(states · 2^k)`
/// stops being "flat in `t`" long before this. Points with `k` beyond
/// this (and `k·t` within the tree engine's wall) stay on the reference
/// engine — see `probability`'s dispatch.
pub const MAX_DP_K: usize = 20;

/// Transition rows are cached (one `2^k`-entry child-id row per state)
/// only up to this `k`; beyond it rows are streamed per round instead of
/// stored, trading recomputation for memory.
const ROW_CACHE_MAX_K: usize = 12;

/// Minimum number of missing transition rows in one round before the row
/// build fans out to worker threads — below this the spawn cost dominates.
const PAR_MIN_STATES: usize = 16;

/// Counters from one quotient-DP sweep (the `exp_perf_quotient` bench
/// commits these alongside the timings; the perf-gate CI step greps them
/// non-zero).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DpStats {
    /// Distinct equality states interned (`dp_states` in bench notes) —
    /// bounded by Bell(units).
    pub states: usize,
    /// Largest unsolved frontier over all rounds.
    pub frontier_max: usize,
    /// Transition rows computed (once per `(state, silence)` ever).
    pub rows_built: u64,
    /// Frontier expansions answered from the cached row table — the
    /// transposition-table hits.
    pub row_hits: u64,
    /// State–digit edges walked (`frontier · 2^k` summed over rounds).
    pub transitions: u64,
    /// Verdict-memo hits inside [`SolvabilityMemo`] (states whose node
    /// partition repeated an earlier state's).
    pub memo_hits: u64,
    /// Verdicts answered by the task's closed form.
    pub closed_form_verdicts: u64,
    /// Verdicts that fell back to the dense facet scan.
    pub dense_scan_verdicts: u64,
}

/// Per-depth solved-node tallies from one DP sweep — the quotient twin of
/// [`engine::solved_counts`], widened to `u128`: `counts[d − 1]` is the
/// number of depth-`d` execution-tree nodes (time-`d` realizations) that
/// solve `task`, for `d ∈ 1..=t_max`, so `p(d) = counts[d − 1]/2^{k·d}`.
/// Bit-identical to the tree engine across its whole reachable range
/// (property-tested and bench-asserted).
///
/// # Panics
///
/// Panics if `k·t_max >` [`MAX_DP_BITS`], `k >` [`MAX_DP_K`], or on a
/// model/assignment node mismatch.
pub fn solved_series<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
) -> Vec<u128> {
    solved_series_with_stats(model, task, alpha, t_max, 1).0
}

/// [`solved_series`] with the sweep's [`DpStats`] and a worker-thread
/// count: rounds whose frontier has at least [`PAR_MIN_STATES`] missing
/// transition rows compute them on `threads` workers (interning stays
/// serial and ordered, so counts are bit-identical for every `threads`).
///
/// # Panics
///
/// Same conditions as [`solved_series`], plus `threads ≥ 1`.
pub fn solved_series_with_stats<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    threads: usize,
) -> (Vec<u128>, DpStats) {
    run(model, task, alpha, t_max, None, threads)
}

/// [`solved_series`] under a **fixed** [`FaultSchedule`]: the round-`r`
/// transition meets the state with both the digit's equality pattern and
/// the schedule's silence pattern at `r` (deterministic per round, so the
/// DP caches one row per `(state, silence mask)`). The quotient twin of
/// [`engine::solved_counts_faulted`], and bit-identical to it.
///
/// # Panics
///
/// Same conditions as [`solved_series`], plus a schedule/assignment node
/// mismatch and `n ≤ 64` (silence masks are one `u64`).
pub fn solved_series_faulted<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    faults: &FaultSchedule,
) -> Vec<u128> {
    solved_series_faulted_with_stats(model, task, alpha, t_max, faults, 1).0
}

/// [`solved_series_faulted`] with [`DpStats`] and a worker-thread count.
///
/// # Panics
///
/// Same conditions as [`solved_series_faulted`], plus `threads ≥ 1`.
pub fn solved_series_faulted_with_stats<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    faults: &FaultSchedule,
    threads: usize,
) -> (Vec<u128>, DpStats) {
    assert_eq!(
        faults.n(),
        alpha.n(),
        "fault schedule is for {} nodes, assignment for {}",
        faults.n(),
        alpha.n()
    );
    assert!(alpha.n() <= 64, "silence masks are u64: need n <= 64");
    run(model, task, alpha, t_max, Some(faults), threads)
}

/// The transition structure of one quotient DP: everything immutable the
/// per-digit child computation needs, separated from the mutable tables
/// so row building can fan out over read-only borrows.
struct Geometry {
    k: usize,
    /// Knowledge units: the `k` sources (fault-free blackboard) or the
    /// `n` nodes (everything else).
    units: usize,
    /// The source feeding each unit's round bit.
    unit_source: Vec<usize>,
    /// Node `i`'s unit — the pullback for verdicts on source-unit states.
    node_unit: Vec<usize>,
    /// Whether verdicts must pull the state back from sources to nodes.
    node_pullback: bool,
    mp: bool,
    faulted: bool,
    /// Fault-free message-passing term lists ([`lanes::aligned_terms`]).
    terms: Vec<u32>,
    /// Faulted message-passing term lists
    /// ([`lanes::aligned_fault_terms`]).
    fault_terms: Vec<[u32; 3]>,
    term_offsets: Vec<u32>,
}

impl Geometry {
    fn new(model: &Model, alpha: &Assignment, faulted: bool) -> Self {
        let n = alpha.n();
        let k = alpha.k();
        let node_source: Vec<usize> = (0..n).map(|i| alpha.source_of(i)).collect();
        let (units, unit_source, node_unit, node_pullback) = match (model, faulted) {
            (Model::Blackboard, false) => (k, (0..k).collect(), node_source.clone(), true),
            _ => (n, node_source.clone(), (0..n).collect(), false),
        };
        let (mp, terms, fault_terms, term_offsets) = match model {
            Model::Blackboard => (false, Vec::new(), Vec::new(), Vec::new()),
            Model::MessagePassing(ports) => {
                assert_eq!(
                    ports.n(),
                    n,
                    "port numbering is for {} nodes, assignment for {n}",
                    ports.n()
                );
                if faulted {
                    let (ft, off) = lanes::aligned_fault_terms(ports);
                    (true, Vec::new(), ft, off)
                } else {
                    let (t, off) = lanes::aligned_terms(ports);
                    (true, t, Vec::new(), off)
                }
            }
        };
        Geometry {
            k,
            units,
            unit_source,
            node_unit,
            node_pullback,
            mp,
            faulted,
            terms,
            fault_terms,
            term_offsets,
        }
    }

    /// Fills the packed previous-round pair-equality vector for a state
    /// (message passing only; the blackboard meet needs no pair view).
    fn fill_pair_eq(&self, labels: &[u8], pair_eq: &mut Vec<bool>) {
        pair_eq.clear();
        if !self.mp {
            return;
        }
        for a in 0..self.units {
            for b in a + 1..self.units {
                pair_eq.push(labels[a] == labels[b]);
            }
        }
    }

    /// One transition: the canonical labels of the child state reached
    /// from `labels` under round digit `digit` and silence mask `silence`
    /// (0 when fault-free). `pair_eq` must be [`Geometry::fill_pair_eq`]
    /// of `labels`; `new_eq`/`seen` are scratch. Mirrors the
    /// [`rsbt_sim::LaneStepper`] update rules exactly — the shared ground
    /// truth, cross-checked one state at a time by property test.
    #[allow(clippy::too_many_arguments)]
    fn child(
        &self,
        labels: &[u8],
        pair_eq: &[bool],
        digit: u64,
        silence: u64,
        new_eq: &mut Vec<bool>,
        seen: &mut Vec<u32>,
        out: &mut Vec<u8>,
    ) {
        out.clear();
        let bit = |u: usize| digit >> self.unit_source[u] & 1;
        if !self.mp {
            // Blackboard meet: unit u's new class is keyed by its old
            // class, its round bit, and (faulted) its silence status —
            // `eq'[u,v] = eq[u,v] & !(b[u]^b[v]) & !(S[u]^S[v])`.
            seen.clear();
            for (u, &label) in labels.iter().enumerate() {
                let key = label as u32 | (bit(u) as u32) << 8 | ((silence >> u & 1) as u32) << 9;
                match seen.iter().position(|&s| s == key) {
                    Some(c) => out.push(c as u8),
                    None => {
                        out.push(seen.len() as u8);
                        seen.push(key);
                    }
                }
            }
            return;
        }
        // Message passing: evaluate the pairwise rule, then relabel.
        new_eq.clear();
        let mut p = 0;
        for a in 0..self.units {
            for b in a + 1..self.units {
                let lo = self.term_offsets[p] as usize;
                let hi = self.term_offsets[p + 1] as usize;
                let w = if self.faulted {
                    // `eq'[a,b] = eq[a,b] & !(b[a]^b[b]) & AND_p
                    // (!(S[x]^S[y]) & (S[x] | eq[x,y]))` — the
                    // own-previous conjunct is explicit under faults.
                    let mut w = labels[a] == labels[b] && bit(a) == bit(b);
                    if w {
                        for &[q, x, y] in &self.fault_terms[lo..hi] {
                            let (sx, sy) = (silence >> x & 1, silence >> y & 1);
                            if sx != sy || (sx == 0 && !pair_eq[q as usize]) {
                                w = false;
                                break;
                            }
                        }
                    }
                    w
                } else {
                    // `eq'[a,b] = !(b[a]^b[b]) & AND_p eq[nbr(a,p),
                    // nbr(b,p)]` — own-previous is implied by multiset
                    // cancellation (see `rsbt_sim::lanes` docs).
                    let mut w = bit(a) == bit(b);
                    if w {
                        for &q in &self.terms[lo..hi] {
                            if !pair_eq[q as usize] {
                                w = false;
                                break;
                            }
                        }
                    }
                    w
                };
                new_eq.push(w);
                p += 1;
            }
        }
        // First-match relabel: knowledge equality is an equivalence on
        // reachable states, so the first equal predecessor fixes the
        // class (asserted in debug builds).
        let mut next = 0u8;
        for a in 0..self.units {
            let mut assigned = None;
            for b in 0..a {
                if new_eq[pair_index(self.units, b, a)] {
                    assigned = Some(out[b]);
                    break;
                }
            }
            match assigned {
                Some(label) => {
                    debug_assert!(
                        (0..a)
                            .filter(|&b| new_eq[pair_index(self.units, b, a)])
                            .all(|b| out[b] == label),
                        "transition relation is not an equivalence"
                    );
                    out.push(label);
                }
                None => {
                    out.push(next);
                    next += 1;
                }
            }
        }
    }
}

/// The mutable DP tables: interned states, verdicts, cached transition
/// rows, and the shared solvability memo.
struct Dp<'a, T: Task + ?Sized> {
    geom: Geometry,
    kernel: TaskKernel<'a, T>,
    memo: SolvabilityMemo,
    /// Interned states, by id (canonical first-occurrence labels).
    states: Vec<Box<[u8]>>,
    index: FxHashMap<Box<[u8]>, u32>,
    /// Verdict per state, computed once at intern time.
    verdicts: Vec<bool>,
    /// Fault-free transition rows (`2^k` child ids), by state id.
    rows: Vec<Option<Box<[u32]>>>,
    /// Faulted transition rows, keyed by `(state, silence mask)`.
    fault_rows: FxHashMap<(u32, u64), Box<[u32]>>,
    // Scratch buffers (reused across transitions).
    pair_eq: Vec<bool>,
    new_eq: Vec<bool>,
    seen: Vec<u32>,
    out: Vec<u8>,
    node_labels: Vec<u8>,
    remap: Vec<u8>,
    rows_built: u64,
    row_hits: u64,
    transitions: u64,
}

impl<T: Task + ?Sized> Dp<'_, T> {
    /// Interns a state, computing its verdict on first sight: node-unit
    /// states ask [`SolvabilityMemo::solves_labels`] directly; source-unit
    /// states (fault-free blackboard) pull the partition back to nodes
    /// and re-canonicalize first.
    fn intern(&mut self, labels: &[u8]) -> u32 {
        if let Some(&id) = self.index.get(labels) {
            return id;
        }
        let id = self.states.len() as u32;
        let boxed: Box<[u8]> = Box::from(labels);
        self.index.insert(boxed.clone(), id);
        self.states.push(boxed);
        self.rows.push(None);
        let verdict = if self.geom.node_pullback {
            self.node_labels.clear();
            self.remap.clear();
            self.remap.resize(self.geom.units, u8::MAX);
            let mut next = 0u8;
            for &u in &self.geom.node_unit {
                let class = labels[u] as usize;
                if self.remap[class] == u8::MAX {
                    self.remap[class] = next;
                    next += 1;
                }
                self.node_labels.push(self.remap[class]);
            }
            self.memo.solves_labels(&self.node_labels, &self.kernel)
        } else {
            self.memo.solves_labels(labels, &self.kernel)
        };
        self.verdicts.push(verdict);
        id
    }

    /// Expands one state under `silence`: child ids for all `2^k` digits,
    /// in digit order, appended to `row`.
    fn expand(&mut self, labels: &[u8], silence: u64, row: &mut Vec<u32>) {
        row.clear();
        let mut pair_eq = std::mem::take(&mut self.pair_eq);
        let mut new_eq = std::mem::take(&mut self.new_eq);
        let mut seen = std::mem::take(&mut self.seen);
        let mut out = std::mem::take(&mut self.out);
        self.geom.fill_pair_eq(labels, &mut pair_eq);
        for digit in 0..1u64 << self.geom.k {
            self.geom.child(
                labels,
                &pair_eq,
                digit,
                silence,
                &mut new_eq,
                &mut seen,
                &mut out,
            );
            let child = self.intern(&out);
            row.push(child);
        }
        self.pair_eq = pair_eq;
        self.new_eq = new_eq;
        self.seen = seen;
        self.out = out;
    }

    /// Ensures every frontier state has its transition row for `silence`,
    /// fanning the missing child-label computations out to `threads`
    /// workers when the frontier is large. Interning always happens
    /// serially in `(frontier order × digit order)`, so state ids — and
    /// therefore every downstream count — are identical for any thread
    /// count.
    fn build_rows(&mut self, frontier: &[(u32, u128)], silence: u64, threads: usize) {
        let missing: Vec<u32> = frontier
            .iter()
            .map(|&(sid, _)| sid)
            .filter(|&sid| {
                if silence == 0 {
                    self.rows[sid as usize].is_none()
                } else {
                    !self.fault_rows.contains_key(&(sid, silence))
                }
            })
            .collect();
        if missing.is_empty() {
            return;
        }
        self.rows_built += missing.len() as u64;
        if threads > 1 && missing.len() >= PAR_MIN_STATES {
            let geom = &self.geom;
            let states = &self.states;
            let label_rows: Vec<Vec<Vec<u8>>> =
                pool::map_with_arena(&missing, threads, |_, &sid| {
                    let labels = &states[sid as usize];
                    let mut pair_eq = Vec::new();
                    let mut new_eq = Vec::new();
                    let mut seen = Vec::new();
                    let mut out = Vec::new();
                    geom.fill_pair_eq(labels, &mut pair_eq);
                    (0..1u64 << geom.k)
                        .map(|digit| {
                            geom.child(
                                labels,
                                &pair_eq,
                                digit,
                                silence,
                                &mut new_eq,
                                &mut seen,
                                &mut out,
                            );
                            out.clone()
                        })
                        .collect()
                });
            for (child_labels, &sid) in label_rows.iter().zip(&missing) {
                let row: Box<[u32]> = child_labels.iter().map(|l| self.intern(l)).collect();
                self.store_row(sid, silence, row);
            }
        } else {
            let mut row = Vec::with_capacity(1usize << self.geom.k);
            for &sid in &missing {
                let labels = self.states[sid as usize].clone();
                self.expand(&labels, silence, &mut row);
                self.store_row(sid, silence, row.clone().into_boxed_slice());
            }
        }
    }

    fn store_row(&mut self, sid: u32, silence: u64, row: Box<[u32]>) {
        if silence == 0 {
            self.rows[sid as usize] = Some(row);
        } else {
            self.fault_rows.insert((sid, silence), row);
        }
    }

    fn stats(&self, frontier_max: usize) -> DpStats {
        DpStats {
            states: self.states.len(),
            frontier_max,
            rows_built: self.rows_built,
            row_hits: self.row_hits,
            transitions: self.transitions,
            memo_hits: self.memo.memo_hits(),
            closed_form_verdicts: self.memo.closed_form_verdicts(),
            dense_scan_verdicts: self.memo.dense_scan_verdicts(),
        }
    }
}

/// The silence mask of round `round`: bit `i` set iff node `i` is silent.
fn silence_mask(faults: &FaultSchedule, n: usize, round: usize) -> u64 {
    (0..n).fold(0u64, |mask, i| {
        mask | (faults.is_silent(i, round) as u64) << i
    })
}

/// The shared sweep body of every public entry point.
fn run<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    faults: Option<&FaultSchedule>,
    threads: usize,
) -> (Vec<u128>, DpStats) {
    let k = alpha.k();
    let n = alpha.n();
    assert!(threads >= 1, "need at least one thread");
    assert!(
        k * t_max <= MAX_DP_BITS,
        "k*t = {} exceeds the u128 dyadic-count budget of {MAX_DP_BITS}",
        k * t_max
    );
    assert!(
        k <= MAX_DP_K,
        "2^k per-state transition fan-out too large (k = {k} > {MAX_DP_K})"
    );
    if let Some(p) = model.ports() {
        assert_eq!(p.n(), n, "model/assignment node mismatch");
    }
    let geom = Geometry::new(model, alpha, faults.is_some());
    assert!(
        geom.units <= u8::MAX as usize,
        "too many knowledge units for u8 labels"
    );
    let table = engine::fallback_table(task, n);
    let kernel = match table.as_ref() {
        Some(table) => TaskKernel::new(task, table),
        None => TaskKernel::closed_form_only(task),
    };
    let units = geom.units;
    let mut dp = Dp {
        geom,
        kernel,
        memo: SolvabilityMemo::new(),
        states: Vec::new(),
        index: FxHashMap::default(),
        verdicts: Vec::new(),
        rows: Vec::new(),
        fault_rows: FxHashMap::default(),
        pair_eq: Vec::new(),
        new_eq: Vec::new(),
        seen: Vec::new(),
        out: Vec::new(),
        node_labels: Vec::new(),
        remap: Vec::new(),
        rows_built: 0,
        row_hits: 0,
        transitions: 0,
    };
    let root = vec![0u8; units];
    let root_id = dp.intern(&root);
    let mut counts = vec![0u128; t_max];
    if dp.verdicts[root_id as usize] {
        // The all-⊥ root already solves: monotonicity covers the entire
        // tree wholesale, at every depth (`k·d ≤ 126` keeps the shift in
        // range).
        for d in 1..=t_max {
            counts[d - 1] = 1u128 << (k * d);
        }
        return (counts, dp.stats(1));
    }
    if t_max == 0 {
        return (counts, dp.stats(1));
    }
    let cache_rows = k <= ROW_CACHE_MAX_K;
    let mut frontier: Vec<(u32, u128)> = vec![(root_id, 1)];
    let mut frontier_max = 1usize;
    let mut solved: u128 = 0;
    for r in 1..=t_max {
        let silence = faults.map_or(0, |f| silence_mask(f, n, r));
        let mut next: FxHashMap<u32, u128> = FxHashMap::default();
        let mut newly: u128 = 0;
        if cache_rows {
            let before = dp.rows_built;
            dp.build_rows(&frontier, silence, threads);
            dp.row_hits += frontier.len() as u64 - (dp.rows_built - before);
            for &(sid, cnt) in &frontier {
                let row: &[u32] = if silence == 0 {
                    dp.rows[sid as usize].as_deref().expect("row built above")
                } else {
                    &dp.fault_rows[&(sid, silence)]
                };
                for &child in row {
                    if dp.verdicts[child as usize] {
                        newly += cnt;
                    } else {
                        *next.entry(child).or_insert(0) += cnt;
                    }
                }
            }
        } else {
            // Streaming mode for very wide digit fan-outs: expand each
            // frontier state into a scratch row instead of caching
            // `2^k`-entry rows per state.
            let mut row = Vec::with_capacity(1usize << k);
            for &(sid, cnt) in &frontier {
                let labels = dp.states[sid as usize].clone();
                dp.expand(&labels, silence, &mut row);
                for &child in &row {
                    if dp.verdicts[child as usize] {
                        newly += cnt;
                    } else {
                        *next.entry(child).or_insert(0) += cnt;
                    }
                }
            }
        }
        dp.transitions += (frontier.len() as u64) << k;
        // The absorption recurrence: every solved depth-(r−1) node has
        // 2^k solved children, plus the freshly solved mass.
        solved = (solved << k) + newly;
        counts[r - 1] = solved;
        let mut merged: Vec<(u32, u128)> = next.into_iter().collect();
        merged.sort_unstable_by_key(|&(sid, _)| sid);
        frontier = merged;
        frontier_max = frontier_max.max(frontier.len());
        if frontier.is_empty() {
            // Everything solves from here on: pure absorption.
            for d in r + 1..=t_max {
                solved <<= k;
                counts[d - 1] = solved;
            }
            break;
        }
    }
    let stats = dp.stats(frontier_max);
    (counts, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsbt_sim::{KnowledgeArena, LaneStepper};
    use rsbt_tasks::{KLeaderElection, LeaderElection, Task};

    fn models_for(n: usize) -> Vec<Model> {
        vec![Model::Blackboard, Model::message_passing_cyclic(n)]
    }

    fn tasks_for(n: usize) -> Vec<Box<dyn Task>> {
        vec![
            Box::new(LeaderElection),
            Box::new(KLeaderElection::new(2.min(n))),
        ]
    }

    #[test]
    fn dp_matches_tree_engine_bit_for_bit() {
        // DP ≡ `solved_counts` for both models, all profiles n ≤ 4,
        // t ≤ 3, threads {1, 2, 4, 8}.
        for n in 1..=4usize {
            for alpha in Assignment::iter_profiles(n) {
                for model in models_for(n) {
                    for task in tasks_for(n) {
                        let mut arena = KnowledgeArena::new();
                        let tree =
                            engine::solved_counts(&model, task.as_ref(), &alpha, 3, &mut arena);
                        let serial = solved_series(&model, task.as_ref(), &alpha, 3);
                        let widened: Vec<u128> = tree.iter().map(|&c| c as u128).collect();
                        assert_eq!(serial, widened, "{model} {alpha} {}", task.name());
                        for threads in [2usize, 4, 8] {
                            let (par, _) =
                                solved_series_with_stats(&model, task.as_ref(), &alpha, 3, threads);
                            assert_eq!(par, serial, "{model} {alpha} threads={threads}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn dp_series_equals_per_t_dp() {
        // One sweep to t_max must agree with independent sweeps to every
        // prefix t.
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        for model in models_for(3) {
            let series = solved_series(&model, &LeaderElection, &alpha, 5);
            for t in 1..=5usize {
                let per_t = solved_series(&model, &LeaderElection, &alpha, t);
                assert_eq!(per_t[..], series[..t], "{model} t={t}");
            }
        }
    }

    #[test]
    fn transitions_match_lane_stepper_from_every_reachable_state() {
        // The equality-relation rule is the shared ground truth: seed a
        // LaneStepper with each reachable DP state via `load_relation`,
        // step one round (each lane one digit), and require the lane
        // relation to equal the DP child's labels — for both models,
        // fault-free and faulted.
        let alpha = Assignment::from_group_sizes(&[1, 1, 2]).unwrap();
        let n = alpha.n();
        let k = alpha.k();
        for model in models_for(n) {
            for faulted in [false, true] {
                let geom = Geometry::new(&model, &alpha, faulted);
                // Collect the reachable states by breadth-first expansion.
                let mut states: Vec<Vec<u8>> = vec![vec![0u8; geom.units]];
                let mut seen_states = states.clone();
                let silences: Vec<u64> = if faulted {
                    vec![0, 0b0101, 0b1000]
                } else {
                    vec![0]
                };
                let (mut pair_eq, mut new_eq, mut seen, mut out) =
                    (Vec::new(), Vec::new(), Vec::new(), Vec::new());
                for _round in 0..3 {
                    let mut next_states = Vec::new();
                    for labels in &states {
                        geom.fill_pair_eq(labels, &mut pair_eq);
                        for &silence in &silences {
                            // Lane check: lane d carries digit d.
                            let mut stepper = if faulted {
                                LaneStepper::new_faulted(&model, &alpha)
                            } else {
                                LaneStepper::new(&model, &alpha)
                            };
                            stepper.load_relation(labels);
                            // Source s's word: bit d = digit d's bit for s.
                            let words: Vec<u64> = (0..k)
                                .map(|s| (0..1u64 << k).fold(0u64, |w, d| w | (d >> s & 1) << d))
                                .collect();
                            if faulted {
                                let sil = |u: usize| {
                                    if silence >> u & 1 == 1 {
                                        u64::MAX
                                    } else {
                                        0
                                    }
                                };
                                stepper.step_faulted(|s| words[s], sil);
                            } else {
                                stepper.step(|s| words[s]);
                            }
                            for digit in 0..1u64 << k {
                                geom.child(
                                    labels,
                                    &pair_eq,
                                    digit,
                                    silence,
                                    &mut new_eq,
                                    &mut seen,
                                    &mut out,
                                );
                                // Compare pairwise relations.
                                for a in 0..geom.units {
                                    for b in a + 1..geom.units {
                                        let lane = stepper.eq_words()
                                            [lanes::pair_index(geom.units, a, b)]
                                            >> digit
                                            & 1
                                            == 1;
                                        let dp = out[a] == out[b];
                                        assert_eq!(
                                            dp, lane,
                                            "{model} faulted={faulted} state={labels:?} \
                                             silence={silence:#b} digit={digit} pair=({a},{b})"
                                        );
                                    }
                                }
                                if !seen_states.contains(&out) {
                                    seen_states.push(out.clone());
                                    next_states.push(out.clone());
                                }
                            }
                        }
                    }
                    states = next_states;
                }
                assert!(seen_states.len() > 1, "{model} explored no states");
            }
        }
    }

    #[test]
    fn absorption_equals_expanding_solved_states() {
        // Absorbing solved states must tally exactly what a
        // non-absorbing DP (which keeps expanding solved states and
        // counts every solved state at every depth) computes — the
        // quotient form of the engine's pruning-vs-exhaustive test.
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let t_max = 4;
        for model in models_for(3) {
            let absorbing = solved_series(&model, &LeaderElection, &alpha, t_max);
            // Reference: expand *every* state, verdict each child.
            let geom = Geometry::new(&model, &alpha, false);
            let kernel = TaskKernel::closed_form_only(&LeaderElection);
            let mut memo = SolvabilityMemo::new();
            let mut dp = Dp {
                geom,
                kernel,
                memo: SolvabilityMemo::new(),
                states: Vec::new(),
                index: FxHashMap::default(),
                verdicts: Vec::new(),
                rows: Vec::new(),
                fault_rows: FxHashMap::default(),
                pair_eq: Vec::new(),
                new_eq: Vec::new(),
                seen: Vec::new(),
                out: Vec::new(),
                node_labels: Vec::new(),
                remap: Vec::new(),
                rows_built: 0,
                row_hits: 0,
                transitions: 0,
            };
            let root = dp.intern(&vec![0u8; dp.geom.units]);
            let mut weights: FxHashMap<u32, u128> = FxHashMap::default();
            weights.insert(root, 1);
            let mut row = Vec::new();
            for t in 1..=t_max {
                let mut next: FxHashMap<u32, u128> = FxHashMap::default();
                let mut ids: Vec<u32> = weights.keys().copied().collect();
                ids.sort_unstable();
                for sid in ids {
                    let cnt = weights[&sid];
                    let labels = dp.states[sid as usize].clone();
                    dp.expand(&labels, 0, &mut row);
                    for &child in &row {
                        *next.entry(child).or_insert(0) += cnt;
                    }
                }
                weights = next;
                let solved: u128 = weights
                    .iter()
                    .filter(|&(&sid, _)| dp.verdicts[sid as usize])
                    .map(|(_, &c)| c)
                    .sum();
                assert_eq!(solved, absorbing[t - 1], "{model} t={t}");
            }
            // The reference used fresh verdicts per state, like the
            // absorbing run; sanity-check the memo actually engaged.
            let _ = &mut memo;
            assert!(dp.states.len() > 1, "{model}");
        }
    }

    #[test]
    fn faulted_dp_matches_faulted_tree_engine() {
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let t_max = 3;
        let mut sched = FaultSchedule::empty(3, t_max);
        sched.set_omission(0, 2);
        sched.set_crash(2, 2);
        for model in models_for(3) {
            for task in tasks_for(3) {
                let tree = engine::solved_counts_faulted(
                    &model,
                    task.as_ref(),
                    &alpha,
                    t_max,
                    &sched,
                    &mut KnowledgeArena::new(),
                );
                let dp = solved_series_faulted(&model, task.as_ref(), &alpha, t_max, &sched);
                let widened: Vec<u128> = tree.iter().map(|&c| c as u128).collect();
                assert_eq!(dp, widened, "{model} {}", task.name());
                for threads in [2usize, 4] {
                    let (par, _) = solved_series_faulted_with_stats(
                        &model,
                        task.as_ref(),
                        &alpha,
                        t_max,
                        &sched,
                        threads,
                    );
                    assert_eq!(par, dp, "{model} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn fault_free_schedule_matches_fault_free_dp() {
        // An empty schedule through the faulted DP (node units) must
        // reproduce the fault-free DP (source units on the blackboard) —
        // two different state spaces, same counts.
        let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
        let sched = FaultSchedule::empty(4, 3);
        for model in models_for(4) {
            let plain = solved_series(&model, &LeaderElection, &alpha, 3);
            let faulted = solved_series_faulted(&model, &LeaderElection, &alpha, 3, &sched);
            assert_eq!(plain, faulted, "{model}");
        }
    }

    #[test]
    fn u128_counts_survive_the_126_bit_edge() {
        // k = 2 private sources, leader election: the two nodes solve
        // exactly when their bit strings differ, so
        // counts[t−1] = 2^{2t} − 2^t. At t = 63 this is 2^126 − 2^63 —
        // exactly the 126-bit wall, far past u64.
        let alpha = Assignment::private(2);
        let series = solved_series(&Model::Blackboard, &LeaderElection, &alpha, 63);
        for t in 1..=63usize {
            assert_eq!(series[t - 1], (1u128 << (2 * t)) - (1u128 << t), "t={t}");
        }
    }

    #[test]
    fn root_solving_fills_every_depth_to_126_bits() {
        // n = 1 solves at the root; k = 1, t = 126 exercises
        // `1u128 << 126` — the largest shift the budget admits.
        let alpha = Assignment::private(1);
        let series = solved_series(&Model::Blackboard, &LeaderElection, &alpha, 126);
        assert_eq!(series[0], 2);
        assert_eq!(series[125], 1u128 << 126);
    }

    #[test]
    #[should_panic(expected = "dyadic-count budget")]
    fn beyond_126_bits_rejected() {
        let alpha = Assignment::private(2);
        let _ = solved_series(&Model::Blackboard, &LeaderElection, &alpha, 64);
    }

    #[test]
    fn stats_report_the_transposition_table() {
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let (series, stats) =
            solved_series_with_stats(&Model::Blackboard, &LeaderElection, &alpha, 8, 1);
        assert_eq!(series.len(), 8);
        assert!(stats.states >= 2, "{stats:?}");
        assert!(stats.rows_built >= 1, "{stats:?}");
        // The unsolved all-equal state recurs every round: rows must be
        // reused, not rebuilt.
        assert!(stats.row_hits >= 1, "{stats:?}");
        assert!(
            stats.transitions >= stats.rows_built << alpha.k(),
            "{stats:?}"
        );
        assert!(stats.closed_form_verdicts >= 1, "{stats:?}");
    }
}
