//! Closed-form probabilities from the proof of Theorem 4.1.
//!
//! For a blackboard configuration with `k > 1` sources and `n_1 = 1`, the
//! paper lower-bounds the success probability through the event `S_1(t)`
//! ("the first party's string is unique"):
//!
//! ```text
//! Pr[S(t) | α] ≥ (2^t − 1)^{k−1} / 2^{t(k−1)} ≥ 1 − (k−1)/2^t .
//! ```
//!
//! This module provides those two closed forms plus the *exact*
//! inclusion-exclusion formula for the blackboard success probability of
//! leader election (a singleton-source string must differ from every other
//! source's string), cross-validated against brute-force enumeration in
//! the tests.

/// The paper's lower bound `1 − (k−1)/2^t` (proof of Theorem 4.1, 'if'
/// direction, for configurations with a singleton source and `k` sources).
pub fn theorem_4_1_lower_bound(k: usize, t: usize) -> f64 {
    1.0 - (k as f64 - 1.0) / 2f64.powi(t as i32)
}

/// The probability of the event `S_1(t)`: the singleton party's string
/// differs from every other source's string —
/// `(2^t − 1)^{k−1} / 2^{t(k−1)}`.
pub fn s1_probability(k: usize, t: usize) -> f64 {
    let m = 2f64.powi(t as i32);
    ((m - 1.0) / m).powi(k as i32 - 1)
}

/// Exact blackboard success probability of leader election for group sizes
/// `n_1, …, n_k` at time `t`, via inclusion-exclusion.
///
/// Leader election solves at `ρ` iff some consistency class is a
/// singleton; in the blackboard model classes coincide with
/// equal-randomness groups of nodes, so a singleton class exists iff some
/// *singleton group*'s source string differs from every other source's
/// string. With `s` singleton groups among `k` sources and `m = 2^t`
/// strings:
///
/// ```text
/// p(t) = Σ_{j=1}^{s} (−1)^{j+1} C(s, j) · m(m−1)⋯(m−j+1) · (m−j)^{k−j} / m^k
/// ```
///
/// # Example
///
/// ```
/// use rsbt_core::bounds::exact_blackboard_le_probability;
///
/// // Two private sources (n = k = 2, both singletons): p(t) = 1 − 2^{−t}.
/// let p = exact_blackboard_le_probability(&[1, 1], 3);
/// assert!((p - 0.875).abs() < 1e-12);
/// // No singleton: probability 0.
/// assert_eq!(exact_blackboard_le_probability(&[2, 2], 3), 0.0);
/// ```
pub fn exact_blackboard_le_probability(group_sizes: &[usize], t: usize) -> f64 {
    let k = group_sizes.len();
    let s = group_sizes.iter().filter(|&&g| g == 1).count();
    if s == 0 {
        return 0.0;
    }
    if k == 1 {
        // Single source feeding a single node: trivial election.
        return 1.0;
    }
    let m = 2f64.powi(t as i32);
    let mut total = 0.0;
    let mut binom = 1.0; // C(s, j)
    let mut falling = 1.0; // m (m−1) ⋯ (m−j+1)
    for j in 1..=s {
        binom *= (s - j + 1) as f64 / j as f64;
        falling *= m - (j as f64 - 1.0);
        let rest = (m - j as f64).powi((k - j) as i32);
        let term = binom * falling * rest / m.powi(k as i32);
        if j % 2 == 1 {
            total += term;
        } else {
            total -= term;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_ordering() {
        // exact ≥ S1 ≥ paper bound, for singleton configurations.
        for k in 2..=5 {
            for t in 1..=6 {
                let sizes: Vec<usize> = std::iter::once(1)
                    .chain(std::iter::repeat_n(2, k - 1))
                    .collect();
                let exact = exact_blackboard_le_probability(&sizes, t);
                let s1 = s1_probability(k, t);
                let lb = theorem_4_1_lower_bound(k, t);
                assert!(exact >= s1 - 1e-12, "k={k} t={t}: exact {exact} < s1 {s1}");
                assert!(s1 >= lb - 1e-12, "k={k} t={t}: s1 {s1} < bound {lb}");
            }
        }
    }

    #[test]
    fn one_singleton_equals_s1() {
        // With exactly one singleton group, the exact probability IS the
        // S1 event probability.
        for k in 2..=5 {
            for t in 1..=5 {
                let sizes: Vec<usize> = std::iter::once(1)
                    .chain(std::iter::repeat_n(3, k - 1))
                    .collect();
                let exact = exact_blackboard_le_probability(&sizes, t);
                assert!((exact - s1_probability(k, t)).abs() < 1e-12, "k={k} t={t}");
            }
        }
    }

    #[test]
    fn all_private_two_nodes() {
        for t in 1..=6 {
            let p = exact_blackboard_le_probability(&[1, 1], t);
            let expect = 1.0 - 0.5f64.powi(t as i32);
            assert!((p - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn converges_to_one() {
        let p = exact_blackboard_le_probability(&[1, 2, 3], 30);
        assert!(p > 1.0 - 1e-8);
        let lb = theorem_4_1_lower_bound(3, 30);
        assert!(lb > 1.0 - 1e-8);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(exact_blackboard_le_probability(&[1], 5), 1.0);
        assert_eq!(exact_blackboard_le_probability(&[4], 5), 0.0);
        assert_eq!(exact_blackboard_le_probability(&[2, 3], 5), 0.0);
    }

    /// Brute-force cross-check against direct enumeration of source words.
    #[test]
    fn matches_brute_force() {
        for sizes in [
            vec![1usize, 1],
            vec![1, 2],
            vec![1, 1, 1],
            vec![1, 1, 2],
            vec![1, 2, 2],
            vec![2, 2],
        ] {
            let k = sizes.len();
            for t in 1..=3usize {
                let m = 1u64 << t;
                let mut hits = 0u64;
                let mut total = 0u64;
                // Every k-tuple of source strings.
                for word in 0..m.pow(k as u32) {
                    let strings: Vec<u64> = (0..k).map(|i| word / m.pow(i as u32) % m).collect();
                    let solvable = (0..k).any(|i| {
                        sizes[i] == 1
                            && strings
                                .iter()
                                .enumerate()
                                .all(|(j, &x)| j == i || x != strings[i])
                    });
                    hits += u64::from(solvable);
                    total += 1;
                }
                let brute = hits as f64 / total as f64;
                let formula = exact_blackboard_le_probability(&sizes, t);
                assert!(
                    (brute - formula).abs() < 1e-12,
                    "sizes={sizes:?} t={t}: brute {brute} vs formula {formula}"
                );
            }
        }
    }
}
