//! The realization complex `R(t)` (Section 3.3, Figure 2).
//!
//! Vertices are pairs `(i, x_i)` with `x_i ∈ {0,1}^t`; every set
//! `{(i, x_i) : i ∈ I}` with distinct names is a simplex, so the facets are
//! exactly the `2^{nt}` full realizations. `R(t)` is "maximally
//! uninformative" by itself; its role is to carry probabilities (easy to
//! compute per facet, Lemma B.1) over to `P(t)` through the isomorphism
//! `h`.

use rsbt_complex::{Complex, ProcessName, Simplex, Vertex};
use rsbt_random::{Assignment, BitString, Realization};

/// Builds the full realization complex `R(t)` for `n` nodes.
///
/// The result has `2^{nt}` facets; keep `n·t` small (the Figure 2
/// reproduction uses `n = 3`, `t ≤ 1`).
///
/// # Panics
///
/// Panics if `n == 0` or the enumeration would exceed `2^62` facets.
///
/// # Example
///
/// ```
/// use rsbt_core::realization_complex;
///
/// // Figure 2: R(1) for three processes has 8 facets (triangles).
/// let r1 = realization_complex::full(3, 1);
/// assert_eq!(r1.facet_count(), 8);
/// assert_eq!(r1.dimension(), Some(2));
/// assert!(r1.is_pure());
/// ```
pub fn full(n: usize, t: usize) -> Complex<BitString> {
    assert!(n >= 1, "need at least one node");
    let mut c = Complex::new();
    for rho in Realization::enumerate_all(n, t) {
        c.add_simplex(facet_of(&rho));
    }
    c
}

/// Builds the support of `R(t)` under a randomness-configuration `α`: only
/// the `2^{k(α)·t}` facets with positive probability.
pub fn support(alpha: &Assignment, t: usize) -> Complex<BitString> {
    let mut c = Complex::new();
    for rho in Realization::enumerate_consistent(alpha, t) {
        c.add_simplex(facet_of(&rho));
    }
    c
}

/// The facet of `R(t)` corresponding to a realization:
/// `{(i, x_i) : i ∈ [n]}`.
pub fn facet_of(rho: &Realization) -> Simplex<BitString> {
    Simplex::from_vertices(
        (0..rho.n()).map(|i| Vertex::new(ProcessName::new(i as u32), rho.node(i))),
    )
    .expect("distinct names")
}

/// Recovers the realization from a facet of `R(t)`.
///
/// # Panics
///
/// Panics if the facet does not cover contiguous names `0..n` (i.e. is not
/// a full realization facet).
pub fn realization_of(facet: &Simplex<BitString>) -> Realization {
    let n = facet.len();
    let strings: Vec<BitString> = (0..n)
        .map(|i| {
            *facet
                .value_of(ProcessName::new(i as u32))
                .unwrap_or_else(|| panic!("facet missing process p{i}"))
        })
        .collect();
    Realization::new(strings).expect("facet carries equal-length strings")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_counts() {
        // R(0): a single facet {(i, ⊥)}.
        let r0 = full(3, 0);
        assert_eq!(r0.facet_count(), 1);
        assert_eq!(r0.dimension(), Some(2));
        // R(1): 2^3 = 8 triangles on 6 vertices.
        let r1 = full(3, 1);
        assert_eq!(r1.facet_count(), 8);
        assert_eq!(r1.vertex_count(), 6);
    }

    #[test]
    fn vertex_count_scales() {
        // n · 2^t vertices.
        let c = full(2, 2);
        assert_eq!(c.vertex_count(), 8);
        assert_eq!(c.facet_count(), 16);
    }

    #[test]
    fn support_is_subcomplex_of_full() {
        let alpha = Assignment::from_group_sizes(&[2, 1]).unwrap();
        let sup = support(&alpha, 1);
        let all = full(3, 1);
        assert_eq!(sup.facet_count(), 4); // 2^{k·t} = 2^2
        assert!(rsbt_complex::ops::is_subcomplex(&sup, &all));
    }

    #[test]
    fn facet_roundtrip() {
        let alpha = Assignment::private(3);
        for rho in Realization::enumerate_consistent(&alpha, 2).take(16) {
            let f = facet_of(&rho);
            assert_eq!(realization_of(&f), rho);
        }
    }

    #[test]
    fn shared_source_support_is_diagonal() {
        let alpha = Assignment::shared(2);
        let sup = support(&alpha, 1);
        assert_eq!(sup.facet_count(), 2); // "00" and "11" only
        for f in sup.facets() {
            let rho = realization_of(f);
            assert_eq!(rho.node(0), rho.node(1));
        }
    }
}
