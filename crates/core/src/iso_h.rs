//! The simplicial map `h : P(t) → R(t)` and its facet isomorphism
//! (Section 3.3).
//!
//! `h` sends a knowledge vertex `(i, K_i(t))` to the randomness vertex
//! `(i, x_i)` where `x_i` is the bit string embedded in `K_i(t)`. It is
//! name-preserving and simplicial, generally many-to-one on vertices, but
//! **bijective on facets**: a realization determines the knowledge vector
//! and vice versa. This module materializes `h`, its inverse on facets, and
//! a mechanical verifier for the bijection.

use rsbt_complex::{maps::VertexMap, Complex, ProcessName, Simplex, Vertex};
use rsbt_random::{BitString, Realization};
use rsbt_sim::{KnowledgeArena, KnowledgeId, Model};

use crate::protocol_complex;
use crate::realization_complex;

/// Applies `h` to a single vertex: extract the randomness from the
/// knowledge.
pub fn h_vertex(arena: &KnowledgeArena, v: &Vertex<KnowledgeId>) -> Vertex<BitString> {
    let bits = arena.randomness(*v.value());
    Vertex::new(v.name(), BitString::from_bits(bits))
}

/// Applies `h` to a facet of `P(t)`, yielding the corresponding facet of
/// `R(t)`.
pub fn h_facet(arena: &KnowledgeArena, facet: &Simplex<KnowledgeId>) -> Simplex<BitString> {
    Simplex::from_vertices(facet.vertices().map(|v| h_vertex(arena, v))).expect("h preserves names")
}

/// The inverse of `h` on facets: run the dynamics on the realization to
/// rebuild the knowledge facet.
pub fn h_inverse_facet(
    model: &Model,
    facet: &Simplex<BitString>,
    arena: &mut KnowledgeArena,
) -> Simplex<KnowledgeId> {
    let rho = realization_complex::realization_of(facet);
    protocol_complex::facet_of(model, &rho, arena)
}

/// Materializes `h` as a [`VertexMap`] on the vertex set of a built `P(t)`.
pub fn h_map(
    arena: &KnowledgeArena,
    protocol: &Complex<KnowledgeId>,
) -> VertexMap<KnowledgeId, BitString> {
    protocol
        .vertices()
        .into_iter()
        .map(|v| {
            let img = h_vertex(arena, &v);
            (v, img)
        })
        .collect()
}

/// Mechanically verifies, for every realization on `n` nodes at time `t`,
/// that `h` and `h⁻¹` invert each other on facets and that `h` is a
/// name-preserving simplicial map `P(t) → R(t)`.
///
/// Returns the number of facets checked.
///
/// # Panics
///
/// Panics (with context) on any violation — used by tests and by the
/// `exp_fig4_lemma35` experiment.
pub fn verify_facet_isomorphism(model: &Model, n: usize, t: usize) -> usize {
    let mut arena = KnowledgeArena::new();
    let protocol = protocol_complex::build(model, n, t, &mut arena);
    let realizations = realization_complex::full(n, t);
    let map = h_map(&arena, &protocol);
    assert!(map.is_name_preserving(), "h must preserve names");
    assert!(
        map.is_simplicial(&protocol, &realizations),
        "h must be simplicial"
    );
    let mut checked = 0;
    let mut images = std::collections::BTreeSet::new();
    for facet in protocol.facets() {
        let image = h_facet(&arena, facet);
        assert!(
            realizations.contains_simplex(&image),
            "h image must be a facet of R(t)"
        );
        let back = h_inverse_facet(model, &image, &mut arena);
        assert_eq!(&back, facet, "h⁻¹ ∘ h must be the identity on facets");
        assert!(images.insert(image), "h must be injective on facets");
        checked += 1;
    }
    assert_eq!(
        checked,
        realizations.facet_count(),
        "h must be surjective on facets"
    );
    checked
}

/// Recovers `(i, x_i)` for every process from a protocol facet — the
/// explicit content of the paper's claim that a facet of `P(t)` "uniquely
/// determines the randomness received by all parties".
pub fn randomness_of_facet(arena: &KnowledgeArena, facet: &Simplex<KnowledgeId>) -> Realization {
    let n = facet.len();
    let strings: Vec<BitString> = (0..n)
        .map(|i| {
            let v = facet
                .value_of(ProcessName::new(i as u32))
                .expect("contiguous names");
            BitString::from_bits(arena.randomness(*v))
        })
        .collect();
    Realization::new(strings).expect("uniform time")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blackboard_isomorphism_small() {
        assert_eq!(verify_facet_isomorphism(&Model::Blackboard, 2, 2), 16);
        assert_eq!(verify_facet_isomorphism(&Model::Blackboard, 3, 1), 8);
    }

    #[test]
    fn message_passing_isomorphism_small() {
        assert_eq!(
            verify_facet_isomorphism(&Model::message_passing_cyclic(3), 3, 2),
            64
        );
    }

    #[test]
    fn h_is_many_to_one_on_vertices() {
        // Different board contents give different knowledge but identical
        // own-randomness: h collapses them.
        let mut arena = KnowledgeArena::new();
        let protocol = protocol_complex::build(&Model::Blackboard, 2, 2, &mut arena);
        let map = h_map(&arena, &protocol);
        let images: std::collections::BTreeSet<_> =
            map.iter().map(|(_, img)| img.clone()).collect();
        assert!(images.len() < map.len(), "vertex-level h collapses");
    }

    #[test]
    fn randomness_roundtrip() {
        let mut arena = KnowledgeArena::new();
        let rho = Realization::new(vec![
            rsbt_random::BitString::from_bits([true, true]),
            rsbt_random::BitString::from_bits([false, true]),
        ])
        .unwrap();
        let f = protocol_complex::facet_of(&Model::Blackboard, &rho, &mut arena);
        assert_eq!(randomness_of_facet(&arena, &f), rho);
    }
}
