//! `Pr[S(t) | α]`: the probability that the system solves a task by time
//! `t` (Section 3.4).
//!
//! Exact values enumerate the `2^{k·t}` positive-probability realizations
//! (all equiprobable by Lemma B.1); a Monte-Carlo estimator covers the
//! regimes where exact enumeration is out of reach.

use std::collections::HashMap;

use rand::Rng;
use rsbt_random::{Assignment, Realization};
use rsbt_sim::{KnowledgeArena, Model};
use rsbt_tasks::Task;

use crate::solvability;

/// Largest `k·t` accepted by the exact enumerator (`2^26` executions).
pub const MAX_EXACT_BITS: usize = 26;

/// Exact `Pr[S(t) | α]` by enumeration.
///
/// # Panics
///
/// Panics if `alpha.n()` mismatches the model's node count, or if
/// `k·t > MAX_EXACT_BITS`.
///
/// # Example
///
/// ```
/// use rsbt_core::probability;
/// use rsbt_random::Assignment;
/// use rsbt_sim::Model;
/// use rsbt_tasks::LeaderElection;
///
/// // One singleton source among two (k = 2): p(1) = 1/2.
/// let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
/// let p = probability::exact(&Model::Blackboard, &LeaderElection, &alpha, 1);
/// assert!((p - 0.5).abs() < 1e-12);
/// ```
pub fn exact<T: Task + ?Sized>(model: &Model, task: &T, alpha: &Assignment, t: usize) -> f64 {
    exact_with_arena(model, task, alpha, t, &mut KnowledgeArena::new())
}

/// [`exact`] with a caller-provided [`KnowledgeArena`].
///
/// Interning is content-addressed, so reusing one arena across many
/// enumeration points (a whole `p(1..t_max)` series, or a sweep worker's
/// chunk) produces bit-identical probabilities while skipping the
/// re-interning of shared knowledge prefixes.
///
/// # Panics
///
/// Same conditions as [`exact`].
pub fn exact_with_arena<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    arena: &mut KnowledgeArena,
) -> f64 {
    let bits = alpha.k() * t;
    assert!(
        bits <= MAX_EXACT_BITS,
        "k*t = {bits} exceeds exact-enumeration budget; use monte_carlo"
    );
    if let Some(p) = model.ports() {
        assert_eq!(p.n(), alpha.n(), "model/assignment node mismatch");
    }
    let mut solved = 0u64;
    let mut total = 0u64;
    for rho in Realization::enumerate_consistent(alpha, t) {
        if solvability::solves(model, &rho, task, arena) {
            solved += 1;
        }
        total += 1;
    }
    solved as f64 / total as f64
}

/// The series `p(1), …, p(t_max)` of exact success probabilities.
///
/// One [`KnowledgeArena`] is shared across the whole series: the `t`-round
/// knowledge values extend the `t − 1`-round ones, so rebuilding a fresh
/// arena per prefix (the old behavior) re-interned every shared prefix
/// `t_max` times. Results are bit-identical to calling [`exact`] per `t`
/// (asserted by test).
pub fn exact_series<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
) -> Vec<f64> {
    exact_series_with_arena(model, task, alpha, t_max, &mut KnowledgeArena::new())
}

/// [`exact_series`] with a caller-provided [`KnowledgeArena`].
pub fn exact_series_with_arena<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    arena: &mut KnowledgeArena,
) -> Vec<f64> {
    (1..=t_max)
        .map(|t| exact_with_arena(model, task, alpha, t, arena))
        .collect()
}

/// Memoization cache for exact sweep points.
///
/// Keyed by `(model, task name, canonical α source labels, t)` — the full
/// identity of one exact-probability evaluation. Overlapping sweep points
/// (the same profile appearing across bins, rounds, and report sections)
/// are computed once per process.
///
/// The task name is part of the key, so [`Task::name`] must uniquely
/// identify the task's output-complex family (all in-tree tasks do; e.g.
/// `KLeaderElection` embeds `k` and constrained `LeaderAndDeputy` variants
/// embed their constraint masks).
#[derive(Clone, Debug, Default)]
pub struct Cache {
    map: HashMap<(Model, String, Vec<usize>, usize), f64>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Cache::default()
    }

    /// The number of distinct sweep points stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no point has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// How many lookups were answered from memory.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// How many lookups had to compute.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up a point without computing; does not touch hit statistics.
    pub fn peek<T: Task + ?Sized>(
        &self,
        model: &Model,
        task: &T,
        alpha: &Assignment,
        t: usize,
    ) -> Option<f64> {
        self.map
            .get(&(model.clone(), task.name(), alpha.sources().to_vec(), t))
            .copied()
    }

    /// Inserts a precomputed point (used by parallel sweep engines that
    /// compute misses out-of-band and merge deterministically).
    pub fn insert<T: Task + ?Sized>(
        &mut self,
        model: &Model,
        task: &T,
        alpha: &Assignment,
        t: usize,
        p: f64,
    ) {
        self.map
            .insert((model.clone(), task.name(), alpha.sources().to_vec(), t), p);
    }
}

/// Cached [`exact`]: answers from `cache` when possible, otherwise computes
/// via [`exact_with_arena`] and memoizes.
///
/// # Panics
///
/// Same conditions as [`exact`].
pub fn exact_cached<T: Task + ?Sized>(
    cache: &mut Cache,
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    arena: &mut KnowledgeArena,
) -> f64 {
    let key = (model.clone(), task.name(), alpha.sources().to_vec(), t);
    if let Some(&p) = cache.map.get(&key) {
        cache.hits += 1;
        return p;
    }
    cache.misses += 1;
    let p = exact_with_arena(model, task, alpha, t, arena);
    cache.map.insert(key, p);
    p
}

/// Cached [`exact_series`]: each prefix `t` is memoized individually, so a
/// longer series extends a shorter one without recomputing shared prefixes.
pub fn exact_series_cached<T: Task + ?Sized>(
    cache: &mut Cache,
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    arena: &mut KnowledgeArena,
) -> Vec<f64> {
    (1..=t_max)
        .map(|t| exact_cached(cache, model, task, alpha, t, arena))
        .collect()
}

/// Exact `Pr[S(t) | α]` computed on `threads` OS threads, each with its
/// own knowledge arena. Produces bit-identical results to [`exact`]
/// (verified by test); use for the larger sweeps where `2^{kt}` single-
/// threaded enumeration dominates wall-clock time.
///
/// # Panics
///
/// Same conditions as [`exact`], plus `threads ≥ 1`.
pub fn exact_parallel<T>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    threads: usize,
) -> f64
where
    T: Task + Sync + ?Sized,
{
    assert!(threads >= 1, "need at least one thread");
    let bits = alpha.k() * t;
    assert!(
        bits <= MAX_EXACT_BITS,
        "k*t = {bits} exceeds exact-enumeration budget; use monte_carlo"
    );
    if let Some(p) = model.ports() {
        assert_eq!(p.n(), alpha.n(), "model/assignment node mismatch");
    }
    let total: u64 = 1 << bits;
    let chunk = total.div_ceil(threads as u64);
    let solved: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads as u64)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(total);
                scope.spawn(move || {
                    let mut arena = KnowledgeArena::new();
                    let mut hits = 0u64;
                    for rho in Realization::enumerate_consistent(alpha, t)
                        .skip(lo as usize)
                        .take(hi.saturating_sub(lo) as usize)
                    {
                        if solvability::solves(model, &rho, task, &mut arena) {
                            hits += 1;
                        }
                    }
                    hits
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).sum()
    });
    solved as f64 / total as f64
}

/// A Monte-Carlo estimate with its standard error.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Sample mean of the success indicator.
    pub p: f64,
    /// Standard error `sqrt(p(1−p)/samples)`.
    pub std_error: f64,
    /// Number of samples drawn.
    pub samples: usize,
}

impl Estimate {
    /// Whether `value` lies within `z` standard errors of the estimate.
    pub fn is_consistent_with(&self, value: f64, z: f64) -> bool {
        (self.p - value).abs() <= z * self.std_error + f64::EPSILON
    }
}

/// Monte-Carlo `Pr[S(t) | α]`.
///
/// # Panics
///
/// Panics if `samples == 0` or on a model/assignment node mismatch.
pub fn monte_carlo<T: Task, R: Rng + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    samples: usize,
    rng: &mut R,
) -> Estimate {
    assert!(samples > 0, "need at least one sample");
    if let Some(p) = model.ports() {
        assert_eq!(p.n(), alpha.n(), "model/assignment node mismatch");
    }
    let mut arena = KnowledgeArena::new();
    let mut solved = 0usize;
    for _ in 0..samples {
        let rho = Realization::sample(alpha, t, rng);
        if solvability::solves(model, &rho, task, &mut arena) {
            solved += 1;
        }
    }
    let p = solved as f64 / samples as f64;
    Estimate {
        p,
        std_error: (p * (1.0 - p) / samples as f64).sqrt(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rsbt_tasks::{KLeaderElection, LeaderElection};

    #[test]
    fn shared_source_never_solves() {
        let alpha = Assignment::shared(3);
        for t in 1..=3 {
            assert_eq!(exact(&Model::Blackboard, &LeaderElection, &alpha, t), 0.0);
        }
    }

    #[test]
    fn private_sources_converge_to_one() {
        let alpha = Assignment::private(2);
        let series = exact_series(&Model::Blackboard, &LeaderElection, &alpha, 5);
        // p(t) = 1 − 2^{−t}: the two nodes differ somewhere in t rounds.
        for (i, p) in series.iter().enumerate() {
            let t = i + 1;
            let expect = 1.0 - 0.5f64.powi(t as i32);
            assert!((p - expect).abs() < 1e-12, "t={t}: {p} vs {expect}");
        }
    }

    #[test]
    fn singleton_plus_pair_matches_closed_form() {
        // Group sizes [1, 2]: k = 2, exactly one singleton source. The
        // system solves iff the singleton's string differs from the pair's:
        // p(t) = 1 − 2^{−t}.
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        for t in 1..=4 {
            let p = exact(&Model::Blackboard, &LeaderElection, &alpha, t);
            let expect = 1.0 - 0.5f64.powi(t as i32);
            assert!((p - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn no_singleton_blackboard_is_dead() {
        // Theorem 4.1 'only if': sizes [2,2] never solve on the blackboard.
        let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
        for t in 1..=3 {
            assert_eq!(exact(&Model::Blackboard, &LeaderElection, &alpha, t), 0.0);
        }
    }

    #[test]
    fn series_is_monotone() {
        for sizes in [vec![1usize, 1], vec![1, 2], vec![1, 1, 1], vec![1, 3]] {
            let alpha = Assignment::from_group_sizes(&sizes).unwrap();
            let series = exact_series(&Model::Blackboard, &LeaderElection, &alpha, 4);
            for w in series.windows(2) {
                assert!(w[1] >= w[0] - 1e-12, "{sizes:?}: {series:?}");
            }
        }
    }

    #[test]
    fn monte_carlo_matches_exact() {
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let mut rng = StdRng::seed_from_u64(12345);
        let t = 3;
        let exact_p = exact(&Model::Blackboard, &LeaderElection, &alpha, t);
        let est = monte_carlo(
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            t,
            20_000,
            &mut rng,
        );
        assert!(
            est.is_consistent_with(exact_p, 4.0),
            "MC {est:?} vs exact {exact_p}"
        );
    }

    #[test]
    fn two_leader_probability() {
        // 2-LE on sizes [2,2] in the blackboard: solvable iff the two
        // groups' strings differ (elect one whole group? no — elect the two
        // members of one class... classes are the two groups when strings
        // differ; electing one group of size 2 = exactly two leaders). So
        // p(t) = 1 − 2^{−t}.
        let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
        let task = KLeaderElection::new(2);
        for t in 1..=4 {
            let p = exact(&Model::Blackboard, &task, &alpha, t);
            let expect = 1.0 - 0.5f64.powi(t as i32);
            assert!((p - expect).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        for sizes in [vec![1usize, 2], vec![2, 2], vec![1, 1, 1]] {
            let alpha = Assignment::from_group_sizes(&sizes).unwrap();
            for t in 1..=3usize {
                let seq = exact(&Model::Blackboard, &LeaderElection, &alpha, t);
                for threads in [1usize, 2, 4] {
                    let par =
                        exact_parallel(&Model::Blackboard, &LeaderElection, &alpha, t, threads);
                    assert_eq!(seq, par, "sizes {sizes:?} t {t} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn parallel_message_passing() {
        let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
        let model = Model::message_passing_cyclic(4);
        let seq = exact(&model, &LeaderElection, &alpha, 3);
        let par = exact_parallel(&model, &LeaderElection, &alpha, 3, 3);
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic(expected = "exceeds exact-enumeration budget")]
    fn exact_budget_guard() {
        let alpha = Assignment::private(7);
        let _ = exact(&Model::Blackboard, &LeaderElection, &alpha, 4);
    }

    #[test]
    fn shared_arena_series_bit_identical_to_per_t_path() {
        // The incremental series (one arena for all prefixes) must agree
        // bit-for-bit with a fresh arena per t, on both models.
        for model in [Model::Blackboard, Model::message_passing_cyclic(4)] {
            for sizes in [vec![1usize, 3], vec![2, 2], vec![1, 1, 2]] {
                let alpha = Assignment::from_group_sizes(&sizes).unwrap();
                let series = exact_series(&model, &LeaderElection, &alpha, 3);
                for (i, &p) in series.iter().enumerate() {
                    let fresh = exact(&model, &LeaderElection, &alpha, i + 1);
                    assert!(
                        p.to_bits() == fresh.to_bits(),
                        "{model} {sizes:?} t={}: {p} vs {fresh}",
                        i + 1
                    );
                }
            }
        }
    }

    #[test]
    fn cache_replays_bit_identical_values() {
        let mut cache = Cache::new();
        let mut arena = KnowledgeArena::new();
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let first = exact_series_cached(
            &mut cache,
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            4,
            &mut arena,
        );
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 4);
        // A longer series extends the cached prefix: 4 hits + 2 misses.
        let longer = exact_series_cached(
            &mut cache,
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            6,
            &mut arena,
        );
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.misses(), 6);
        assert_eq!(&longer[..4], &first[..]);
        for (i, &p) in longer.iter().enumerate() {
            let fresh = exact(&Model::Blackboard, &LeaderElection, &alpha, i + 1);
            assert_eq!(p.to_bits(), fresh.to_bits(), "t={}", i + 1);
        }
    }

    #[test]
    fn cache_key_distinguishes_model_task_and_alpha() {
        let mut cache = Cache::new();
        let mut arena = KnowledgeArena::new();
        let a12 = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let a111 = Assignment::from_group_sizes(&[1, 1, 1]).unwrap();
        let two = KLeaderElection::new(2);
        let mp = Model::message_passing_cyclic(3);
        let points: Vec<f64> = vec![
            exact_cached(
                &mut cache,
                &Model::Blackboard,
                &LeaderElection,
                &a12,
                2,
                &mut arena,
            ),
            exact_cached(
                &mut cache,
                &Model::Blackboard,
                &LeaderElection,
                &a111,
                2,
                &mut arena,
            ),
            exact_cached(&mut cache, &Model::Blackboard, &two, &a111, 2, &mut arena),
            exact_cached(&mut cache, &mp, &LeaderElection, &a111, 2, &mut arena),
        ];
        assert_eq!(cache.len(), 4, "four distinct keys, no collisions");
        assert_eq!(cache.misses(), 4);
        // Replays hit and agree.
        assert_eq!(
            exact_cached(&mut cache, &mp, &LeaderElection, &a111, 2, &mut arena).to_bits(),
            points[3].to_bits()
        );
        assert_eq!(cache.hits(), 1);
        assert_eq!(
            cache.peek(&Model::Blackboard, &LeaderElection, &a12, 2),
            Some(points[0])
        );
        assert_eq!(
            cache.peek(&Model::Blackboard, &LeaderElection, &a12, 3),
            None
        );
    }
}
