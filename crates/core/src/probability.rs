//! `Pr[S(t) | α]`: the probability that the system solves a task by time
//! `t` (Section 3.4).
//!
//! Exact values count the `2^{k·t}` positive-probability realizations
//! (all equiprobable by Lemma B.1) that solve — computed by the quotient
//! DP engine ([`crate::engine_dp`]), which folds the execution tree into
//! a dynamic program over knowledge-equality states, carries counts as
//! exact `u128` dyadic integers up to `k·t ≤` [`MAX_EXACT_BITS`]` = 126`,
//! and costs `O(states · 2^k)` per round — flat in `t`. The
//! prefix-sharing execution-tree engine ([`crate::engine`]) remains the
//! dispatch fallback for `k >` [`crate::engine_dp::MAX_DP_K`] (where the
//! DP's per-state `2^k` fan-out is unaffordable) and the reference path
//! for bit-identity tests. A Monte-Carlo estimator covers the regimes
//! where even the DP is out of reach.

use rand::rngs::StreamRng;
use rand::Rng;
use rsbt_random::{Assignment, BitString, Realization};
use rsbt_sim::{
    pool, FaultSchedule, FaultSpec, FxHashMap, KnowledgeArena, KnowledgeId, Model, RoundStepper,
};
use rsbt_tasks::Task;

use rsbt_complex::FacetTable;

use crate::engine::{self, SolvabilityMemo, TaskKernel};
use crate::engine_dp;
use crate::output_cache::OutputComplexCache;
use crate::solvability;

pub use crate::bitsliced::{
    monte_carlo_bitsliced, monte_carlo_bitsliced_faulted, monte_carlo_bitsliced_faulted_with_stats,
    monte_carlo_bitsliced_series, monte_carlo_bitsliced_series_faulted,
    monte_carlo_bitsliced_series_faulted_with_stats, monte_carlo_bitsliced_series_with_stats,
    monte_carlo_bitsliced_with_stats,
};

/// Largest `k·t` accepted by the exact entry points: the quotient DP
/// engine carries solved counts as exact dyadic `u128` integers, and 126
/// bits is the last point where every tally — including the full-tree
/// mass `2^{k·t}` — stays representable. Raised from 30 (see
/// [`TREE_EXACT_BITS`]) when the quotient engine
/// ([`crate::engine_dp`]) replaced tree traversal as the production
/// exact path; the history is 26 → 30 (prefix-sharing engine, `DESIGN.md`
/// §4.4) → 126 (knowledge-equality DP, `DESIGN.md` §4.10).
pub const MAX_EXACT_BITS: usize = 126;

/// The previous exact wall: the largest `k·t` the tree-walking paths can
/// afford (`2^30` executions). Still load-bearing three ways: the
/// `k > MAX_DP_K` dispatch fallback runs the tree engine, whose cost is
/// `2^{k·t}` node visits; leaf-by-leaf certificate searches
/// ([`crate::eventual`]) enumerate realizations outright; and bench
/// sweeps tag rows past this budget with the `exact-dp` mode so report
/// consumers can tell which numbers the old engine could not have
/// produced.
pub const TREE_EXACT_BITS: usize = 30;

/// Exact `Pr[S(t) | α]`: the integer count of solving realizations over
/// `2^{k·t}`, computed by the quotient DP / tree-engine dispatch (see
/// [`MAX_EXACT_BITS`] and `dispatch_series` for the routing).
///
/// # Panics
///
/// Panics if `alpha.n()` mismatches the model's node count, or if
/// `k·t > MAX_EXACT_BITS`.
///
/// # Example
///
/// ```
/// use rsbt_core::probability;
/// use rsbt_random::Assignment;
/// use rsbt_sim::Model;
/// use rsbt_tasks::LeaderElection;
///
/// // One singleton source among two (k = 2): p(1) = 1/2.
/// let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
/// let p = probability::exact(&Model::Blackboard, &LeaderElection, &alpha, 1);
/// assert!((p - 0.5).abs() < 1e-12);
/// ```
pub fn exact<T: Task + ?Sized>(model: &Model, task: &T, alpha: &Assignment, t: usize) -> f64 {
    exact_with_arena(model, task, alpha, t, &mut KnowledgeArena::new())
}

/// [`exact`] with a caller-provided [`KnowledgeArena`].
///
/// The arena matters only on the tree-engine fallback path (`k >`
/// [`engine_dp::MAX_DP_K`]) and at `t = 0`, where interning is
/// content-addressed and reuse across points skips re-interning shared
/// knowledge prefixes; the quotient DP path keeps no knowledge ids.
/// Results are bit-identical either way.
///
/// # Panics
///
/// Same conditions as [`exact`].
pub fn exact_with_arena<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    arena: &mut KnowledgeArena,
) -> f64 {
    check_budget(model, alpha, t);
    if t == 0 {
        return exact_reference(model, task, alpha, 0, arena);
    }
    let counts = dispatch_series(model, task, alpha, t, None, 1, arena);
    counts[t - 1] as f64 / (1u128 << (alpha.k() * t)) as f64
}

/// Exact `Pr[S(t) | α]` under a **fixed** [`FaultSchedule`]: counts the
/// `2^{k·t}` equiprobable realizations that solve when every execution
/// runs against the same deterministic silence pattern (crashed or
/// omitting nodes contribute nothing to a round's board or messages; see
/// [`rsbt_sim::Execution::run_with_faults`]).
///
/// Random fault *rates* are deliberately not accepted here: enumerating
/// them would weight realizations by fault-pattern probability and break
/// Lemma B.1's equiprobability — rates belong to the Monte-Carlo
/// estimators ([`monte_carlo_parallel_faulted`] and the bit-sliced
/// family). For the solvability-law fine print (where the zero-one
/// argument survives omission faults and where crashes break it) see
/// `DESIGN.md` §4.9.
///
/// # Panics
///
/// Same conditions as [`exact`], plus a schedule/assignment node
/// mismatch.
pub fn exact_faulted<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    faults: &FaultSchedule,
) -> f64 {
    exact_faulted_with_arena(model, task, alpha, t, faults, &mut KnowledgeArena::new())
}

/// [`exact_faulted`] with a caller-provided [`KnowledgeArena`].
///
/// # Panics
///
/// Same conditions as [`exact_faulted`].
pub fn exact_faulted_with_arena<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    faults: &FaultSchedule,
    arena: &mut KnowledgeArena,
) -> f64 {
    check_budget(model, alpha, t);
    if t == 0 {
        // No rounds: faults never act, and the all-⊥ partition decides.
        return exact_reference(model, task, alpha, 0, arena);
    }
    let counts = dispatch_series(model, task, alpha, t, Some(faults), 1, arena);
    counts[t - 1] as f64 / (1u128 << (alpha.k() * t)) as f64
}

/// Asserts the shared preconditions of every exact entry point.
fn check_budget(model: &Model, alpha: &Assignment, t: usize) {
    let bits = alpha.k() * t;
    assert!(
        bits <= MAX_EXACT_BITS,
        "k*t = {bits} exceeds exact-enumeration budget; use monte_carlo"
    );
    if let Some(p) = model.ports() {
        assert_eq!(p.n(), alpha.n(), "model/assignment node mismatch");
    }
}

/// The production dispatch behind every `exact*` entry point: solved
/// counts per depth from the quotient DP engine
/// ([`engine_dp::solved_series`] and the faulted twin) whenever its
/// per-state `2^k` digit fan-out is affordable (`k ≤`
/// [`engine_dp::MAX_DP_K`]), else from the prefix-sharing tree engine —
/// whose `u64` tallies additionally require `k·t ≤ 62`. The two are
/// bit-identical on the overlap (property-tested in [`crate::engine_dp`]
/// and asserted in-process by the `exp_perf_quotient` bench). `arena` is
/// consulted only on the tree path (the DP keeps no knowledge ids);
/// `threads` only on the DP path (tree-path parallelism goes through
/// [`exact_parallel`]'s subtree sharding instead).
fn dispatch_series<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    faults: Option<&FaultSchedule>,
    threads: usize,
    arena: &mut KnowledgeArena,
) -> Vec<u128> {
    if alpha.k() <= engine_dp::MAX_DP_K {
        return match faults {
            None => engine_dp::solved_series_with_stats(model, task, alpha, t_max, threads).0,
            Some(f) => {
                engine_dp::solved_series_faulted_with_stats(model, task, alpha, t_max, f, threads).0
            }
        };
    }
    assert!(
        alpha.k() * t_max <= 62,
        "k = {} exceeds the quotient engine's digit fan-out bound (MAX_DP_K = {}) \
         and k*t = {} exceeds the tree engine's u64 tallies (62 bits)",
        alpha.k(),
        engine_dp::MAX_DP_K,
        alpha.k() * t_max
    );
    let counts = match faults {
        None => engine::solved_counts(model, task, alpha, t_max, arena),
        Some(f) => engine::solved_counts_faulted(model, task, alpha, t_max, f, arena),
    };
    counts.into_iter().map(u128::from).collect()
}

/// The pre-engine reference path: leaf-by-leaf re-simulation over
/// [`Realization::enumerate_consistent`], kept verbatim as the independent
/// ground truth for the engine's bit-identity tests and the
/// `exp_perf_enum` before/after benchmark — including the old per-leaf
/// solvability cost model ([`solvability::solves_reference`] rebuilds the
/// output complex and scans it per realization, exactly as `solves` did
/// before the dense/closed-form rewrite). Not used by any production
/// caller — prefer [`exact`] / [`exact_with_arena`].
///
/// # Panics
///
/// Same conditions as [`exact`].
pub fn exact_reference<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    arena: &mut KnowledgeArena,
) -> f64 {
    check_budget(model, alpha, t);
    let mut solved = 0u64;
    let mut total = 0u64;
    for rho in Realization::enumerate_consistent(alpha, t) {
        if solvability::solves_reference(model, &rho, task, arena) {
            solved += 1;
        }
        total += 1;
    }
    solved as f64 / total as f64
}

/// Reference form of [`exact_series`]: one [`exact_reference`] per `t`
/// over a shared arena — the pre-engine cost model `Σ_t t·2^{k·t}` the
/// `exp_perf_enum` benchmark compares against.
///
/// # Panics
///
/// Same conditions as [`exact`], applied at `t_max`.
pub fn exact_series_reference<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    arena: &mut KnowledgeArena,
) -> Vec<f64> {
    (1..=t_max)
        .map(|t| exact_reference(model, task, alpha, t, arena))
        .collect()
}

/// The series `p(1), …, p(t_max)` of exact success probabilities.
///
/// A **single** execution-tree traversal produces the whole series: the
/// engine tallies solved nodes at every depth, so `p(t)` for all `t ≤
/// t_max` costs one walk of the depth-`t_max` tree instead of one
/// enumeration per `t`. Results are bit-identical to calling [`exact`]
/// per `t` (asserted by test).
pub fn exact_series<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
) -> Vec<f64> {
    exact_series_with_arena(model, task, alpha, t_max, &mut KnowledgeArena::new())
}

/// [`exact_series`] with a caller-provided [`KnowledgeArena`].
pub fn exact_series_with_arena<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    arena: &mut KnowledgeArena,
) -> Vec<f64> {
    check_budget(model, alpha, t_max);
    let counts = dispatch_series(model, task, alpha, t_max, None, 1, arena);
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| c as f64 / (1u128 << (alpha.k() * (i + 1))) as f64)
        .collect()
}

/// Memoization cache for exact sweep points.
///
/// Keyed by `(model, task name, canonical α source labels, t)` — the full
/// identity of one exact-probability evaluation. Overlapping sweep points
/// (the same profile appearing across bins, rounds, and report sections)
/// are computed once per process.
///
/// The key is stored as three nested maps (`model → task name → α`) whose
/// leaves hold the per-`t` series, so **lookups borrow every component**:
/// a hot sweep hit performs no allocation (the old flat
/// `(Model, String, Vec<usize>, usize)` tuple key cloned the model and
/// the source vector — two heap allocations — per lookup, hits included).
/// The generic [`Cache::peek`] still materializes the task name once
/// (`Task::name` returns an owned `String`); hot paths precompute the
/// name and use [`Cache::peek_named`].
///
/// The task name is part of the key, so [`Task::name`] must uniquely
/// identify the task's output-complex family (all in-tree tasks do; e.g.
/// `KLeaderElection` embeds `k` and constrained `LeaderAndDeputy` variants
/// embed their constraint masks).
#[derive(Clone, Debug, Default)]
pub struct Cache {
    /// `model → task name → α sources → p(t) at slot t`.
    map: FxHashMap<Model, TaskMap>,
    points: usize,
    hits: u64,
    misses: u64,
}

/// `task name → α sources → p(t) at slot t` (the inner cache levels).
type TaskMap = FxHashMap<String, FxHashMap<Box<[usize]>, Vec<Option<f64>>>>;

impl Cache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Cache::default()
    }

    /// The number of distinct sweep points stored.
    pub fn len(&self) -> usize {
        self.points
    }

    /// Whether no point has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.points == 0
    }

    /// How many lookups were answered from memory.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// How many lookups had to compute.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up a point without computing; does not touch hit statistics.
    pub fn peek<T: Task + ?Sized>(
        &self,
        model: &Model,
        task: &T,
        alpha: &Assignment,
        t: usize,
    ) -> Option<f64> {
        self.peek_named(model, &task.name(), alpha.sources(), t)
    }

    /// [`Cache::peek`] with every key component borrowed — the
    /// allocation-free hot path for sweep engines that computed
    /// `task.name()` once per point.
    pub fn peek_named(
        &self,
        model: &Model,
        task_name: &str,
        sources: &[usize],
        t: usize,
    ) -> Option<f64> {
        self.map
            .get(model)?
            .get(task_name)?
            .get(sources)?
            .get(t)
            .copied()
            .flatten()
    }

    /// Inserts a precomputed point (used by parallel sweep engines that
    /// compute misses out-of-band and merge deterministically).
    pub fn insert<T: Task + ?Sized>(
        &mut self,
        model: &Model,
        task: &T,
        alpha: &Assignment,
        t: usize,
        p: f64,
    ) {
        self.insert_named(model, &task.name(), alpha.sources(), t, p);
    }

    /// [`Cache::insert`] with borrowed key components; allocates only for
    /// key components not yet present.
    pub fn insert_named(
        &mut self,
        model: &Model,
        task_name: &str,
        sources: &[usize],
        t: usize,
        p: f64,
    ) {
        // Owned key components are cloned only when absent (misses are
        // rare relative to hits and allocate for the computation anyway).
        if !self.map.contains_key(model) {
            self.map.insert(model.clone(), FxHashMap::default());
        }
        let by_task = self.map.get_mut(model).expect("ensured above");
        if !by_task.contains_key(task_name) {
            by_task.insert(task_name.to_string(), FxHashMap::default());
        }
        let by_alpha = by_task.get_mut(task_name).expect("ensured above");
        if !by_alpha.contains_key(sources) {
            by_alpha.insert(Box::from(sources), Vec::new());
        }
        let series = by_alpha.get_mut(sources).expect("ensured above");
        if series.len() <= t {
            series.resize(t + 1, None);
        }
        if series[t].is_none() {
            self.points += 1;
        }
        series[t] = Some(p);
    }

    /// Counted borrowed lookup: bumps the hit/miss statistics.
    fn lookup_counted(
        &mut self,
        model: &Model,
        task_name: &str,
        sources: &[usize],
        t: usize,
    ) -> Option<f64> {
        match self.peek_named(model, task_name, sources, t) {
            Some(p) => {
                self.hits += 1;
                Some(p)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }
}

/// Cached [`exact`]: answers from `cache` when possible, otherwise computes
/// via [`exact_with_arena`] and memoizes. The cache key is borrowed — no
/// model or source-vector clone on hits.
///
/// # Panics
///
/// Same conditions as [`exact`].
pub fn exact_cached<T: Task + ?Sized>(
    cache: &mut Cache,
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    arena: &mut KnowledgeArena,
) -> f64 {
    let name = task.name();
    if let Some(p) = cache.lookup_counted(model, &name, alpha.sources(), t) {
        return p;
    }
    let p = exact_with_arena(model, task, alpha, t, arena);
    cache.insert_named(model, &name, alpha.sources(), t, p);
    p
}

/// Cached [`exact_series`]: each prefix `t` is memoized individually, so a
/// longer series extends a shorter one without recomputing shared
/// prefixes. Uncached suffixes are filled by **one** engine traversal to
/// the deepest missing `t`, not one enumeration per missing point.
pub fn exact_series_cached<T: Task + ?Sized>(
    cache: &mut Cache,
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    arena: &mut KnowledgeArena,
) -> Vec<f64> {
    let name = task.name();
    let cached: Vec<Option<f64>> = (1..=t_max)
        .map(|t| cache.lookup_counted(model, &name, alpha.sources(), t))
        .collect();
    let deepest_missing = cached.iter().rposition(Option::is_none).map(|i| i + 1);
    let computed = match deepest_missing {
        Some(need) => exact_series_with_arena(model, task, alpha, need, arena),
        None => Vec::new(),
    };
    cached
        .into_iter()
        .enumerate()
        .map(|(i, slot)| match slot {
            Some(p) => p,
            None => {
                let p = computed[i];
                cache.insert_named(model, &name, alpha.sources(), i + 1, p);
                p
            }
        })
        .collect()
}

/// Exact `Pr[S(t) | α]` computed on `threads` OS threads. Produces
/// bit-identical results to [`exact`] (verified by test); use for the
/// larger sweeps where single-threaded evaluation dominates wall-clock
/// time.
///
/// On the quotient-DP path (`k ≤` [`engine_dp::MAX_DP_K`]) the threads
/// build missing transition rows per round
/// ([`engine_dp::solved_series_with_stats`]); interning stays serial and
/// ordered, so the counts are independent of `threads`. On the tree
/// fallback, parallelism is top-level-subtree sharding over the
/// execution tree: the depth-`D` prefixes (smallest `D` with `2^{k·D} ≥
/// threads`) are split into contiguous ranges, each worker runs the
/// prefix-sharing engine on its range with a private arena/memo
/// ([`engine::solved_counts_shard`]), and the per-shard tallies are
/// merged in index order via [`pool::map_with_arena`] — integer counts,
/// so the merged probability is bit-identical to the serial walk.
///
/// # Panics
///
/// Same conditions as [`exact`], plus `threads ≥ 1`.
pub fn exact_parallel<T>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    threads: usize,
) -> f64
where
    T: Task + Sync + ?Sized,
{
    assert!(threads >= 1, "need at least one thread");
    check_budget(model, alpha, t);
    if t == 0 || threads == 1 {
        return exact(model, task, alpha, t);
    }
    let k = alpha.k();
    if k <= engine_dp::MAX_DP_K {
        let (counts, _) = engine_dp::solved_series_with_stats(model, task, alpha, t, threads);
        return counts[t - 1] as f64 / (1u128 << (k * t)) as f64;
    }
    let mut shard_depth = 0;
    // u128: `check_budget` bounds `k * t` (and so `k * shard_depth`) only
    // to the 126-bit DP budget, past the 64-bit shift range.
    while shard_depth < t && (1u128 << (k * shard_depth)) < threads as u128 {
        shard_depth += 1;
    }
    let prefixes: u64 = 1 << (k * shard_depth);
    let chunk = prefixes.div_ceil(threads as u64);
    let ranges: Vec<(u64, u64)> = (0..threads as u64)
        .map(|w| (w * chunk, ((w + 1) * chunk).min(prefixes)))
        .filter(|(lo, hi)| lo < hi)
        .collect();
    // At most one dense table for the run (none when the task's closed
    // form answers), shared read-only across workers; each worker
    // assembles its borrowed kernel and owns its memo.
    let table = engine::fallback_table(task, alpha.n());
    let shard_counts = pool::map_with_arena(&ranges, threads, |arena, &(lo, hi)| {
        let kernel = match table.as_ref() {
            Some(table) => TaskKernel::new(task, table),
            None => TaskKernel::closed_form_only(task),
        };
        let mut memo = SolvabilityMemo::new();
        engine::solved_counts_shard(
            model,
            &kernel,
            alpha,
            t,
            shard_depth,
            lo,
            hi,
            arena,
            &mut memo,
        )
    });
    let solved: u64 = shard_counts.iter().map(|counts| counts[t - 1]).sum();
    // u128 like every other tally division: the shard engine's own
    // `k·t ≤ 62` assert keeps `solved` in u64 range, but the denominator
    // shift must not be the thing that pins the wall.
    solved as f64 / (1u128 << (k * t)) as f64
}

/// The largest sample count the estimators accept: counts above `2^53`
/// are no longer exactly representable as `f64`, so `solved / samples`
/// would silently lose precision.
pub const MAX_MC_SAMPLES: usize = 1 << 53;

/// The default confidence coefficient of the committed intervals: the
/// two-sided 95% normal quantile.
pub const DEFAULT_Z: f64 = 1.959_963_984_540_054;

/// The Wilson score interval for `solved` successes in `samples` Bernoulli
/// trials at confidence coefficient `z` (the normal quantile).
///
/// Unlike the naive normal interval `p̂ ± z·sqrt(p̂(1−p̂)/n)`, the Wilson
/// interval stays **informative at the extremes**: at `p̂ = 0` it is
/// `[0, z²/(n+z²)]` and at `p̂ = 1` it is `[n/(n+z²), 1]` — never a
/// zero-width point, so consistency checks against it cannot degenerate
/// to near-exact equality.
///
/// # Panics
///
/// Panics if `samples == 0`, `solved > samples`, or `z` is not positive
/// and finite.
pub fn wilson_interval(solved: u64, samples: u64, z: f64) -> (f64, f64) {
    assert!(samples > 0, "need at least one sample");
    assert!(solved <= samples, "more successes than samples");
    assert!(z.is_finite() && z > 0.0, "z must be positive and finite");
    let n = samples as f64;
    let p = solved as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z / denom * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    // The boundary cases are exact (at p̂ = 0, center ≡ half); pin them to
    // the closed forms instead of leaving float residue at the endpoints.
    let lo = if solved == 0 {
        0.0
    } else {
        (center - half).max(0.0)
    };
    let hi = if solved == samples {
        1.0
    } else {
        (center + half).min(1.0)
    };
    (lo, hi)
}

/// A Monte-Carlo estimate: sample mean, standard error, and a Wilson
/// score interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Sample mean of the success indicator.
    pub p: f64,
    /// Standard error `sqrt(p(1−p)/samples)` (kept for reporting; the
    /// consistency check uses the Wilson interval, which does not collapse
    /// at `p ∈ {0, 1}` the way `std_error` does).
    pub std_error: f64,
    /// Number of samples drawn.
    pub samples: usize,
    /// Number of samples that solved.
    pub solved: u64,
    /// Lower Wilson bound at [`DEFAULT_Z`] (95%).
    pub ci_lo: f64,
    /// Upper Wilson bound at [`DEFAULT_Z`] (95%).
    pub ci_hi: f64,
}

impl Estimate {
    /// Assembles the estimate from raw counts.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`, `samples > MAX_MC_SAMPLES`, or
    /// `solved > samples`.
    pub fn from_counts(solved: u64, samples: usize) -> Estimate {
        assert!(samples > 0, "need at least one sample");
        assert!(
            samples <= MAX_MC_SAMPLES,
            "sample count {samples} exceeds f64-exact range 2^53"
        );
        assert!(solved <= samples as u64, "more successes than samples");
        let p = solved as f64 / samples as f64;
        let (ci_lo, ci_hi) = wilson_interval(solved, samples as u64, DEFAULT_Z);
        Estimate {
            p,
            std_error: (p * (1.0 - p) / samples as f64).sqrt(),
            samples,
            solved,
            ci_lo,
            ci_hi,
        }
    }

    /// The Wilson interval of this estimate at an explicit confidence
    /// coefficient `z`.
    pub fn wilson(&self, z: f64) -> (f64, f64) {
        wilson_interval(self.solved, self.samples as u64, z)
    }

    /// Half the width of the [`DEFAULT_Z`] Wilson interval (the adaptive
    /// stopping rule's target quantity).
    pub fn half_width(&self) -> f64 {
        (self.ci_hi - self.ci_lo) / 2.0
    }

    /// Whether `value` lies inside the Wilson interval at confidence
    /// coefficient `z`.
    ///
    /// This replaces the old `|p − value| ≤ z·std_error` rule, which was
    /// **vacuous at the extremes**: a sample mean of exactly 0 or 1 has
    /// `std_error = 0`, collapsing the check to near-exact equality even
    /// though the estimator's uncertainty is `Θ(1/samples)`, not zero.
    /// The Wilson interval keeps its `≈ z²/samples` width there.
    pub fn is_consistent_with(&self, value: f64, z: f64) -> bool {
        let (lo, hi) = self.wilson(z);
        lo - f64::EPSILON <= value && value <= hi + f64::EPSILON
    }
}

/// Kernel-path statistics of one Monte-Carlo run: how the per-sample
/// verdicts were decided. The counters mirror [`SolvabilityMemo`]'s; for
/// the parallel entry points they are summed across workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct McStats {
    /// Verdicts answered from the partition-signature memo.
    pub memo_hits: u64,
    /// Verdicts computed by the task's closed form.
    pub closed_form_verdicts: u64,
    /// Verdicts computed by the dense facet scan (zero for every built-in
    /// task — they all carry closed forms).
    pub dense_scan_verdicts: u64,
    /// 64-sample lane words processed by the bit-sliced kernel (each one
    /// [`rsbt_tasks::VerdictPlan`] evaluation per round; zero on the
    /// scalar entry points).
    pub lane_words: u64,
    /// Samples the bit-sliced kernel peeled to the scalar path because
    /// the task compiled no lane plan (zero for every built-in task).
    pub peeled_lanes: u64,
}

impl McStats {
    pub(crate) fn absorb(&mut self, memo: &SolvabilityMemo) {
        self.memo_hits += memo.memo_hits();
        self.closed_form_verdicts += memo.closed_form_verdicts();
        self.dense_scan_verdicts += memo.dense_scan_verdicts();
    }

    /// Accumulates another run's counters (sweep engines aggregate the
    /// stats of many estimated points).
    pub fn merge(&mut self, other: &McStats) {
        self.memo_hits += other.memo_hits;
        self.closed_form_verdicts += other.closed_form_verdicts;
        self.dense_scan_verdicts += other.dense_scan_verdicts;
        self.lane_words += other.lane_words;
        self.peeled_lanes += other.peeled_lanes;
    }
}

/// Asserts the shared preconditions of every Monte-Carlo entry point.
///
/// Unlike the old `monte_carlo` (which checked the node count only when
/// `model.ports()` was `Some` and accepted sample counts past the
/// `f64`-exact range), this validates every argument up front — including
/// the round count, which would otherwise fail deep inside
/// [`BitString::sample`] with an unrelated message.
pub(crate) fn check_mc_args(model: &Model, alpha: &Assignment, t: usize, samples: usize) {
    assert!(samples > 0, "need at least one sample");
    assert!(
        samples <= MAX_MC_SAMPLES,
        "sample count {samples} exceeds f64-exact range 2^53"
    );
    assert!(
        t <= rsbt_random::MAX_BITS,
        "t = {t} exceeds the {}-round sampling limit (one u64 word per source)",
        rsbt_random::MAX_BITS
    );
    assert!(
        alpha.n() <= u8::MAX as usize,
        "n = {} exceeds the 255-node verdict-kernel limit",
        alpha.n()
    );
    if let Some(p) = model.ports() {
        assert_eq!(p.n(), alpha.n(), "model/assignment node mismatch");
    }
}

/// The per-worker Monte-Carlo sampling kernel: draws the per-source bit
/// strings, steps `t` rounds with a reused [`RoundStepper`], and decides
/// each sample's verdict through the [`SolvabilityMemo`] (closed-form
/// first, dense scan only for tasks without one) — no per-sample
/// allocation after the first few samples warm the buffers.
pub(crate) struct SampleKernel<'a, T: Task + ?Sized> {
    stepper: RoundStepper,
    kernel: TaskKernel<'a, T>,
    alpha: &'a Assignment,
    t: usize,
    /// `K_i(0) = ⊥` for every node, interned once.
    initial: Vec<KnowledgeId>,
    /// Reused per-source strings of the current sample.
    sources: Vec<BitString>,
    /// Reused knowledge-vector buffers (current / next round).
    cur: Vec<KnowledgeId>,
    next: Vec<KnowledgeId>,
}

impl<'a, T: Task + ?Sized> SampleKernel<'a, T> {
    pub(crate) fn new(
        model: &Model,
        kernel: TaskKernel<'a, T>,
        alpha: &'a Assignment,
        t: usize,
        arena: &mut KnowledgeArena,
    ) -> Self {
        let n = alpha.n();
        SampleKernel {
            stepper: RoundStepper::new(model, n),
            kernel,
            alpha,
            t,
            initial: (0..n).map(|_| arena.initial(None)).collect(),
            sources: Vec::with_capacity(alpha.k()),
            cur: Vec::with_capacity(n),
            next: Vec::with_capacity(n),
        }
    }

    /// Runs one sample drawn from `rng`: `true` iff it solves at time
    /// `t`. Consumes the generator exactly like [`Realization::sample`]
    /// (k `u64` draws, source order), so the verdict stream is
    /// bit-comparable to [`monte_carlo_reference`]'s.
    fn sample<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        memo: &mut SolvabilityMemo,
        arena: &mut KnowledgeArena,
    ) -> bool {
        self.first_solving_round(rng, memo, arena).is_some()
    }

    /// Runs one sample and reports the **first** round `r ≤ t` whose
    /// consistency partition solves (`Some(0)` when the all-`⊥` initial
    /// partition already does, `None` when no prefix solves by `t`).
    ///
    /// Rounds stop at the first solving partition: extending an
    /// execution only refines its consistency partition, so a solving
    /// round-`r` prefix solves at every `t ≥ r` (the same monotonicity
    /// the enumeration engine prunes subtrees with). Two consequences:
    /// the sample's verdict at *every* time `t' ≤ t` is `first ≤ t'` —
    /// a whole estimated series from one pass — and at large `t` in the
    /// `p(t) → 1` regime the expected per-sample round count drops to
    /// `O(1)`, the dominant term of the kernel's speedup over the
    /// reference (which always steps all `t` rounds).
    pub(crate) fn first_solving_round<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        memo: &mut SolvabilityMemo,
        arena: &mut KnowledgeArena,
    ) -> Option<usize> {
        self.sources.clear();
        for _ in 0..self.alpha.k() {
            self.sources.push(BitString::sample(rng, self.t));
        }
        if memo.solves(&self.initial, &self.kernel) {
            // Degenerate n = 1 style cases: the all-⊥ partition solves.
            return Some(0);
        }
        self.cur.clear();
        self.cur.extend_from_slice(&self.initial);
        for r in 0..self.t {
            let sources = &self.sources;
            let alpha = self.alpha;
            self.stepper.step(
                arena,
                &self.cur,
                |i| sources[alpha.source_of(i)].bit(r),
                &mut self.next,
            );
            std::mem::swap(&mut self.cur, &mut self.next);
            if memo.solves(&self.cur, &self.kernel) {
                return Some(r + 1);
            }
        }
        None
    }

    /// [`SampleKernel::first_solving_round`] under a per-sample
    /// [`FaultSchedule`]: identical source-draw discipline (`k` `u64`
    /// words in source order — fault draws live on a salted stream and
    /// never touch `rng`), with every round stepped through
    /// [`RoundStepper::step_faulted`] at the schedule's 1-based round.
    /// With an empty schedule the verdict stream is bit-identical to the
    /// fault-free kernel's.
    pub(crate) fn first_solving_round_faulted<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        faults: &FaultSchedule,
        memo: &mut SolvabilityMemo,
        arena: &mut KnowledgeArena,
    ) -> Option<usize> {
        self.sources.clear();
        for _ in 0..self.alpha.k() {
            self.sources.push(BitString::sample(rng, self.t));
        }
        if memo.solves(&self.initial, &self.kernel) {
            return Some(0);
        }
        self.cur.clear();
        self.cur.extend_from_slice(&self.initial);
        for r in 0..self.t {
            let sources = &self.sources;
            let alpha = self.alpha;
            self.stepper.step_faulted(
                arena,
                &self.cur,
                |i| sources[alpha.source_of(i)].bit(r),
                |i| faults.is_silent(i, r + 1),
                &mut self.next,
            );
            std::mem::swap(&mut self.cur, &mut self.next);
            if memo.solves(&self.cur, &self.kernel) {
                return Some(r + 1);
            }
        }
        None
    }
}

/// Monte-Carlo `Pr[S(t) | α]` from a caller-provided generator.
///
/// Rewritten on the PR 4 verdict kernel: per-sample execution steps reuse
/// one [`RoundStepper`] and two knowledge-vector buffers, and each
/// verdict goes closed-form-first through a [`SolvabilityMemo`] — the
/// old path (kept verbatim as [`monte_carlo_reference`]) allocated a
/// `Realization`, a full `Execution` trace, and a consistency partition
/// per sample. RNG consumption is identical to the reference's, so the
/// two produce bit-identical estimates from equal generator states
/// (asserted by test and by `exp_perf_mc`).
///
/// # Panics
///
/// Panics if `samples == 0` or exceeds [`MAX_MC_SAMPLES`], if
/// `alpha.n() > 255`, or on a model/assignment node mismatch.
pub fn monte_carlo<T: Task + ?Sized, R: Rng + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    samples: usize,
    rng: &mut R,
) -> Estimate {
    monte_carlo_with_stats(model, task, alpha, t, samples, rng).0
}

/// [`monte_carlo`] exposing the verdict-path statistics.
///
/// # Panics
///
/// Same conditions as [`monte_carlo`].
pub fn monte_carlo_with_stats<T: Task + ?Sized, R: Rng + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    samples: usize,
    rng: &mut R,
) -> (Estimate, McStats) {
    check_mc_args(model, alpha, t, samples);
    let table = engine::fallback_table(task, alpha.n());
    let kernel = match table.as_ref() {
        Some(table) => TaskKernel::new(task, table),
        None => TaskKernel::closed_form_only(task),
    };
    let mut arena = KnowledgeArena::new();
    let mut memo = SolvabilityMemo::new();
    let mut sampler = SampleKernel::new(model, kernel, alpha, t, &mut arena);
    let mut solved = 0u64;
    for _ in 0..samples {
        if sampler.sample(rng, &mut memo, &mut arena) {
            solved += 1;
        }
    }
    let mut stats = McStats::default();
    stats.absorb(&memo);
    (Estimate::from_counts(solved, samples), stats)
}

/// The pre-kernel reference path, kept verbatim: one [`Realization`]
/// allocation, one full [`Execution`](rsbt_sim::Execution) trace, and one
/// consistency-partition construction per sample, with the dense-table
/// cache of PR 4. Ground truth for the kernel path's bit-identity tests
/// and the `exp_perf_mc` before/after benchmark; not used by production
/// callers.
///
/// # Panics
///
/// Same conditions as [`monte_carlo`].
pub fn monte_carlo_reference<T: Task + ?Sized, R: Rng + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    samples: usize,
    rng: &mut R,
) -> Estimate {
    check_mc_args(model, alpha, t, samples);
    let mut arena = KnowledgeArena::new();
    // One dense table for all samples (take-or-build, never per draw).
    let mut cache = OutputComplexCache::new();
    let mut solved = 0u64;
    for _ in 0..samples {
        let rho = Realization::sample(alpha, t, rng);
        if solvability::solves_with_cache(model, &rho, task, &mut arena, &mut cache) {
            solved += 1;
        }
    }
    Estimate::from_counts(solved, samples)
}

/// Deterministic parallel Monte-Carlo `Pr[S(t) | α]`: sample `i` always
/// draws from [`StreamRng`]`(seed, i)`, workers take contiguous
/// index ranges ([`pool::map_sample_chunks`]), and the per-chunk solved
/// counts merge by integer addition — so the estimate is **bit-identical
/// for any `threads` value**, and equal to the serial stream-order loop
/// (asserted by property test).
///
/// # Panics
///
/// Same conditions as [`monte_carlo`], plus `threads ≥ 1`.
pub fn monte_carlo_parallel<T>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    samples: usize,
    seed: u64,
    threads: usize,
) -> Estimate
where
    T: Task + Sync + ?Sized,
{
    monte_carlo_parallel_with_stats(model, task, alpha, t, samples, seed, threads).0
}

/// [`monte_carlo_parallel`] exposing the verdict-path statistics (summed
/// across workers).
///
/// # Panics
///
/// Same conditions as [`monte_carlo_parallel`].
pub fn monte_carlo_parallel_with_stats<T>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    samples: usize,
    seed: u64,
    threads: usize,
) -> (Estimate, McStats)
where
    T: Task + Sync + ?Sized,
{
    assert!(threads >= 1, "need at least one thread");
    check_mc_args(model, alpha, t, samples);
    // At most one dense table for the run (none when the task's closed
    // form answers), shared read-only across workers.
    let table = engine::fallback_table(task, alpha.n());
    let (solved, stats) = sample_stream_range(
        model,
        task,
        table.as_ref(),
        alpha,
        t,
        seed,
        0,
        samples,
        threads,
        None,
    );
    (Estimate::from_counts(solved, samples), stats)
}

/// [`monte_carlo_parallel`] under a [`FaultSpec`]: sample `i` draws its
/// source bits from [`StreamRng`]`(seed, i)` — exactly the fault-free
/// discipline — and compiles its [`FaultSchedule`] from the salted fault
/// substream [`rsbt_sim::faults::fault_stream`]`(seed, i)`, so the
/// estimate is **bit-identical for any `threads` value**, and with a
/// rate-zero spec bit-identical to [`monte_carlo_parallel`] itself
/// (asserted by property test: the fault substream is never even
/// constructed at rate zero, and the faulted step with no silence
/// interns the same knowledge).
///
/// A sample "solves" when its consistency partition solves at some
/// round `≤ t` — crashed nodes keep their (listening) knowledge and stay
/// in the partition; see `DESIGN.md` §4.9 for how this relates to the
/// operational runner's `None` outputs.
///
/// # Panics
///
/// Same conditions as [`monte_carlo_parallel`], plus the
/// [`FaultSpec::rates`] range panics if the spec was built with invalid
/// rates, and a fixed schedule must cover `alpha.n()` nodes.
#[allow(clippy::too_many_arguments)]
pub fn monte_carlo_parallel_faulted<T>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    samples: usize,
    seed: u64,
    threads: usize,
    faults: &FaultSpec,
) -> Estimate
where
    T: Task + Sync + ?Sized,
{
    monte_carlo_parallel_faulted_with_stats(model, task, alpha, t, samples, seed, threads, faults).0
}

/// [`monte_carlo_parallel_faulted`] exposing the verdict-path statistics
/// (summed across workers).
///
/// # Panics
///
/// Same conditions as [`monte_carlo_parallel_faulted`].
#[allow(clippy::too_many_arguments)]
pub fn monte_carlo_parallel_faulted_with_stats<T>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    samples: usize,
    seed: u64,
    threads: usize,
    faults: &FaultSpec,
) -> (Estimate, McStats)
where
    T: Task + Sync + ?Sized,
{
    assert!(threads >= 1, "need at least one thread");
    check_mc_args(model, alpha, t, samples);
    let table = engine::fallback_table(task, alpha.n());
    let (solved, stats) = sample_stream_range(
        model,
        task,
        table.as_ref(),
        alpha,
        t,
        seed,
        0,
        samples,
        threads,
        Some(faults),
    );
    (Estimate::from_counts(solved, samples), stats)
}

/// The estimated series `p̂(1), …, p̂(t_max)` from **one** sampling pass:
/// each sample's first solving round decides its verdict at every `t`
/// simultaneously (monotonicity), the Monte-Carlo mirror of the exact
/// engine's one-traversal series.
///
/// Per-sample draws use stream `i` of the family keyed by `seed` with
/// `t_max`-bit strings, so the estimate at each `t` is **bit-identical**
/// to [`monte_carlo_parallel`]`(…, t, samples, seed, _)` (the per-source
/// word draw does not depend on `t`; asserted by test) — at a `t_max`×
/// lower sampling cost — and the series is exactly monotone (sample `i`
/// at time `t` is the prefix of sample `i` at `t + 1`: common random
/// numbers across the series).
///
/// # Panics
///
/// Same conditions as [`monte_carlo_parallel`], plus `t_max ≥ 1`.
pub fn monte_carlo_series_parallel<T>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    samples: usize,
    seed: u64,
    threads: usize,
) -> Vec<Estimate>
where
    T: Task + Sync + ?Sized,
{
    monte_carlo_series_parallel_with_stats(model, task, alpha, t_max, samples, seed, threads).0
}

/// [`monte_carlo_series_parallel`] exposing the verdict-path statistics.
///
/// # Panics
///
/// Same conditions as [`monte_carlo_series_parallel`].
pub fn monte_carlo_series_parallel_with_stats<T>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    samples: usize,
    seed: u64,
    threads: usize,
) -> (Vec<Estimate>, McStats)
where
    T: Task + Sync + ?Sized,
{
    assert!(threads >= 1, "need at least one thread");
    assert!(t_max >= 1, "need at least one round");
    check_mc_args(model, alpha, t_max, samples);
    let table = engine::fallback_table(task, alpha.n());
    // first_solved[r] = samples whose first solving round is exactly
    // r + 1 (round 0 counts as round 1: solved before any bits).
    let (chunks, stats) = fold_sample_chunks(
        model,
        task,
        table.as_ref(),
        alpha,
        t_max,
        seed,
        0,
        samples,
        threads,
        None,
        || vec![0u64; t_max],
        |first_solved, first| {
            if let Some(r) = first {
                first_solved[r.saturating_sub(1)] += 1;
            }
        },
    );
    let mut first_solved = vec![0u64; t_max];
    for chunk in &chunks {
        for (acc, c) in first_solved.iter_mut().zip(chunk) {
            *acc += c;
        }
    }
    // Prefix sums: solved-by-t from first-solved-at-r.
    let mut solved = 0u64;
    let series = first_solved
        .iter()
        .map(|&c| {
            solved += c;
            Estimate::from_counts(solved, samples)
        })
        .collect();
    (series, stats)
}

/// Samples stream indices `[lo, hi)` of the family keyed by `seed` over
/// `threads` workers; returns the solved count and merged kernel stats.
/// `table` is the caller's dense fallback (built at most once per run —
/// the adaptive loop reuses it across batches).
#[allow(clippy::too_many_arguments)]
fn sample_stream_range<T>(
    model: &Model,
    task: &T,
    table: Option<&FacetTable>,
    alpha: &Assignment,
    t: usize,
    seed: u64,
    lo: usize,
    hi: usize,
    threads: usize,
    faults: Option<&FaultSpec>,
) -> (u64, McStats)
where
    T: Task + Sync + ?Sized,
{
    let (chunks, stats) = fold_sample_chunks(
        model,
        task,
        table,
        alpha,
        t,
        seed,
        lo,
        hi - lo,
        threads,
        faults,
        || 0u64,
        |solved, first| {
            if first.is_some() {
                *solved += 1;
            }
        },
    );
    (chunks.iter().sum(), stats)
}

/// The one sharded sampling loop every parallel estimator runs on: folds
/// the first-solving-round of each sample in `[lo, lo + count)` (streams
/// keyed by `seed`) into a per-chunk accumulator, with the per-worker
/// kernel/memo/sampler assembly in exactly one place — the count and
/// series estimators differ only in their `tally`, so the stream keying
/// and verdict dispatch that their documented bit-identity rests on
/// cannot drift apart.
#[allow(clippy::too_many_arguments)]
fn fold_sample_chunks<T, A, I, F>(
    model: &Model,
    task: &T,
    table: Option<&FacetTable>,
    alpha: &Assignment,
    t: usize,
    seed: u64,
    lo: usize,
    count: usize,
    threads: usize,
    faults: Option<&FaultSpec>,
    init: I,
    tally: F,
) -> (Vec<A>, McStats)
where
    T: Task + Sync + ?Sized,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, Option<usize>) + Sync,
{
    let per_chunk = pool::map_sample_chunks(count, threads, |arena, range| {
        let kernel = match table {
            Some(table) => TaskKernel::new(task, table),
            None => TaskKernel::closed_form_only(task),
        };
        let mut memo = SolvabilityMemo::new();
        let mut sampler = SampleKernel::new(model, kernel, alpha, t, arena);
        let mut acc = init();
        match faults {
            None => {
                for i in range {
                    let mut rng = StreamRng::new(seed, (lo + i) as u64);
                    tally(
                        &mut acc,
                        sampler.first_solving_round(&mut rng, &mut memo, arena),
                    );
                }
            }
            Some(spec) => {
                // One schedule buffer per worker; sample i compiles its
                // schedule from the salted fault substream keyed by the
                // same (seed, stream index) pair its source draws use.
                let mut schedule = FaultSchedule::empty(alpha.n(), t);
                for i in range {
                    let stream = (lo + i) as u64;
                    spec.fill_schedule(alpha.n(), t, seed, stream, &mut schedule);
                    let mut rng = StreamRng::new(seed, stream);
                    tally(
                        &mut acc,
                        sampler.first_solving_round_faulted(&mut rng, &schedule, &mut memo, arena),
                    );
                }
            }
        }
        let mut stats = McStats::default();
        stats.absorb(&memo);
        (acc, stats)
    });
    let mut accs = Vec::with_capacity(per_chunk.len());
    let mut stats = McStats::default();
    for (acc, st) in per_chunk {
        accs.push(acc);
        stats.merge(&st);
    }
    (accs, stats)
}

/// Configuration of the adaptive estimator: sample in batches until the
/// [`DEFAULT_Z`] Wilson half-width drops to `target_half_width`, or
/// `max_samples` is reached.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveConfig {
    /// Stop when the 95% Wilson half-width is at most this.
    pub target_half_width: f64,
    /// Hard cap on the total sample count.
    pub max_samples: usize,
    /// Samples added per batch (the stopping rule is evaluated between
    /// batches only).
    pub batch: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            target_half_width: 5e-3,
            max_samples: 1 << 20,
            batch: 1 << 14,
        }
    }
}

/// Adaptive Monte-Carlo `Pr[S(t) | α]`: draws [`AdaptiveConfig::batch`]
/// samples at a time (each batch parallel and deterministic) until the
/// Wilson half-width target is met or the cap is reached.
///
/// **Determinism**: sample `i` always draws from stream `i`, and the
/// stopping rule is a pure function of the running counts — so the
/// number of samples drawn, and hence the estimate, is a pure function
/// of `(model, task, α, t, cfg, seed)`, independent of `threads`.
///
/// **Why stopping does not bias the estimate in our use**: the rule
/// stops at the first batch boundary where the *interval width* — a
/// function of `(solved, samples)` only — meets the target. By Wald's
/// identity `E[solved_N] = p·E[N]` for any such stopping time, so the
/// ratio estimator's bias is `O(1/N)` — below the interval resolution at
/// every reachable `N` (see `DESIGN.md` §4.6 for the accounting), and
/// the committed Wilson interval at the stopping time retains its
/// coverage for the cross-validation gates `exp_perf_mc` runs.
///
/// # Panics
///
/// Panics on the [`monte_carlo`] conditions (with `samples` read as
/// `cfg.max_samples`), if `cfg.batch == 0`, if
/// `cfg.target_half_width ≤ 0`, or if `threads == 0`.
pub fn monte_carlo_adaptive<T>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    cfg: &AdaptiveConfig,
    seed: u64,
    threads: usize,
) -> (Estimate, McStats)
where
    T: Task + Sync + ?Sized,
{
    assert!(threads >= 1, "need at least one thread");
    assert!(cfg.batch > 0, "batch size must be positive");
    assert!(
        cfg.target_half_width > 0.0,
        "target half-width must be positive"
    );
    check_mc_args(model, alpha, t, cfg.max_samples);
    // One dense fallback table for the whole adaptive run, shared across
    // batches and workers (never rebuilt per batch).
    let table = engine::fallback_table(task, alpha.n());
    let mut solved = 0u64;
    let mut samples = 0usize;
    let mut stats = McStats::default();
    while samples < cfg.max_samples {
        let batch = cfg.batch.min(cfg.max_samples - samples);
        let (s, st) = sample_stream_range(
            model,
            task,
            table.as_ref(),
            alpha,
            t,
            seed,
            samples,
            samples + batch,
            threads,
            None,
        );
        solved += s;
        stats.merge(&st);
        samples += batch;
        let (lo, hi) = wilson_interval(solved, samples as u64, DEFAULT_Z);
        if (hi - lo) / 2.0 <= cfg.target_half_width {
            break;
        }
    }
    (Estimate::from_counts(solved, samples), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use rsbt_tasks::{KLeaderElection, LeaderElection};

    #[test]
    fn shared_source_never_solves() {
        let alpha = Assignment::shared(3);
        for t in 1..=3 {
            assert_eq!(exact(&Model::Blackboard, &LeaderElection, &alpha, t), 0.0);
        }
    }

    #[test]
    fn private_sources_converge_to_one() {
        let alpha = Assignment::private(2);
        let series = exact_series(&Model::Blackboard, &LeaderElection, &alpha, 5);
        // p(t) = 1 − 2^{−t}: the two nodes differ somewhere in t rounds.
        for (i, p) in series.iter().enumerate() {
            let t = i + 1;
            let expect = 1.0 - 0.5f64.powi(t as i32);
            assert!((p - expect).abs() < 1e-12, "t={t}: {p} vs {expect}");
        }
    }

    #[test]
    fn singleton_plus_pair_matches_closed_form() {
        // Group sizes [1, 2]: k = 2, exactly one singleton source. The
        // system solves iff the singleton's string differs from the pair's:
        // p(t) = 1 − 2^{−t}.
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        for t in 1..=4 {
            let p = exact(&Model::Blackboard, &LeaderElection, &alpha, t);
            let expect = 1.0 - 0.5f64.powi(t as i32);
            assert!((p - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn no_singleton_blackboard_is_dead() {
        // Theorem 4.1 'only if': sizes [2,2] never solve on the blackboard.
        let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
        for t in 1..=3 {
            assert_eq!(exact(&Model::Blackboard, &LeaderElection, &alpha, t), 0.0);
        }
    }

    #[test]
    fn series_is_monotone() {
        for sizes in [vec![1usize, 1], vec![1, 2], vec![1, 1, 1], vec![1, 3]] {
            let alpha = Assignment::from_group_sizes(&sizes).unwrap();
            let series = exact_series(&Model::Blackboard, &LeaderElection, &alpha, 4);
            for w in series.windows(2) {
                assert!(w[1] >= w[0] - 1e-12, "{sizes:?}: {series:?}");
            }
        }
    }

    #[test]
    fn monte_carlo_matches_exact() {
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let mut rng = StdRng::seed_from_u64(12345);
        let t = 3;
        let exact_p = exact(&Model::Blackboard, &LeaderElection, &alpha, t);
        let est = monte_carlo(
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            t,
            20_000,
            &mut rng,
        );
        assert!(
            est.is_consistent_with(exact_p, 4.0),
            "MC {est:?} vs exact {exact_p}"
        );
    }

    #[test]
    fn wilson_interval_matches_hand_computed_values() {
        // z = 2 keeps the arithmetic exact by hand: z² = 4.
        // p̂ = 0, n = 100: [0, 4/104].
        let (lo, hi) = wilson_interval(0, 100, 2.0);
        assert_eq!(lo, 0.0);
        assert!((hi - 4.0 / 104.0).abs() < 1e-12, "hi = {hi}");
        // p̂ = 1, n = 100: the mirror image [100/104, 1].
        let (lo, hi) = wilson_interval(100, 100, 2.0);
        assert!((lo - 100.0 / 104.0).abs() < 1e-12, "lo = {lo}");
        assert_eq!(hi, 1.0);
        // p̂ = 1/2, n = 100: center 0.5, half-width (2/1.04)·sqrt(0.0026).
        let (lo, hi) = wilson_interval(50, 100, 2.0);
        let half = 2.0 / 1.04 * 0.0026f64.sqrt();
        assert!((lo - (0.5 - half)).abs() < 1e-12, "lo = {lo}");
        assert!((hi - (0.5 + half)).abs() < 1e-12, "hi = {hi}");
        // Interval is always inside [0, 1] and contains p̂.
        for (s, n) in [(0u64, 7u64), (1, 7), (6, 7), (7, 7), (500, 1000)] {
            let (lo, hi) = wilson_interval(s, n, 3.0);
            let p = s as f64 / n as f64;
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
            assert!(lo <= p && p <= hi, "({s}, {n}): [{lo}, {hi}] ∌ {p}");
        }
    }

    #[test]
    fn estimate_stays_informative_at_the_extremes() {
        // p̂ = 0: std_error is 0, but the Wilson interval is not a point —
        // the old |p − value| ≤ z·std_error check degenerated to equality
        // here and accepted only values within ε of 0.
        let zero = Estimate::from_counts(0, 10_000);
        assert_eq!(zero.std_error, 0.0);
        assert!(zero.ci_hi > 0.0, "upper bound must stay positive");
        assert!(zero.is_consistent_with(1e-4, 2.0), "small p is plausible");
        assert!(!zero.is_consistent_with(0.01, 2.0), "0.01 is implausible");
        // p̂ = 1 mirrors.
        let one = Estimate::from_counts(10_000, 10_000);
        assert_eq!(one.std_error, 0.0);
        assert!(one.ci_lo < 1.0);
        assert!(one.is_consistent_with(1.0 - 1e-4, 2.0));
        assert!(!one.is_consistent_with(0.99, 2.0));
        // Interior estimates keep the old behavior's spirit.
        let half = Estimate::from_counts(5_000, 10_000);
        assert!(half.is_consistent_with(0.5, 2.0));
        assert!(!half.is_consistent_with(0.6, 2.0));
        assert!(half.half_width() > 0.0);
    }

    #[test]
    fn kernel_monte_carlo_bit_identical_to_reference() {
        // Equal generator states must produce bit-identical estimates:
        // the kernel path consumes the RNG exactly like the reference.
        for (sizes, t) in [(vec![1usize, 2], 3), (vec![2, 2], 5), (vec![1, 1, 1], 2)] {
            let alpha = Assignment::from_group_sizes(&sizes).unwrap();
            for model in [Model::Blackboard, Model::message_passing_cyclic(alpha.n())] {
                let mut rng_a = StdRng::seed_from_u64(99);
                let mut rng_b = StdRng::seed_from_u64(99);
                let kernel = monte_carlo(&model, &LeaderElection, &alpha, t, 2_000, &mut rng_a);
                let reference =
                    monte_carlo_reference(&model, &LeaderElection, &alpha, t, 2_000, &mut rng_b);
                assert_eq!(kernel, reference, "{model} {sizes:?} t={t}");
                // And the generators are left in identical states.
                assert_eq!(rng_a.next_u64(), rng_b.next_u64());
            }
        }
    }

    #[test]
    fn parallel_monte_carlo_is_thread_count_invariant() {
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let serial =
            monte_carlo_parallel(&Model::Blackboard, &LeaderElection, &alpha, 4, 5_000, 7, 1);
        for threads in [2usize, 3, 4, 8] {
            let par = monte_carlo_parallel(
                &Model::Blackboard,
                &LeaderElection,
                &alpha,
                4,
                5_000,
                7,
                threads,
            );
            assert_eq!(par, serial, "threads={threads}");
        }
        // Different seeds give different (decorrelated) estimates.
        let other =
            monte_carlo_parallel(&Model::Blackboard, &LeaderElection, &alpha, 4, 5_000, 8, 2);
        assert_ne!(other.solved, serial.solved, "seed must matter");
    }

    #[test]
    fn parallel_monte_carlo_brackets_exact_value() {
        let alpha = Assignment::from_group_sizes(&[1, 2, 2]).unwrap();
        let t = 4;
        let exact_p = exact(&Model::Blackboard, &LeaderElection, &alpha, t);
        let (est, stats) = monte_carlo_parallel_with_stats(
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            t,
            40_000,
            2021,
            4,
        );
        assert!(
            est.is_consistent_with(exact_p, 4.0),
            "MC {est:?} vs exact {exact_p}"
        );
        // Built-in tasks decide in closed form; the dense scan never runs.
        assert_eq!(stats.dense_scan_verdicts, 0);
        assert!(stats.closed_form_verdicts > 0);
        assert!(stats.memo_hits > 0, "partition memo must absorb repeats");
    }

    #[test]
    fn exact_faulted_with_empty_schedule_matches_exact() {
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        for model in [Model::Blackboard, Model::message_passing_cyclic(3)] {
            for t in 0..=4usize {
                let plain = exact(&model, &LeaderElection, &alpha, t);
                let faulted = exact_faulted(
                    &model,
                    &LeaderElection,
                    &alpha,
                    t,
                    &FaultSchedule::empty(3, t),
                );
                assert_eq!(plain.to_bits(), faulted.to_bits(), "{model} t={t}");
            }
        }
    }

    #[test]
    fn faulted_monte_carlo_brackets_faulted_exact() {
        // A fixed schedule evaluated two independent ways: the pruning
        // engine's enumeration and the sampling kernels must agree within
        // the Wilson interval, and the two MC kernels bit-for-bit.
        let alpha = Assignment::from_group_sizes(&[1, 2, 2]).unwrap();
        let t = 4;
        let mut sched = FaultSchedule::empty(5, t);
        sched.set_omission(1, 1);
        sched.set_crash(3, 2);
        let spec = FaultSpec::fixed(sched.clone());
        for model in [Model::Blackboard, Model::message_passing_cyclic(5)] {
            let p = exact_faulted(&model, &LeaderElection, &alpha, t, &sched);
            let est = monte_carlo_parallel_faulted(
                &model,
                &LeaderElection,
                &alpha,
                t,
                40_000,
                2021,
                4,
                &spec,
            );
            assert!(
                est.is_consistent_with(p, 4.0),
                "{model}: MC {est:?} vs exact {p}"
            );
            let sliced = monte_carlo_bitsliced_faulted(
                &model,
                &LeaderElection,
                &alpha,
                t,
                40_000,
                2021,
                3,
                &spec,
            );
            assert_eq!(sliced, est, "{model}");
        }
    }

    #[test]
    fn blackboard_silence_is_observable_and_only_refines() {
        // Theorem 4.1 'only if': sizes [2, 2] never solve a fault-free
        // blackboard. Faults change that — a node's silence shortens the
        // board, which is symmetry-breaking information in itself — so
        // the faulted success count dominates the fault-free one (here:
        // strictly, from 0).
        let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
        let t = 4;
        let plain =
            monte_carlo_parallel(&Model::Blackboard, &LeaderElection, &alpha, t, 4_000, 3, 2);
        assert_eq!(plain.solved, 0, "fault-free [2,2] blackboard is dead");
        let faulted = monte_carlo_parallel_faulted(
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            t,
            4_000,
            3,
            2,
            &FaultSpec::rates(0.2, 0.1),
        );
        assert!(
            faulted.solved > 0,
            "silence must break the [2,2] symmetry: {faulted:?}"
        );
    }

    #[test]
    fn adaptive_monte_carlo_stops_early_and_stays_deterministic() {
        // Shared source: p = 0 exactly, so one batch meets any sane
        // half-width target.
        let alpha = Assignment::shared(3);
        let cfg = AdaptiveConfig {
            target_half_width: 0.01,
            max_samples: 1 << 16,
            batch: 1 << 12,
        };
        let (est, _) =
            monte_carlo_adaptive(&Model::Blackboard, &LeaderElection, &alpha, 3, &cfg, 1, 2);
        assert_eq!(est.samples, cfg.batch, "one batch suffices at p = 0");
        assert_eq!(est.p, 0.0);
        assert!(est.half_width() <= cfg.target_half_width);
        // Thread-count invariance extends to the adaptive loop, and the
        // result equals the fixed-size estimator at the stopped count.
        for threads in [1usize, 3, 8] {
            let (again, _) = monte_carlo_adaptive(
                &Model::Blackboard,
                &LeaderElection,
                &alpha,
                3,
                &cfg,
                1,
                threads,
            );
            assert_eq!(again, est, "threads={threads}");
        }
        let fixed = monte_carlo_parallel(
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            3,
            est.samples,
            1,
            2,
        );
        assert_eq!(fixed, est);
    }

    #[test]
    fn one_pass_series_equals_per_t_estimates() {
        // The single sampling pass must reproduce each fixed-t estimate
        // bit-for-bit (the per-source word draw does not depend on t),
        // and the common-random-numbers series must be exactly monotone.
        for sizes in [vec![1usize, 2], vec![2, 2], vec![1, 1, 2]] {
            let alpha = Assignment::from_group_sizes(&sizes).unwrap();
            for model in [Model::Blackboard, Model::message_passing_cyclic(alpha.n())] {
                let series =
                    monte_carlo_series_parallel(&model, &LeaderElection, &alpha, 5, 2_000, 13, 3);
                assert_eq!(series.len(), 5);
                for (i, est) in series.iter().enumerate() {
                    let per_t =
                        monte_carlo_parallel(&model, &LeaderElection, &alpha, i + 1, 2_000, 13, 2);
                    assert_eq!(est, &per_t, "{model} {sizes:?} t={}", i + 1);
                }
                for w in series.windows(2) {
                    assert!(w[1].solved >= w[0].solved, "series must be monotone");
                }
            }
        }
    }

    #[test]
    fn adaptive_monte_carlo_respects_the_cap() {
        // A sub-resolution target can never be met: the cap must stop the
        // loop (hard sample cap, satellite of the adaptive design).
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let cfg = AdaptiveConfig {
            target_half_width: 1e-9,
            max_samples: 3_000,
            batch: 1_024,
        };
        let (est, _) =
            monte_carlo_adaptive(&Model::Blackboard, &LeaderElection, &alpha, 2, &cfg, 5, 2);
        assert_eq!(est.samples, cfg.max_samples, "cap reached exactly");
    }

    #[test]
    #[should_panic(expected = "need at least one sample")]
    fn monte_carlo_rejects_zero_samples() {
        let alpha = Assignment::private(2);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = monte_carlo(&Model::Blackboard, &LeaderElection, &alpha, 1, 0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "f64-exact range")]
    fn monte_carlo_rejects_overflowing_sample_counts() {
        let alpha = Assignment::private(2);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = monte_carlo(
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            1,
            MAX_MC_SAMPLES + 1,
            &mut rng,
        );
    }

    #[test]
    #[should_panic(expected = "round sampling limit")]
    fn monte_carlo_rejects_oversized_round_counts() {
        // t = 64 > MAX_BITS = 63: rejected up front with a clear message
        // instead of panicking deep inside BitString::sample mid-run.
        let alpha = Assignment::private(2);
        let _ = monte_carlo_parallel(&Model::Blackboard, &LeaderElection, &alpha, 64, 10, 0, 1);
    }

    #[test]
    #[should_panic(expected = "model/assignment node mismatch")]
    fn monte_carlo_rejects_node_mismatch() {
        let alpha = Assignment::private(3);
        let mut rng = StdRng::seed_from_u64(0);
        let model = Model::message_passing_cyclic(4);
        let _ = monte_carlo(&model, &LeaderElection, &alpha, 1, 10, &mut rng);
    }

    #[test]
    fn monte_carlo_beyond_the_exact_wall() {
        // k·t = 4·32 = 128 > MAX_EXACT_BITS = 126: even the quotient
        // engine's dyadic u128 counts refuse this point; the estimator
        // covers it. Verify against the closed form for one singleton
        // source among k: a singleton class exists iff its prefix differs
        // from every other source's, so p(t) = (1 − 2^{−t})^{k−1}.
        let alpha = Assignment::from_group_sizes(&[1, 7, 7, 7]).unwrap();
        let t = 32;
        assert!(alpha.k() * t > MAX_EXACT_BITS);
        let est = monte_carlo_parallel(
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            t,
            20_000,
            42,
            4,
        );
        let closed_form = (1.0 - 0.5f64.powi(t as i32)).powi(3);
        assert!(
            est.is_consistent_with(closed_form, 4.0),
            "{est:?} vs {closed_form}"
        );
    }

    #[test]
    fn two_leader_probability() {
        // 2-LE on sizes [2,2] in the blackboard: solvable iff the two
        // groups' strings differ (elect one whole group? no — elect the two
        // members of one class... classes are the two groups when strings
        // differ; electing one group of size 2 = exactly two leaders). So
        // p(t) = 1 − 2^{−t}.
        let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
        let task = KLeaderElection::new(2);
        for t in 1..=4 {
            let p = exact(&Model::Blackboard, &task, &alpha, t);
            let expect = 1.0 - 0.5f64.powi(t as i32);
            assert!((p - expect).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        for sizes in [vec![1usize, 2], vec![2, 2], vec![1, 1, 1]] {
            let alpha = Assignment::from_group_sizes(&sizes).unwrap();
            for t in 1..=3usize {
                let seq = exact(&Model::Blackboard, &LeaderElection, &alpha, t);
                for threads in [1usize, 2, 4] {
                    let par =
                        exact_parallel(&Model::Blackboard, &LeaderElection, &alpha, t, threads);
                    assert_eq!(seq, par, "sizes {sizes:?} t {t} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn parallel_message_passing() {
        let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
        let model = Model::message_passing_cyclic(4);
        let seq = exact(&model, &LeaderElection, &alpha, 3);
        let par = exact_parallel(&model, &LeaderElection, &alpha, 3, 3);
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic(expected = "exceeds exact-enumeration budget")]
    fn exact_budget_guard() {
        // k·t = 32·4 = 128 > MAX_EXACT_BITS = 126.
        let alpha = Assignment::private(32);
        let _ = exact(&Model::Blackboard, &LeaderElection, &alpha, 4);
    }

    #[test]
    #[should_panic(expected = "digit fan-out bound")]
    fn dispatch_rejects_wide_k_past_the_tree_tallies() {
        // k = 21 > MAX_DP_K routes to the tree engine, whose u64 tallies
        // stop at k·t = 62; 21·3 = 63 must be refused with a message
        // naming both limits.
        let alpha = Assignment::private(21);
        let _ = exact(&Model::Blackboard, &LeaderElection, &alpha, 3);
    }

    #[test]
    fn exact_past_the_tree_wall_matches_the_closed_form() {
        // k·t = 2·40 = 80: four powers of two past TREE_EXACT_BITS = 30,
        // unreachable by any tree walk. For sizes [1, m] the closed form
        // is p(t) = 1 − 2^{−t}, exactly representable in f64 at t = 40,
        // and the DP's integer counts divide out exactly — so equality is
        // bitwise, not approximate.
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let t = 40;
        assert!(alpha.k() * t > TREE_EXACT_BITS);
        let p = exact(&Model::Blackboard, &LeaderElection, &alpha, t);
        assert_eq!(p.to_bits(), (1.0 - 0.5f64.powi(t as i32)).to_bits());
        let series = exact_series(&Model::Blackboard, &LeaderElection, &alpha, t);
        assert_eq!(series[t - 1].to_bits(), p.to_bits());
    }

    #[test]
    fn exact_at_the_126_bit_edge() {
        // k·t = 2·63 = 126: the new wall itself. counts[62] =
        // 2^126 − 2^63; numerator and denominator are exact u128s whose
        // ratio rounds to the f64 nearest 1 − 2^{−63}.
        let alpha = Assignment::private(2);
        let p = exact(&Model::Blackboard, &LeaderElection, &alpha, 63);
        let expect = ((1u128 << 126) - (1u128 << 63)) as f64 / (1u128 << 126) as f64;
        assert_eq!(p.to_bits(), expect.to_bits());
    }

    #[test]
    fn engine_bit_identical_to_reference_all_profiles() {
        // The prefix-sharing engine must reproduce the leaf-by-leaf
        // reference bit-for-bit: both models, every profile with n ≤ 4,
        // t ≤ 3, every thread count — exact, series, and parallel paths.
        let two_le = KLeaderElection::new(2);
        let tasks: [&(dyn Task + Sync); 2] = [&LeaderElection, &two_le];
        for n in 2..=4usize {
            let models = [Model::Blackboard, Model::message_passing_cyclic(n)];
            for model in &models {
                for task in tasks {
                    for alpha in Assignment::iter_profiles(n) {
                        let mut ref_arena = KnowledgeArena::new();
                        let reference =
                            exact_series_reference(model, task, &alpha, 3, &mut ref_arena);
                        let series = exact_series(model, task, &alpha, 3);
                        for (i, (&p, &q)) in series.iter().zip(&reference).enumerate() {
                            let t = i + 1;
                            assert_eq!(p.to_bits(), q.to_bits(), "{model} {alpha} series t={t}");
                            let single = exact(model, task, &alpha, t);
                            assert_eq!(single.to_bits(), q.to_bits(), "{model} {alpha} t={t}");
                            for threads in [1usize, 2, 3, 4, 8] {
                                let par = exact_parallel(model, task, &alpha, t, threads);
                                assert_eq!(
                                    par.to_bits(),
                                    q.to_bits(),
                                    "{model} {alpha} t={t} threads={threads}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn one_pass_series_equals_per_t_recomputation() {
        // One traversal to t_max vs an independent full recomputation per
        // prefix, bit for bit (fresh arenas everywhere, so equality cannot
        // come from shared interning state).
        for model in [Model::Blackboard, Model::message_passing_cyclic(4)] {
            let alpha = Assignment::from_group_sizes(&[1, 3]).unwrap();
            let one_pass = exact_series(&model, &LeaderElection, &alpha, 4);
            assert_eq!(one_pass.len(), 4);
            for (i, &p) in one_pass.iter().enumerate() {
                let fresh = exact_reference(
                    &model,
                    &LeaderElection,
                    &alpha,
                    i + 1,
                    &mut KnowledgeArena::new(),
                );
                assert_eq!(p.to_bits(), fresh.to_bits(), "{model} t={}", i + 1);
            }
        }
    }

    #[test]
    fn shared_arena_series_bit_identical_to_per_t_path() {
        // The incremental series (one arena for all prefixes) must agree
        // bit-for-bit with a fresh arena per t, on both models.
        for model in [Model::Blackboard, Model::message_passing_cyclic(4)] {
            for sizes in [vec![1usize, 3], vec![2, 2], vec![1, 1, 2]] {
                let alpha = Assignment::from_group_sizes(&sizes).unwrap();
                let series = exact_series(&model, &LeaderElection, &alpha, 3);
                for (i, &p) in series.iter().enumerate() {
                    let fresh = exact(&model, &LeaderElection, &alpha, i + 1);
                    assert!(
                        p.to_bits() == fresh.to_bits(),
                        "{model} {sizes:?} t={}: {p} vs {fresh}",
                        i + 1
                    );
                }
            }
        }
    }

    #[test]
    fn cache_replays_bit_identical_values() {
        let mut cache = Cache::new();
        let mut arena = KnowledgeArena::new();
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let first = exact_series_cached(
            &mut cache,
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            4,
            &mut arena,
        );
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 4);
        // A longer series extends the cached prefix: 4 hits + 2 misses.
        let longer = exact_series_cached(
            &mut cache,
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            6,
            &mut arena,
        );
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.misses(), 6);
        assert_eq!(&longer[..4], &first[..]);
        for (i, &p) in longer.iter().enumerate() {
            let fresh = exact(&Model::Blackboard, &LeaderElection, &alpha, i + 1);
            assert_eq!(p.to_bits(), fresh.to_bits(), "t={}", i + 1);
        }
    }

    #[test]
    fn cache_key_distinguishes_model_task_and_alpha() {
        let mut cache = Cache::new();
        let mut arena = KnowledgeArena::new();
        let a12 = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let a111 = Assignment::from_group_sizes(&[1, 1, 1]).unwrap();
        let two = KLeaderElection::new(2);
        let mp = Model::message_passing_cyclic(3);
        let points: Vec<f64> = vec![
            exact_cached(
                &mut cache,
                &Model::Blackboard,
                &LeaderElection,
                &a12,
                2,
                &mut arena,
            ),
            exact_cached(
                &mut cache,
                &Model::Blackboard,
                &LeaderElection,
                &a111,
                2,
                &mut arena,
            ),
            exact_cached(&mut cache, &Model::Blackboard, &two, &a111, 2, &mut arena),
            exact_cached(&mut cache, &mp, &LeaderElection, &a111, 2, &mut arena),
        ];
        assert_eq!(cache.len(), 4, "four distinct keys, no collisions");
        assert_eq!(cache.misses(), 4);
        // Replays hit and agree.
        assert_eq!(
            exact_cached(&mut cache, &mp, &LeaderElection, &a111, 2, &mut arena).to_bits(),
            points[3].to_bits()
        );
        assert_eq!(cache.hits(), 1);
        assert_eq!(
            cache.peek(&Model::Blackboard, &LeaderElection, &a12, 2),
            Some(points[0])
        );
        assert_eq!(
            cache.peek(&Model::Blackboard, &LeaderElection, &a12, 3),
            None
        );
    }
}
