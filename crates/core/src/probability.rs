//! `Pr[S(t) | α]`: the probability that the system solves a task by time
//! `t` (Section 3.4).
//!
//! Exact values count the `2^{k·t}` positive-probability realizations
//! (all equiprobable by Lemma B.1) that solve — computed by the
//! prefix-sharing execution-tree engine ([`crate::engine`]), which does
//! one round of knowledge construction per *tree node* instead of `t`
//! rounds per leaf, memoizes solvability per consistency partition, and
//! prunes solved subtrees wholesale. A Monte-Carlo estimator covers the
//! regimes where even that is out of reach.

use rand::Rng;
use rsbt_random::{Assignment, Realization};
use rsbt_sim::{pool, FxHashMap, KnowledgeArena, Model};
use rsbt_tasks::Task;

use crate::engine::{self, SolvabilityMemo, TaskKernel};
use crate::output_cache::OutputComplexCache;
use crate::solvability;

/// Largest `k·t` accepted by the exact enumerator (`2^30` executions —
/// raised from `2^26` when the prefix-sharing engine replaced leaf-by-leaf
/// re-simulation; see `DESIGN.md` §4.4 for the complexity accounting).
pub const MAX_EXACT_BITS: usize = 30;

/// Exact `Pr[S(t) | α]` by enumeration.
///
/// # Panics
///
/// Panics if `alpha.n()` mismatches the model's node count, or if
/// `k·t > MAX_EXACT_BITS`.
///
/// # Example
///
/// ```
/// use rsbt_core::probability;
/// use rsbt_random::Assignment;
/// use rsbt_sim::Model;
/// use rsbt_tasks::LeaderElection;
///
/// // One singleton source among two (k = 2): p(1) = 1/2.
/// let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
/// let p = probability::exact(&Model::Blackboard, &LeaderElection, &alpha, 1);
/// assert!((p - 0.5).abs() < 1e-12);
/// ```
pub fn exact<T: Task + ?Sized>(model: &Model, task: &T, alpha: &Assignment, t: usize) -> f64 {
    exact_with_arena(model, task, alpha, t, &mut KnowledgeArena::new())
}

/// [`exact`] with a caller-provided [`KnowledgeArena`].
///
/// Interning is content-addressed, so reusing one arena across many
/// enumeration points (a whole `p(1..t_max)` series, or a sweep worker's
/// chunk) produces bit-identical probabilities while skipping the
/// re-interning of shared knowledge prefixes.
///
/// # Panics
///
/// Same conditions as [`exact`].
pub fn exact_with_arena<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    arena: &mut KnowledgeArena,
) -> f64 {
    check_budget(model, alpha, t);
    if t == 0 {
        return exact_reference(model, task, alpha, 0, arena);
    }
    let counts = engine::solved_counts(model, task, alpha, t, arena);
    counts[t - 1] as f64 / (1u64 << (alpha.k() * t)) as f64
}

/// Asserts the shared preconditions of every exact entry point.
fn check_budget(model: &Model, alpha: &Assignment, t: usize) {
    let bits = alpha.k() * t;
    assert!(
        bits <= MAX_EXACT_BITS,
        "k*t = {bits} exceeds exact-enumeration budget; use monte_carlo"
    );
    if let Some(p) = model.ports() {
        assert_eq!(p.n(), alpha.n(), "model/assignment node mismatch");
    }
}

/// The pre-engine reference path: leaf-by-leaf re-simulation over
/// [`Realization::enumerate_consistent`], kept verbatim as the independent
/// ground truth for the engine's bit-identity tests and the
/// `exp_perf_enum` before/after benchmark — including the old per-leaf
/// solvability cost model ([`solvability::solves_reference`] rebuilds the
/// output complex and scans it per realization, exactly as `solves` did
/// before the dense/closed-form rewrite). Not used by any production
/// caller — prefer [`exact`] / [`exact_with_arena`].
///
/// # Panics
///
/// Same conditions as [`exact`].
pub fn exact_reference<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    arena: &mut KnowledgeArena,
) -> f64 {
    check_budget(model, alpha, t);
    let mut solved = 0u64;
    let mut total = 0u64;
    for rho in Realization::enumerate_consistent(alpha, t) {
        if solvability::solves_reference(model, &rho, task, arena) {
            solved += 1;
        }
        total += 1;
    }
    solved as f64 / total as f64
}

/// Reference form of [`exact_series`]: one [`exact_reference`] per `t`
/// over a shared arena — the pre-engine cost model `Σ_t t·2^{k·t}` the
/// `exp_perf_enum` benchmark compares against.
///
/// # Panics
///
/// Same conditions as [`exact`], applied at `t_max`.
pub fn exact_series_reference<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    arena: &mut KnowledgeArena,
) -> Vec<f64> {
    (1..=t_max)
        .map(|t| exact_reference(model, task, alpha, t, arena))
        .collect()
}

/// The series `p(1), …, p(t_max)` of exact success probabilities.
///
/// A **single** execution-tree traversal produces the whole series: the
/// engine tallies solved nodes at every depth, so `p(t)` for all `t ≤
/// t_max` costs one walk of the depth-`t_max` tree instead of one
/// enumeration per `t`. Results are bit-identical to calling [`exact`]
/// per `t` (asserted by test).
pub fn exact_series<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
) -> Vec<f64> {
    exact_series_with_arena(model, task, alpha, t_max, &mut KnowledgeArena::new())
}

/// [`exact_series`] with a caller-provided [`KnowledgeArena`].
pub fn exact_series_with_arena<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    arena: &mut KnowledgeArena,
) -> Vec<f64> {
    check_budget(model, alpha, t_max);
    let counts = engine::solved_counts(model, task, alpha, t_max, arena);
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| c as f64 / (1u64 << (alpha.k() * (i + 1))) as f64)
        .collect()
}

/// Memoization cache for exact sweep points.
///
/// Keyed by `(model, task name, canonical α source labels, t)` — the full
/// identity of one exact-probability evaluation. Overlapping sweep points
/// (the same profile appearing across bins, rounds, and report sections)
/// are computed once per process.
///
/// The key is stored as three nested maps (`model → task name → α`) whose
/// leaves hold the per-`t` series, so **lookups borrow every component**:
/// a hot sweep hit performs no allocation (the old flat
/// `(Model, String, Vec<usize>, usize)` tuple key cloned the model and
/// the source vector — two heap allocations — per lookup, hits included).
/// The generic [`Cache::peek`] still materializes the task name once
/// (`Task::name` returns an owned `String`); hot paths precompute the
/// name and use [`Cache::peek_named`].
///
/// The task name is part of the key, so [`Task::name`] must uniquely
/// identify the task's output-complex family (all in-tree tasks do; e.g.
/// `KLeaderElection` embeds `k` and constrained `LeaderAndDeputy` variants
/// embed their constraint masks).
#[derive(Clone, Debug, Default)]
pub struct Cache {
    /// `model → task name → α sources → p(t) at slot t`.
    map: FxHashMap<Model, TaskMap>,
    points: usize,
    hits: u64,
    misses: u64,
}

/// `task name → α sources → p(t) at slot t` (the inner cache levels).
type TaskMap = FxHashMap<String, FxHashMap<Box<[usize]>, Vec<Option<f64>>>>;

impl Cache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Cache::default()
    }

    /// The number of distinct sweep points stored.
    pub fn len(&self) -> usize {
        self.points
    }

    /// Whether no point has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.points == 0
    }

    /// How many lookups were answered from memory.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// How many lookups had to compute.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up a point without computing; does not touch hit statistics.
    pub fn peek<T: Task + ?Sized>(
        &self,
        model: &Model,
        task: &T,
        alpha: &Assignment,
        t: usize,
    ) -> Option<f64> {
        self.peek_named(model, &task.name(), alpha.sources(), t)
    }

    /// [`Cache::peek`] with every key component borrowed — the
    /// allocation-free hot path for sweep engines that computed
    /// `task.name()` once per point.
    pub fn peek_named(
        &self,
        model: &Model,
        task_name: &str,
        sources: &[usize],
        t: usize,
    ) -> Option<f64> {
        self.map
            .get(model)?
            .get(task_name)?
            .get(sources)?
            .get(t)
            .copied()
            .flatten()
    }

    /// Inserts a precomputed point (used by parallel sweep engines that
    /// compute misses out-of-band and merge deterministically).
    pub fn insert<T: Task + ?Sized>(
        &mut self,
        model: &Model,
        task: &T,
        alpha: &Assignment,
        t: usize,
        p: f64,
    ) {
        self.insert_named(model, &task.name(), alpha.sources(), t, p);
    }

    /// [`Cache::insert`] with borrowed key components; allocates only for
    /// key components not yet present.
    pub fn insert_named(
        &mut self,
        model: &Model,
        task_name: &str,
        sources: &[usize],
        t: usize,
        p: f64,
    ) {
        // Owned key components are cloned only when absent (misses are
        // rare relative to hits and allocate for the computation anyway).
        if !self.map.contains_key(model) {
            self.map.insert(model.clone(), FxHashMap::default());
        }
        let by_task = self.map.get_mut(model).expect("ensured above");
        if !by_task.contains_key(task_name) {
            by_task.insert(task_name.to_string(), FxHashMap::default());
        }
        let by_alpha = by_task.get_mut(task_name).expect("ensured above");
        if !by_alpha.contains_key(sources) {
            by_alpha.insert(Box::from(sources), Vec::new());
        }
        let series = by_alpha.get_mut(sources).expect("ensured above");
        if series.len() <= t {
            series.resize(t + 1, None);
        }
        if series[t].is_none() {
            self.points += 1;
        }
        series[t] = Some(p);
    }

    /// Counted borrowed lookup: bumps the hit/miss statistics.
    fn lookup_counted(
        &mut self,
        model: &Model,
        task_name: &str,
        sources: &[usize],
        t: usize,
    ) -> Option<f64> {
        match self.peek_named(model, task_name, sources, t) {
            Some(p) => {
                self.hits += 1;
                Some(p)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }
}

/// Cached [`exact`]: answers from `cache` when possible, otherwise computes
/// via [`exact_with_arena`] and memoizes. The cache key is borrowed — no
/// model or source-vector clone on hits.
///
/// # Panics
///
/// Same conditions as [`exact`].
pub fn exact_cached<T: Task + ?Sized>(
    cache: &mut Cache,
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    arena: &mut KnowledgeArena,
) -> f64 {
    let name = task.name();
    if let Some(p) = cache.lookup_counted(model, &name, alpha.sources(), t) {
        return p;
    }
    let p = exact_with_arena(model, task, alpha, t, arena);
    cache.insert_named(model, &name, alpha.sources(), t, p);
    p
}

/// Cached [`exact_series`]: each prefix `t` is memoized individually, so a
/// longer series extends a shorter one without recomputing shared
/// prefixes. Uncached suffixes are filled by **one** engine traversal to
/// the deepest missing `t`, not one enumeration per missing point.
pub fn exact_series_cached<T: Task + ?Sized>(
    cache: &mut Cache,
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    arena: &mut KnowledgeArena,
) -> Vec<f64> {
    let name = task.name();
    let cached: Vec<Option<f64>> = (1..=t_max)
        .map(|t| cache.lookup_counted(model, &name, alpha.sources(), t))
        .collect();
    let deepest_missing = cached.iter().rposition(Option::is_none).map(|i| i + 1);
    let computed = match deepest_missing {
        Some(need) => exact_series_with_arena(model, task, alpha, need, arena),
        None => Vec::new(),
    };
    cached
        .into_iter()
        .enumerate()
        .map(|(i, slot)| match slot {
            Some(p) => p,
            None => {
                let p = computed[i];
                cache.insert_named(model, &name, alpha.sources(), i + 1, p);
                p
            }
        })
        .collect()
}

/// Exact `Pr[S(t) | α]` computed on `threads` OS threads, each with its
/// own knowledge arena. Produces bit-identical results to [`exact`]
/// (verified by test); use for the larger sweeps where `2^{kt}` single-
/// threaded enumeration dominates wall-clock time.
///
/// Parallelism is top-level-subtree sharding over the execution tree: the
/// depth-`D` prefixes (smallest `D` with `2^{k·D} ≥ threads`) are split
/// into contiguous ranges, each worker runs the prefix-sharing engine on
/// its range with a private arena/memo
/// ([`engine::solved_counts_shard`]), and the per-shard tallies are
/// merged in index order via [`pool::map_with_arena`] — integer counts,
/// so the merged probability is bit-identical to the serial walk.
///
/// # Panics
///
/// Same conditions as [`exact`], plus `threads ≥ 1`.
pub fn exact_parallel<T>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    threads: usize,
) -> f64
where
    T: Task + Sync + ?Sized,
{
    assert!(threads >= 1, "need at least one thread");
    check_budget(model, alpha, t);
    if t == 0 || threads == 1 {
        return exact(model, task, alpha, t);
    }
    let k = alpha.k();
    let mut shard_depth = 0;
    while shard_depth < t && (1u64 << (k * shard_depth)) < threads as u64 {
        shard_depth += 1;
    }
    let prefixes: u64 = 1 << (k * shard_depth);
    let chunk = prefixes.div_ceil(threads as u64);
    let ranges: Vec<(u64, u64)> = (0..threads as u64)
        .map(|w| (w * chunk, ((w + 1) * chunk).min(prefixes)))
        .filter(|(lo, hi)| lo < hi)
        .collect();
    // At most one dense table for the run (none when the task's closed
    // form answers), shared read-only across workers; each worker
    // assembles its borrowed kernel and owns its memo.
    let table = engine::fallback_table(task, alpha.n());
    let shard_counts = pool::map_with_arena(&ranges, threads, |arena, &(lo, hi)| {
        let kernel = match table.as_ref() {
            Some(table) => TaskKernel::new(task, table),
            None => TaskKernel::closed_form_only(task),
        };
        let mut memo = SolvabilityMemo::new();
        engine::solved_counts_shard(
            model,
            &kernel,
            alpha,
            t,
            shard_depth,
            lo,
            hi,
            arena,
            &mut memo,
        )
    });
    let solved: u64 = shard_counts.iter().map(|counts| counts[t - 1]).sum();
    solved as f64 / (1u64 << (k * t)) as f64
}

/// A Monte-Carlo estimate with its standard error.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Sample mean of the success indicator.
    pub p: f64,
    /// Standard error `sqrt(p(1−p)/samples)`.
    pub std_error: f64,
    /// Number of samples drawn.
    pub samples: usize,
}

impl Estimate {
    /// Whether `value` lies within `z` standard errors of the estimate.
    pub fn is_consistent_with(&self, value: f64, z: f64) -> bool {
        (self.p - value).abs() <= z * self.std_error + f64::EPSILON
    }
}

/// Monte-Carlo `Pr[S(t) | α]`.
///
/// # Panics
///
/// Panics if `samples == 0` or on a model/assignment node mismatch.
pub fn monte_carlo<T: Task, R: Rng + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t: usize,
    samples: usize,
    rng: &mut R,
) -> Estimate {
    assert!(samples > 0, "need at least one sample");
    if let Some(p) = model.ports() {
        assert_eq!(p.n(), alpha.n(), "model/assignment node mismatch");
    }
    let mut arena = KnowledgeArena::new();
    // One dense table for all samples (take-or-build, never per draw).
    let mut cache = OutputComplexCache::new();
    let mut solved = 0usize;
    for _ in 0..samples {
        let rho = Realization::sample(alpha, t, rng);
        if solvability::solves_with_cache(model, &rho, task, &mut arena, &mut cache) {
            solved += 1;
        }
    }
    let p = solved as f64 / samples as f64;
    Estimate {
        p,
        std_error: (p * (1.0 - p) / samples as f64).sqrt(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rsbt_tasks::{KLeaderElection, LeaderElection};

    #[test]
    fn shared_source_never_solves() {
        let alpha = Assignment::shared(3);
        for t in 1..=3 {
            assert_eq!(exact(&Model::Blackboard, &LeaderElection, &alpha, t), 0.0);
        }
    }

    #[test]
    fn private_sources_converge_to_one() {
        let alpha = Assignment::private(2);
        let series = exact_series(&Model::Blackboard, &LeaderElection, &alpha, 5);
        // p(t) = 1 − 2^{−t}: the two nodes differ somewhere in t rounds.
        for (i, p) in series.iter().enumerate() {
            let t = i + 1;
            let expect = 1.0 - 0.5f64.powi(t as i32);
            assert!((p - expect).abs() < 1e-12, "t={t}: {p} vs {expect}");
        }
    }

    #[test]
    fn singleton_plus_pair_matches_closed_form() {
        // Group sizes [1, 2]: k = 2, exactly one singleton source. The
        // system solves iff the singleton's string differs from the pair's:
        // p(t) = 1 − 2^{−t}.
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        for t in 1..=4 {
            let p = exact(&Model::Blackboard, &LeaderElection, &alpha, t);
            let expect = 1.0 - 0.5f64.powi(t as i32);
            assert!((p - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn no_singleton_blackboard_is_dead() {
        // Theorem 4.1 'only if': sizes [2,2] never solve on the blackboard.
        let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
        for t in 1..=3 {
            assert_eq!(exact(&Model::Blackboard, &LeaderElection, &alpha, t), 0.0);
        }
    }

    #[test]
    fn series_is_monotone() {
        for sizes in [vec![1usize, 1], vec![1, 2], vec![1, 1, 1], vec![1, 3]] {
            let alpha = Assignment::from_group_sizes(&sizes).unwrap();
            let series = exact_series(&Model::Blackboard, &LeaderElection, &alpha, 4);
            for w in series.windows(2) {
                assert!(w[1] >= w[0] - 1e-12, "{sizes:?}: {series:?}");
            }
        }
    }

    #[test]
    fn monte_carlo_matches_exact() {
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let mut rng = StdRng::seed_from_u64(12345);
        let t = 3;
        let exact_p = exact(&Model::Blackboard, &LeaderElection, &alpha, t);
        let est = monte_carlo(
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            t,
            20_000,
            &mut rng,
        );
        assert!(
            est.is_consistent_with(exact_p, 4.0),
            "MC {est:?} vs exact {exact_p}"
        );
    }

    #[test]
    fn two_leader_probability() {
        // 2-LE on sizes [2,2] in the blackboard: solvable iff the two
        // groups' strings differ (elect one whole group? no — elect the two
        // members of one class... classes are the two groups when strings
        // differ; electing one group of size 2 = exactly two leaders). So
        // p(t) = 1 − 2^{−t}.
        let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
        let task = KLeaderElection::new(2);
        for t in 1..=4 {
            let p = exact(&Model::Blackboard, &task, &alpha, t);
            let expect = 1.0 - 0.5f64.powi(t as i32);
            assert!((p - expect).abs() < 1e-12, "t={t}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        for sizes in [vec![1usize, 2], vec![2, 2], vec![1, 1, 1]] {
            let alpha = Assignment::from_group_sizes(&sizes).unwrap();
            for t in 1..=3usize {
                let seq = exact(&Model::Blackboard, &LeaderElection, &alpha, t);
                for threads in [1usize, 2, 4] {
                    let par =
                        exact_parallel(&Model::Blackboard, &LeaderElection, &alpha, t, threads);
                    assert_eq!(seq, par, "sizes {sizes:?} t {t} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn parallel_message_passing() {
        let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
        let model = Model::message_passing_cyclic(4);
        let seq = exact(&model, &LeaderElection, &alpha, 3);
        let par = exact_parallel(&model, &LeaderElection, &alpha, 3, 3);
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic(expected = "exceeds exact-enumeration budget")]
    fn exact_budget_guard() {
        // k·t = 32 > MAX_EXACT_BITS = 30.
        let alpha = Assignment::private(8);
        let _ = exact(&Model::Blackboard, &LeaderElection, &alpha, 4);
    }

    #[test]
    fn engine_bit_identical_to_reference_all_profiles() {
        // The prefix-sharing engine must reproduce the leaf-by-leaf
        // reference bit-for-bit: both models, every profile with n ≤ 4,
        // t ≤ 3, every thread count — exact, series, and parallel paths.
        let two_le = KLeaderElection::new(2);
        let tasks: [&(dyn Task + Sync); 2] = [&LeaderElection, &two_le];
        for n in 2..=4usize {
            let models = [Model::Blackboard, Model::message_passing_cyclic(n)];
            for model in &models {
                for task in tasks {
                    for alpha in Assignment::iter_profiles(n) {
                        let mut ref_arena = KnowledgeArena::new();
                        let reference =
                            exact_series_reference(model, task, &alpha, 3, &mut ref_arena);
                        let series = exact_series(model, task, &alpha, 3);
                        for (i, (&p, &q)) in series.iter().zip(&reference).enumerate() {
                            let t = i + 1;
                            assert_eq!(p.to_bits(), q.to_bits(), "{model} {alpha} series t={t}");
                            let single = exact(model, task, &alpha, t);
                            assert_eq!(single.to_bits(), q.to_bits(), "{model} {alpha} t={t}");
                            for threads in [1usize, 2, 3, 4, 8] {
                                let par = exact_parallel(model, task, &alpha, t, threads);
                                assert_eq!(
                                    par.to_bits(),
                                    q.to_bits(),
                                    "{model} {alpha} t={t} threads={threads}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn one_pass_series_equals_per_t_recomputation() {
        // One traversal to t_max vs an independent full recomputation per
        // prefix, bit for bit (fresh arenas everywhere, so equality cannot
        // come from shared interning state).
        for model in [Model::Blackboard, Model::message_passing_cyclic(4)] {
            let alpha = Assignment::from_group_sizes(&[1, 3]).unwrap();
            let one_pass = exact_series(&model, &LeaderElection, &alpha, 4);
            assert_eq!(one_pass.len(), 4);
            for (i, &p) in one_pass.iter().enumerate() {
                let fresh = exact_reference(
                    &model,
                    &LeaderElection,
                    &alpha,
                    i + 1,
                    &mut KnowledgeArena::new(),
                );
                assert_eq!(p.to_bits(), fresh.to_bits(), "{model} t={}", i + 1);
            }
        }
    }

    #[test]
    fn shared_arena_series_bit_identical_to_per_t_path() {
        // The incremental series (one arena for all prefixes) must agree
        // bit-for-bit with a fresh arena per t, on both models.
        for model in [Model::Blackboard, Model::message_passing_cyclic(4)] {
            for sizes in [vec![1usize, 3], vec![2, 2], vec![1, 1, 2]] {
                let alpha = Assignment::from_group_sizes(&sizes).unwrap();
                let series = exact_series(&model, &LeaderElection, &alpha, 3);
                for (i, &p) in series.iter().enumerate() {
                    let fresh = exact(&model, &LeaderElection, &alpha, i + 1);
                    assert!(
                        p.to_bits() == fresh.to_bits(),
                        "{model} {sizes:?} t={}: {p} vs {fresh}",
                        i + 1
                    );
                }
            }
        }
    }

    #[test]
    fn cache_replays_bit_identical_values() {
        let mut cache = Cache::new();
        let mut arena = KnowledgeArena::new();
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let first = exact_series_cached(
            &mut cache,
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            4,
            &mut arena,
        );
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 4);
        // A longer series extends the cached prefix: 4 hits + 2 misses.
        let longer = exact_series_cached(
            &mut cache,
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            6,
            &mut arena,
        );
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.misses(), 6);
        assert_eq!(&longer[..4], &first[..]);
        for (i, &p) in longer.iter().enumerate() {
            let fresh = exact(&Model::Blackboard, &LeaderElection, &alpha, i + 1);
            assert_eq!(p.to_bits(), fresh.to_bits(), "t={}", i + 1);
        }
    }

    #[test]
    fn cache_key_distinguishes_model_task_and_alpha() {
        let mut cache = Cache::new();
        let mut arena = KnowledgeArena::new();
        let a12 = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let a111 = Assignment::from_group_sizes(&[1, 1, 1]).unwrap();
        let two = KLeaderElection::new(2);
        let mp = Model::message_passing_cyclic(3);
        let points: Vec<f64> = vec![
            exact_cached(
                &mut cache,
                &Model::Blackboard,
                &LeaderElection,
                &a12,
                2,
                &mut arena,
            ),
            exact_cached(
                &mut cache,
                &Model::Blackboard,
                &LeaderElection,
                &a111,
                2,
                &mut arena,
            ),
            exact_cached(&mut cache, &Model::Blackboard, &two, &a111, 2, &mut arena),
            exact_cached(&mut cache, &mp, &LeaderElection, &a111, 2, &mut arena),
        ];
        assert_eq!(cache.len(), 4, "four distinct keys, no collisions");
        assert_eq!(cache.misses(), 4);
        // Replays hit and agree.
        assert_eq!(
            exact_cached(&mut cache, &mp, &LeaderElection, &a111, 2, &mut arena).to_bits(),
            points[3].to_bits()
        );
        assert_eq!(cache.hits(), 1);
        assert_eq!(
            cache.peek(&Model::Blackboard, &LeaderElection, &a12, 2),
            Some(points[0])
        );
        assert_eq!(
            cache.peek(&Model::Blackboard, &LeaderElection, &a12, 3),
            None
        );
    }
}
