//! Eventual solvability (Definition 3.3) and the zero-one law (Lemma 3.2).
//!
//! Kolmogorov's zero-one law forces `lim_{t→∞} Pr[S(t) | α] ∈ {0, 1}`, so
//! eventual solvability is a *deterministic* predicate of the
//! randomness-configuration. For leader election the paper pins it down:
//!
//! * **Theorem 4.1 (blackboard)**: solvable ⟺ some source feeds exactly
//!   one node (`∃ i : n_i = 1`);
//! * **Theorem 4.2 (message passing, worst-case ports)**: solvable ⟺
//!   `gcd(n_1, …, n_k) = 1`.

use rsbt_random::{Assignment, Realization};
use rsbt_sim::{KnowledgeArena, Model};
use rsbt_tasks::Task;

use crate::output_cache::OutputComplexCache;
use crate::solvability;

/// Theorem 4.1: eventual solvability of leader election in the blackboard
/// model.
///
/// # Example
///
/// ```
/// use rsbt_core::eventual::blackboard_eventually_solvable;
/// use rsbt_random::Assignment;
///
/// let with_singleton = Assignment::from_group_sizes(&[1, 3]).unwrap();
/// let without = Assignment::from_group_sizes(&[2, 2]).unwrap();
/// assert!(blackboard_eventually_solvable(&with_singleton));
/// assert!(!blackboard_eventually_solvable(&without));
/// ```
pub fn blackboard_eventually_solvable(alpha: &Assignment) -> bool {
    alpha.has_singleton_group()
}

/// Theorem 4.2: worst-case (over port numberings) eventual solvability of
/// leader election in the message-passing model.
///
/// If the gcd is 1, *every* port numbering admits eventual election; if it
/// is greater than 1, the adversarial numbering
/// [`rsbt_sim::PortNumbering::adversarial`] defeats every algorithm.
pub fn message_passing_worst_case_solvable(alpha: &Assignment) -> bool {
    alpha.gcd_of_group_sizes() == 1
}

/// Classification of the limit of a probability series.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LimitClass {
    /// The series is identically zero (task unsolvable).
    Zero,
    /// The series approaches one (task eventually solvable).
    One,
    /// The prefix is too short to classify against the tolerance.
    Inconclusive,
}

/// Classifies a finite prefix of `p(1), p(2), …` against the zero-one law:
/// all-zero prefixes classify as [`LimitClass::Zero`]; prefixes whose last
/// value exceeds `1 − tol` classify as [`LimitClass::One`].
///
/// By Lemma 3.2, `p(t) > 0` for any `t` already implies the limit is 1;
/// this function is deliberately conservative and reports
/// [`LimitClass::Inconclusive`] for short positive prefixes instead of
/// extrapolating.
///
/// # Panics
///
/// Panics if `series` is empty or `tol` is not in `(0, 1)`.
pub fn classify_limit(series: &[f64], tol: f64) -> LimitClass {
    assert!(!series.is_empty(), "need at least one probability");
    assert!(tol > 0.0 && tol < 1.0, "tolerance must be in (0,1)");
    if series.iter().all(|&p| p == 0.0) {
        LimitClass::Zero
    } else if series.last().copied().unwrap_or(0.0) >= 1.0 - tol {
        LimitClass::One
    } else {
        LimitClass::Inconclusive
    }
}

/// The zero-one dichotomy implied by Lemma 3.2 on a *finite* prefix:
/// a positive entry anywhere forces limit 1; an all-zero prefix is
/// consistent with limit 0 (and is limit 0 whenever solvability is
/// time-monotone, which Section 3.2 proves).
pub fn lemma_3_2_limit(series: &[f64]) -> LimitClass {
    assert!(!series.is_empty(), "need at least one probability");
    if series.iter().any(|&p| p > 0.0) {
        LimitClass::One
    } else {
        LimitClass::Zero
    }
}

/// A Lemma 3.2 *witness*: the first α-consistent realization with
/// `time ≤ t_max` that solves `task`, if one exists.
///
/// Any such realization has probability `2^{-k·t} > 0`, so by Lemma 3.2
/// its existence alone certifies `lim Pr[S(t) | α] = 1` — no probability
/// series needs computing. `None` means no enumerable witness up to
/// `t_max` (limit 0 if `t_max` is large enough to be conclusive for the
/// task, cf. Theorems 4.1/4.2).
///
/// The search loops [`solvability::solves_with_cache`] over
/// [`Realization::enumerate_consistent`], so the task's facet table is
/// taken-or-built once via `cache`, never per candidate.
///
/// # Panics
///
/// Panics if `alpha.k() · t_max` exceeds
/// [`crate::probability::TREE_EXACT_BITS`] — the search enumerates
/// realizations leaf by leaf, so the quotient engine's 126-bit budget
/// does not apply here — or on a model/assignment node mismatch.
pub fn lemma_3_2_certificate<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    arena: &mut KnowledgeArena,
    cache: &mut OutputComplexCache,
) -> Option<Realization> {
    assert!(
        alpha.k() * t_max <= crate::probability::TREE_EXACT_BITS,
        "k*t_max = {} exceeds exact-enumeration budget",
        alpha.k() * t_max
    );
    if let Some(p) = model.ports() {
        assert_eq!(p.n(), alpha.n(), "model/assignment node mismatch");
    }
    (1..=t_max).find_map(|t| {
        Realization::enumerate_consistent(alpha, t)
            .find(|rho| solvability::solves_with_cache(model, rho, task, arena, cache))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_4_1_predicate() {
        let cases = [
            (vec![1usize], true),
            (vec![2], false),
            (vec![1, 1], true),
            (vec![2, 2], false),
            (vec![1, 4], true),
            (vec![3, 3, 3], false),
            (vec![1, 2, 3], true),
        ];
        for (sizes, expect) in cases {
            let alpha = Assignment::from_group_sizes(&sizes).unwrap();
            assert_eq!(blackboard_eventually_solvable(&alpha), expect, "{sizes:?}");
        }
    }

    #[test]
    fn theorem_4_2_predicate() {
        let cases = [
            (vec![1usize], true),
            (vec![2], false),
            (vec![2, 2], false),
            (vec![2, 3], true),
            (vec![4, 6], false),
            (vec![2, 4, 6], false),
            (vec![2, 4, 7], true),
            (vec![3, 3], false),
            (vec![1, 5], true),
        ];
        for (sizes, expect) in cases {
            let alpha = Assignment::from_group_sizes(&sizes).unwrap();
            assert_eq!(
                message_passing_worst_case_solvable(&alpha),
                expect,
                "{sizes:?}"
            );
        }
    }

    #[test]
    fn blackboard_solvable_implies_mp_solvable() {
        // ∃ n_i = 1 ⇒ gcd = 1: the blackboard condition is strictly
        // stronger, matching the intuition that ports only help.
        for alpha in Assignment::iter_profiles(6) {
            if blackboard_eventually_solvable(&alpha) {
                assert!(message_passing_worst_case_solvable(&alpha));
            }
        }
        // And the inclusion is strict: [2,3].
        let alpha = Assignment::from_group_sizes(&[2, 3]).unwrap();
        assert!(!blackboard_eventually_solvable(&alpha));
        assert!(message_passing_worst_case_solvable(&alpha));
    }

    #[test]
    fn classify_limits() {
        assert_eq!(classify_limit(&[0.0, 0.0, 0.0], 0.01), LimitClass::Zero);
        assert_eq!(classify_limit(&[0.5, 0.75, 0.999], 0.01), LimitClass::One);
        assert_eq!(
            classify_limit(&[0.1, 0.2, 0.3], 0.01),
            LimitClass::Inconclusive
        );
        assert_eq!(lemma_3_2_limit(&[0.0, 0.0]), LimitClass::Zero);
        assert_eq!(lemma_3_2_limit(&[0.0, 0.001]), LimitClass::One);
    }

    #[test]
    #[should_panic(expected = "at least one probability")]
    fn empty_series_rejected() {
        let _ = classify_limit(&[], 0.01);
    }

    #[test]
    fn certificate_agrees_with_theorem_4_1() {
        // A witness exists exactly for the Theorem 4.1-solvable profiles,
        // and it really solves: the witness search IS the 'if' direction.
        use rsbt_tasks::LeaderElection;
        let mut arena = KnowledgeArena::new();
        let mut cache = OutputComplexCache::new();
        for n in 1..=4usize {
            for alpha in Assignment::iter_profiles(n) {
                let witness = lemma_3_2_certificate(
                    &Model::Blackboard,
                    &LeaderElection,
                    &alpha,
                    3,
                    &mut arena,
                    &mut cache,
                );
                assert_eq!(
                    witness.is_some(),
                    blackboard_eventually_solvable(&alpha),
                    "{alpha}"
                );
                if let Some(rho) = witness {
                    assert!(rho.is_consistent_with(&alpha));
                    assert!(solvability::solves(
                        &Model::Blackboard,
                        &rho,
                        &LeaderElection,
                        &mut arena
                    ));
                }
            }
        }
        // LE has a closed-form verdict: the sweep never builds a table.
        assert_eq!(cache.builds(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds exact-enumeration budget")]
    fn certificate_budget_guard() {
        use rsbt_tasks::LeaderElection;
        let alpha = Assignment::private(8); // k = 8
        let _ = lemma_3_2_certificate(
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            4,
            &mut KnowledgeArena::new(),
            &mut OutputComplexCache::new(),
        );
    }
}
