//! The consistency projection `π̃(ρ)` (Eq. 5 of the paper).
//!
//! For a realization `ρ`, vertices `(i, x_i)` and `(j, x_j)` span a simplex
//! of `π̃(ρ)` iff `i ∼_t j`, i.e. the nodes hold identical knowledge after
//! running the model on `ρ`. The projection is a disjoint union of
//! simplices — one per consistency class — and leader election is solvable
//! on `ρ` exactly when `π̃(ρ)` has an isolated vertex.

use rsbt_complex::{Complex, ProcessName, Vertex};
use rsbt_random::{Assignment, BitString, Realization};
use rsbt_sim::{Execution, KnowledgeArena, Model};

/// Builds `π̃(ρ)` by running the full-information dynamics on `ρ`.
///
/// The vertex set is `{(i, x_i)}` (randomness values, matching the paper's
/// definition on `R(t)`); the facets are the consistency classes.
///
/// # Example
///
/// ```
/// use rsbt_core::consistency;
/// use rsbt_random::{BitString, Realization};
/// use rsbt_sim::{KnowledgeArena, Model};
///
/// let rho = Realization::new(vec![
///     BitString::from_bits([true]),
///     BitString::from_bits([false]),
///     BitString::from_bits([false]),
/// ]).unwrap();
/// let mut arena = KnowledgeArena::new();
/// let pi = consistency::pi_tilde(&Model::Blackboard, &rho, &mut arena);
/// assert_eq!(pi.facet_count(), 2); // {p0} and {p1, p2}
/// assert_eq!(pi.isolated_vertices().len(), 1);
/// ```
pub fn pi_tilde(
    model: &Model,
    rho: &Realization,
    arena: &mut KnowledgeArena,
) -> Complex<BitString> {
    let exec = Execution::run(model, rho, arena);
    pi_tilde_of_execution(&exec, rho)
}

/// Builds `π̃(ρ)` from an already-computed execution (avoids re-running the
/// dynamics when the caller needs both).
///
/// # Panics
///
/// Panics if `exec` and `rho` disagree on node count or time.
pub fn pi_tilde_of_execution(exec: &Execution, rho: &Realization) -> Complex<BitString> {
    assert_eq!(exec.n(), rho.n(), "execution/realization node mismatch");
    assert_eq!(
        exec.time(),
        rho.time(),
        "execution/realization time mismatch"
    );
    let t = exec.time();
    let mut c = Complex::new();
    for class in exec.consistency_partition(t) {
        c.add_facet(
            class
                .into_iter()
                .map(|i| Vertex::new(ProcessName::new(i as u32), rho.node(i))),
        )
        .expect("classes have distinct nodes");
    }
    c
}

/// The union `π̃(R(t)) = ⋃_ρ π̃(ρ)` over the positive-probability
/// realizations of `α` (Eq. 6).
pub fn pi_tilde_of_support(
    model: &Model,
    alpha: &Assignment,
    t: usize,
    arena: &mut KnowledgeArena,
) -> Complex<BitString> {
    let mut c = Complex::new();
    for rho in Realization::enumerate_consistent(alpha, t) {
        for f in pi_tilde(model, &rho, arena).facets() {
            c.add_simplex(f.clone());
        }
    }
    c
}

/// The dimensions (plus one) of the facets of `π̃(ρ)` — the class sizes
/// Lemma 4.3 constrains to multiples of `g`.
pub fn class_sizes(model: &Model, rho: &Realization, arena: &mut KnowledgeArena) -> Vec<usize> {
    let exec = Execution::run(model, rho, arena);
    exec.class_sizes(rho.time())
}

/// Checks Lemma 4.3 on every positive-probability realization of `α` at
/// time `t`: under `model`, every consistency-class size must be divisible
/// by `g`. Returns the number of `(realization, class)` pairs checked.
///
/// # Panics
///
/// Panics on the first violating class (with context).
pub fn verify_lemma_4_3(
    model: &Model,
    alpha: &Assignment,
    g: usize,
    t: usize,
    arena: &mut KnowledgeArena,
) -> usize {
    let mut checked = 0;
    for rho in Realization::enumerate_consistent(alpha, t) {
        for size in class_sizes(model, &rho, arena) {
            assert_eq!(
                size % g,
                0,
                "class size {size} not divisible by g={g} on {rho}"
            );
            checked += 1;
        }
    }
    checked
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsbt_complex::connectivity;
    use rsbt_sim::PortNumbering;

    fn bits(s: &str) -> BitString {
        BitString::from_bits(s.chars().map(|c| c == '1'))
    }

    fn rho(strs: &[&str]) -> Realization {
        Realization::new(strs.iter().map(|s| bits(s)).collect()).unwrap()
    }

    #[test]
    fn blackboard_classes_equal_randomness_groups() {
        let mut arena = KnowledgeArena::new();
        let r = rho(&["01", "01", "10", "11"]);
        let pi = pi_tilde(&Model::Blackboard, &r, &mut arena);
        assert_eq!(pi.facet_count(), 3);
        assert_eq!(pi.isolated_vertices().len(), 2);
        // π̃(ρ) is a disjoint union of simplices: components = facets.
        assert_eq!(connectivity::components(&pi).len(), 3);
    }

    #[test]
    fn pi_tilde_is_disjoint_union_of_simplices() {
        let mut arena = KnowledgeArena::new();
        for r in Realization::enumerate_all(3, 2) {
            let pi = pi_tilde(&Model::Blackboard, &r, &mut arena);
            let comps = connectivity::components(&pi).len();
            assert_eq!(comps, pi.facet_count(), "{r}");
        }
    }

    #[test]
    fn support_union_for_shared_source() {
        // All nodes share the source: π̃(R(t)) is the diagonal — one
        // (n−1)-simplex per source word.
        let alpha = Assignment::shared(3);
        let mut arena = KnowledgeArena::new();
        let u = pi_tilde_of_support(&Model::Blackboard, &alpha, 2, &mut arena);
        assert_eq!(u.facet_count(), 4); // 2^t source words
        assert!(u.is_pure());
        assert_eq!(u.dimension(), Some(2));
    }

    #[test]
    fn lemma_4_3_holds_on_adversarial_ports() {
        for (sizes, g) in [
            (vec![2usize, 2], 2usize),
            (vec![3, 3], 3),
            (vec![2, 4], 2),
            (vec![4], 4),
        ] {
            let n: usize = sizes.iter().sum();
            let alpha = Assignment::from_group_sizes(&sizes).unwrap();
            let model = Model::MessagePassing(PortNumbering::adversarial(n, g));
            let mut arena = KnowledgeArena::new();
            for t in 1..=2 {
                let checked = verify_lemma_4_3(&model, &alpha, g, t, &mut arena);
                assert!(checked > 0);
            }
        }
    }

    #[test]
    fn lemma_4_3_fails_on_bad_ports() {
        // With cyclic ports + gcd 2 the divisibility CAN break (the lemma
        // is about a specific adversarial numbering). Find a witness.
        let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
        let model = Model::message_passing_cyclic(4);
        let mut arena = KnowledgeArena::new();
        let mut violated = false;
        for t in 1..=3 {
            for r in Realization::enumerate_consistent(&alpha, t) {
                if class_sizes(&model, &r, &mut arena)
                    .iter()
                    .any(|s| s % 2 != 0)
                {
                    violated = true;
                }
            }
        }
        assert!(
            violated,
            "cyclic ports should break the divisibility invariant"
        );
    }

    #[test]
    fn class_sizes_sum_to_n() {
        let mut arena = KnowledgeArena::new();
        for r in Realization::enumerate_all(4, 1) {
            let sizes = class_sizes(&Model::Blackboard, &r, &mut arena);
            assert_eq!(sizes.iter().sum::<usize>(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "time mismatch")]
    fn execution_mismatch_detected() {
        let mut arena = KnowledgeArena::new();
        let r2 = rho(&["01", "10"]);
        let r1 = rho(&["0", "1"]);
        let exec = Execution::run(&Model::Blackboard, &r1, &mut arena);
        let _ = pi_tilde_of_execution(&exec, &r2);
    }
}
