//! The protocol complex `P(t)` (Section 3.1, Figure 1).
//!
//! Vertices are pairs `(i, K_i(t))`; a set `{(i, K_i(t))}` is a facet iff
//! some randomness-configuration gives it positive probability. Because any
//! realization has positive probability under the all-private assignment,
//! the facets of `P(t)` correspond exactly to the `2^{nt}` realizations run
//! through the (deterministic) full-information dynamics — which is also
//! why the paper's `h` is a facet bijection.

use rsbt_complex::{Complex, ProcessName, Simplex, Vertex};
use rsbt_random::Realization;
use rsbt_sim::{Execution, KnowledgeArena, KnowledgeId, Model};

/// Builds `P(t)` for the given model by executing every realization.
///
/// Knowledge values are interned in `arena`; the returned complex stores
/// their [`KnowledgeId`]s (only meaningful relative to `arena`).
///
/// # Panics
///
/// Panics on a node-count mismatch between `n` and a message-passing port
/// numbering.
///
/// # Example
///
/// Figure 1: the 2-party protocol complex at times 0, 1, 2.
///
/// ```
/// use rsbt_core::protocol_complex;
/// use rsbt_sim::{KnowledgeArena, Model};
///
/// let mut arena = KnowledgeArena::new();
/// let p0 = protocol_complex::build(&Model::Blackboard, 2, 0, &mut arena);
/// let p1 = protocol_complex::build(&Model::Blackboard, 2, 1, &mut arena);
/// let p2 = protocol_complex::build(&Model::Blackboard, 2, 2, &mut arena);
/// assert_eq!(p0.facet_count(), 1);
/// assert_eq!(p1.facet_count(), 4);
/// assert_eq!(p2.facet_count(), 16);
/// ```
pub fn build(
    model: &Model,
    n: usize,
    t: usize,
    arena: &mut KnowledgeArena,
) -> Complex<KnowledgeId> {
    assert!(n >= 1, "need at least one node");
    let mut c = Complex::new();
    for rho in Realization::enumerate_all(n, t) {
        c.add_simplex(facet_of(model, &rho, arena));
    }
    c
}

/// The facet of `P(t)` reached from realization `rho`:
/// `{(i, K_i(t)) : i ∈ [n]}`.
pub fn facet_of(
    model: &Model,
    rho: &Realization,
    arena: &mut KnowledgeArena,
) -> Simplex<KnowledgeId> {
    let exec = Execution::run(model, rho, arena);
    facet_of_execution(&exec)
}

/// The facet of `P(t)` at the final time of an existing execution.
pub fn facet_of_execution(exec: &Execution) -> Simplex<KnowledgeId> {
    let t = exec.time();
    Simplex::from_vertices(
        (0..exec.n()).map(|i| Vertex::new(ProcessName::new(i as u32), exec.knowledge(t, i))),
    )
    .expect("distinct names")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsbt_random::BitString;

    #[test]
    fn figure1_facet_counts() {
        let mut arena = KnowledgeArena::new();
        for (t, expect) in [(0usize, 1usize), (1, 4), (2, 16)] {
            let p = build(&Model::Blackboard, 2, t, &mut arena);
            assert_eq!(p.facet_count(), expect, "P({t})");
        }
    }

    #[test]
    fn figure1_vertex_counts() {
        // Each party has 2^t distinct knowledge values at time t (its own
        // bits; the board content is determined by the realization, and for
        // n=2 the other party's knowledge is visible, so vertices are
        // (own bits, other's bits) pairs: 4^t... at t=1: own bit × board
        // content = 2 × 1? Figure 1 shows 4 vertices at t=1 (2 per party).
        let mut arena = KnowledgeArena::new();
        let p1 = build(&Model::Blackboard, 2, 1, &mut arena);
        assert_eq!(p1.vertex_count(), 4);
        // At t=2 Figure 1 shows 8 states per party? It draws 16 edges on
        // 16 vertices (each vertex listed with its knowledge tuple).
        let p2 = build(&Model::Blackboard, 2, 2, &mut arena);
        assert_eq!(p2.vertex_count(), 16);
    }

    #[test]
    fn facets_biject_with_realizations() {
        let mut arena = KnowledgeArena::new();
        let n = 3;
        let t = 2;
        let p = build(&Model::Blackboard, n, t, &mut arena);
        assert_eq!(p.facet_count(), 1 << (n * t));
    }

    #[test]
    fn message_passing_complex_depends_on_ports() {
        let mut arena = KnowledgeArena::new();
        let cyclic = build(&Model::message_passing_cyclic(3), 3, 2, &mut arena);
        assert_eq!(cyclic.facet_count(), 64);
    }

    #[test]
    fn facet_of_single_realization() {
        let mut arena = KnowledgeArena::new();
        let rho = Realization::new(vec![
            BitString::from_bits([true, false]),
            BitString::from_bits([false, false]),
        ])
        .unwrap();
        let f = facet_of(&Model::Blackboard, &rho, &mut arena);
        assert_eq!(f.dimension(), 1);
        // Distinct randomness ⇒ distinct knowledge vertices.
        let vals: Vec<_> = f.vertices().map(|v| *v.value()).collect();
        assert_ne!(vals[0], vals[1]);
    }
}
