//! Evolution of realizations over time: succession (Definition 4.6),
//! the backward projection map of Lemma 4.9, and the dimension-reduction
//! dynamics behind the 'if' direction of Theorem 4.2.

use rsbt_complex::{maps::VertexMap, Vertex};
use rsbt_random::{BitString, Realization};
use rsbt_sim::{KnowledgeArena, Model};
use rsbt_tasks::Task;

use crate::consistency;
use crate::output_cache::OutputComplexCache;
use crate::solvability;

/// All one-round extensions `ρ′ ≻ ρ` (Definition 4.6) — one per
/// assignment of fresh bits to the `n` nodes. Only those consistent with
/// a configuration have positive probability; this enumerates the raw
/// `2^n` successors.
///
/// # Panics
///
/// Panics if `rho.n() > 32`.
pub fn one_round_successors(rho: &Realization) -> Vec<Realization> {
    let n = rho.n();
    assert!(n <= 32, "successor enumeration limited to 32 nodes");
    (0..1u64 << n)
        .map(|mask| {
            let strings: Vec<BitString> = (0..n)
                .map(|i| {
                    let mut s = rho.node(i);
                    s.push(mask >> i & 1 == 1);
                    s
                })
                .collect();
            Realization::new(strings).expect("uniform lengths")
        })
        .collect()
}

/// Lemma 4.9: for `σ ≺ σ′`, the unique name-preserving vertex map
/// `δ : π̃(σ′) → π̃(σ)` (send `(i, x_i(1..t′))` to `(i, x_i(1..t))`) is
/// simplicial. Builds the map and checks simpliciality; returns the map.
///
/// # Panics
///
/// Panics if `later` does not succeed `earlier`, or — refuting the lemma —
/// if the map fails to be simplicial.
pub fn lemma_4_9_map(
    model: &Model,
    earlier: &Realization,
    later: &Realization,
    arena: &mut KnowledgeArena,
) -> VertexMap<BitString, BitString> {
    assert!(later.succeeds(earlier), "need earlier ≺ later");
    let pi_late = consistency::pi_tilde(model, later, arena);
    let pi_early = consistency::pi_tilde(model, earlier, arena);
    let t = earlier.time();
    let map: VertexMap<BitString, BitString> = pi_late
        .vertices()
        .into_iter()
        .map(|v| {
            let name = v.name();
            let truncated = v.value().prefix(t);
            (v, Vertex::new(name, truncated))
        })
        .collect();
    assert!(
        map.is_name_preserving(),
        "δ preserves names by construction"
    );
    assert!(
        map.is_simplicial(&pi_late, &pi_early),
        "Lemma 4.9 violated: δ not simplicial for {earlier} ≺ {later}"
    );
    map
}

/// Verifies Lemma 4.9 for every one-round successor of every realization
/// of `n` nodes at time `t`; returns the number of `(ρ, ρ′)` pairs
/// checked.
pub fn verify_lemma_4_9(model: &Model, n: usize, t: usize, arena: &mut KnowledgeArena) -> usize {
    let mut checked = 0;
    for rho in Realization::enumerate_all(n, t) {
        for succ in one_round_successors(&rho) {
            let _ = lemma_4_9_map(model, &rho, &succ, arena);
            checked += 1;
        }
    }
    checked
}

/// The "dimension profile" of `π̃(ρ)`: the sorted class sizes. Under the
/// Theorem 4.2 'if'-direction dynamics these profiles evolve by
/// subtractive Euclid steps; this helper exposes them for the
/// `exp_lem49` experiment and tests.
pub fn dimension_profile(
    model: &Model,
    rho: &Realization,
    arena: &mut KnowledgeArena,
) -> Vec<usize> {
    consistency::class_sizes(model, rho, arena)
}

/// Whether some successor chain of `rho` (within `extra_rounds` rounds,
/// exhaustive search) reaches a profile containing a singleton class —
/// i.e. whether symmetry *can* break from this state.
pub fn can_reach_singleton(
    model: &Model,
    rho: &Realization,
    extra_rounds: usize,
    arena: &mut KnowledgeArena,
) -> bool {
    if dimension_profile(model, rho, arena).contains(&1) {
        return true;
    }
    if extra_rounds == 0 {
        return false;
    }
    one_round_successors(rho)
        .iter()
        .any(|succ| can_reach_singleton(model, succ, extra_rounds - 1, arena))
}

/// Task-generic reachability: whether some successor chain of `rho`
/// (within `extra_rounds` rounds, exhaustive over the raw `2^n`-ary
/// successor tree) reaches a solving realization. Generalizes
/// [`can_reach_singleton`] — for leader election the two predicates
/// coincide, since LE solves exactly at a singleton class.
///
/// Solvability is checked through `cache`
/// ([`solvability::solves_with_cache`]), so the exponential successor
/// search builds the task's facet table once, not per visited node.
pub fn can_reach_solving<T: Task + ?Sized>(
    model: &Model,
    rho: &Realization,
    task: &T,
    extra_rounds: usize,
    arena: &mut KnowledgeArena,
    cache: &mut OutputComplexCache,
) -> bool {
    if solvability::solves_with_cache(model, rho, task, arena, cache) {
        return true;
    }
    if extra_rounds == 0 {
        return false;
    }
    one_round_successors(rho)
        .iter()
        .any(|succ| can_reach_solving(model, succ, task, extra_rounds - 1, arena, cache))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsbt_random::Assignment;
    use rsbt_sim::PortNumbering;

    fn bits(s: &str) -> BitString {
        BitString::from_bits(s.chars().map(|c| c == '1'))
    }

    fn rho(strs: &[&str]) -> Realization {
        Realization::new(strs.iter().map(|s| bits(s)).collect()).unwrap()
    }

    #[test]
    fn successors_extend_by_one_round() {
        let r = rho(&["01", "10"]);
        let succ = one_round_successors(&r);
        assert_eq!(succ.len(), 4);
        for s in &succ {
            assert_eq!(s.time(), 3);
            assert!(s.succeeds(&r));
        }
        // All distinct.
        let set: std::collections::BTreeSet<_> = succ.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn lemma_4_9_blackboard_sweep() {
        let mut arena = KnowledgeArena::new();
        let checked = verify_lemma_4_9(&Model::Blackboard, 3, 1, &mut arena);
        assert_eq!(checked, 8 * 8); // 2^{3·1} realizations × 2^3 successors
    }

    #[test]
    fn lemma_4_9_message_passing_sweep() {
        let mut arena = KnowledgeArena::new();
        let checked = verify_lemma_4_9(
            &Model::MessagePassing(PortNumbering::adversarial(4, 2)),
            4,
            1,
            &mut arena,
        );
        assert_eq!(checked, 16 * 16);
        let checked_cyclic = verify_lemma_4_9(&Model::message_passing_cyclic(3), 3, 2, &mut arena);
        assert_eq!(checked_cyclic, 64 * 8);
    }

    #[test]
    fn profiles_refine_over_time() {
        // The number of classes never decreases along a successor.
        let mut arena = KnowledgeArena::new();
        for r in Realization::enumerate_all(3, 1) {
            let before = dimension_profile(&Model::Blackboard, &r, &mut arena).len();
            for s in one_round_successors(&r) {
                let after = dimension_profile(&Model::Blackboard, &s, &mut arena).len();
                assert!(after >= before, "{r} → {s}");
            }
        }
    }

    #[test]
    fn can_reach_solving_generalizes_can_reach_singleton() {
        // For leader election, "solves" == "has a singleton class", so the
        // task-generic search must agree with the dimension-profile one on
        // every enumerable start state and horizon.
        use rsbt_tasks::{LeaderElection, WeakSymmetryBreaking};
        let mut arena = KnowledgeArena::new();
        let mut cache = OutputComplexCache::new();
        for r in Realization::enumerate_all(3, 1) {
            for extra in 0..=2usize {
                assert_eq!(
                    can_reach_solving(
                        &Model::Blackboard,
                        &r,
                        &LeaderElection,
                        extra,
                        &mut arena,
                        &mut cache
                    ),
                    can_reach_singleton(&Model::Blackboard, &r, extra, &mut arena),
                    "{r} extra={extra}"
                );
            }
        }
        // WSB is weaker than LE: everything splitting into ≥ 2 classes
        // solves, so from equal strings one extra round always suffices.
        let r = rho(&["0", "0", "0"]);
        assert!(!can_reach_solving(
            &Model::Blackboard,
            &r,
            &WeakSymmetryBreaking,
            0,
            &mut arena,
            &mut cache
        ));
        assert!(can_reach_solving(
            &Model::Blackboard,
            &r,
            &WeakSymmetryBreaking,
            1,
            &mut arena,
            &mut cache
        ));
    }

    #[test]
    fn can_reach_singleton_tracks_solvability() {
        let mut arena = KnowledgeArena::new();
        // Two nodes with equal strings: a singleton is reachable in one
        // round (they draw different bits).
        let r = rho(&["0", "0"]);
        assert!(can_reach_singleton(&Model::Blackboard, &r, 1, &mut arena));
        // Zero extra rounds: not yet broken.
        assert!(!can_reach_singleton(&Model::Blackboard, &r, 0, &mut arena));
        // Already broken counts immediately.
        let b = rho(&["0", "1"]);
        assert!(can_reach_singleton(&Model::Blackboard, &b, 0, &mut arena));
    }

    #[test]
    fn adversarial_ports_block_singletons_for_consistent_realizations() {
        // Under the Lemma 4.3 numbering and the [2,2] assignment, no
        // α-consistent realization can reach a singleton in 2 extra rounds
        // if the extension stays α-consistent... the raw search allows
        // inconsistent extensions, so instead verify directly: consistent
        // realizations never contain singletons at any enumerable time.
        let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
        let model = Model::MessagePassing(PortNumbering::adversarial(4, 2));
        let mut arena = KnowledgeArena::new();
        for t in 1..=3 {
            for r in Realization::enumerate_consistent(&alpha, t) {
                assert!(
                    !dimension_profile(&model, &r, &mut arena).contains(&1),
                    "{r}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "need earlier ≺ later")]
    fn lemma_4_9_rejects_non_successors() {
        let mut arena = KnowledgeArena::new();
        let a = rho(&["01", "10"]);
        let b = rho(&["11", "10"]);
        let _ = lemma_4_9_map(&Model::Blackboard, &a, &b, &mut arena);
    }
}
