//! Take-or-build caching of output-complex representations.
//!
//! Before this cache, every call to the solvability checkers rebuilt
//! `task.output_complex(n)` from scratch — a `BTreeSet` of facet
//! simplices with quadratic maximality maintenance — even when a caller
//! evaluated thousands of realizations of the same `(task, n)` pair in a
//! loop. [`OutputComplexCache`] builds each representation once per
//! process (or per run, wherever the caller scopes it) and hands out
//! borrows:
//!
//! * [`OutputComplexCache::table`] — the dense [`FacetTable`], built by
//!   **streaming** [`Task::facet_stream`] straight into the flat buffer
//!   (no intermediate [`Complex`] at all);
//! * [`OutputComplexCache::complex`] — the classic [`Complex`], for the
//!   Definition 3.1/3.4 search paths that need faces and projections.
//!
//! Keys are `(Task::name, n)`; like `probability::Cache`, this relies on
//! task names uniquely identifying the output-complex family (all
//! in-tree tasks guarantee it).

use rsbt_complex::{Complex, FacetTable};
use rsbt_sim::FxHashMap;
use rsbt_tasks::Task;

/// Builds the dense facet table of `task`'s output complex for `n`
/// processes, streaming facets without materializing a [`Complex`].
///
/// # Panics
///
/// Panics where `task.output_complex(n)` would (undefined `n`), or if the
/// task's facets do not cover the names `0..n` (every admissible output
/// complex in the paper does).
pub fn build_output_table<T: Task + ?Sized>(task: &T, n: usize) -> FacetTable {
    FacetTable::from_facets(n, task.facet_stream(n))
        .expect("output facets assign one value to every process name")
}

/// A take-or-build cache of output-complex representations, keyed by
/// `(task name, n)`.
///
/// # Example
///
/// ```
/// use rsbt_core::output_cache::OutputComplexCache;
/// use rsbt_tasks::LeaderElection;
///
/// let mut cache = OutputComplexCache::new();
/// let facets = cache.table(&LeaderElection, 4).facet_count();
/// assert_eq!(facets, 4);
/// cache.table(&LeaderElection, 4); // answered from memory
/// assert_eq!(cache.builds(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct OutputComplexCache {
    /// `task name → n → dense table`.
    tables: FxHashMap<String, FxHashMap<usize, FacetTable>>,
    /// `task name → n → facet-set complex`.
    complexes: FxHashMap<String, FxHashMap<usize, Complex<u64>>>,
    builds: u64,
    hits: u64,
}

impl OutputComplexCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        OutputComplexCache::default()
    }

    /// How many representations were built (missed).
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// How many lookups were answered from memory.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// The dense facet table for `(task, n)`, building it on first use.
    ///
    /// # Panics
    ///
    /// Same conditions as [`build_output_table`].
    pub fn table<T: Task + ?Sized>(&mut self, task: &T, n: usize) -> &FacetTable {
        let name = task.name();
        // Borrowed probe first: hits never allocate the key.
        if self
            .tables
            .get(name.as_ref())
            .is_some_and(|m| m.contains_key(&n))
        {
            self.hits += 1;
        } else {
            self.builds += 1;
            self.tables
                .entry(name.as_ref().to_owned())
                .or_default()
                .insert(n, build_output_table(task, n));
        }
        &self.tables[name.as_ref()][&n]
    }

    /// The output [`Complex`] for `(task, n)`, building it on first use.
    ///
    /// # Panics
    ///
    /// Panics where `task.output_complex(n)` does.
    pub fn complex<T: Task + ?Sized>(&mut self, task: &T, n: usize) -> &Complex<u64> {
        let name = task.name();
        if self
            .complexes
            .get(name.as_ref())
            .is_some_and(|m| m.contains_key(&n))
        {
            self.hits += 1;
        } else {
            self.builds += 1;
            self.complexes
                .entry(name.as_ref().to_owned())
                .or_default()
                .insert(n, task.output_complex(n));
        }
        &self.complexes[name.as_ref()][&n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsbt_tasks::{KLeaderElection, LeaderElection, WeakSymmetryBreaking};

    #[test]
    fn takes_or_builds_once_per_key() {
        let mut cache = OutputComplexCache::new();
        cache.table(&LeaderElection, 3);
        cache.table(&LeaderElection, 3);
        cache.table(&LeaderElection, 4);
        cache.complex(&LeaderElection, 3);
        cache.complex(&LeaderElection, 3);
        assert_eq!(cache.builds(), 3);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn keys_distinguish_tasks_and_sizes() {
        let mut cache = OutputComplexCache::new();
        let le = cache.table(&LeaderElection, 4).facet_count();
        let two = cache.table(&KLeaderElection::new(2), 4).facet_count();
        assert_eq!(le, 4);
        assert_eq!(two, 6);
        assert_eq!(cache.builds(), 2);
    }

    #[test]
    fn streamed_table_matches_complex_table() {
        let mut cache = OutputComplexCache::new();
        for n in 2..=5 {
            let streamed = cache.table(&WeakSymmetryBreaking, n).clone();
            let via_complex =
                rsbt_complex::FacetTable::from_complex(&WeakSymmetryBreaking.output_complex(n))
                    .unwrap();
            assert_eq!(streamed, via_complex, "n={n}");
        }
    }
}
