//! The prefix-sharing enumeration engine: one shared execution tree
//! instead of `2^{k·t}` independent re-simulations.
//!
//! [`probability::exact`](crate::probability::exact) asks how many of the
//! `2^{k·t}` equiprobable realizations (Lemma B.1) solve a task. The
//! leaf-by-leaf path re-runs all `t` rounds of knowledge construction per
//! realization even though realizations sharing a round prefix share the
//! whole execution prefix. This module walks the **execution tree**
//! instead: nodes at depth `s` are the `2^{k·s}` round-`s` knowledge
//! vectors, children are the `2^k` per-round source-bit extensions
//! (tree order — [`Realization::from_tree_index`]), and the DFS carries
//! the time-`s` knowledge-id vector as its state. Each tree node costs
//! *one* round of interning, so the total round-work over a full
//! traversal is `Σ_{s≤t} 2^{k·s} = 2^{k·t}·(1 + 1/(2^k − 1))` versus
//! `t·2^{k·t}` — and a whole `p(1..t_max)` series falls out of a single
//! traversal by tallying solved nodes at every depth.
//!
//! Two further structural savings ride on the tree:
//!
//! * **Partition-signature memoization** ([`SolvabilityMemo`]): the
//!   verdict of [`solves_execution`](crate::solvability::solves_execution)
//!   depends only on the *consistency partition* of the knowledge vector,
//!   and there are at most Bell(`n`) partitions of `[n]` — so the verdict
//!   computes once per distinct partition, not once per node. The
//!   computation itself is allocation-free: the task's closed-form
//!   [`Task::solves_partition`] when it has one, else a scan of the
//!   dense [`FacetTable`] the run-owned [`TaskKernel`] carries (built
//!   once per `(task, n)` by streaming `Task::facet_stream` — the output
//!   complex is never materialized, let alone per node).
//! * **Monotone subtree pruning**: extending an execution only refines
//!   its consistency partition (equal round-`t` knowledge forces equal
//!   round-`t − 1` knowledge), and a facet monochromatic on a partition
//!   is monochromatic on every refinement. Hence a solving node's entire
//!   subtree solves, and the DFS tallies it wholesale (`2^{k·(d−s)}`
//!   descendants per deeper depth `d`) without descending — the counts
//!   are *exactly* those of the exhaustive walk, for every task.
//!
//! Parallelism is top-level-subtree sharding: prefixes at a small depth
//! `D` are split into contiguous ranges (`[`solved_counts_shard`]`), each
//! worker re-derives its prefix paths (negligible: `2^{k·D} ≈` worker
//! count) and owns a tree node iff it owns the node's leftmost prefix, so
//! per-depth tallies sum to the serial traversal's exactly.
//!
//! This engine is now the **reference path**: the production exact
//! dispatch runs through the quotient engine ([`crate::engine_dp`]),
//! which walks the same tree *up to knowledge-equality state* — per-round
//! cost `O(states · 2^k)` instead of `O(2^{k·r})` — and is asserted
//! bit-identical to these tallies across this engine's reachable range.
//! The tallies here stay `u64` deliberately: with the enforced
//! `k·t_max ≤ 62` every `1u64 << (k·d)` shift is in range (the 62-bit
//! edge is pinned by test), and widening the reference would cost the
//! before/after comparability of the `exp_perf_*` benches. The quotient
//! engine carries `u128` counts and moves the integer-exact wall to
//! `k·t ≤ 126`.

use rsbt_complex::FacetTable;
use rsbt_random::{Assignment, BitString, Realization};
use rsbt_sim::{FaultSchedule, FxHashMap, KnowledgeArena, KnowledgeId, Model, RoundStepper};
use rsbt_tasks::Task;

use crate::output_cache::build_output_table;
use crate::solvability;

/// Everything a traversal needs to decide solvability for one
/// `(task, n)` pair: the task (for its closed-form
/// [`Task::solves_partition`]) and, for tasks without one, the dense
/// [`FacetTable`] of its output complex (the fallback scan). Built once
/// per run — never per tree node — and assembled from borrowed parts, so
/// the parallel sharding path shares one table across workers. Tasks
/// with a closed form carry no table at all
/// ([`TaskKernel::closed_form_only`]): the output complex is never
/// materialized in any form for them.
#[derive(Debug)]
pub struct TaskKernel<'a, T: Task + ?Sized> {
    task: &'a T,
    table: Option<&'a FacetTable>,
}

impl<'a, T: Task + ?Sized> TaskKernel<'a, T> {
    /// Assembles a kernel from a task and its (already built) dense
    /// output table.
    pub fn new(task: &'a T, table: &'a FacetTable) -> Self {
        TaskKernel {
            task,
            table: Some(table),
        }
    }

    /// A kernel for a task whose [`Task::solves_partition`] always
    /// answers — no fallback table is carried.
    pub fn closed_form_only(task: &'a T) -> Self {
        TaskKernel { task, table: None }
    }

    /// The dense output table the fallback scan runs over, if one was
    /// attached.
    pub fn table(&self) -> Option<&FacetTable> {
        self.table
    }
}

// Manual impls: `derive` would bound `T: Clone`/`T: Copy`.
impl<T: Task + ?Sized> Clone for TaskKernel<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: Task + ?Sized> Copy for TaskKernel<'_, T> {}

/// Memoized solvability verdicts, keyed by the canonical consistency
/// partition (first-occurrence class labels of the knowledge-id vector).
///
/// Verdicts are a pure function of `(partition, output complex)`: the
/// memo must not be reused across tasks or system sizes. Lookups on the
/// hit path are allocation-free (the label buffer is reused and hashed as
/// a borrowed slice) — and so are misses: the verdict comes from the
/// task's closed-form [`Task::solves_partition`] when it has one, else
/// from a scan of the kernel's dense [`FacetTable`] (`O(1)` lookups, one
/// `u32` compare per cell; the only allocation is the memo insertion
/// itself, once per distinct partition).
#[derive(Clone, Debug, Default)]
pub struct SolvabilityMemo {
    verdicts: FxHashMap<Vec<u8>, bool>,
    /// Scratch: canonical class label per node.
    labels: Vec<u8>,
    /// Scratch: the distinct ids, in first-appearance order.
    seen: Vec<KnowledgeId>,
    /// Scratch: the representative (first) node of each class.
    reps: Vec<usize>,
    memo_hits: u64,
    closed_form_verdicts: u64,
    dense_scan_verdicts: u64,
}

impl SolvabilityMemo {
    /// Creates an empty memo.
    pub fn new() -> Self {
        SolvabilityMemo::default()
    }

    /// The number of distinct partitions whose verdict has been computed
    /// (bounded by Bell(`n`)).
    pub fn entries(&self) -> usize {
        self.verdicts.len()
    }

    /// How many queries were answered from the partition memo.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// How many verdicts came from the task's closed form
    /// ([`Task::solves_partition`]).
    pub fn closed_form_verdicts(&self) -> u64 {
        self.closed_form_verdicts
    }

    /// How many verdicts fell back to the dense facet scan.
    pub fn dense_scan_verdicts(&self) -> u64 {
        self.dense_scan_verdicts
    }

    /// Whether a knowledge vector solves the kernel's task — the
    /// criterion of
    /// [`solves_execution`](crate::solvability::solves_execution) (some
    /// facet monochromatic on every consistency class), memoized on the
    /// partition signature. Misses dispatch to the closed form first and
    /// the dense scan otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() > 255`.
    pub fn solves<T: Task + ?Sized>(
        &mut self,
        ids: &[KnowledgeId],
        kernel: &TaskKernel<'_, T>,
    ) -> bool {
        assert!(ids.len() <= u8::MAX as usize, "too many nodes for labels");
        self.labels.clear();
        self.seen.clear();
        self.reps.clear();
        for (i, &id) in ids.iter().enumerate() {
            match self.seen.iter().position(|&s| s == id) {
                Some(class) => self.labels.push(class as u8),
                None => {
                    self.labels.push(self.seen.len() as u8);
                    self.seen.push(id);
                    self.reps.push(i);
                }
            }
        }
        self.verdict_for_scratch(kernel)
    }

    /// [`SolvabilityMemo::solves`] on a consistency partition given
    /// directly as canonical first-occurrence class labels — the entry
    /// point of the quotient engine ([`crate::engine_dp`]), which tracks
    /// equality *states* and never synthesizes knowledge ids. The class
    /// representatives the dense fallback scan needs are derived from the
    /// labels themselves (the first node of each class), so tasks without
    /// a closed form answer through the same [`TaskKernel`] table as the
    /// id path. Verdicts land in the same memo as [`SolvabilityMemo::solves`]
    /// — the two entry points share every cached partition.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() > 255` or if `labels` is not canonical
    /// (class `c`'s first occurrence must come after class `c − 1`'s).
    pub fn solves_labels<T: Task + ?Sized>(
        &mut self,
        labels: &[u8],
        kernel: &TaskKernel<'_, T>,
    ) -> bool {
        assert!(
            labels.len() <= u8::MAX as usize,
            "too many nodes for labels"
        );
        self.labels.clear();
        self.labels.extend_from_slice(labels);
        self.reps.clear();
        for (i, &c) in labels.iter().enumerate() {
            let c = c as usize;
            if c == self.reps.len() {
                self.reps.push(i);
            } else {
                assert!(c < self.reps.len(), "labels not in first-occurrence form");
            }
        }
        self.verdict_for_scratch(kernel)
    }

    /// The shared memo/closed-form/dense-scan tail: answers for the
    /// canonical partition currently held in the `labels`/`reps` scratch.
    fn verdict_for_scratch<T: Task + ?Sized>(&mut self, kernel: &TaskKernel<'_, T>) -> bool {
        if let Some(&verdict) = self.verdicts.get(self.labels.as_slice()) {
            self.memo_hits += 1;
            return verdict;
        }
        let verdict = match kernel.task.solves_partition(&self.labels) {
            Some(v) => {
                self.closed_form_verdicts += 1;
                v
            }
            None => {
                self.dense_scan_verdicts += 1;
                let table = kernel
                    .table
                    .expect("tasks without a closed form carry a dense table");
                solvability::facet_scan(table, &self.labels, &self.reps)
            }
        };
        self.verdicts.insert(self.labels.clone(), verdict);
        verdict
    }
}

/// Per-depth solved-node tallies from one shared traversal:
/// `counts[d − 1]` is the number of depth-`d` tree nodes (equivalently,
/// time-`d` realizations) that solve `task`, for `d ∈ 1..=t_max` — i.e.
/// `p(d) = counts[d − 1] / 2^{k·d}` for the whole series at once.
///
/// # Panics
///
/// Panics if `k·t_max > 62`, or on a model/assignment node mismatch.
pub fn solved_counts<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    arena: &mut KnowledgeArena,
) -> Vec<u64> {
    let table = fallback_table(task, alpha.n());
    let kernel = match table.as_ref() {
        Some(table) => TaskKernel::new(task, table),
        None => TaskKernel::closed_form_only(task),
    };
    let mut memo = SolvabilityMemo::new();
    solved_counts_shard(model, &kernel, alpha, t_max, 0, 0, 1, arena, &mut memo)
}

/// [`solved_counts`] under a **fixed** [`FaultSchedule`]: every
/// enumerated realization executes against the same deterministic
/// silence pattern (a node silent in round `r` contributes nothing to
/// that round's board or messages — the semantics of
/// [`Execution::run_with_faults`](rsbt_sim::Execution::run_with_faults)).
///
/// Only fixed schedules are enumerable: a *random* fault model would
/// break Lemma B.1's equiprobability (realizations would carry
/// fault-pattern weights), so [`FaultSpec`](rsbt_sim::FaultSpec) rates
/// are Monte-Carlo-only and the exact path takes the schedule directly.
///
/// The monotone subtree pruning the engine relies on survives faults
/// unchanged: each round node embeds the node's own previous knowledge,
/// so equal time-`t` knowledge still forces equal time-`t − 1` knowledge
/// — the consistency partition only refines over time, faulted or not,
/// and a solving node's subtree solves wholesale. (What does *not*
/// survive crashes is the zero-one *interpretation*: a crashed node's
/// class may "decide" in the partition sense while the operational
/// runner reports it as `None`. See `DESIGN.md` §4.9.)
///
/// # Panics
///
/// Same conditions as [`solved_counts`], plus a schedule/assignment
/// node-count mismatch.
pub fn solved_counts_faulted<T: Task + ?Sized>(
    model: &Model,
    task: &T,
    alpha: &Assignment,
    t_max: usize,
    faults: &FaultSchedule,
    arena: &mut KnowledgeArena,
) -> Vec<u64> {
    assert_eq!(
        faults.n(),
        alpha.n(),
        "fault schedule is for {} nodes, assignment for {}",
        faults.n(),
        alpha.n()
    );
    let table = fallback_table(task, alpha.n());
    let kernel = match table.as_ref() {
        Some(table) => TaskKernel::new(task, table),
        None => TaskKernel::closed_form_only(task),
    };
    let mut memo = SolvabilityMemo::new();
    shard_impl(
        model,
        &kernel,
        alpha,
        t_max,
        0,
        0,
        1,
        Some(faults),
        arena,
        &mut memo,
    )
}

/// Builds the dense output table only when `task` has no closed-form
/// verdict (probed on one partition — the trait contract makes
/// `solves_partition` uniformly `Some`/`None` per `(task, n)`). The probe
/// uses the all-one-class partition, so it panics exactly where
/// `output_complex(n)` would on an undefined `n`.
pub fn fallback_table<T: Task + ?Sized>(task: &T, n: usize) -> Option<FacetTable> {
    if task.solves_partition(&vec![0u8; n]).is_some() {
        None
    } else {
        Some(build_output_table(task, n))
    }
}

/// The sharded form of [`solved_counts`]: processes the contiguous range
/// `[lo, hi)` of depth-`shard_depth` tree prefixes (tree order), tallying
/// a node iff this shard owns the node's leftmost prefix. Summing the
/// returned vectors over a partition of `[0, 2^{k·shard_depth})` yields
/// exactly the serial [`solved_counts`].
///
/// `shard_depth = 0, [lo, hi) = [0, 1)` is the whole tree. Workers pass
/// their own `arena` and `memo` (interning is content-addressed, so
/// per-worker arenas reproduce the serial verdicts bit-for-bit).
///
/// # Panics
///
/// Panics if `shard_depth > t_max`, `hi > 2^{k·shard_depth}`, `k·t_max >
/// 62`, or on a model/assignment node mismatch.
#[allow(clippy::too_many_arguments)]
pub fn solved_counts_shard<T: Task + ?Sized>(
    model: &Model,
    kernel: &TaskKernel<'_, T>,
    alpha: &Assignment,
    t_max: usize,
    shard_depth: usize,
    lo: u64,
    hi: u64,
    arena: &mut KnowledgeArena,
    memo: &mut SolvabilityMemo,
) -> Vec<u64> {
    shard_impl(
        model,
        kernel,
        alpha,
        t_max,
        shard_depth,
        lo,
        hi,
        None,
        arena,
        memo,
    )
}

/// The shared traversal body of [`solved_counts_shard`] and
/// [`solved_counts_faulted`]: `faults = None` is the fault-free walk,
/// `Some(schedule)` steps every round through
/// [`RoundStepper::step_faulted`] with the schedule's silence at that
/// depth (tree depth *is* the 1-based round number).
#[allow(clippy::too_many_arguments)]
fn shard_impl<T: Task + ?Sized>(
    model: &Model,
    kernel: &TaskKernel<'_, T>,
    alpha: &Assignment,
    t_max: usize,
    shard_depth: usize,
    lo: u64,
    hi: u64,
    faults: Option<&FaultSchedule>,
    arena: &mut KnowledgeArena,
    memo: &mut SolvabilityMemo,
) -> Vec<u64> {
    let k = alpha.k();
    let n = alpha.n();
    assert!(shard_depth <= t_max, "shard depth beyond the tree");
    assert!(k * t_max <= 62, "2^(k*t) enumeration too large");
    assert!(
        hi <= 1u64 << (k * shard_depth),
        "prefix range out of bounds"
    );
    if let Some(p) = model.ports() {
        assert_eq!(p.n(), n, "model/assignment node mismatch");
    }
    let counts = vec![0u64; t_max];
    if t_max == 0 || lo >= hi {
        return counts;
    }
    let mut walker = TreeWalker {
        stepper: RoundStepper::new(model, n),
        memo,
        kernel,
        alpha,
        k,
        t_max,
        faults,
        counts,
    };
    // levels[d] holds the knowledge-id vector of the current depth-d node.
    let mut levels: Vec<Vec<KnowledgeId>> = (0..=t_max).map(|_| Vec::with_capacity(n)).collect();
    levels[0] = (0..n).map(|_| arena.initial(None)).collect();
    let digit_mask = (1u64 << k) - 1;
    for prefix in lo..hi {
        // Re-derive the path root → prefix node (rounds 1..=shard_depth).
        let mut solved_at = None;
        for r in 1..=shard_depth {
            let digit = prefix >> ((shard_depth - r) * k) & digit_mask;
            let (before, after) = levels.split_at_mut(r);
            walker.advance(
                arena,
                &before[r - 1],
                r,
                |i| digit >> alpha.source_of(i) & 1 == 1,
                &mut after[0],
            );
            // This shard owns the depth-r ancestor iff `prefix` is its
            // leftmost (all-zero-suffix) prefix.
            let owned = prefix & ((1u64 << ((shard_depth - r) * k)) - 1) == 0;
            if owned && walker.memo.solves(&levels[r], kernel) {
                walker.counts[r - 1] += 1;
                if r == shard_depth {
                    solved_at = Some(r);
                }
            }
        }
        if shard_depth == 0 {
            // Whole-tree mode: the root (depth 0, all `⊥`) is not tallied
            // (the series starts at t = 1), but if it solves, monotonicity
            // covers the entire tree wholesale.
            if walker.memo.solves(&levels[0], kernel) {
                for d in 1..=t_max {
                    walker.counts[d - 1] += 1u64 << (k * d);
                }
                continue;
            }
        }
        match solved_at {
            // Monotone pruning at the shard root: every extension solves.
            Some(r) => {
                for d in r + 1..=t_max {
                    walker.counts[d - 1] += 1u64 << (k * (d - r));
                }
            }
            None if shard_depth < t_max => {
                walker.dfs(arena, shard_depth, &mut levels[shard_depth..]);
            }
            None => {}
        }
    }
    walker.counts
}

/// The DFS state shared across one shard's traversal.
struct TreeWalker<'a, T: Task + ?Sized> {
    stepper: RoundStepper,
    memo: &'a mut SolvabilityMemo,
    kernel: &'a TaskKernel<'a, T>,
    alpha: &'a Assignment,
    k: usize,
    t_max: usize,
    /// `Some` enumerates against a fixed silence pattern (tree depth is
    /// the 1-based round the schedule is consulted at).
    faults: Option<&'a FaultSchedule>,
    counts: Vec<u64>,
}

impl<T: Task + ?Sized> TreeWalker<'_, T> {
    /// One round of knowledge construction landing at 1-based `round`:
    /// the plain step when fault-free, [`RoundStepper::step_faulted`]
    /// with the schedule's silence at `round` otherwise.
    fn advance<F: Fn(usize) -> bool>(
        &mut self,
        arena: &mut KnowledgeArena,
        prev: &[KnowledgeId],
        round: usize,
        bit: F,
        out: &mut Vec<KnowledgeId>,
    ) {
        match self.faults {
            None => self.stepper.step(arena, prev, bit, out),
            Some(f) => self
                .stepper
                .step_faulted(arena, prev, bit, |m| f.is_silent(m, round), out),
        }
    }

    /// Expands the node whose knowledge vector is `levels[0]` (at `depth`,
    /// known not to solve): steps each of the `2^k` children into
    /// `levels[1]`, tallies, prunes solving subtrees, recurses otherwise.
    fn dfs(&mut self, arena: &mut KnowledgeArena, depth: usize, levels: &mut [Vec<KnowledgeId>]) {
        let (cur, rest) = levels.split_first_mut().expect("level buffers cover t_max");
        let child_depth = depth + 1;
        let alpha = self.alpha;
        for digit in 0..1u64 << self.k {
            self.advance(
                arena,
                cur,
                child_depth,
                |i| digit >> alpha.source_of(i) & 1 == 1,
                &mut rest[0],
            );
            if self.memo.solves(&rest[0], self.kernel) {
                self.counts[child_depth - 1] += 1;
                for d in child_depth + 1..=self.t_max {
                    self.counts[d - 1] += 1u64 << (self.k * (d - child_depth));
                }
            } else if child_depth < self.t_max {
                self.dfs(arena, child_depth, rest);
            }
        }
    }
}

/// Visits every leaf of the execution tree in DFS order, yielding the
/// leaf's tree index and its realization — built from the DFS path
/// itself, not from the index, so this is the ground truth that the
/// engine's traversal order equals
/// [`Realization::enumerate_consistent`]'s (asserted by property test).
///
/// Diagnostic/test surface: the counting traversal ([`solved_counts`])
/// prunes solved subtrees and never materializes realizations.
///
/// # Panics
///
/// Panics if `k·t > 62`.
pub fn visit_leaves<F>(alpha: &Assignment, t: usize, mut f: F)
where
    F: FnMut(u64, &Realization),
{
    assert!(alpha.k() * t <= 62, "2^(k*t) enumeration too large");
    let mut source_bits: Vec<Vec<bool>> = vec![Vec::with_capacity(t); alpha.k()];
    let mut next_index = 0u64;
    visit_rec(alpha, t, &mut source_bits, &mut next_index, &mut f);
}

fn visit_rec<F>(
    alpha: &Assignment,
    t: usize,
    source_bits: &mut Vec<Vec<bool>>,
    next_index: &mut u64,
    f: &mut F,
) where
    F: FnMut(u64, &Realization),
{
    let depth = source_bits[0].len();
    if depth == t {
        let strings: Vec<BitString> = (0..alpha.n())
            .map(|i| BitString::from_bits(source_bits[alpha.source_of(i)].iter().copied()))
            .collect();
        let rho = Realization::new(strings).expect("uniform length");
        f(*next_index, &rho);
        *next_index += 1;
        return;
    }
    for digit in 0..1u64 << alpha.k() {
        for (s, bits) in source_bits.iter_mut().enumerate() {
            bits.push(digit >> s & 1 == 1);
        }
        visit_rec(alpha, t, source_bits, next_index, f);
        for bits in source_bits.iter_mut() {
            bits.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvability;
    use rsbt_tasks::{KLeaderElection, LeaderElection, Task};

    #[test]
    fn leaf_order_matches_enumerate_consistent() {
        // The DFS engine visits exactly 2^{kt} leaves, in the same index
        // order as the enumerator, for every profile n ≤ 4, t ≤ 3.
        for n in 1..=4usize {
            for alpha in Assignment::iter_profiles(n) {
                for t in 0..=3usize {
                    let expected: Vec<Realization> =
                        Realization::enumerate_consistent(&alpha, t).collect();
                    let mut visited = Vec::new();
                    visit_leaves(&alpha, t, |index, rho| visited.push((index, rho.clone())));
                    assert_eq!(visited.len(), 1usize << (alpha.k() * t));
                    for (pos, (index, rho)) in visited.iter().enumerate() {
                        assert_eq!(*index, pos as u64, "{alpha} t={t}");
                        assert_eq!(rho, &expected[pos], "{alpha} t={t} leaf {pos}");
                    }
                }
            }
        }
    }

    #[test]
    fn memo_never_changes_a_verdict() {
        // The partition-signature memo (closed form + dense scan) must
        // agree with the PR 3 reference facet search on every realization,
        // in both models, even when verdicts replay from the memo in
        // arbitrary interleavings.
        for n in 1..=4usize {
            let models = [Model::Blackboard, Model::message_passing_cyclic(n)];
            for model in models {
                for task in [
                    Box::new(LeaderElection) as Box<dyn Task>,
                    Box::new(KLeaderElection::new(2.min(n))),
                ] {
                    let table = build_output_table(task.as_ref(), n);
                    let kernel = TaskKernel::new(task.as_ref(), &table);
                    let mut memo = SolvabilityMemo::new();
                    let mut arena = KnowledgeArena::new();
                    for t in 0..=2usize {
                        for rho in Realization::enumerate_all(n, t) {
                            let exec = rsbt_sim::Execution::run(&model, &rho, &mut arena);
                            let direct =
                                solvability::solves_execution_reference(&exec, task.as_ref());
                            let memoized = memo.solves(exec.knowledge_at(t), &kernel);
                            assert_eq!(direct, memoized, "{model} n={n} t={t} {rho}");
                        }
                    }
                    assert!(memo.entries() > 0);
                    // Built-ins answer in closed form; the dense scan
                    // never runs for them.
                    assert_eq!(memo.closed_form_verdicts(), memo.entries() as u64);
                    assert_eq!(memo.dense_scan_verdicts(), 0);
                    assert!(memo.memo_hits() > 0);
                }
            }
        }
    }

    /// A task with no closed form, to pin the dense-scan fallback.
    struct OpaqueLeaderElection;

    impl Task for OpaqueLeaderElection {
        fn name(&self) -> std::borrow::Cow<'static, str> {
            std::borrow::Cow::Borrowed("opaque-leader-election")
        }

        fn output_complex(&self, n: usize) -> rsbt_complex::Complex<u64> {
            LeaderElection.output_complex(n)
        }
    }

    #[test]
    fn fallback_table_built_only_without_closed_form() {
        // Built-ins answer in closed form → no table, no output-complex
        // materialization anywhere on the engine path.
        assert!(fallback_table(&LeaderElection, 4).is_none());
        assert!(fallback_table(&KLeaderElection::new(2), 4).is_none());
        // Tasks without a closed form get the dense table.
        assert!(fallback_table(&OpaqueLeaderElection, 4).is_some());
    }

    #[test]
    fn dense_scan_fallback_matches_closed_form() {
        // The same output complex through solves_partition (LeaderElection)
        // and through the dense fallback (OpaqueLeaderElection) must tally
        // identically, and the opaque task must actually hit the scan.
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let counts_closed = solved_counts(
            &Model::Blackboard,
            &LeaderElection,
            &alpha,
            3,
            &mut KnowledgeArena::new(),
        );
        let table = build_output_table(&OpaqueLeaderElection, alpha.n());
        let kernel = TaskKernel::new(&OpaqueLeaderElection, &table);
        let mut memo = SolvabilityMemo::new();
        let counts_scanned = solved_counts_shard(
            &Model::Blackboard,
            &kernel,
            &alpha,
            3,
            0,
            0,
            1,
            &mut KnowledgeArena::new(),
            &mut memo,
        );
        assert_eq!(counts_closed, counts_scanned);
        assert!(memo.dense_scan_verdicts() > 0);
        assert_eq!(memo.closed_form_verdicts(), 0);
    }

    #[test]
    fn shards_sum_to_the_serial_traversal() {
        // Any contiguous partition of the depth-D prefixes reproduces the
        // serial per-depth tallies exactly.
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let task = LeaderElection;
        let t_max = 3;
        for model in [Model::Blackboard, Model::message_passing_cyclic(3)] {
            let mut arena = KnowledgeArena::new();
            let serial = solved_counts(&model, &task, &alpha, t_max, &mut arena);
            let table = build_output_table(&task, alpha.n());
            let kernel = TaskKernel::new(&task, &table);
            for shard_depth in [1usize, 2] {
                let total = 1u64 << (alpha.k() * shard_depth);
                let cut_sets = [
                    vec![0, total],
                    vec![0, 1, total],
                    vec![0, total / 2, total / 2 + 1, total],
                ];
                for cuts in cut_sets {
                    let mut summed = vec![0u64; t_max];
                    for w in cuts.windows(2) {
                        let mut arena = KnowledgeArena::new();
                        let mut memo = SolvabilityMemo::new();
                        let part = solved_counts_shard(
                            &model,
                            &kernel,
                            &alpha,
                            t_max,
                            shard_depth,
                            w[0],
                            w[1],
                            &mut arena,
                            &mut memo,
                        );
                        for (acc, c) in summed.iter_mut().zip(&part) {
                            *acc += c;
                        }
                    }
                    assert_eq!(summed, serial, "{model} depth={shard_depth} cuts={cuts:?}");
                }
            }
        }
    }

    #[test]
    fn faulted_engine_matches_leaf_by_leaf_reference() {
        // The pruning traversal under a fixed schedule must tally exactly
        // what a leaf-by-leaf faulted re-simulation counts (pinning that
        // monotone pruning stays sound under faults: partitions still
        // only refine, because every round node embeds the node's own
        // previous knowledge — silent or not).
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let t_max = 3;
        let mut sched = FaultSchedule::empty(3, t_max);
        sched.set_omission(0, 2);
        sched.set_crash(2, 2);
        for model in [Model::Blackboard, Model::message_passing_cyclic(3)] {
            let counts = solved_counts_faulted(
                &model,
                &LeaderElection,
                &alpha,
                t_max,
                &sched,
                &mut KnowledgeArena::new(),
            );
            let kernel = TaskKernel::closed_form_only(&LeaderElection);
            let mut memo = SolvabilityMemo::new();
            let mut arena = KnowledgeArena::new();
            for t in 1..=t_max {
                let mut solved = 0u64;
                for rho in Realization::enumerate_consistent(&alpha, t) {
                    let exec =
                        rsbt_sim::Execution::run_with_faults(&model, &rho, &sched, &mut arena);
                    if memo.solves(exec.knowledge_at(t), &kernel) {
                        solved += 1;
                    }
                }
                assert_eq!(counts[t - 1], solved, "{model} t={t}");
            }
        }
    }

    #[test]
    fn root_solving_covers_the_whole_tree() {
        // A single node solves leader election at time 0 already, so every
        // depth must tally full.
        let alpha = Assignment::private(1);
        let mut arena = KnowledgeArena::new();
        let counts = solved_counts(&Model::Blackboard, &LeaderElection, &alpha, 4, &mut arena);
        assert_eq!(counts, vec![2, 4, 8, 16]);
    }

    #[test]
    fn u64_tallies_survive_the_62_bit_edge() {
        // k = 1, t = 62 sits exactly on this engine's k·t ≤ 62 wall: the
        // root-solving fill exercises `1u64 << (k·d)` at d = 62 — the
        // largest shift the assert admits — and the top count must be
        // exactly 2^62, not a wrapped residue. (The quotient engine's
        // 126-bit twin lives in `engine_dp`.)
        let alpha = Assignment::private(1);
        let mut arena = KnowledgeArena::new();
        let counts = solved_counts(&Model::Blackboard, &LeaderElection, &alpha, 62, &mut arena);
        assert_eq!(counts[0], 2);
        assert_eq!(counts[61], 1u64 << 62);
    }

    #[test]
    fn labels_entry_point_shares_the_memo() {
        // `solves_labels` must agree with `solves` on every realization's
        // partition and share the same memo entries (no double-computes).
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let task = LeaderElection;
        let kernel = TaskKernel::closed_form_only(&task);
        let mut via_ids = SolvabilityMemo::new();
        let mut via_labels = SolvabilityMemo::new();
        let mut arena = KnowledgeArena::new();
        for t in 0..=2usize {
            for rho in Realization::enumerate_consistent(&alpha, t) {
                let exec = rsbt_sim::Execution::run(&Model::Blackboard, &rho, &mut arena);
                let ids = exec.knowledge_at(t);
                let expected = via_ids.solves(ids, &kernel);
                // Canonicalize by hand, then ask the labels entry point.
                let mut labels = Vec::new();
                let mut seen: Vec<KnowledgeId> = Vec::new();
                for &id in ids {
                    match seen.iter().position(|&s| s == id) {
                        Some(c) => labels.push(c as u8),
                        None => {
                            labels.push(seen.len() as u8);
                            seen.push(id);
                        }
                    }
                }
                assert_eq!(
                    via_labels.solves_labels(&labels, &kernel),
                    expected,
                    "{rho}"
                );
            }
        }
        assert_eq!(via_ids.entries(), via_labels.entries());
        assert!(via_labels.memo_hits() > 0);
    }

    #[test]
    #[should_panic(expected = "labels not in first-occurrence form")]
    fn non_canonical_labels_rejected() {
        let mut memo = SolvabilityMemo::new();
        let kernel = TaskKernel::closed_form_only(&LeaderElection);
        // Class 1 appears before class 0 — not first-occurrence canonical.
        memo.solves_labels(&[1, 0], &kernel);
    }
}
