//! Property-based tests for the framework: solvability equivalences,
//! monotonicity, probability laws.

use proptest::prelude::*;
use rsbt_core::{consistency, evolution, probability, solvability};
use rsbt_random::{Assignment, BitString, Realization};
use rsbt_sim::{KnowledgeArena, Model, PortNumbering};
use rsbt_tasks::{KLeaderElection, LeaderElection, WeakSymmetryBreaking};

fn arb_realization(n: usize, t: usize) -> impl Strategy<Value = Realization> {
    proptest::collection::vec(any::<u64>(), n).prop_map(move |words| {
        Realization::new(
            words
                .into_iter()
                .map(|w| BitString::from_word(w, t))
                .collect(),
        )
        .expect("uniform length")
    })
}

fn arb_model(n: usize) -> impl Strategy<Value = Model> {
    prop_oneof![
        Just(Model::Blackboard),
        Just(Model::message_passing_cyclic(n)),
        any::<u64>().prop_map(move |seed| {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            Model::MessagePassing(PortNumbering::random(n, &mut rng))
        }),
    ]
}

proptest! {
    // Fixed RNG configuration so tier-1 is deterministic in CI: the
    // vendored proptest derives each property's stream from this seed
    // and the test's module path, with no persistence files.
    #![proptest_config(ProptestConfig {
        cases: 64,
        rng_seed: 0x5253_4254, // "RSBT"
        ..ProptestConfig::default()
    })]
    /// Lemma 3.5 on random instances: the fast path, the Definition 3.4
    /// search, and the Definition 3.1 search agree.
    #[test]
    fn solvability_definitions_agree(rho in arb_realization(3, 2), model in arb_model(3)) {
        let mut arena = KnowledgeArena::new();
        for k in 1..=3usize {
            let task = KLeaderElection::new(k);
            let fast = solvability::solves(&model, &rho, &task, &mut arena);
            let proj = solvability::solves_via_projection(&model, &rho, &task, &mut arena);
            let d31 = solvability::solves_via_definition_3_1(&model, &rho, &task, &mut arena);
            prop_assert_eq!(fast, proj, "k={} {}", k, &rho);
            prop_assert_eq!(fast, d31, "k={} {}", k, &rho);
        }
    }

    /// Monotonicity: a solving realization keeps solving under every
    /// one-round extension (Section 3.2).
    #[test]
    fn solving_is_monotone(rho in arb_realization(3, 2), model in arb_model(3)) {
        let mut arena = KnowledgeArena::new();
        if solvability::solves(&model, &rho, &LeaderElection, &mut arena) {
            for succ in evolution::one_round_successors(&rho) {
                prop_assert!(solvability::solves(&model, &succ, &LeaderElection, &mut arena));
            }
        }
    }

    /// WSB is implied by LE on every realization (the reduction direction
    /// of task hierarchies), for n ≥ 2.
    #[test]
    fn le_implies_wsb(rho in arb_realization(4, 2), model in arb_model(4)) {
        let mut arena = KnowledgeArena::new();
        if solvability::solves(&model, &rho, &LeaderElection, &mut arena) {
            prop_assert!(solvability::solves(&model, &rho, &WeakSymmetryBreaking, &mut arena));
        }
    }

    /// π̃(ρ) facets are the consistency classes: their sizes sum to n, and
    /// the complex is a disjoint union of simplices.
    #[test]
    fn pi_tilde_shape(rho in arb_realization(4, 2), model in arb_model(4)) {
        let mut arena = KnowledgeArena::new();
        let pi = consistency::pi_tilde(&model, &rho, &mut arena);
        let total: usize = pi.facets().map(|f| f.len()).sum();
        prop_assert_eq!(total, 4);
        let comps = rsbt_complex::connectivity::components(&pi).len();
        prop_assert_eq!(comps, pi.facet_count());
    }

    /// Exact success probability lies in [0,1] and is monotone in t.
    #[test]
    fn probability_laws(sizes_idx in 0usize..5) {
        let profiles: [&[usize]; 5] = [&[1, 1], &[1, 2], &[2, 2], &[1, 1, 1], &[3]];
        let alpha = Assignment::from_group_sizes(profiles[sizes_idx]).unwrap();
        let series = probability::exact_series(&Model::Blackboard, &LeaderElection, &alpha, 4);
        for w in series.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
        for p in series {
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    /// Message-passing never solves less than... precisely: blackboard
    /// solvability of a realization implies message-passing solvability of
    /// the same realization for ANY ports (ports only refine knowledge).
    #[test]
    fn ports_only_help(rho in arb_realization(4, 2), model in arb_model(4)) {
        let mut arena = KnowledgeArena::new();
        if solvability::solves(&Model::Blackboard, &rho, &LeaderElection, &mut arena) {
            prop_assert!(
                solvability::solves(&model, &rho, &LeaderElection, &mut arena),
                "{} must stay solvable under {}", &rho, &model
            );
        }
    }

    /// StreamRng streams of one family are pairwise decorrelated: any two
    /// distinct stream indices produce word sequences that disagree on
    /// (essentially) every draw, and equal keys replay bit-for-bit.
    #[test]
    fn stream_rng_pairwise_decorrelation_smoke(
        seed in any::<u64>(),
        a in 0u64..1024,
        offset in 1u64..1024,
    ) {
        use rand::rngs::StreamRng;
        use rand::RngCore;
        let b = a + offset;
        let mut sa = StreamRng::new(seed, a);
        let mut sb = StreamRng::new(seed, b);
        let wa: Vec<u64> = (0..32).map(|_| sa.next_u64()).collect();
        let wb: Vec<u64> = (0..32).map(|_| sb.next_u64()).collect();
        prop_assert_ne!(&wa, &wb, "streams {} and {} coincide", a, b);
        // No more than a couple of coincidental word collisions in 32
        // draws (expected count ~ 32/2^64 ≈ 0).
        let equal = wa.iter().zip(&wb).filter(|(x, y)| x == y).count();
        prop_assert!(equal <= 2, "streams {} and {} share {}/32 words", a, b, equal);
        // Replays are bit-identical.
        let mut again = StreamRng::new(seed, a);
        let replay: Vec<u64> = (0..32).map(|_| again.next_u64()).collect();
        prop_assert_eq!(wa, replay);
    }

    /// The deterministic parallel estimator is bit-identical for every
    /// thread count AND to an independently-written serial loop in stream
    /// order whose verdicts come from the pre-kernel reference path — so
    /// the property pins the sharding, the stream keying, and the kernel
    /// verdicts at once.
    #[test]
    fn monte_carlo_parallel_thread_invariance(
        seed in any::<u64>(),
        sizes_idx in 0usize..4,
        t in 1usize..5,
    ) {
        use rand::rngs::StreamRng;
        let profiles: [&[usize]; 4] = [&[1, 1], &[1, 2], &[2, 2], &[1, 1, 2]];
        let alpha = Assignment::from_group_sizes(profiles[sizes_idx]).unwrap();
        let samples = 400usize;
        // Independent serial ground truth: sample i from stream i, decide
        // with the reference solvability path.
        let mut arena = KnowledgeArena::new();
        let mut cache = rsbt_core::output_cache::OutputComplexCache::new();
        let mut solved = 0u64;
        for i in 0..samples {
            let mut rng = StreamRng::new(seed, i as u64);
            let rho = Realization::sample(&alpha, t, &mut rng);
            if solvability::solves_with_cache(
                &Model::Blackboard, &rho, &LeaderElection, &mut arena, &mut cache,
            ) {
                solved += 1;
            }
        }
        for threads in [1usize, 2, 3, 4, 8] {
            let est = probability::monte_carlo_parallel(
                &Model::Blackboard, &LeaderElection, &alpha, t, samples, seed, threads,
            );
            prop_assert_eq!(est.solved, solved, "threads={}", threads);
            prop_assert_eq!(est.samples, samples);
        }
    }

    /// A rate-zero fault spec is bit-identical to the fault-free kernels
    /// — scalar, bit-sliced, and bit-sliced series — for any thread
    /// count. The fault plumbing constructs no RNG at rate zero and the
    /// faulted steppers intern/track exactly the fault-free relation, so
    /// this is structural, not coincidental; the property pins it for
    /// random seeds, profiles, and horizons.
    #[test]
    fn rate_zero_faults_are_bit_identical_to_fault_free(
        seed in any::<u64>(),
        sizes_idx in 0usize..4,
        t in 1usize..5,
    ) {
        let profiles: [&[usize]; 4] = [&[1, 1], &[1, 2], &[2, 2], &[1, 1, 2]];
        let alpha = Assignment::from_group_sizes(profiles[sizes_idx]).unwrap();
        let spec = rsbt_sim::FaultSpec::none();
        let samples = 192usize;
        for model in [Model::Blackboard, Model::message_passing_cyclic(alpha.n())] {
            let plain = probability::monte_carlo_parallel(
                &model, &LeaderElection, &alpha, t, samples, seed, 1,
            );
            let sliced = probability::monte_carlo_bitsliced(
                &model, &LeaderElection, &alpha, t, samples, seed, 1,
            );
            let series = probability::monte_carlo_bitsliced_series(
                &model, &LeaderElection, &alpha, t, samples, seed, 1,
            );
            for threads in [1usize, 2, 3, 8] {
                prop_assert_eq!(
                    probability::monte_carlo_parallel_faulted(
                        &model, &LeaderElection, &alpha, t, samples, seed, threads, &spec,
                    ),
                    plain,
                    "scalar threads={}", threads
                );
                prop_assert_eq!(
                    probability::monte_carlo_bitsliced_faulted(
                        &model, &LeaderElection, &alpha, t, samples, seed, threads, &spec,
                    ),
                    sliced,
                    "bitsliced threads={}", threads
                );
                prop_assert_eq!(
                    probability::monte_carlo_bitsliced_series_faulted(
                        &model, &LeaderElection, &alpha, t, samples, seed, threads, &spec,
                    ),
                    series.clone(),
                    "series threads={}", threads
                );
            }
        }
    }

    /// The faulted estimators are thread-count invariant at nonzero rates
    /// too: per-sample schedules come from the salted per-sample
    /// substream, never from worker-local state.
    #[test]
    fn faulted_monte_carlo_is_thread_count_invariant(
        seed in any::<u64>(),
        sizes_idx in 0usize..4,
        t in 1usize..5,
    ) {
        let profiles: [&[usize]; 4] = [&[1, 1], &[1, 2], &[2, 2], &[1, 1, 2]];
        let alpha = Assignment::from_group_sizes(profiles[sizes_idx]).unwrap();
        let spec = rsbt_sim::FaultSpec::rates(0.1, 0.2);
        let samples = 192usize;
        let reference = probability::monte_carlo_parallel_faulted(
            &Model::Blackboard, &LeaderElection, &alpha, t, samples, seed, 1, &spec,
        );
        for threads in [2usize, 3, 8] {
            prop_assert_eq!(
                probability::monte_carlo_parallel_faulted(
                    &Model::Blackboard, &LeaderElection, &alpha, t, samples, seed, threads, &spec,
                ),
                reference,
                "threads={}", threads
            );
        }
        prop_assert_eq!(
            probability::monte_carlo_bitsliced_faulted(
                &Model::Blackboard, &LeaderElection, &alpha, t, samples, seed, 4, &spec,
            ),
            reference,
            "bitsliced"
        );
    }

    /// Wilson intervals bracket the sample mean, stay inside [0, 1], and
    /// widen monotonically in z.
    #[test]
    fn wilson_interval_laws(solved in 0u64..=500, extra in 0u64..500, z_idx in 0usize..3) {
        let samples = solved + extra + 1;
        let z = [1.0, 1.959_963_984_540_054, 4.0][z_idx];
        let (lo, hi) = probability::wilson_interval(solved, samples, z);
        let p = solved as f64 / samples as f64;
        prop_assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        prop_assert!(lo <= p && p <= hi, "[{}, {}] must contain {}", lo, hi, p);
        let (lo_wide, hi_wide) = probability::wilson_interval(solved, samples, z + 0.5);
        prop_assert!(lo_wide <= lo && hi <= hi_wide, "interval must widen in z");
        // Never degenerate: positive width even at the extremes.
        prop_assert!(hi > lo, "Wilson interval must have positive width");
    }
}

/// The acceptance-criterion regime of the `exp_perf_enum` benchmark,
/// replayed under tier-1: a `k·t = 16` series point where the engine's
/// one-pass traversal must reproduce the pre-engine leaf-by-leaf
/// reference bit for bit (2^16 realizations, 8 rounds each on the old
/// path).
#[test]
fn engine_matches_reference_at_sixteen_bits() {
    let alpha = Assignment::from_group_sizes(&[1, 3]).unwrap();
    let reference = probability::exact_series_reference(
        &Model::Blackboard,
        &LeaderElection,
        &alpha,
        8,
        &mut KnowledgeArena::new(),
    );
    let engine = probability::exact_series(&Model::Blackboard, &LeaderElection, &alpha, 8);
    assert_eq!(engine.len(), reference.len());
    for (i, (p, q)) in engine.iter().zip(&reference).enumerate() {
        assert_eq!(p.to_bits(), q.to_bits(), "t={}", i + 1);
    }
}
