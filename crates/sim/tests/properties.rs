//! Property-based tests for the execution engine.

use proptest::prelude::*;
use rsbt_random::{Assignment, BitString, Realization};
use rsbt_sim::{Execution, KnowledgeArena, Model, PortNumbering};

fn arb_realization(n: usize, t: usize) -> impl Strategy<Value = Realization> {
    proptest::collection::vec(any::<u64>(), n).prop_map(move |words| {
        Realization::new(
            words
                .into_iter()
                .map(|w| BitString::from_word(w, t))
                .collect(),
        )
        .expect("uniform length")
    })
}

fn arb_ports(n: usize) -> impl Strategy<Value = PortNumbering> {
    any::<u64>().prop_map(move |seed| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        PortNumbering::random(n, &mut rng)
    })
}

proptest! {
    // Fixed RNG configuration so tier-1 is deterministic in CI: the
    // vendored proptest derives each property's stream from this seed
    // and the test's module path, with no persistence files.
    #![proptest_config(ProptestConfig {
        cases: 64,
        rng_seed: 0x5253_4254, // "RSBT"
        ..ProptestConfig::default()
    })]
    /// Consistency classes always partition [n], and refine over time.
    #[test]
    fn classes_partition_and_refine(rho in arb_realization(4, 4)) {
        let mut arena = KnowledgeArena::new();
        let exec = Execution::run(&Model::Blackboard, &rho, &mut arena);
        let mut prev = 1usize;
        for t in 0..=4 {
            let classes = exec.consistency_partition(t);
            let total: usize = classes.iter().map(Vec::len).sum();
            prop_assert_eq!(total, 4);
            prop_assert!(classes.len() >= prev, "classes only split");
            prev = classes.len();
        }
    }

    /// In the blackboard model, knowledge equality is equivalent to
    /// equality of received randomness (the paper's observation in the
    /// proof of Theorem 4.1).
    #[test]
    fn blackboard_knowledge_iff_randomness(rho in arb_realization(4, 3)) {
        let mut arena = KnowledgeArena::new();
        let exec = Execution::run(&Model::Blackboard, &rho, &mut arena);
        for t in 0..=3 {
            for i in 0..4 {
                for j in 0..4 {
                    let same_k = exec.knowledge(t, i) == exec.knowledge(t, j);
                    let same_x = rho.node(i).prefix(t) == rho.node(j).prefix(t);
                    prop_assert_eq!(same_k, same_x, "t={} i={} j={}", t, i, j);
                }
            }
        }
    }

    /// Message-passing consistency implies equal randomness (but not
    /// conversely): ports can only distinguish more, never less.
    #[test]
    fn ports_refine_blackboard(rho in arb_realization(4, 3), ports in arb_ports(4)) {
        let mut arena = KnowledgeArena::new();
        let mp = Execution::run(&Model::MessagePassing(ports), &rho, &mut arena);
        for t in 0..=3 {
            for class in mp.consistency_partition(t) {
                for w in class.windows(2) {
                    prop_assert_eq!(
                        rho.node(w[0]).prefix(t),
                        rho.node(w[1]).prefix(t),
                        "consistent nodes share randomness"
                    );
                }
            }
        }
    }

    /// Determinism: two executions of the same realization in different
    /// arenas yield the same consistency structure.
    #[test]
    fn execution_deterministic(rho in arb_realization(3, 4)) {
        let mut a1 = KnowledgeArena::new();
        let mut a2 = KnowledgeArena::new();
        let e1 = Execution::run(&Model::Blackboard, &rho, &mut a1);
        let e2 = Execution::run(&Model::Blackboard, &rho, &mut a2);
        for t in 0..=4 {
            prop_assert_eq!(e1.consistency_partition(t), e2.consistency_partition(t));
        }
    }

    /// The randomness embedded in final knowledge matches the realization
    /// (the content of the h map), in both models.
    #[test]
    fn h_extraction(rho in arb_realization(3, 3), ports in arb_ports(3)) {
        for model in [Model::Blackboard, Model::MessagePassing(ports)] {
            let mut arena = KnowledgeArena::new();
            let exec = Execution::run(&model, &rho, &mut arena);
            for i in 0..3 {
                let bits = arena.randomness(exec.knowledge(3, i));
                let expect: Vec<bool> = rho.node(i).iter().collect();
                prop_assert_eq!(&bits, &expect);
            }
        }
    }

    /// The Lemma 4.3 adversarial numbering keeps class sizes divisible by
    /// g for block-aligned assignments, for arbitrary realizations drawn
    /// from the assignment's support.
    #[test]
    fn adversarial_divisibility(seed in any::<u64>(), t in 1usize..5) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for (sizes, g) in [(vec![2usize, 2], 2usize), (vec![3, 3], 3), (vec![2, 4], 2)] {
            let n: usize = sizes.iter().sum();
            let alpha = Assignment::from_group_sizes(&sizes).unwrap();
            let rho = Realization::sample(&alpha, t, &mut rng);
            let model = Model::MessagePassing(PortNumbering::adversarial(n, g));
            let mut arena = KnowledgeArena::new();
            let exec = Execution::run(&model, &rho, &mut arena);
            for size in exec.class_sizes(t) {
                prop_assert_eq!(size % g, 0, "sizes {:?} t {}", sizes, t);
            }
        }
    }

    /// Random port numberings are always valid.
    #[test]
    fn random_ports_valid(ports in arb_ports(6)) {
        prop_assert!(ports.validate().is_ok());
        for i in 0..6 {
            for j in 1..6 {
                let tgt = ports.neighbor(i, j);
                prop_assert_eq!(ports.port_towards(i, tgt), j);
            }
        }
    }
}
