//! Property-based tests for the execution engine.

use proptest::prelude::*;
use rsbt_random::{Assignment, BitString, Realization};
use rsbt_sim::{Execution, KnowledgeArena, Model, PortNumbering};

fn arb_realization(n: usize, t: usize) -> impl Strategy<Value = Realization> {
    proptest::collection::vec(any::<u64>(), n).prop_map(move |words| {
        Realization::new(
            words
                .into_iter()
                .map(|w| BitString::from_word(w, t))
                .collect(),
        )
        .expect("uniform length")
    })
}

fn arb_ports(n: usize) -> impl Strategy<Value = PortNumbering> {
    any::<u64>().prop_map(move |seed| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        PortNumbering::random(n, &mut rng)
    })
}

proptest! {
    // Fixed RNG configuration so tier-1 is deterministic in CI: the
    // vendored proptest derives each property's stream from this seed
    // and the test's module path, with no persistence files.
    #![proptest_config(ProptestConfig {
        cases: 64,
        rng_seed: 0x5253_4254, // "RSBT"
        ..ProptestConfig::default()
    })]
    /// Consistency classes always partition [n], and refine over time.
    #[test]
    fn classes_partition_and_refine(rho in arb_realization(4, 4)) {
        let mut arena = KnowledgeArena::new();
        let exec = Execution::run(&Model::Blackboard, &rho, &mut arena);
        let mut prev = 1usize;
        for t in 0..=4 {
            let classes = exec.consistency_partition(t);
            let total: usize = classes.iter().map(Vec::len).sum();
            prop_assert_eq!(total, 4);
            prop_assert!(classes.len() >= prev, "classes only split");
            prev = classes.len();
        }
    }

    /// In the blackboard model, knowledge equality is equivalent to
    /// equality of received randomness (the paper's observation in the
    /// proof of Theorem 4.1).
    #[test]
    fn blackboard_knowledge_iff_randomness(rho in arb_realization(4, 3)) {
        let mut arena = KnowledgeArena::new();
        let exec = Execution::run(&Model::Blackboard, &rho, &mut arena);
        for t in 0..=3 {
            for i in 0..4 {
                for j in 0..4 {
                    let same_k = exec.knowledge(t, i) == exec.knowledge(t, j);
                    let same_x = rho.node(i).prefix(t) == rho.node(j).prefix(t);
                    prop_assert_eq!(same_k, same_x, "t={} i={} j={}", t, i, j);
                }
            }
        }
    }

    /// Message-passing consistency implies equal randomness (but not
    /// conversely): ports can only distinguish more, never less.
    #[test]
    fn ports_refine_blackboard(rho in arb_realization(4, 3), ports in arb_ports(4)) {
        let mut arena = KnowledgeArena::new();
        let mp = Execution::run(&Model::MessagePassing(ports), &rho, &mut arena);
        for t in 0..=3 {
            for class in mp.consistency_partition(t) {
                for w in class.windows(2) {
                    prop_assert_eq!(
                        rho.node(w[0]).prefix(t),
                        rho.node(w[1]).prefix(t),
                        "consistent nodes share randomness"
                    );
                }
            }
        }
    }

    /// Determinism: two executions of the same realization in different
    /// arenas yield the same consistency structure.
    #[test]
    fn execution_deterministic(rho in arb_realization(3, 4)) {
        let mut a1 = KnowledgeArena::new();
        let mut a2 = KnowledgeArena::new();
        let e1 = Execution::run(&Model::Blackboard, &rho, &mut a1);
        let e2 = Execution::run(&Model::Blackboard, &rho, &mut a2);
        for t in 0..=4 {
            prop_assert_eq!(e1.consistency_partition(t), e2.consistency_partition(t));
        }
    }

    /// The randomness embedded in final knowledge matches the realization
    /// (the content of the h map), in both models.
    #[test]
    fn h_extraction(rho in arb_realization(3, 3), ports in arb_ports(3)) {
        for model in [Model::Blackboard, Model::MessagePassing(ports)] {
            let mut arena = KnowledgeArena::new();
            let exec = Execution::run(&model, &rho, &mut arena);
            for i in 0..3 {
                let bits = arena.randomness(exec.knowledge(3, i));
                let expect: Vec<bool> = rho.node(i).iter().collect();
                prop_assert_eq!(&bits, &expect);
            }
        }
    }

    /// The Lemma 4.3 adversarial numbering keeps class sizes divisible by
    /// g for block-aligned assignments, for arbitrary realizations drawn
    /// from the assignment's support.
    #[test]
    fn adversarial_divisibility(seed in any::<u64>(), t in 1usize..5) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for (sizes, g) in [(vec![2usize, 2], 2usize), (vec![3, 3], 3), (vec![2, 4], 2)] {
            let n: usize = sizes.iter().sum();
            let alpha = Assignment::from_group_sizes(&sizes).unwrap();
            let rho = Realization::sample(&alpha, t, &mut rng);
            let model = Model::MessagePassing(PortNumbering::adversarial(n, g));
            let mut arena = KnowledgeArena::new();
            let exec = Execution::run(&model, &rho, &mut arena);
            for size in exec.class_sizes(t) {
                prop_assert_eq!(size % g, 0, "sizes {:?} t {}", sizes, t);
            }
        }
    }

    /// Random port numberings are always valid.
    #[test]
    fn random_ports_valid(ports in arb_ports(6)) {
        prop_assert!(ports.validate().is_ok());
        for i in 0..6 {
            for j in 1..6 {
                let tgt = ports.neighbor(i, j);
                prop_assert_eq!(ports.port_towards(i, tgt), j);
            }
        }
    }

    /// The faulted lane stepper tracks exactly 64 scalar faulted
    /// executions per word — for random seeds, fault rates, and both
    /// models. Lane `l` pairs sample stream `l`'s source draws with the
    /// schedule compiled from the salted fault substream at the same
    /// index, mirroring the bit-sliced Monte-Carlo kernel's discipline.
    #[test]
    fn faulted_lanes_match_scalar_faulted_executions(
        seed in any::<u64>(),
        rate_idx in 0usize..4,
        model_idx in 0usize..2,
    ) {
        use rand::rngs::StreamRng;
        use rand::RngCore;
        use rsbt_sim::lanes::pair_index;
        use rsbt_sim::{FaultSpec, LaneStepper};
        let (crash, omission) = [(0.0, 0.0), (0.15, 0.0), (0.0, 0.25), (0.15, 0.2)][rate_idx];
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let (n, t) = (3usize, 4usize);
        let model = [Model::Blackboard, Model::message_passing_cyclic(3)][model_idx].clone();
        let spec = FaultSpec::rates(crash, omission);
        let schedules: Vec<_> = (0..64u64).map(|l| spec.schedule(n, t, seed, l)).collect();
        let draws: Vec<Vec<u64>> = (0..64u64)
            .map(|l| {
                let mut rng = StreamRng::new(seed, l);
                (0..alpha.k()).map(|_| rng.next_u64()).collect()
            })
            .collect();
        let mut arena = KnowledgeArena::new();
        let execs: Vec<Execution> = (0..64usize)
            .map(|l| {
                let strings: Vec<BitString> = (0..n)
                    .map(|i| BitString::from_word(draws[l][alpha.source_of(i)], t))
                    .collect();
                let rho = Realization::new(strings).expect("uniform length");
                Execution::run_with_faults(&model, &rho, &schedules[l], &mut arena)
            })
            .collect();
        let mut stepper = LaneStepper::new_faulted(&model, &alpha);
        for r in 0..t {
            stepper.step_faulted(
                |s| (0..64).fold(0u64, |w, l| w | ((draws[l][s] >> r & 1) << l)),
                |i| {
                    (0..64).fold(0u64, |w, l| {
                        w | (u64::from(schedules[l].is_silent(i, r + 1)) << l)
                    })
                },
            );
            for a in 0..n {
                for b in a + 1..n {
                    let word = stepper.eq_words()[pair_index(n, a, b)];
                    for (l, exec) in execs.iter().enumerate() {
                        let lane_eq = word >> l & 1 == 1;
                        let scalar_eq =
                            exec.knowledge(r + 1, a) == exec.knowledge(r + 1, b);
                        prop_assert_eq!(
                            lane_eq, scalar_eq,
                            "round {} pair ({}, {}) lane {}", r + 1, a, b, l
                        );
                    }
                }
            }
        }
    }
}
