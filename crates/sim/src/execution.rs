//! Full-information executions: computing `K_i(t)` from a realization.

use std::collections::BTreeMap;

use rsbt_random::Realization;

use crate::faults::FaultSchedule;
use crate::knowledge::{KnowledgeArena, KnowledgeId};
use crate::model::Model;

/// The trace of a full-information execution: every node's knowledge id at
/// every time `0 ≤ t' ≤ t`.
///
/// Because the dynamics are deterministic given the realization (and the
/// port numbering, in the message-passing model), the execution *is* the
/// facet of the protocol complex `P(t)` corresponding to the realization —
/// the content of the paper's facet isomorphism `h`.
///
/// # Example
///
/// ```
/// use rsbt_random::{Assignment, Realization};
/// use rsbt_sim::{Execution, KnowledgeArena, Model};
///
/// let alpha = Assignment::shared(3);
/// let mut rng = rand::thread_rng();
/// let rho = Realization::sample(&alpha, 4, &mut rng);
/// let mut arena = KnowledgeArena::new();
/// let exec = Execution::run(&Model::Blackboard, &rho, &mut arena);
/// // All nodes share the source: a single consistency class forever.
/// assert_eq!(exec.consistency_partition(4).len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Execution {
    /// `ids[t][i]` = `K_i(t)`.
    ids: Vec<Vec<KnowledgeId>>,
}

impl Execution {
    /// Runs the full-information dynamics of `model` on realization `rho`
    /// with input-free initial knowledge (`K_i(0) = ⊥`).
    ///
    /// # Panics
    ///
    /// Panics if `model` is message-passing with a numbering whose node
    /// count differs from the realization's.
    pub fn run(model: &Model, rho: &Realization, arena: &mut KnowledgeArena) -> Execution {
        Execution::run_with_inputs(model, rho, &vec![None; rho.n()], arena)
    }

    /// Runs the dynamics with per-node inputs `K_i(0) = v_i` (used by the
    /// Appendix C reduction for input-output tasks).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != rho.n()`, or on a node-count mismatch
    /// with the port numbering.
    pub fn run_with_inputs(
        model: &Model,
        rho: &Realization,
        inputs: &[Option<u64>],
        arena: &mut KnowledgeArena,
    ) -> Execution {
        let n = rho.n();
        assert_eq!(inputs.len(), n, "one input per node");
        let mut stepper = RoundStepper::new(model, n);
        let mut ids: Vec<Vec<KnowledgeId>> = Vec::with_capacity(rho.time() + 1);
        ids.push(inputs.iter().map(|v| arena.initial(*v)).collect());
        for t in 1..=rho.time() {
            let mut now = Vec::with_capacity(n);
            stepper.step(arena, &ids[t - 1], |i| rho.node(i).bit(t - 1), &mut now);
            ids.push(now);
        }
        Execution { ids }
    }

    /// Runs the dynamics under a fault schedule (see [`crate::faults`]):
    /// a node silent in round `t` contributes nothing to the others'
    /// round-`t` knowledge — its blackboard post is absent, its port
    /// messages become [`crate::KnowledgeNode::Hole`] — while its own
    /// knowledge keeps evolving (it still listens and still sees its own
    /// bit). With a fault-free schedule this is exactly
    /// [`Execution::run`].
    ///
    /// # Panics
    ///
    /// Panics if `faults.n() != rho.n()`, or on a node-count mismatch
    /// with the port numbering.
    pub fn run_with_faults(
        model: &Model,
        rho: &Realization,
        faults: &FaultSchedule,
        arena: &mut KnowledgeArena,
    ) -> Execution {
        let n = rho.n();
        assert_eq!(faults.n(), n, "fault schedule covers {} nodes", faults.n());
        let mut stepper = RoundStepper::new(model, n);
        let mut ids: Vec<Vec<KnowledgeId>> = Vec::with_capacity(rho.time() + 1);
        ids.push((0..n).map(|_| arena.initial(None)).collect());
        for t in 1..=rho.time() {
            let mut now = Vec::with_capacity(n);
            stepper.step_faulted(
                arena,
                &ids[t - 1],
                |i| rho.node(i).bit(t - 1),
                |i| faults.is_silent(i, t),
                &mut now,
            );
            ids.push(now);
        }
        Execution { ids }
    }

    /// The final time `t` of the execution.
    pub fn time(&self) -> usize {
        self.ids.len() - 1
    }

    /// The number of nodes.
    pub fn n(&self) -> usize {
        self.ids[0].len()
    }

    /// `K_i(t')` for node `i` at time `t'`.
    ///
    /// # Panics
    ///
    /// Panics if `t' > time()` or `i ≥ n()`.
    pub fn knowledge(&self, t: usize, i: usize) -> KnowledgeId {
        self.ids[t][i]
    }

    /// All nodes' knowledge ids at time `t'`.
    pub fn knowledge_at(&self, t: usize) -> &[KnowledgeId] {
        &self.ids[t]
    }

    /// The consistency partition at time `t'`: the equivalence classes of
    /// the paper's relation `i ∼_t j ⇔ K_i(t) = K_j(t)`, each class sorted,
    /// classes ordered by smallest member.
    ///
    /// These classes are exactly the facets of the projected complex
    /// `π̃(ρ)`.
    pub fn consistency_partition(&self, t: usize) -> Vec<Vec<usize>> {
        partition_by_id(&self.ids[t])
    }

    /// The sizes of the consistency classes at time `t'`, sorted ascending.
    pub fn class_sizes(&self, t: usize) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.consistency_partition(t).iter().map(Vec::len).collect();
        sizes.sort_unstable();
        sizes
    }

    /// Whether some node's knowledge is unique at time `t'` (a singleton
    /// consistency class — an isolated vertex of `π̃(ρ)`).
    pub fn has_singleton_class(&self, t: usize) -> bool {
        self.class_sizes(t).first() == Some(&1)
    }
}

/// Advances a full-information execution by one round from a *borrowed*
/// knowledge vector — the incremental core of [`Execution::run`] exposed
/// for enumeration engines that walk the tree of per-round source-bit
/// extensions and therefore never hold a whole `Realization`.
///
/// The stepper owns the reusable round buffers (board/port scratch), so a
/// DFS calling [`RoundStepper::step`] once per tree node performs no
/// allocation on arena hits.
///
/// # Example
///
/// ```
/// use rsbt_random::{BitString, Realization};
/// use rsbt_sim::{Execution, KnowledgeArena, Model, RoundStepper};
///
/// let model = Model::Blackboard;
/// let mut arena = KnowledgeArena::new();
/// let mut stepper = RoundStepper::new(&model, 2);
/// let t0 = vec![arena.initial(None), arena.initial(None)];
/// let mut t1 = Vec::new();
/// stepper.step(&mut arena, &t0, |i| i == 0, &mut t1); // bits (1, 0)
///
/// // Same ids as running the whole realization at once.
/// let rho = Realization::new(vec![
///     BitString::from_bits([true]),
///     BitString::from_bits([false]),
/// ]).unwrap();
/// let exec = Execution::run(&model, &rho, &mut arena);
/// assert_eq!(&t1, exec.knowledge_at(1));
/// ```
#[derive(Clone, Debug)]
pub struct RoundStepper {
    model: Model,
    /// Reusable buffer for one node's heard-this-round ids.
    scratch: Vec<KnowledgeId>,
}

impl RoundStepper {
    /// Creates a stepper for `model` on `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `model` is message-passing with a numbering whose node
    /// count differs from `n`.
    pub fn new(model: &Model, n: usize) -> RoundStepper {
        if let Model::MessagePassing(p) = model {
            assert_eq!(p.n(), n, "port numbering covers {} nodes, need {n}", p.n());
        }
        RoundStepper {
            model: model.clone(),
            scratch: Vec::with_capacity(n.saturating_sub(1)),
        }
    }

    /// Computes `K_i(t)` for every node from the time-`t − 1` vector
    /// `prev` and the per-node round bits `bit(i)`, appending the ids to
    /// `out` (cleared first). `prev` may live anywhere — a DFS stack
    /// level, an [`Execution`] row — and is not consumed.
    ///
    /// # Panics
    ///
    /// Panics if `prev.len()` differs from the stepper's node count in the
    /// message-passing model.
    pub fn step<F>(
        &mut self,
        arena: &mut KnowledgeArena,
        prev: &[KnowledgeId],
        bit: F,
        out: &mut Vec<KnowledgeId>,
    ) where
        F: Fn(usize) -> bool,
    {
        let n = prev.len();
        out.clear();
        for i in 0..n {
            self.scratch.clear();
            let id = match &self.model {
                Model::Blackboard => {
                    self.scratch
                        .extend((0..n).filter(|&j| j != i).map(|j| prev[j]));
                    arena.round_blackboard_reuse(prev[i], bit(i), &mut self.scratch)
                }
                Model::MessagePassing(ports) => {
                    self.scratch
                        .extend((1..n).map(|j| prev[ports.neighbor(i, j)]));
                    arena.round_ports_reuse(prev[i], bit(i), &mut self.scratch)
                }
            };
            out.push(id);
        }
    }

    /// [`RoundStepper::step`] under silence: node `j` with `silent(j)`
    /// true makes no transmission this round. Blackboard: its post is
    /// simply absent from every other node's board (the board shortens —
    /// silence is observable). Message passing: the receiving port slot
    /// holds the interned [`crate::KnowledgeNode::Hole`] sentinel instead
    /// of the sender's knowledge. The silent node itself still receives,
    /// and its own `prev`/`bit` enter its knowledge as usual.
    ///
    /// With `silent ≡ false` this computes exactly the same ids as
    /// [`RoundStepper::step`].
    pub fn step_faulted<F, S>(
        &mut self,
        arena: &mut KnowledgeArena,
        prev: &[KnowledgeId],
        bit: F,
        silent: S,
        out: &mut Vec<KnowledgeId>,
    ) where
        F: Fn(usize) -> bool,
        S: Fn(usize) -> bool,
    {
        let n = prev.len();
        out.clear();
        // Interned once per step; only the message-passing branch needs it.
        let mut hole: Option<KnowledgeId> = None;
        for i in 0..n {
            self.scratch.clear();
            let id = match &self.model {
                Model::Blackboard => {
                    self.scratch
                        .extend((0..n).filter(|&j| j != i && !silent(j)).map(|j| prev[j]));
                    arena.round_blackboard_reuse(prev[i], bit(i), &mut self.scratch)
                }
                Model::MessagePassing(ports) => {
                    for j in 1..n {
                        let m = ports.neighbor(i, j);
                        self.scratch.push(if silent(m) {
                            *hole.get_or_insert_with(|| arena.hole())
                        } else {
                            prev[m]
                        });
                    }
                    arena.round_ports_reuse(prev[i], bit(i), &mut self.scratch)
                }
            };
            out.push(id);
        }
    }
}

/// Groups node indices by knowledge id (order of first appearance by
/// smallest node).
pub(crate) fn partition_by_id(ids: &[KnowledgeId]) -> Vec<Vec<usize>> {
    let mut classes: BTreeMap<KnowledgeId, Vec<usize>> = BTreeMap::new();
    for (i, &id) in ids.iter().enumerate() {
        classes.entry(id).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = classes.into_values().collect();
    out.sort_by_key(|c| c[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsbt_random::{Assignment, BitString};

    fn bits(s: &str) -> BitString {
        BitString::from_bits(s.chars().map(|c| c == '1'))
    }

    fn rho(strs: &[&str]) -> Realization {
        Realization::new(strs.iter().map(|s| bits(s)).collect()).unwrap()
    }

    #[test]
    fn blackboard_same_bits_same_knowledge() {
        let mut arena = KnowledgeArena::new();
        let exec = Execution::run(&Model::Blackboard, &rho(&["0101", "0101"]), &mut arena);
        for t in 0..=4 {
            assert_eq!(exec.consistency_partition(t), vec![vec![0, 1]], "t={t}");
        }
    }

    #[test]
    fn blackboard_divergence_at_first_differing_bit() {
        let mut arena = KnowledgeArena::new();
        // Bits agree in rounds 1-2, differ in round 3.
        let exec = Execution::run(&Model::Blackboard, &rho(&["0100", "0110"]), &mut arena);
        assert_eq!(exec.consistency_partition(2).len(), 1);
        assert_eq!(exec.consistency_partition(3).len(), 2);
        assert_eq!(exec.consistency_partition(4).len(), 2);
    }

    #[test]
    fn blackboard_knowledge_equality_iff_equal_randomness() {
        // In the blackboard model the paper notes equality of knowledge is
        // equivalent to equality of received randomness.
        let mut arena = KnowledgeArena::new();
        let r = rho(&["011", "010", "011", "110"]);
        let exec = Execution::run(&Model::Blackboard, &r, &mut arena);
        for t in 1..=3 {
            for i in 0..4 {
                for j in 0..4 {
                    let same_k = exec.knowledge(t, i) == exec.knowledge(t, j);
                    let same_x = r.node(i).prefix(t) == r.node(j).prefix(t);
                    assert_eq!(same_k, same_x, "t={t} i={i} j={j}");
                }
            }
        }
    }

    #[test]
    fn consistency_never_recovers() {
        // Once inconsistent, always inconsistent (knowledge is cumulative).
        let mut arena = KnowledgeArena::new();
        // Differ at round 1, re-agree afterwards.
        let exec = Execution::run(&Model::Blackboard, &rho(&["0111", "1111"]), &mut arena);
        for t in 1..=4 {
            assert_eq!(exec.consistency_partition(t).len(), 2, "t={t}");
        }
    }

    #[test]
    fn message_passing_cyclic_symmetric_when_shared() {
        // Shared randomness + rotation-symmetric (cyclic) ports: all nodes
        // stay consistent forever.
        let mut arena = KnowledgeArena::new();
        let exec = Execution::run(
            &Model::message_passing_cyclic(3),
            &rho(&["0110", "0110", "0110"]),
            &mut arena,
        );
        for t in 0..=4 {
            assert_eq!(exec.consistency_partition(t).len(), 1, "t={t}");
        }
    }

    #[test]
    fn message_passing_ports_can_break_symmetry_with_equal_bits() {
        // Asymmetric ports can distinguish nodes with identical randomness:
        // place nodes 0,1,2 all on one source, with a numbering whose
        // "views" differ. Nodes' round-1 knowledge is identical (everyone
        // hears (⊥,⊥)); by round 2 views may diverge only if the numbering
        // breaks the symmetry — with only one source all prior knowledge is
        // equal, so they can never diverge. Sanity-check that.
        let mut arena = KnowledgeArena::new();
        let table = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        let ports = crate::ports::PortNumbering::from_table(table);
        let exec = Execution::run(
            &Model::MessagePassing(ports),
            &rho(&["01", "01", "01"]),
            &mut arena,
        );
        assert_eq!(exec.consistency_partition(2).len(), 1);
    }

    #[test]
    fn message_passing_vs_blackboard_difference() {
        // Two sources with sizes [2,2]: in the blackboard model the classes
        // are exactly the source groups; in the message-passing model with
        // a suitable numbering, nodes in the same group can diverge.
        let r = rho(&["01", "01", "11", "11"]);
        let mut arena = KnowledgeArena::new();
        let bb = Execution::run(&Model::Blackboard, &r, &mut arena);
        assert_eq!(bb.consistency_partition(2), vec![vec![0, 1], vec![2, 3]]);

        // Numbering where node 0's port 1 leads into group {2,3} but node
        // 1's port 1 leads into its own group: their round-2 views differ.
        let table = vec![
            vec![2, 1, 3], // node 0: port1→2 (other group)
            vec![0, 2, 3], // node 1: port1→0 (same group)
            vec![3, 0, 1],
            vec![1, 2, 0],
        ];
        let ports = crate::ports::PortNumbering::from_table(table);
        let mp = Execution::run(&Model::MessagePassing(ports), &r, &mut arena);
        // At t=1 messages exchanged are all ⊥ so groups still coincide...
        assert_eq!(mp.consistency_partition(1).len(), 2);
        // ...but at t=2 node 0 heard (k_2, k_1, k_3) while node 1 heard
        // (k_0, k_2, k_3): k_2 ≠ k_0 at t=1, so 0 and 1 diverge.
        assert!(mp.consistency_partition(2).len() > 2);
    }

    #[test]
    fn adversarial_ports_lock_classes_to_multiples_of_g() {
        // Lemma 4.3 preview: sizes [2,2], g=2, adversarial numbering: every
        // class size is a multiple of 2, for every realization.
        let alpha = Assignment::from_group_sizes(&[2, 2]).unwrap();
        let ports = crate::ports::PortNumbering::adversarial(4, 2);
        for t in 1..=3 {
            for r in Realization::enumerate_consistent(&alpha, t) {
                let mut arena = KnowledgeArena::new();
                let exec = Execution::run(&Model::MessagePassing(ports.clone()), &r, &mut arena);
                for size in exec.class_sizes(t) {
                    assert_eq!(size % 2, 0, "t={t} realization {r}");
                }
            }
        }
    }

    #[test]
    fn inputs_enter_knowledge() {
        let mut arena = KnowledgeArena::new();
        let r = rho(&["0", "0"]);
        let exec =
            Execution::run_with_inputs(&Model::Blackboard, &r, &[Some(1), Some(2)], &mut arena);
        // Different inputs make knowledge differ even with equal bits.
        assert_eq!(exec.consistency_partition(1).len(), 2);
        assert_eq!(arena.input(exec.knowledge(1, 0)), Some(1));
    }

    #[test]
    fn singleton_detection() {
        let mut arena = KnowledgeArena::new();
        let exec = Execution::run(&Model::Blackboard, &rho(&["0", "1", "1"]), &mut arena);
        assert!(exec.has_singleton_class(1));
        assert_eq!(exec.class_sizes(1), vec![1, 2]);
        let exec2 = Execution::run(&Model::Blackboard, &rho(&["1", "1", "1"]), &mut arena);
        assert!(!exec2.has_singleton_class(1));
    }

    #[test]
    fn faultfree_schedule_matches_plain_run() {
        let r = rho(&["0110", "1001", "0011"]);
        let faults = crate::faults::FaultSchedule::empty(3, 4);
        for model in [Model::Blackboard, Model::message_passing_cyclic(3)] {
            let mut arena = KnowledgeArena::new();
            let plain = Execution::run(&model, &r, &mut arena);
            let faulted = Execution::run_with_faults(&model, &r, &faults, &mut arena);
            for t in 0..=4 {
                assert_eq!(plain.knowledge_at(t), faulted.knowledge_at(t), "t={t}");
            }
        }
    }

    #[test]
    fn silence_breaks_symmetry_on_the_blackboard() {
        // Identical bits everywhere, but node 2 omits in round 1: the
        // others see a shorter board than node 2 does, and node 2's own
        // post is missing from their view — observable silence separates
        // {0,1} from {2}.
        let r = rho(&["11", "11", "11"]);
        let mut faults = crate::faults::FaultSchedule::empty(3, 2);
        faults.set_omission(2, 1);
        let mut arena = KnowledgeArena::new();
        let exec = Execution::run_with_faults(&Model::Blackboard, &r, &faults, &mut arena);
        assert_eq!(exec.consistency_partition(1), vec![vec![0, 1], vec![2]]);
        // Omission is one round only: no *new* splits afterwards, but the
        // round-1 split persists (knowledge is cumulative).
        assert_eq!(exec.consistency_partition(2), vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn silent_node_keeps_listening_and_evolving() {
        // A crashed node still hears the survivors; its knowledge keeps
        // deepening even though it transmits nothing.
        let r = rho(&["010", "101"]);
        let mut faults = crate::faults::FaultSchedule::empty(2, 3);
        faults.set_crash(1, 1);
        let mut arena = KnowledgeArena::new();
        let exec = Execution::run_with_faults(&Model::Blackboard, &r, &faults, &mut arena);
        let k = exec.knowledge(3, 1);
        assert_eq!(arena.depth(k), 3);
        assert_eq!(arena.randomness(k), vec![true, false, true]);
    }

    #[test]
    fn ports_hole_is_distinct_from_every_knowledge() {
        // MP: a silent sender's slot holds Hole, which differs from ⊥ and
        // from any real knowledge — the receivers can tell silence from
        // any message content.
        let r = rho(&["00", "00", "00"]);
        let mut faults = crate::faults::FaultSchedule::empty(3, 2);
        faults.set_omission(0, 1);
        let mut arena = KnowledgeArena::new();
        let model = Model::message_passing_cyclic(3);
        let exec = Execution::run_with_faults(&model, &r, &faults, &mut arena);
        // Node 0 heard everyone (it only failed to send), nodes 1 and 2
        // each have one holed slot at different ports: three classes.
        assert_eq!(exec.consistency_partition(1).len(), 3);
    }

    #[test]
    fn randomness_recoverable_from_knowledge() {
        // The h-map content: knowledge determines the node's own bits.
        let mut arena = KnowledgeArena::new();
        let r = rho(&["0110", "1001"]);
        let exec = Execution::run(&Model::Blackboard, &r, &mut arena);
        for i in 0..2 {
            let bits = arena.randomness(exec.knowledge(4, i));
            let expect: Vec<bool> = r.node(i).iter().collect();
            assert_eq!(bits, expect);
        }
    }
}
