//! Statistics over knowledge arenas: sharing factors and depth profiles.
//!
//! Knowledge values grow exponentially with time when written out in
//! full; the interning arena keeps one copy per distinct value. These
//! helpers quantify that sharing (used by the `bench_knowledge` ablation
//! and handy when sizing experiments).

use std::collections::BTreeMap;

use crate::knowledge::{KnowledgeArena, KnowledgeId, KnowledgeNode};

/// Summary statistics of an arena.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArenaStats {
    /// Distinct knowledge values interned.
    pub distinct: usize,
    /// Count of distinct values per recursion depth (time).
    pub per_depth: BTreeMap<usize, usize>,
}

impl ArenaStats {
    /// The deepest knowledge value's time.
    pub fn max_depth(&self) -> usize {
        self.per_depth.keys().copied().max().unwrap_or(0)
    }
}

/// Computes statistics for the whole arena.
///
/// # Example
///
/// ```
/// use rsbt_random::{Assignment, Realization};
/// use rsbt_sim::{stats, Execution, KnowledgeArena, Model};
///
/// let alpha = Assignment::private(3);
/// let mut rng = rand::thread_rng();
/// let rho = Realization::sample(&alpha, 5, &mut rng);
/// let mut arena = KnowledgeArena::new();
/// let _ = Execution::run(&Model::Blackboard, &rho, &mut arena);
/// let s = stats::arena_stats(&arena);
/// assert_eq!(s.max_depth(), 5);
/// assert!(s.distinct <= 1 + 3 * 5); // at most n per round, plus ⊥
/// ```
pub fn arena_stats(arena: &KnowledgeArena) -> ArenaStats {
    let mut per_depth: BTreeMap<usize, usize> = BTreeMap::new();
    // Depths computed iteratively to avoid recursion over long chains.
    let mut depth_of: Vec<usize> = Vec::with_capacity(arena.len());
    for i in 0..arena.len() {
        let id = KnowledgeId::from_index_for_stats(i);
        let d = match arena.get(id) {
            KnowledgeNode::Initial(_) | KnowledgeNode::Hole => 0,
            KnowledgeNode::Round { prev, .. } => depth_of[prev.index() as usize] + 1,
        };
        depth_of.push(d);
        *per_depth.entry(d).or_default() += 1;
    }
    ArenaStats {
        distinct: arena.len(),
        per_depth,
    }
}

/// The *expansion factor* of a knowledge value: how many tree nodes its
/// fully-expanded form would have, versus the number of distinct DAG
/// nodes reachable from it. Large ratios are exactly what interning
/// saves.
pub fn expansion_factor(arena: &KnowledgeArena, id: KnowledgeId) -> (u128, usize) {
    let mut tree_sizes: BTreeMap<KnowledgeId, u128> = BTreeMap::new();
    let mut reachable: std::collections::BTreeSet<KnowledgeId> = Default::default();
    fn go(
        arena: &KnowledgeArena,
        id: KnowledgeId,
        sizes: &mut BTreeMap<KnowledgeId, u128>,
        reach: &mut std::collections::BTreeSet<KnowledgeId>,
    ) -> u128 {
        if let Some(&s) = sizes.get(&id) {
            reach.insert(id);
            return s;
        }
        reach.insert(id);
        let s = match arena.get(id).clone() {
            KnowledgeNode::Initial(_) | KnowledgeNode::Hole => 1,
            KnowledgeNode::Round { prev, heard, .. } => {
                let mut total = 1 + go(arena, prev, sizes, reach);
                let children = match heard {
                    crate::knowledge::NeighborInfo::Board(v) => v,
                    crate::knowledge::NeighborInfo::Ports(v) => v,
                };
                for c in children {
                    total += go(arena, c, sizes, reach);
                }
                total
            }
        };
        sizes.insert(id, s);
        s
    }
    let tree = go(arena, id, &mut tree_sizes, &mut reachable);
    (tree, reachable.len())
}

impl KnowledgeId {
    /// Internal constructor for stats iteration (ids are dense arena
    /// indices).
    fn from_index_for_stats(i: usize) -> KnowledgeId {
        // KnowledgeId is a thin wrapper over a u32 index; arenas are
        // append-only so every index below `len` is valid.
        KnowledgeId::from_raw(u32::try_from(i).expect("arena bounded by u32"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Execution, Model};
    use rsbt_random::{Assignment, Realization};

    #[test]
    fn stats_count_depths() {
        let mut rng = rand::rngs::mock::StepRng::new(5, 0x9e37_79b9_97f4_a7c1);
        let alpha = Assignment::private(3);
        let rho = Realization::sample(&alpha, 4, &mut rng);
        let mut arena = KnowledgeArena::new();
        let _ = Execution::run(&Model::Blackboard, &rho, &mut arena);
        let s = arena_stats(&arena);
        assert_eq!(s.max_depth(), 4);
        assert_eq!(s.per_depth[&0], 1, "single ⊥");
        assert_eq!(s.distinct, arena.len());
        let total: usize = s.per_depth.values().sum();
        assert_eq!(total, s.distinct);
    }

    #[test]
    fn expansion_grows_exponentially_but_dag_stays_linear() {
        let mut rng = rand::rngs::mock::StepRng::new(5, 0x9e37_79b9_97f4_a7c1);
        let alpha = Assignment::private(3);
        let rho = Realization::sample(&alpha, 8, &mut rng);
        let mut arena = KnowledgeArena::new();
        let exec = Execution::run(&Model::Blackboard, &rho, &mut arena);
        let id = exec.knowledge(8, 0);
        let (tree, dag) = expansion_factor(&arena, id);
        assert!(tree > 1000, "full tree explodes: {tree}");
        assert!(dag <= arena.len());
        assert!((dag as u128) < tree, "interning must compress");
    }

    #[test]
    fn shared_source_collapses_arena() {
        // With one source all nodes share knowledge: one value per round.
        let mut rng = rand::rngs::mock::StepRng::new(5, 0x9e37_79b9_97f4_a7c1);
        let alpha = Assignment::shared(4);
        let rho = Realization::sample(&alpha, 6, &mut rng);
        let mut arena = KnowledgeArena::new();
        let _ = Execution::run(&Model::Blackboard, &rho, &mut arena);
        let s = arena_stats(&arena);
        for (d, count) in &s.per_depth {
            assert_eq!(*count, 1, "depth {d} has one shared value");
        }
    }
}
