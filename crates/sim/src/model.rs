//! The two anonymous communication models of the paper.

use std::fmt;

use crate::ports::PortNumbering;

/// A communication model instance (Section 2.1 of the paper).
///
/// The blackboard model needs no parameters; the message-passing model is
/// parameterized by a concrete [`PortNumbering`], because knowledge — and
/// hence solvability — depends on it (Theorem 4.2 quantifies over the worst
/// case).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Model {
    /// Shared anonymous blackboard: everyone sees every message, senders
    /// are anonymous, board order is lexicographic.
    Blackboard,
    /// Clique with private point-to-point channels labeled by per-node
    /// port numbers.
    MessagePassing(PortNumbering),
}

impl Model {
    /// A message-passing model with the canonical cyclic numbering.
    pub fn message_passing_cyclic(n: usize) -> Self {
        Model::MessagePassing(PortNumbering::cyclic(n))
    }

    /// Whether this is the blackboard model.
    pub fn is_blackboard(&self) -> bool {
        matches!(self, Model::Blackboard)
    }

    /// The port numbering, if message-passing.
    pub fn ports(&self) -> Option<&PortNumbering> {
        match self {
            Model::Blackboard => None,
            Model::MessagePassing(p) => Some(p),
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Model::Blackboard => write!(f, "blackboard"),
            Model::MessagePassing(p) => write!(f, "message-passing (n={})", p.n()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let bb = Model::Blackboard;
        assert!(bb.is_blackboard());
        assert!(bb.ports().is_none());
        let mp = Model::message_passing_cyclic(3);
        assert!(!mp.is_blackboard());
        assert_eq!(mp.ports().unwrap().n(), 3);
    }

    #[test]
    fn display() {
        assert_eq!(Model::Blackboard.to_string(), "blackboard");
        assert!(Model::message_passing_cyclic(4).to_string().contains("n=4"));
    }
}
