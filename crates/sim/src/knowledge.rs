//! Hash-consed knowledge values `K_i(t)`.
//!
//! The paper defines knowledge recursively (Eqs. 1 and 2): a node's
//! knowledge at time `t` is a tuple of its previous knowledge, its fresh
//! random bit, and the (multiset or port-ordered tuple of) knowledge of the
//! other nodes at `t − 1`. Knowledge values double in size every round, so a
//! naive representation explodes; interning them in an arena gives
//! structural sharing and makes the consistency test `K_i(t) = K_j(t)` a
//! single integer comparison — *exactly*, not probabilistically (no hashing
//! collisions can merge distinct values, because interning compares the
//! full node on insertion).

use std::fmt;
use std::mem;

use crate::fxhash::FxHashMap;

/// Handle to an interned knowledge value inside a [`KnowledgeArena`].
///
/// Two ids from the *same arena* are equal iff the knowledge values are
/// structurally equal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct KnowledgeId(u32);

impl KnowledgeId {
    /// The raw arena index (useful as a compact state label).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from a raw arena index (crate-internal; arenas are
    /// append-only, so any index below `len` is valid).
    pub(crate) fn from_raw(raw: u32) -> KnowledgeId {
        KnowledgeId(raw)
    }
}

impl fmt::Display for KnowledgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "K#{}", self.0)
    }
}

/// The information received from the other nodes in one round.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum NeighborInfo {
    /// Blackboard model: the full board content for the round — the
    /// multiset `{K_j(t−1) : j ≠ i}`, stored sorted (the paper's
    /// lexicographic-order convention removes sender identity).
    Board(Vec<KnowledgeId>),
    /// Message-passing model: `(K_{π_i(1)}(t−1), …, K_{π_i(n−1)}(t−1))`,
    /// ordered by the receiving node's own port numbers.
    Ports(Vec<KnowledgeId>),
}

/// An interned knowledge value.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum KnowledgeNode {
    /// `K_i(0)`: the input value of the node, or `None` for the input-free
    /// placeholder `⊥`.
    Initial(Option<u64>),
    /// `K_i(t)` for `t ≥ 1`: previous knowledge, fresh random bit, and the
    /// other nodes' previous knowledge.
    Round {
        /// `K_i(t − 1)`.
        prev: KnowledgeId,
        /// `X_i(t)`, the bit received from the node's randomness source.
        bit: bool,
        /// What the node heard from the rest of the system this round.
        heard: NeighborInfo,
    },
    /// The distinguished "silence" value a message-passing port slot holds
    /// when its sender omitted or crashed that round (see
    /// [`crate::faults`]). Observably distinct from every real knowledge
    /// value — silence carries information — and equal only to itself.
    Hole,
}

/// Interning arena for knowledge values.
///
/// # Example
///
/// ```
/// use rsbt_sim::{KnowledgeArena, KnowledgeNode, NeighborInfo};
///
/// let mut arena = KnowledgeArena::new();
/// let bottom = arena.initial(None);
/// let a = arena.intern(KnowledgeNode::Round {
///     prev: bottom,
///     bit: true,
///     heard: NeighborInfo::Board(vec![bottom]),
/// });
/// let b = arena.intern(KnowledgeNode::Round {
///     prev: bottom,
///     bit: true,
///     heard: NeighborInfo::Board(vec![bottom]),
/// });
/// assert_eq!(a, b); // structural equality ⇒ same id
/// ```
#[derive(Clone, Debug, Default)]
pub struct KnowledgeArena {
    nodes: Vec<KnowledgeNode>,
    /// Content-addressed index. Keyed by the in-tree Fx hash
    /// ([`crate::fxhash`]): interning sits inside `2^{k·t}` enumeration
    /// loops, where SipHash's keyed setup cost dominates the probe.
    index: FxHashMap<KnowledgeNode, KnowledgeId>,
}

impl KnowledgeArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        KnowledgeArena::default()
    }

    /// Interns a knowledge value, returning its canonical id.
    ///
    /// For [`KnowledgeNode::Round`] values, the `heard` board variant must
    /// already be sorted; use [`KnowledgeArena::round_blackboard`] /
    /// [`KnowledgeArena::round_ports`] to construct rounds safely.
    pub fn intern(&mut self, node: KnowledgeNode) -> KnowledgeId {
        if let Some(&id) = self.index.get(&node) {
            return id;
        }
        let id = KnowledgeId(u32::try_from(self.nodes.len()).expect("arena overflow"));
        self.nodes.push(node.clone());
        self.index.insert(node, id);
        id
    }

    /// Interns an initial knowledge value (`⊥` for `None`).
    pub fn initial(&mut self, input: Option<u64>) -> KnowledgeId {
        self.intern(KnowledgeNode::Initial(input))
    }

    /// Interns the silence sentinel ([`KnowledgeNode::Hole`]).
    pub fn hole(&mut self) -> KnowledgeId {
        self.intern(KnowledgeNode::Hole)
    }

    /// Interns one blackboard round (Eq. 1): sorts the board multiset,
    /// erasing sender identity.
    pub fn round_blackboard(
        &mut self,
        prev: KnowledgeId,
        bit: bool,
        mut board: Vec<KnowledgeId>,
    ) -> KnowledgeId {
        board.sort_unstable();
        self.intern(KnowledgeNode::Round {
            prev,
            bit,
            heard: NeighborInfo::Board(board),
        })
    }

    /// Interns one message-passing round (Eq. 2): `by_port[j]` is the
    /// previous knowledge of the node behind port `j + 1`; order is
    /// preserved (ports are local identifiers).
    pub fn round_ports(
        &mut self,
        prev: KnowledgeId,
        bit: bool,
        by_port: Vec<KnowledgeId>,
    ) -> KnowledgeId {
        self.intern(KnowledgeNode::Round {
            prev,
            bit,
            heard: NeighborInfo::Ports(by_port),
        })
    }

    /// [`KnowledgeArena::round_blackboard`] from a reusable scratch buffer:
    /// sorts `board` in place and, on an index hit (the steady state inside
    /// enumeration loops), hands the buffer back without any allocation.
    /// On a miss the buffer moves into the arena and comes back empty.
    pub fn round_blackboard_reuse(
        &mut self,
        prev: KnowledgeId,
        bit: bool,
        board: &mut Vec<KnowledgeId>,
    ) -> KnowledgeId {
        board.sort_unstable();
        self.round_reuse(prev, bit, board, true)
    }

    /// [`KnowledgeArena::round_ports`] from a reusable scratch buffer (same
    /// buffer contract as [`KnowledgeArena::round_blackboard_reuse`]).
    pub fn round_ports_reuse(
        &mut self,
        prev: KnowledgeId,
        bit: bool,
        by_port: &mut Vec<KnowledgeId>,
    ) -> KnowledgeId {
        self.round_reuse(prev, bit, by_port, false)
    }

    fn round_reuse(
        &mut self,
        prev: KnowledgeId,
        bit: bool,
        heard: &mut Vec<KnowledgeId>,
        is_board: bool,
    ) -> KnowledgeId {
        let node = KnowledgeNode::Round {
            prev,
            bit,
            heard: if is_board {
                NeighborInfo::Board(mem::take(heard))
            } else {
                NeighborInfo::Ports(mem::take(heard))
            },
        };
        if let Some(&id) = self.index.get(&node) {
            // Hit: recover the caller's buffer (capacity intact).
            let KnowledgeNode::Round {
                heard: NeighborInfo::Board(v) | NeighborInfo::Ports(v),
                ..
            } = node
            else {
                unreachable!("constructed as Round above")
            };
            *heard = v;
            heard.clear();
            return id;
        }
        let id = KnowledgeId(u32::try_from(self.nodes.len()).expect("arena overflow"));
        self.nodes.push(node.clone());
        self.index.insert(node, id);
        id
    }

    /// Resolves an id back to its node.
    ///
    /// # Panics
    ///
    /// Panics if the id comes from a different arena (index out of range).
    pub fn get(&self, id: KnowledgeId) -> &KnowledgeNode {
        &self.nodes[id.0 as usize]
    }

    /// The number of distinct knowledge values interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The time `t` a knowledge value covers (its recursion depth).
    /// Iterative: knowledge chains grow with `t`, and the recursive form
    /// cost one stack frame per round.
    pub fn depth(&self, id: KnowledgeId) -> usize {
        let mut depth = 0;
        let mut cur = id;
        while let KnowledgeNode::Round { prev, .. } = self.get(cur) {
            depth += 1;
            cur = *prev;
        }
        depth
    }

    /// The randomness string `x_i(1..t)` embedded in a knowledge value
    /// (the paper's map `h : P(t) → R(t)` extracts exactly this).
    pub fn randomness(&self, id: KnowledgeId) -> Vec<bool> {
        let mut bits = Vec::new();
        let mut cur = id;
        loop {
            match self.get(cur) {
                KnowledgeNode::Initial(_) | KnowledgeNode::Hole => break,
                KnowledgeNode::Round { prev, bit, .. } => {
                    bits.push(*bit);
                    cur = *prev;
                }
            }
        }
        bits.reverse();
        bits
    }

    /// The input value recorded at the root of the knowledge recursion
    /// (iterative, like [`KnowledgeArena::depth`]).
    pub fn input(&self, id: KnowledgeId) -> Option<u64> {
        let mut cur = id;
        loop {
            match self.get(cur) {
                KnowledgeNode::Initial(v) => return *v,
                KnowledgeNode::Hole => return None,
                KnowledgeNode::Round { prev, .. } => cur = *prev,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        let mut a = KnowledgeArena::new();
        let x = a.initial(None);
        let y = a.initial(None);
        assert_eq!(x, y);
        assert_eq!(a.len(), 1);
        let z = a.initial(Some(5));
        assert_ne!(x, z);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn board_is_sorted_on_construction() {
        let mut a = KnowledgeArena::new();
        let b0 = a.initial(Some(0));
        let b1 = a.initial(Some(1));
        let r1 = a.round_blackboard(b0, true, vec![b1, b0]);
        let r2 = a.round_blackboard(b0, true, vec![b0, b1]);
        assert_eq!(r1, r2, "multiset order must not matter");
    }

    #[test]
    fn port_order_matters() {
        let mut a = KnowledgeArena::new();
        let b0 = a.initial(Some(0));
        let b1 = a.initial(Some(1));
        let r1 = a.round_ports(b0, true, vec![b1, b0]);
        let r2 = a.round_ports(b0, true, vec![b0, b1]);
        assert_ne!(r1, r2, "port order is part of the knowledge");
    }

    #[test]
    fn bit_distinguishes() {
        let mut a = KnowledgeArena::new();
        let b = a.initial(None);
        let r0 = a.round_blackboard(b, false, vec![b]);
        let r1 = a.round_blackboard(b, true, vec![b]);
        assert_ne!(r0, r1);
    }

    #[test]
    fn reuse_interning_matches_owned_interning() {
        let mut a = KnowledgeArena::new();
        let b0 = a.initial(Some(0));
        let b1 = a.initial(Some(1));
        let owned_bb = a.round_blackboard(b0, true, vec![b1, b0]);
        let owned_mp = a.round_ports(b1, false, vec![b0, b1]);

        let mut buf = Vec::new();
        // Board variant sorts, so scratch order must not matter.
        buf.extend([b0, b1]);
        assert_eq!(a.round_blackboard_reuse(b0, true, &mut buf), owned_bb);
        // Hit: buffer came back (empty, capacity preserved).
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 2);
        buf.extend([b0, b1]);
        assert_eq!(a.round_ports_reuse(b1, false, &mut buf), owned_mp);

        // Miss: a brand-new round interns identically to the owned path.
        let before = a.len();
        buf.clear();
        buf.extend([b1, b1]);
        let fresh = a.round_ports_reuse(b0, true, &mut buf);
        assert_eq!(a.len(), before + 1);
        assert_eq!(fresh, a.round_ports(b0, true, vec![b1, b1]));
    }

    #[test]
    fn depth_counts_rounds() {
        let mut a = KnowledgeArena::new();
        let b = a.initial(None);
        assert_eq!(a.depth(b), 0);
        let r1 = a.round_blackboard(b, false, vec![b]);
        let r2 = a.round_blackboard(r1, true, vec![r1]);
        assert_eq!(a.depth(r1), 1);
        assert_eq!(a.depth(r2), 2);
    }

    #[test]
    fn randomness_extraction_in_round_order() {
        let mut a = KnowledgeArena::new();
        let b = a.initial(None);
        let r1 = a.round_blackboard(b, true, vec![b]);
        let r2 = a.round_blackboard(r1, false, vec![r1]);
        let r3 = a.round_blackboard(r2, true, vec![r2]);
        assert_eq!(a.randomness(r3), vec![true, false, true]);
        assert_eq!(a.randomness(b), Vec::<bool>::new());
    }

    #[test]
    fn input_recovered_from_root() {
        let mut a = KnowledgeArena::new();
        let b = a.initial(Some(17));
        let r1 = a.round_blackboard(b, true, vec![b]);
        assert_eq!(a.input(r1), Some(17));
        assert_eq!(a.input(b), Some(17));
        let bot = a.initial(None);
        assert_eq!(a.input(bot), None);
    }

    #[test]
    fn display_id() {
        let mut a = KnowledgeArena::new();
        let b = a.initial(None);
        assert_eq!(b.to_string(), "K#0");
    }
}
