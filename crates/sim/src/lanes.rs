//! Bit-sliced knowledge tracking: 64 independent samples per `u64` word.
//!
//! The Monte-Carlo estimator only ever consumes an execution through its
//! *consistency partition* (`i ∼_t j ⇔ K_i(t) = K_j(t)`), so it never
//! needs the knowledge values themselves — only the pairwise equality
//! relation. [`LaneStepper`] tracks exactly that relation for 64 samples
//! at once, one bit per sample ("lane"), as a packed upper-triangular
//! matrix of `u64` words over *knowledge units*:
//!
//! * **Blackboard** — every node sees the same board, so `K_i(t)` is a
//!   function of node `i`'s *source* and the per-source bit prefixes:
//!   `K_i(t) = K_j(t)` iff the sources of `i` and `j` emitted identical
//!   bit strings through round `t` (nodes of the same source are always
//!   equal). The units are therefore the `k` sources, and one round is a
//!   single in-place refinement per pair:
//!   `eq'[u,v] = eq[u,v] & !(bits[u] ^ bits[v])`.
//! * **Message-passing** — the units are the `n` nodes. Round knowledge
//!   is built from the own source bit plus the neighbors' previous
//!   knowledge *in port order* (the arena keeps ports positional, it
//!   never sorts them), and hash-consing makes id equality structural
//!   equality. Hence `K_i(t) = K_j(t)` iff their source bits agree *and*
//!   every port-aligned neighbor pair was equal at `t − 1`:
//!   `eq'[i,j] = !(b[i] ^ b[j]) & AND_p eq[nbr(i,p), nbr(j,p)]`
//!   (ports `p` with `nbr(i,p) = nbr(j,p)` contribute nothing and are
//!   dropped at construction). This reads the *previous* relation, so the
//!   step double-buffers.
//!
//! Both rules are exact — no abstraction, no over-approximation — so a
//! caller evaluating a partition-based verdict on the packed relation
//! gets bit-for-bit the verdict of 64 scalar executions.

use rsbt_random::Assignment;

use crate::model::Model;

/// The packed index of unit pair `(a, b)`, `a < b`, among `units` units:
/// row-major upper triangle, `a·(2·units − a − 1)/2 + (b − a − 1)`.
///
/// # Panics
///
/// Panics (in debug builds) unless `a < b < units`.
pub fn pair_index(units: usize, a: usize, b: usize) -> usize {
    debug_assert!(a < b && b < units, "need a < b < units");
    a * (2 * units - a - 1) / 2 + (b - a - 1)
}

/// The number of packed unit pairs: `units·(units − 1)/2`.
pub fn pair_count(units: usize) -> usize {
    units * (units - 1) / 2
}

/// Pairwise knowledge-equality words for 64 samples at once.
///
/// `eq_words()[pair_index(units, a, b)]` holds one bit per lane: bit `l`
/// is set iff units `a` and `b` have equal knowledge in lane `l`'s sample
/// after the rounds stepped so far. See the module docs for the exact
/// per-model update rules and why they are lossless.
///
/// # Example
///
/// ```
/// use rsbt_random::Assignment;
/// use rsbt_sim::{lanes::LaneStepper, Model};
///
/// // Two private-source nodes: they stay equal exactly while their
/// // source bits agree. Lane 1's bits agree in round 0, lane 0's differ.
/// let alpha = Assignment::private(2);
/// let mut st = LaneStepper::new(&Model::Blackboard, &alpha);
/// st.step(|s| if s == 0 { 0b10 } else { 0b11 });
/// assert_eq!(st.eq_words()[0] & 0b11, 0b10);
/// ```
#[derive(Clone, Debug)]
pub struct LaneStepper {
    units: usize,
    unit_of_node: Vec<usize>,
    /// The source feeding each unit's bits.
    unit_source: Vec<usize>,
    eq: Vec<u64>,
    /// Double buffer for the message-passing step (empty on blackboard).
    next: Vec<u64>,
    /// Flattened per-pair neighbor-pair term lists (message-passing).
    terms: Vec<u32>,
    /// `term_offsets[p]..term_offsets[p + 1]` indexes `terms` for pair `p`.
    term_offsets: Vec<u32>,
    /// Scratch: the current round's bit word per unit.
    bits: Vec<u64>,
}

impl LaneStepper {
    /// Builds a stepper for `model` under source assignment `alpha` with
    /// all lanes in the initial all-equal state (`K_i(0) = ⊥` for all).
    ///
    /// # Panics
    ///
    /// Panics if `model` is message-passing with a port numbering whose
    /// node count differs from `alpha.n()`.
    pub fn new(model: &Model, alpha: &Assignment) -> Self {
        let n = alpha.n();
        let (units, unit_of_node, unit_source) = match model {
            Model::Blackboard => {
                let k = alpha.k();
                let unit_of_node: Vec<usize> = (0..n).map(|i| alpha.source_of(i)).collect();
                (k, unit_of_node, (0..k).collect())
            }
            Model::MessagePassing(ports) => {
                assert_eq!(
                    ports.n(),
                    n,
                    "port numbering is for {} nodes, assignment for {n}",
                    ports.n()
                );
                let unit_source: Vec<usize> = (0..n).map(|i| alpha.source_of(i)).collect();
                (n, (0..n).collect(), unit_source)
            }
        };
        let pairs = pair_count(units);
        let (terms, term_offsets, next) = match model {
            Model::Blackboard => (Vec::new(), Vec::new(), Vec::new()),
            Model::MessagePassing(ports) => {
                let mut terms = Vec::new();
                let mut offsets = Vec::with_capacity(pairs + 1);
                offsets.push(0u32);
                for a in 0..units {
                    for b in a + 1..units {
                        // Port-aligned neighbor pairs whose previous-round
                        // equality the rule must consult.
                        for p in 1..n {
                            let (x, y) = (ports.neighbor(a, p), ports.neighbor(b, p));
                            if x != y {
                                let q = pair_index(units, x.min(y), x.max(y));
                                terms.push(q as u32);
                            }
                        }
                        offsets.push(terms.len() as u32);
                    }
                }
                (terms, offsets, vec![0u64; pairs])
            }
        };
        LaneStepper {
            units,
            unit_of_node,
            unit_source,
            eq: vec![u64::MAX; pairs],
            next,
            terms,
            term_offsets,
            bits: vec![0u64; units],
        }
    }

    /// The number of knowledge units (`k` on the blackboard, `n` under
    /// message passing).
    pub fn units(&self) -> usize {
        self.units
    }

    /// The unit tracking each node's knowledge.
    pub fn unit_of_node(&self) -> &[usize] {
        &self.unit_of_node
    }

    /// The packed pairwise-equality words (see [`pair_index`]).
    pub fn eq_words(&self) -> &[u64] {
        &self.eq
    }

    /// Resets every lane to the initial all-equal state.
    pub fn reset(&mut self) {
        self.eq.fill(u64::MAX);
    }

    /// Advances every lane by one round. `source_bits(s)` must return the
    /// current round's bit of source `s`, one lane per bit position.
    pub fn step<F: Fn(usize) -> u64>(&mut self, source_bits: F) {
        for u in 0..self.units {
            self.bits[u] = source_bits(self.unit_source[u]);
        }
        if self.next.is_empty() {
            // Blackboard: pure refinement, safe in place.
            let mut p = 0;
            for a in 0..self.units {
                for b in a + 1..self.units {
                    self.eq[p] &= !(self.bits[a] ^ self.bits[b]);
                    p += 1;
                }
            }
        } else {
            let mut p = 0;
            for a in 0..self.units {
                for b in a + 1..self.units {
                    let mut w = !(self.bits[a] ^ self.bits[b]);
                    let lo = self.term_offsets[p] as usize;
                    let hi = self.term_offsets[p + 1] as usize;
                    for &q in &self.terms[lo..hi] {
                        if w == 0 {
                            break;
                        }
                        w &= self.eq[q as usize];
                    }
                    self.next[p] = w;
                    p += 1;
                }
            }
            std::mem::swap(&mut self.eq, &mut self.next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsbt_random::{BitString, Realization};

    use crate::execution::Execution;
    use crate::knowledge::KnowledgeArena;
    use crate::ports::PortNumbering;

    /// Deterministic lane words without any RNG dependency.
    fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Cross-checks `LaneStepper` against 64 scalar `Execution` runs.
    #[allow(clippy::needless_range_loop)] // `r` indexes the *inner* vectors
    fn check_against_scalar(model: &Model, alpha: &Assignment, t: usize, salt: u64) {
        let k = alpha.k();
        let n = alpha.n();
        // Per-source draw words: draws[s] bit l = source s's round bit in
        // lane l... transposed below into per-round words.
        let source_words: Vec<Vec<u64>> = (0..k)
            .map(|s| {
                (0..t)
                    .map(|r| mix(salt ^ (s as u64) << 32 ^ r as u64))
                    .collect()
            })
            .collect();
        let mut stepper = LaneStepper::new(model, alpha);
        let mut arena = KnowledgeArena::new();
        // Scalar truth: one execution per lane.
        let execs: Vec<Execution> = (0..64)
            .map(|l| {
                let strings: Vec<BitString> = (0..n)
                    .map(|i| {
                        let s = alpha.source_of(i);
                        BitString::from_bits((0..t).map(|r| source_words[s][r] >> l & 1 == 1))
                    })
                    .collect();
                let rho = Realization::new(strings).unwrap();
                Execution::run(model, &rho, &mut arena)
            })
            .collect();
        for r in 0..t {
            stepper.step(|s| source_words[s][r]);
            for i in 0..n {
                for j in i + 1..n {
                    let (ui, uj) = (stepper.unit_of_node()[i], stepper.unit_of_node()[j]);
                    for (l, exec) in execs.iter().enumerate() {
                        let scalar = exec.knowledge(r + 1, i) == exec.knowledge(r + 1, j);
                        let sliced = ui == uj
                            || stepper.eq_words()
                                [pair_index(stepper.units(), ui.min(uj), ui.max(uj))]
                                >> l
                                & 1
                                == 1;
                        assert_eq!(
                            scalar, sliced,
                            "round {r}, nodes ({i},{j}), lane {l}, model {model}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn blackboard_matches_scalar_executions() {
        check_against_scalar(
            &Model::Blackboard,
            &Assignment::from_group_sizes(&[1, 2]).unwrap(),
            5,
            7,
        );
        check_against_scalar(&Model::Blackboard, &Assignment::private(3), 4, 11);
        check_against_scalar(&Model::Blackboard, &Assignment::shared(4), 3, 13);
    }

    #[test]
    fn message_passing_matches_scalar_executions() {
        check_against_scalar(
            &Model::message_passing_cyclic(4),
            &Assignment::private(4),
            4,
            17,
        );
        check_against_scalar(
            &Model::message_passing_cyclic(3),
            &Assignment::from_group_sizes(&[1, 2]).unwrap(),
            5,
            19,
        );
        check_against_scalar(
            &Model::MessagePassing(PortNumbering::adversarial(4, 2)),
            &Assignment::private(4),
            4,
            23,
        );
    }

    #[test]
    fn pair_index_is_the_packed_upper_triangle() {
        for m in 1..=8 {
            let mut expect = 0;
            for a in 0..m {
                for b in a + 1..m {
                    assert_eq!(pair_index(m, a, b), expect);
                    expect += 1;
                }
            }
            assert_eq!(pair_count(m), expect);
        }
    }

    #[test]
    fn reset_restores_all_equal() {
        let alpha = Assignment::private(2);
        let mut st = LaneStepper::new(&Model::Blackboard, &alpha);
        st.step(|s| if s == 0 { 0 } else { u64::MAX });
        assert_eq!(st.eq_words()[0], 0);
        st.reset();
        assert_eq!(st.eq_words()[0], u64::MAX);
    }

    #[test]
    fn shared_source_needs_no_pairs() {
        let alpha = Assignment::shared(5);
        let st = LaneStepper::new(&Model::Blackboard, &alpha);
        assert_eq!(st.units(), 1);
        assert!(st.eq_words().is_empty());
    }

    #[test]
    #[should_panic(expected = "port numbering is for")]
    fn node_count_mismatch_panics() {
        let _ = LaneStepper::new(&Model::message_passing_cyclic(3), &Assignment::private(4));
    }
}
