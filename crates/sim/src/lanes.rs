//! Bit-sliced knowledge tracking: 64 independent samples per `u64` word.
//!
//! The Monte-Carlo estimator only ever consumes an execution through its
//! *consistency partition* (`i ∼_t j ⇔ K_i(t) = K_j(t)`), so it never
//! needs the knowledge values themselves — only the pairwise equality
//! relation. [`LaneStepper`] tracks exactly that relation for 64 samples
//! at once, one bit per sample ("lane"), as a packed upper-triangular
//! matrix of `u64` words over *knowledge units*:
//!
//! * **Blackboard** — every node sees the same board, so `K_i(t)` is a
//!   function of node `i`'s *source* and the per-source bit prefixes:
//!   `K_i(t) = K_j(t)` iff the sources of `i` and `j` emitted identical
//!   bit strings through round `t` (nodes of the same source are always
//!   equal). The units are therefore the `k` sources, and one round is a
//!   single in-place refinement per pair:
//!   `eq'[u,v] = eq[u,v] & !(bits[u] ^ bits[v])`.
//! * **Message-passing** — the units are the `n` nodes. Round knowledge
//!   is built from the own source bit plus the neighbors' previous
//!   knowledge *in port order* (the arena keeps ports positional, it
//!   never sorts them), and hash-consing makes id equality structural
//!   equality. Hence `K_i(t) = K_j(t)` iff their source bits agree *and*
//!   every port-aligned neighbor pair was equal at `t − 1`:
//!   `eq'[i,j] = !(b[i] ^ b[j]) & AND_p eq[nbr(i,p), nbr(j,p)]`
//!   (ports `p` with `nbr(i,p) = nbr(j,p)` contribute nothing and are
//!   dropped at construction). This reads the *previous* relation, so the
//!   step double-buffers.
//!
//! Both rules are exact — no abstraction, no over-approximation — so a
//! caller evaluating a partition-based verdict on the packed relation
//! gets bit-for-bit the verdict of 64 scalar executions.
//!
//! # Faulted lanes
//!
//! [`LaneStepper::new_faulted`] tracks the same relation under per-node
//! silence (see [`crate::faults`]), with silence masks supplied as lane
//! words just like source bits. Because silence is per *node*, the units
//! are the `n` nodes in **both** models, and the rules change:
//!
//! * **Blackboard** — node `i`'s round board is the sorted multiset of
//!   the *live* others' previous knowledge. If `i` and `j` had equal
//!   knowledge and the same silence status, their boards differ only by
//!   swapping `K_j ↔ K_i` (equal values) — still equal; any silence
//!   mismatch changes the board size; and unequal previous knowledge can
//!   never re-merge. Hence the exact in-place rule
//!   `eq'[i,j] = eq[i,j] & !(b[i] ^ b[j]) & !(S[i] ^ S[j])`.
//! * **Message-passing** — a silent sender's slot holds the `Hole`
//!   sentinel. A port-aligned pair `(x, y)`, `x ≠ y`, contributes
//!   `!(S[x] ^ S[y]) & (S[x] | eq[x,y])` (both silent → holes match; both
//!   live → previous equality; mixed → a hole never equals knowledge).
//!   Unlike the fault-free rule, the own-previous conjunct `eq[a,b]` must
//!   be **explicit**: fault-free it is implied by multiset cancellation
//!   across the aligned slots, but two silent senders' matching holes
//!   carry no information about their knowledge, which breaks the
//!   cancellation. So
//!   `eq'[a,b] = eq[a,b] & !(b[a] ^ b[b]) & AND_p term(x, y)`.
//!
//! Both faulted rules remain exact, verified lane-by-lane against 64
//! scalar [`Execution::run_with_faults`] runs in the tests.

use rsbt_random::Assignment;

use crate::model::Model;
use crate::ports::PortNumbering;

/// The packed index of unit pair `(a, b)`, `a < b`, among `units` units:
/// row-major upper triangle, `a·(2·units − a − 1)/2 + (b − a − 1)`.
///
/// # Panics
///
/// Panics (in debug builds) unless `a < b < units`.
pub fn pair_index(units: usize, a: usize, b: usize) -> usize {
    debug_assert!(a < b && b < units, "need a < b < units");
    a * (2 * units - a - 1) / 2 + (b - a - 1)
}

/// The number of packed unit pairs: `units·(units − 1)/2`.
pub fn pair_count(units: usize) -> usize {
    units * (units - 1) / 2
}

/// The fault-free message-passing term lists: for every node pair
/// `(a, b)` (packed order, see [`pair_index`]), the packed indices `q` of
/// the port-aligned neighbor pairs `(nbr(a, p), nbr(b, p))`, `p ∈ 1..n`,
/// whose previous-round equality the update rule
/// `eq'[a,b] = !(b[a] ^ b[b]) & AND_q eq[q]` consults. Ports with
/// `nbr(a, p) = nbr(b, p)` contribute nothing and are dropped.
///
/// Returns `(terms, offsets)` with `offsets[p]..offsets[p + 1]` indexing
/// `terms` for pair `p`. Shared ground truth between [`LaneStepper`] and
/// the quotient exact engine (`rsbt_core::engine_dp`), which evaluates the
/// same rule on one labeled equality state instead of 64 lanes.
pub fn aligned_terms(ports: &PortNumbering) -> (Vec<u32>, Vec<u32>) {
    let n = ports.n();
    let mut terms = Vec::new();
    let mut offsets = Vec::with_capacity(pair_count(n) + 1);
    offsets.push(0u32);
    for a in 0..n {
        for b in a + 1..n {
            for p in 1..n {
                let (x, y) = (ports.neighbor(a, p), ports.neighbor(b, p));
                if x != y {
                    terms.push(pair_index(n, x.min(y), x.max(y)) as u32);
                }
            }
            offsets.push(terms.len() as u32);
        }
    }
    (terms, offsets)
}

/// The faulted message-passing term lists: like [`aligned_terms`], but
/// each term keeps its sender pair `(x, y)` alongside the packed pair
/// index `q` — the faulted rule needs the senders' silence status
/// (`!(S[x] ^ S[y]) & (S[x] | eq[q])`), not just the previous equality.
///
/// Returns `(terms, offsets)` with entries `[q, x, y]`.
pub fn aligned_fault_terms(ports: &PortNumbering) -> (Vec<[u32; 3]>, Vec<u32>) {
    let n = ports.n();
    let mut terms: Vec<[u32; 3]> = Vec::new();
    let mut offsets = Vec::with_capacity(pair_count(n) + 1);
    offsets.push(0u32);
    for a in 0..n {
        for b in a + 1..n {
            for p in 1..n {
                let (x, y) = (ports.neighbor(a, p), ports.neighbor(b, p));
                // x == y: both receivers hold the same slot value
                // (knowledge or hole) — no constraint.
                if x != y {
                    let q = pair_index(n, x.min(y), x.max(y));
                    terms.push([q as u32, x as u32, y as u32]);
                }
            }
            offsets.push(terms.len() as u32);
        }
    }
    (terms, offsets)
}

/// Pairwise knowledge-equality words for 64 samples at once.
///
/// `eq_words()[pair_index(units, a, b)]` holds one bit per lane: bit `l`
/// is set iff units `a` and `b` have equal knowledge in lane `l`'s sample
/// after the rounds stepped so far. See the module docs for the exact
/// per-model update rules and why they are lossless.
///
/// # Example
///
/// ```
/// use rsbt_random::Assignment;
/// use rsbt_sim::{lanes::LaneStepper, Model};
///
/// // Two private-source nodes: they stay equal exactly while their
/// // source bits agree. Lane 1's bits agree in round 0, lane 0's differ.
/// let alpha = Assignment::private(2);
/// let mut st = LaneStepper::new(&Model::Blackboard, &alpha);
/// st.step(|s| if s == 0 { 0b10 } else { 0b11 });
/// assert_eq!(st.eq_words()[0] & 0b11, 0b10);
/// ```
#[derive(Clone, Debug)]
pub struct LaneStepper {
    units: usize,
    unit_of_node: Vec<usize>,
    /// The source feeding each unit's bits.
    unit_source: Vec<usize>,
    eq: Vec<u64>,
    /// Double buffer for the message-passing step (empty on blackboard).
    next: Vec<u64>,
    /// Flattened per-pair neighbor-pair term lists (message-passing).
    terms: Vec<u32>,
    /// `term_offsets[p]..term_offsets[p + 1]` indexes `terms` (fault-free)
    /// or `fault_terms` (faulted) for pair `p`.
    term_offsets: Vec<u32>,
    /// Scratch: the current round's bit word per unit.
    bits: Vec<u64>,
    /// Whether this stepper was built by [`LaneStepper::new_faulted`].
    faulted: bool,
    /// Faulted message-passing term list: `(pair q, sender x, sender y)`
    /// per port-aligned neighbor pair, indexed by `term_offsets`.
    fault_terms: Vec<[u32; 3]>,
    /// Scratch: the current round's silence word per unit (faulted mode).
    silence: Vec<u64>,
}

impl LaneStepper {
    /// Builds a stepper for `model` under source assignment `alpha` with
    /// all lanes in the initial all-equal state (`K_i(0) = ⊥` for all).
    ///
    /// # Panics
    ///
    /// Panics if `model` is message-passing with a port numbering whose
    /// node count differs from `alpha.n()`.
    pub fn new(model: &Model, alpha: &Assignment) -> Self {
        let n = alpha.n();
        let (units, unit_of_node, unit_source) = match model {
            Model::Blackboard => {
                let k = alpha.k();
                let unit_of_node: Vec<usize> = (0..n).map(|i| alpha.source_of(i)).collect();
                (k, unit_of_node, (0..k).collect())
            }
            Model::MessagePassing(ports) => {
                assert_eq!(
                    ports.n(),
                    n,
                    "port numbering is for {} nodes, assignment for {n}",
                    ports.n()
                );
                let unit_source: Vec<usize> = (0..n).map(|i| alpha.source_of(i)).collect();
                (n, (0..n).collect(), unit_source)
            }
        };
        let pairs = pair_count(units);
        let (terms, term_offsets, next) = match model {
            Model::Blackboard => (Vec::new(), Vec::new(), Vec::new()),
            Model::MessagePassing(ports) => {
                // Port-aligned neighbor pairs whose previous-round
                // equality the rule must consult.
                let (terms, offsets) = aligned_terms(ports);
                (terms, offsets, vec![0u64; pairs])
            }
        };
        LaneStepper {
            units,
            unit_of_node,
            unit_source,
            eq: vec![u64::MAX; pairs],
            next,
            terms,
            term_offsets,
            bits: vec![0u64; units],
            faulted: false,
            fault_terms: Vec::new(),
            silence: Vec::new(),
        }
    }

    /// Builds a stepper tracking knowledge equality under per-node
    /// silence (see the module docs for the faulted update rules). The
    /// units are the `n` nodes in both models — silence is per node, so
    /// the blackboard's source-level collapse no longer applies. Advance
    /// with [`LaneStepper::step_faulted`].
    ///
    /// # Panics
    ///
    /// Panics if `model` is message-passing with a port numbering whose
    /// node count differs from `alpha.n()`.
    pub fn new_faulted(model: &Model, alpha: &Assignment) -> Self {
        let n = alpha.n();
        if let Model::MessagePassing(ports) = model {
            assert_eq!(
                ports.n(),
                n,
                "port numbering is for {} nodes, assignment for {n}",
                ports.n()
            );
        }
        let units = n;
        let unit_source: Vec<usize> = (0..n).map(|i| alpha.source_of(i)).collect();
        let pairs = pair_count(units);
        let (fault_terms, term_offsets, next) = match model {
            Model::Blackboard => (Vec::new(), Vec::new(), Vec::new()),
            Model::MessagePassing(ports) => {
                let (terms, offsets) = aligned_fault_terms(ports);
                (terms, offsets, vec![0u64; pairs])
            }
        };
        LaneStepper {
            units,
            unit_of_node: (0..n).collect(),
            unit_source,
            eq: vec![u64::MAX; pairs],
            next,
            terms: Vec::new(),
            term_offsets,
            bits: vec![0u64; units],
            faulted: true,
            fault_terms,
            silence: vec![0u64; units],
        }
    }

    /// The number of knowledge units (`k` on the blackboard, `n` under
    /// message passing).
    pub fn units(&self) -> usize {
        self.units
    }

    /// The unit tracking each node's knowledge.
    pub fn unit_of_node(&self) -> &[usize] {
        &self.unit_of_node
    }

    /// The packed pairwise-equality words (see [`pair_index`]).
    pub fn eq_words(&self) -> &[u64] {
        &self.eq
    }

    /// Resets every lane to the initial all-equal state.
    pub fn reset(&mut self) {
        self.eq.fill(u64::MAX);
    }

    /// Loads the same labeled equality state into **every** lane:
    /// `labels[u]` is unit `u`'s class tag (equal tag ⟺ equal knowledge),
    /// exactly the state representation of the quotient exact engine.
    /// Subsequent steps then evolve 64 copies of that state in lockstep —
    /// the cross-check harness for one-step transitions from arbitrary
    /// mid-execution states (not just the initial all-equal one).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != units()`.
    pub fn load_relation(&mut self, labels: &[u8]) {
        assert_eq!(
            labels.len(),
            self.units,
            "state is over {} units, stepper over {}",
            labels.len(),
            self.units
        );
        let mut p = 0;
        for a in 0..self.units {
            for b in a + 1..self.units {
                self.eq[p] = if labels[a] == labels[b] { u64::MAX } else { 0 };
                p += 1;
            }
        }
    }

    /// Advances every lane by one round. `source_bits(s)` must return the
    /// current round's bit of source `s`, one lane per bit position.
    pub fn step<F: Fn(usize) -> u64>(&mut self, source_bits: F) {
        debug_assert!(!self.faulted, "faulted stepper: use step_faulted");
        for u in 0..self.units {
            self.bits[u] = source_bits(self.unit_source[u]);
        }
        if self.next.is_empty() {
            // Blackboard: pure refinement, safe in place.
            let mut p = 0;
            for a in 0..self.units {
                for b in a + 1..self.units {
                    self.eq[p] &= !(self.bits[a] ^ self.bits[b]);
                    p += 1;
                }
            }
        } else {
            let mut p = 0;
            for a in 0..self.units {
                for b in a + 1..self.units {
                    let mut w = !(self.bits[a] ^ self.bits[b]);
                    let lo = self.term_offsets[p] as usize;
                    let hi = self.term_offsets[p + 1] as usize;
                    for &q in &self.terms[lo..hi] {
                        if w == 0 {
                            break;
                        }
                        w &= self.eq[q as usize];
                    }
                    self.next[p] = w;
                    p += 1;
                }
            }
            std::mem::swap(&mut self.eq, &mut self.next);
        }
    }

    /// Advances every lane of a faulted stepper by one round. `silent(i)`
    /// must return node `i`'s silence word for the round (bit `l` set iff
    /// node `i` is silent in lane `l`'s sample). With all-zero silence
    /// words this computes exactly the fault-free relation (over node
    /// units).
    pub fn step_faulted<F, S>(&mut self, source_bits: F, silent: S)
    where
        F: Fn(usize) -> u64,
        S: Fn(usize) -> u64,
    {
        debug_assert!(self.faulted, "fault-free stepper: use step");
        for u in 0..self.units {
            self.bits[u] = source_bits(self.unit_source[u]);
            self.silence[u] = silent(u);
        }
        if self.next.is_empty() {
            // Blackboard: pure refinement, safe in place.
            let mut p = 0;
            for a in 0..self.units {
                for b in a + 1..self.units {
                    self.eq[p] &=
                        !(self.bits[a] ^ self.bits[b]) & !(self.silence[a] ^ self.silence[b]);
                    p += 1;
                }
            }
        } else {
            let mut p = 0;
            for a in 0..self.units {
                for b in a + 1..self.units {
                    // The own-previous conjunct is explicit here — see the
                    // module docs on why faults break the fault-free
                    // multiset cancellation.
                    let mut w = !(self.bits[a] ^ self.bits[b]) & self.eq[p];
                    let lo = self.term_offsets[p] as usize;
                    let hi = self.term_offsets[p + 1] as usize;
                    for &[q, x, y] in &self.fault_terms[lo..hi] {
                        if w == 0 {
                            break;
                        }
                        let (sx, sy) = (self.silence[x as usize], self.silence[y as usize]);
                        w &= !(sx ^ sy) & (sx | self.eq[q as usize]);
                    }
                    self.next[p] = w;
                    p += 1;
                }
            }
            std::mem::swap(&mut self.eq, &mut self.next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsbt_random::{BitString, Realization};

    use crate::execution::Execution;
    use crate::knowledge::KnowledgeArena;
    use crate::ports::PortNumbering;

    /// Deterministic lane words without any RNG dependency.
    fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Cross-checks `LaneStepper` against 64 scalar `Execution` runs.
    #[allow(clippy::needless_range_loop)] // `r` indexes the *inner* vectors
    fn check_against_scalar(model: &Model, alpha: &Assignment, t: usize, salt: u64) {
        let k = alpha.k();
        let n = alpha.n();
        // Per-source draw words: draws[s] bit l = source s's round bit in
        // lane l... transposed below into per-round words.
        let source_words: Vec<Vec<u64>> = (0..k)
            .map(|s| {
                (0..t)
                    .map(|r| mix(salt ^ (s as u64) << 32 ^ r as u64))
                    .collect()
            })
            .collect();
        let mut stepper = LaneStepper::new(model, alpha);
        let mut arena = KnowledgeArena::new();
        // Scalar truth: one execution per lane.
        let execs: Vec<Execution> = (0..64)
            .map(|l| {
                let strings: Vec<BitString> = (0..n)
                    .map(|i| {
                        let s = alpha.source_of(i);
                        BitString::from_bits((0..t).map(|r| source_words[s][r] >> l & 1 == 1))
                    })
                    .collect();
                let rho = Realization::new(strings).unwrap();
                Execution::run(model, &rho, &mut arena)
            })
            .collect();
        for r in 0..t {
            stepper.step(|s| source_words[s][r]);
            for i in 0..n {
                for j in i + 1..n {
                    let (ui, uj) = (stepper.unit_of_node()[i], stepper.unit_of_node()[j]);
                    for (l, exec) in execs.iter().enumerate() {
                        let scalar = exec.knowledge(r + 1, i) == exec.knowledge(r + 1, j);
                        let sliced = ui == uj
                            || stepper.eq_words()
                                [pair_index(stepper.units(), ui.min(uj), ui.max(uj))]
                                >> l
                                & 1
                                == 1;
                        assert_eq!(
                            scalar, sliced,
                            "round {r}, nodes ({i},{j}), lane {l}, model {model}"
                        );
                    }
                }
            }
        }
    }

    /// Cross-checks faulted lanes against 64 scalar
    /// `Execution::run_with_faults` runs — the faulted twin of
    /// `check_against_scalar`. Each lane gets its own compiled
    /// `FaultSchedule`; silence words are the per-round transposition of
    /// the 64 schedules.
    #[allow(clippy::needless_range_loop)]
    fn check_faulted_against_scalar(
        model: &Model,
        alpha: &Assignment,
        t: usize,
        salt: u64,
        spec: &crate::faults::FaultSpec,
    ) {
        let k = alpha.k();
        let n = alpha.n();
        let source_words: Vec<Vec<u64>> = (0..k)
            .map(|s| {
                (0..t)
                    .map(|r| mix(salt ^ (s as u64) << 32 ^ r as u64))
                    .collect()
            })
            .collect();
        let schedules: Vec<crate::faults::FaultSchedule> = (0..64)
            .map(|l| spec.schedule(n, t, salt, l as u64))
            .collect();
        // silence_words[r][i] bit l = node i silent in round r+1, lane l.
        let silence_words: Vec<Vec<u64>> = (1..=t)
            .map(|round| {
                (0..n)
                    .map(|i| {
                        (0..64).fold(0u64, |w, l| {
                            w | u64::from(schedules[l].is_silent(i, round)) << l
                        })
                    })
                    .collect()
            })
            .collect();
        let mut stepper = LaneStepper::new_faulted(model, alpha);
        assert_eq!(stepper.units(), n, "faulted units are nodes");
        let mut arena = KnowledgeArena::new();
        let execs: Vec<Execution> = (0..64)
            .map(|l| {
                let strings: Vec<BitString> = (0..n)
                    .map(|i| {
                        let s = alpha.source_of(i);
                        BitString::from_bits((0..t).map(|r| source_words[s][r] >> l & 1 == 1))
                    })
                    .collect();
                let rho = Realization::new(strings).unwrap();
                Execution::run_with_faults(model, &rho, &schedules[l], &mut arena)
            })
            .collect();
        for r in 0..t {
            stepper.step_faulted(|s| source_words[s][r], |i| silence_words[r][i]);
            for i in 0..n {
                for j in i + 1..n {
                    for (l, exec) in execs.iter().enumerate() {
                        let scalar = exec.knowledge(r + 1, i) == exec.knowledge(r + 1, j);
                        let sliced = stepper.eq_words()[pair_index(n, i, j)] >> l & 1 == 1;
                        assert_eq!(
                            scalar, sliced,
                            "round {r}, nodes ({i},{j}), lane {l}, model {model}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn blackboard_matches_scalar_executions() {
        check_against_scalar(
            &Model::Blackboard,
            &Assignment::from_group_sizes(&[1, 2]).unwrap(),
            5,
            7,
        );
        check_against_scalar(&Model::Blackboard, &Assignment::private(3), 4, 11);
        check_against_scalar(&Model::Blackboard, &Assignment::shared(4), 3, 13);
    }

    #[test]
    fn message_passing_matches_scalar_executions() {
        check_against_scalar(
            &Model::message_passing_cyclic(4),
            &Assignment::private(4),
            4,
            17,
        );
        check_against_scalar(
            &Model::message_passing_cyclic(3),
            &Assignment::from_group_sizes(&[1, 2]).unwrap(),
            5,
            19,
        );
        check_against_scalar(
            &Model::MessagePassing(PortNumbering::adversarial(4, 2)),
            &Assignment::private(4),
            4,
            23,
        );
    }

    #[test]
    fn faulted_blackboard_matches_scalar_executions() {
        let spec = crate::faults::FaultSpec::rates(0.08, 0.2);
        check_faulted_against_scalar(
            &Model::Blackboard,
            &Assignment::from_group_sizes(&[1, 2]).unwrap(),
            5,
            29,
            &spec,
        );
        check_faulted_against_scalar(&Model::Blackboard, &Assignment::private(4), 4, 31, &spec);
        // Shared source: fault-free all nodes stay equal forever, so any
        // split the lanes report comes purely from silence observability.
        check_faulted_against_scalar(&Model::Blackboard, &Assignment::shared(4), 4, 37, &spec);
    }

    #[test]
    fn faulted_message_passing_matches_scalar_executions() {
        let spec = crate::faults::FaultSpec::rates(0.08, 0.2);
        check_faulted_against_scalar(
            &Model::message_passing_cyclic(4),
            &Assignment::private(4),
            4,
            41,
            &spec,
        );
        check_faulted_against_scalar(
            &Model::message_passing_cyclic(3),
            &Assignment::from_group_sizes(&[1, 2]).unwrap(),
            5,
            43,
            &spec,
        );
        check_faulted_against_scalar(
            &Model::MessagePassing(PortNumbering::adversarial(4, 2)),
            &Assignment::private(4),
            4,
            47,
            &spec,
        );
        // High rates stress the both-silent hole==hole case that forces
        // the explicit own-previous conjunct.
        check_faulted_against_scalar(
            &Model::message_passing_cyclic(3),
            &Assignment::private(3),
            5,
            53,
            &crate::faults::FaultSpec::rates(0.3, 0.5),
        );
    }

    #[test]
    fn faulted_stepper_with_zero_silence_matches_fault_free() {
        // Rate 0: the faulted relation over node units must agree with the
        // fault-free relation lifted through unit_of_node.
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        for model in [Model::Blackboard, Model::message_passing_cyclic(3)] {
            let mut plain = LaneStepper::new(&model, &alpha);
            let mut faulted = LaneStepper::new_faulted(&model, &alpha);
            for r in 0..5u64 {
                let words: Vec<u64> = (0..alpha.k())
                    .map(|s| mix(59 ^ (s as u64) << 32 ^ r))
                    .collect();
                plain.step(|s| words[s]);
                faulted.step_faulted(|s| words[s], |_| 0);
                let n = alpha.n();
                for i in 0..n {
                    for j in i + 1..n {
                        let (ui, uj) = (plain.unit_of_node()[i], plain.unit_of_node()[j]);
                        let p = if ui == uj {
                            u64::MAX
                        } else {
                            plain.eq_words()[pair_index(plain.units(), ui.min(uj), ui.max(uj))]
                        };
                        let f = faulted.eq_words()[pair_index(n, i, j)];
                        assert_eq!(p, f, "round {r}, nodes ({i},{j}), model {model}");
                    }
                }
            }
        }
    }

    #[test]
    fn pair_index_is_the_packed_upper_triangle() {
        for m in 1..=8 {
            let mut expect = 0;
            for a in 0..m {
                for b in a + 1..m {
                    assert_eq!(pair_index(m, a, b), expect);
                    expect += 1;
                }
            }
            assert_eq!(pair_count(m), expect);
        }
    }

    #[test]
    fn reset_restores_all_equal() {
        let alpha = Assignment::private(2);
        let mut st = LaneStepper::new(&Model::Blackboard, &alpha);
        st.step(|s| if s == 0 { 0 } else { u64::MAX });
        assert_eq!(st.eq_words()[0], 0);
        st.reset();
        assert_eq!(st.eq_words()[0], u64::MAX);
    }

    #[test]
    fn shared_source_needs_no_pairs() {
        let alpha = Assignment::shared(5);
        let st = LaneStepper::new(&Model::Blackboard, &alpha);
        assert_eq!(st.units(), 1);
        assert!(st.eq_words().is_empty());
    }

    #[test]
    #[should_panic(expected = "port numbering is for")]
    fn node_count_mismatch_panics() {
        let _ = LaneStepper::new(&Model::message_passing_cyclic(3), &Assignment::private(4));
    }
}
