//! Synchronous anonymous full-information execution engine.
//!
//! Implements the two communication models of the paper (Section 2):
//!
//! * the **blackboard model** — Eq. (1): every round each node appends a
//!   message to a shared board; the board content is seen by everyone, in
//!   lexicographic order, with no sender identification;
//! * the **message-passing model** — Eq. (2): nodes form a clique `K_n` with
//!   per-node *port numbers* labeling their `n − 1` incident edges.
//!
//! The engine computes the exact *knowledge* values `K_i(t)` of the paper's
//! recursive definition, represented as hash-consed DAG nodes in a
//! [`KnowledgeArena`]: structurally equal knowledge values intern to the same
//! [`KnowledgeId`], so the paper's consistency relation `i ∼_t j`
//! (`K_i(t) = K_j(t)`) is an integer comparison.
//!
//! The crate also hosts the generic synchronous [`runner`] used by
//! `rsbt-protocols` to execute concrete anonymous algorithms (Algorithm 1,
//! Euclid-style leader election, the Appendix C reduction).
//!
//! # Example
//!
//! Two nodes with private randomness become inconsistent exactly when their
//! bits first differ:
//!
//! ```
//! use rsbt_random::{Assignment, BitString, Realization};
//! use rsbt_sim::{Execution, KnowledgeArena, Model};
//!
//! let alpha = Assignment::private(2);
//! let rho = Realization::new(vec![
//!     BitString::from_bits([false, true]),
//!     BitString::from_bits([false, false]),
//! ]).unwrap();
//! let mut arena = KnowledgeArena::new();
//! let exec = Execution::run(&Model::Blackboard, &rho, &mut arena);
//! assert_eq!(exec.consistency_partition(1), vec![vec![0, 1]]); // same bit
//! assert_eq!(exec.consistency_partition(2), vec![vec![0], vec![1]]);
//! ```

#![deny(deprecated)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod execution;
pub mod faults;
pub mod fxhash;
mod knowledge;
pub mod lanes;
mod model;
pub mod net;
pub mod pool;
pub mod ports;
pub mod runner;
pub mod stats;

pub use crate::execution::{Execution, RoundStepper};
pub use crate::faults::{FaultSchedule, FaultSpec};
pub use crate::fxhash::{FxBuildHasher, FxHashMap, FxHasher};
pub use crate::knowledge::{KnowledgeArena, KnowledgeId, KnowledgeNode, NeighborInfo};
pub use crate::lanes::LaneStepper;
pub use crate::model::Model;
pub use crate::ports::PortNumbering;
