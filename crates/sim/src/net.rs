//! Real multi-process execution over local TCP.
//!
//! The simulator in [`crate::runner`] executes every node inside one
//! process. This module runs the *same* [`Protocol`] state machines as
//! genuinely separate peers — one OS process (or thread) per node —
//! exchanging length-prefixed frames over loopback TCP, with a coordinator
//! that replays the runner's lockstep semantics on the wire: it distributes
//! the [`Assignment`]-derived source bits, enforces round barriers with
//! per-round timeouts, routes posts and port messages exactly as
//! [`crate::runner::run_nodes`] does, and collects decisions.
//!
//! Only `std::net` is used — the workspace is offline.
//!
//! # Wire format
//!
//! Every frame is `u32` little-endian payload length followed by the
//! payload; payloads start with a one-byte tag:
//!
//! | tag | direction | payload after tag |
//! |-----|-----------|-------------------|
//! | `H` | node → coordinator | `u32` node index (handshake) |
//! | `C` | coordinator → node | `u32 n`, `u32 max_rounds`, `u8` model (0 = blackboard, 1 = message passing) |
//! | `R` | coordinator → node | `u32 round`, `u8 bit`, incoming view (`Vec<M>` board or `Vec<Option<M>>` ports) |
//! | `O` | node → coordinator | outgoing action (tag `0..=3` mirroring [`Outgoing`]), then `Option<Output>` decision |
//! | `F` | coordinator → node | empty — run over, node exits |
//!
//! Values are encoded by the [`Wire`] trait: fixed-width little-endian
//! integers, one-byte booleans, `u32`-count-prefixed vectors, one-byte
//! `Option` tags. `M` and `Output` are whatever the protocol's [`Wire`]
//! impls produce.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use rand::Rng;
use rsbt_random::Assignment;

use crate::model::Model;
use crate::runner::{Incoming, Outgoing, Protocol, RoundCtx, RunOptions, RunOutcome, RunStats};

/// Frames larger than this are rejected as malformed (16 MiB).
pub const MAX_FRAME: usize = 16 << 20;

const TAG_HELLO: u8 = b'H';
const TAG_CONFIG: u8 = b'C';
const TAG_ROUND: u8 = b'R';
const TAG_REPLY: u8 = b'O';
const TAG_FINISH: u8 = b'F';

const MODEL_BOARD: u8 = 0;
const MODEL_PORTS: u8 = 1;

/// A malformed or truncated wire payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    what: &'static str,
}

impl WireError {
    /// A decode failure described by `what`.
    pub fn new(what: &'static str) -> Self {
        WireError { what }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed wire data: {}", self.what)
    }
}

impl std::error::Error for WireError {}

/// Failures of the multi-process backend.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (peer died, connection refused, …).
    Io(io::Error),
    /// A read deadline expired; the string names the phase (handshake or
    /// round barrier).
    Timeout(&'static str),
    /// A peer sent a malformed or protocol-violating frame.
    Protocol(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Timeout(phase) => write!(f, "timed out waiting for {phase}"),
            NetError::Protocol(what) => write!(f, "wire protocol violation: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => NetError::Timeout("socket read"),
            _ => NetError::Io(e),
        }
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Protocol(e.to_string())
    }
}

/// Self-describing binary encoding for message and output types.
///
/// Implemented for the primitives and containers protocol messages are
/// built from; protocol crates implement it for their message enums. The
/// encoding is canonical (no padding, fixed endianness), so the socket
/// backend's byte counters are reproducible across runs and hosts.
pub trait Wire: Sized {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `buf`, advancing it past the
    /// consumed bytes.
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError>;

    /// The encoded length in bytes (used as the wire-accurate
    /// [`Protocol::msg_bytes`]).
    fn wire_len(&self) -> usize {
        let mut v = Vec::new();
        self.encode(&mut v);
        v.len()
    }
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if buf.len() < n {
        return Err(WireError::new("truncated payload"));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(take(buf, 1)?[0])
    }

    fn wire_len(&self) -> usize {
        1
    }
}

impl Wire for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let b = take(buf, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn wire_len(&self) -> usize {
        4
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let b = take(buf, 8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn wire_len(&self) -> usize {
        8
    }
}

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        usize::try_from(u64::decode(buf)?).map_err(|_| WireError::new("usize overflow"))
    }

    fn wire_len(&self) -> usize {
        8
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match take(buf, 1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::new("boolean byte not 0/1")),
        }
    }

    fn wire_len(&self) -> usize {
        1
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        let count = u32::try_from(self.len()).expect("vector too long for wire format");
        count.encode(out);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let count = u32::decode(buf)? as usize;
        // Each element consumes at least one byte; reject absurd counts
        // before allocating.
        if count > buf.len() {
            return Err(WireError::new("vector count exceeds payload"));
        }
        let mut items = Vec::with_capacity(count);
        for _ in 0..count {
            items.push(T::decode(buf)?);
        }
        Ok(items)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match take(buf, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            _ => Err(WireError::new("option tag not 0/1")),
        }
    }
}

fn encode_outgoing<M: Wire>(out: &Outgoing<M>, buf: &mut Vec<u8>) {
    match out {
        Outgoing::Silent => buf.push(0),
        Outgoing::Post(m) => {
            buf.push(1);
            m.encode(buf);
        }
        Outgoing::Send(msgs) => {
            buf.push(2);
            let count = u32::try_from(msgs.len()).expect("too many sends");
            count.encode(buf);
            for (port, m) in msgs {
                (*port as u32).encode(buf);
                m.encode(buf);
            }
        }
        Outgoing::Broadcast(m) => {
            buf.push(3);
            m.encode(buf);
        }
    }
}

fn decode_outgoing<M: Wire>(buf: &mut &[u8]) -> Result<Outgoing<M>, WireError> {
    match take(buf, 1)?[0] {
        0 => Ok(Outgoing::Silent),
        1 => Ok(Outgoing::Post(M::decode(buf)?)),
        2 => {
            let count = u32::decode(buf)? as usize;
            if count > buf.len() {
                return Err(WireError::new("send count exceeds payload"));
            }
            let mut msgs = Vec::with_capacity(count);
            for _ in 0..count {
                let port = u32::decode(buf)? as usize;
                msgs.push((port, M::decode(buf)?));
            }
            Ok(Outgoing::Send(msgs))
        }
        3 => Ok(Outgoing::Broadcast(M::decode(buf)?)),
        _ => Err(WireError::new("unknown outgoing tag")),
    }
}

fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), NetError> {
    let len = u32::try_from(payload.len()).expect("frame exceeds u32 length");
    assert!((len as usize) <= MAX_FRAME, "frame exceeds MAX_FRAME");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, NetError> {
    let mut lenb = [0u8; 4];
    r.read_exact(&mut lenb)?;
    let len = u32::from_le_bytes(lenb) as usize;
    if len > MAX_FRAME {
        return Err(NetError::Protocol(format!("oversized frame ({len} bytes)")));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Accepts exactly `n` node connections and orders them by their handshake
/// index. Polls a non-blocking listener so the handshake respects the
/// deadline even if a worker never connects.
fn accept_nodes(
    listener: &TcpListener,
    n: usize,
    timeout: Option<Duration>,
) -> Result<Vec<TcpStream>, NetError> {
    listener.set_nonblocking(true)?;
    // rsbt-analyze: allow(RSBT-L003): socket handshake deadline, not result data
    let deadline = timeout.map(|t| Instant::now() + t);
    let mut slots: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
    let mut accepted = 0;
    while accepted < n {
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(timeout)?;
                stream.set_nodelay(true).ok();
                let frame = read_frame(&mut stream)?;
                let mut buf = frame.as_slice();
                if u8::decode(&mut buf)? != TAG_HELLO {
                    return Err(NetError::Protocol("expected handshake frame".into()));
                }
                let index = u32::decode(&mut buf)? as usize;
                if index >= n {
                    return Err(NetError::Protocol(format!(
                        "node index {index} out of range"
                    )));
                }
                if slots[index].is_some() {
                    return Err(NetError::Protocol(format!("duplicate node index {index}")));
                }
                slots[index] = Some(stream);
                accepted += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // rsbt-analyze: allow(RSBT-L003): deadline poll on the accept loop
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    return Err(NetError::Timeout("node handshake"));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    listener.set_nonblocking(false)?;
    Ok(slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect())
}

/// Runs the coordinator half of a multi-process execution.
///
/// Accepts `alpha.n()` node connections on `listener`, then drives the
/// lockstep rounds: every round it draws one bit per source from `rng`
/// (identically to [`crate::runner::run_nodes_with`] — same seed, same
/// outcome), ships each node its bit and its model-typed incoming view,
/// waits for every reply (the round barrier, bounded by `timeout`), and
/// routes the outgoing messages for the next round. Terminates when every
/// node has decided or `max_rounds` is reached, then tells the nodes to
/// exit.
///
/// `stats.max_msg_bytes` measures the *actual* encoded message bytes on
/// the wire, so a protocol whose [`Protocol::msg_bytes`] returns
/// [`Wire::wire_len`] reports identical stats under both backends.
///
/// # Panics
///
/// Panics when `options.full_participation` is violated (the same
/// release-build invariant as the in-process runner).
pub fn run_coordinator<M, O, R>(
    listener: &TcpListener,
    model: &Model,
    alpha: &Assignment,
    max_rounds: usize,
    rng: &mut R,
    options: RunOptions,
    timeout: Option<Duration>,
) -> Result<RunOutcome<O>, NetError>
where
    M: Wire + Ord + Clone + fmt::Debug,
    O: Wire + Clone + fmt::Debug,
    R: Rng + ?Sized,
{
    let n = alpha.n();
    if let Model::MessagePassing(p) = model {
        assert_eq!(p.n(), n, "port numbering covers {} nodes, need {n}", p.n());
    }
    let mut streams = accept_nodes(listener, n, timeout)?;

    let model_tag = if model.is_blackboard() {
        MODEL_BOARD
    } else {
        MODEL_PORTS
    };
    let mut config = vec![TAG_CONFIG];
    (n as u32).encode(&mut config);
    (max_rounds as u32).encode(&mut config);
    config.push(model_tag);
    for stream in &mut streams {
        write_frame(stream, &config)?;
    }

    let mut board: Vec<(usize, M)> = Vec::new();
    let mut mailboxes: Vec<Vec<Option<M>>> = vec![vec![None; n.saturating_sub(1)]; n];
    let mut outputs: Vec<Option<O>> = vec![None; n];
    let mut rounds = 0;
    let mut stats = RunStats::default();
    let check_participation = options.full_participation && model.is_blackboard();

    for round in 1..=max_rounds {
        rounds = round;
        let source_bits: Vec<bool> = (0..alpha.k()).map(|_| rng.gen::<bool>()).collect();

        // Ship every node its round frame first, then collect replies:
        // nodes compute concurrently while the coordinator blocks on the
        // slowest one (the round barrier).
        for (i, stream) in streams.iter_mut().enumerate() {
            let mut payload = vec![TAG_ROUND];
            (round as u32).encode(&mut payload);
            source_bits[alpha.source_of(i)].encode(&mut payload);
            match model {
                Model::Blackboard => {
                    let mut view: Vec<M> = board
                        .iter()
                        .filter(|(sender, _)| *sender != i)
                        .map(|(_, m)| m.clone())
                        .collect();
                    view.sort();
                    view.encode(&mut payload);
                }
                Model::MessagePassing(_) => {
                    let slots =
                        std::mem::replace(&mut mailboxes[i], vec![None; n.saturating_sub(1)]);
                    slots.encode(&mut payload);
                }
            }
            write_frame(stream, &payload)?;
        }

        let mut next_board: Vec<(usize, M)> = Vec::new();
        let mut next_mailboxes: Vec<Vec<Option<M>>> = vec![vec![None; n.saturating_sub(1)]; n];
        let mut posted = vec![false; n];
        for (i, stream) in streams.iter_mut().enumerate() {
            let frame = match read_frame(stream) {
                Err(NetError::Timeout(_)) => return Err(NetError::Timeout("round barrier reply")),
                other => other?,
            };
            let mut buf = frame.as_slice();
            if u8::decode(&mut buf)? != TAG_REPLY {
                return Err(NetError::Protocol(format!(
                    "node {i}: expected reply frame"
                )));
            }
            let outgoing: Outgoing<M> = decode_outgoing(&mut buf)?;
            outputs[i] = Option::<O>::decode(&mut buf)?;
            match (outgoing, model) {
                (Outgoing::Silent, _) => {}
                (Outgoing::Post(m), Model::Blackboard) => {
                    stats.posts += 1;
                    stats.max_msg_bytes = stats.max_msg_bytes.max(m.wire_len());
                    posted[i] = true;
                    next_board.push((i, m));
                }
                (Outgoing::Send(msgs), Model::MessagePassing(ports)) => {
                    for (port, m) in msgs {
                        if port < 1 || port >= n {
                            return Err(NetError::Protocol(format!(
                                "node {i}: port {port} out of range for n={n}"
                            )));
                        }
                        stats.sends += 1;
                        stats.max_msg_bytes = stats.max_msg_bytes.max(m.wire_len());
                        let target = ports.neighbor(i, port);
                        let back = ports.port_towards(target, i);
                        if next_mailboxes[target][back - 1].is_some() {
                            return Err(NetError::Protocol(format!(
                                "node {i}: duplicate message on edge"
                            )));
                        }
                        next_mailboxes[target][back - 1] = Some(m);
                    }
                }
                (Outgoing::Broadcast(m), Model::MessagePassing(ports)) => {
                    stats.sends += n.saturating_sub(1) as u64;
                    stats.max_msg_bytes = stats.max_msg_bytes.max(m.wire_len());
                    for port in 1..n {
                        let target = ports.neighbor(i, port);
                        let back = ports.port_towards(target, i);
                        next_mailboxes[target][back - 1] = Some(m.clone());
                    }
                }
                (out, _) => {
                    return Err(NetError::Protocol(format!(
                        "node {i}: outgoing {out:?} does not match model {model}"
                    )))
                }
            }
        }
        if check_participation {
            for (i, posted_i) in posted.iter().enumerate() {
                let undecided = outputs[i].is_none();
                assert_eq!(
                    *posted_i,
                    undecided,
                    "full participation violated in round {round}: node {i} {}",
                    if undecided {
                        "is undecided but did not post"
                    } else {
                        "has decided but posted"
                    }
                );
            }
        }
        board = next_board;
        mailboxes = next_mailboxes;

        if outputs.iter().all(Option::is_some) {
            break;
        }
    }

    for stream in &mut streams {
        write_frame(stream, &[TAG_FINISH])?;
    }
    let completed = outputs.iter().all(Option::is_some);
    Ok(RunOutcome {
        outputs,
        rounds,
        completed,
        stats,
        crashed: vec![false; n],
    })
}

/// Retry, backoff, and crash-detection policy for
/// [`run_coordinator_ft`].
#[derive(Clone, Copy, Debug)]
pub struct FtConfig {
    /// Per-attempt socket read deadline during rounds. One round-barrier
    /// wait may block up to `round_timeout × (retries + 1)` plus the
    /// backoff sleeps before the node is declared crashed.
    pub round_timeout: Duration,
    /// Total deadline for the initial handshake; nodes not connected by
    /// then are declared crashed at round 0 instead of failing the run.
    pub handshake_timeout: Duration,
    /// Additional read attempts after the first timed-out read.
    pub retries: u32,
    /// Sleep after the first timed-out read attempt; doubles per retry.
    pub backoff_start: Duration,
    /// Saturation bound for the doubling backoff (also caps the accept
    /// poll interval).
    pub backoff_cap: Duration,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            round_timeout: Duration::from_secs(5),
            handshake_timeout: Duration::from_secs(30),
            retries: 2,
            backoff_start: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
        }
    }
}

impl FtConfig {
    /// A policy whose per-read deadline and handshake deadline are both
    /// `timeout` (retry count and backoff stay at the defaults).
    pub fn with_timeout(timeout: Duration) -> Self {
        FtConfig {
            round_timeout: timeout,
            handshake_timeout: timeout,
            ..FtConfig::default()
        }
    }
}

/// [`read_frame`] with bounded retry: a timed-out read sleeps the
/// (saturating, doubling) backoff and tries again up to `ft.retries`
/// extra times. Any other error — including EOF from a dead peer — is
/// returned immediately.
fn read_frame_ft(r: &mut impl Read, ft: &FtConfig) -> Result<Vec<u8>, NetError> {
    let mut backoff = ft.backoff_start;
    let mut attempt = 0;
    loop {
        match read_frame(r) {
            Err(NetError::Timeout(_)) if attempt < ft.retries => {
                attempt += 1;
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ft.backoff_cap);
            }
            other => return other,
        }
    }
}

/// Like [`accept_nodes`], but degrades instead of failing: polls with an
/// exponentially backed-off interval until `ft.handshake_timeout`, then
/// returns whatever connected — missing slots are `None` (declared
/// crashed at round 0 by the caller) rather than a fatal
/// [`NetError::Timeout`].
fn accept_nodes_ft(
    listener: &TcpListener,
    n: usize,
    ft: &FtConfig,
) -> Result<Vec<Option<TcpStream>>, NetError> {
    listener.set_nonblocking(true)?;
    // rsbt-analyze: allow(RSBT-L003): fault-tolerant handshake deadline
    let deadline = Instant::now() + ft.handshake_timeout;
    let mut slots: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
    let mut accepted = 0;
    let mut poll = Duration::from_millis(1);
    while accepted < n {
        match listener.accept() {
            Ok((mut stream, _)) => {
                poll = Duration::from_millis(1);
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(Some(ft.round_timeout))?;
                stream.set_nodelay(true).ok();
                let frame = read_frame(&mut stream)?;
                let mut buf = frame.as_slice();
                if u8::decode(&mut buf)? != TAG_HELLO {
                    return Err(NetError::Protocol("expected handshake frame".into()));
                }
                let index = u32::decode(&mut buf)? as usize;
                if index >= n {
                    return Err(NetError::Protocol(format!(
                        "node index {index} out of range"
                    )));
                }
                if slots[index].is_some() {
                    return Err(NetError::Protocol(format!("duplicate node index {index}")));
                }
                slots[index] = Some(stream);
                accepted += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // rsbt-analyze: allow(RSBT-L003): deadline poll on the accept loop
                if Instant::now() >= deadline {
                    break;
                }
                std::thread::sleep(poll);
                poll = (poll * 2).min(ft.backoff_cap);
            }
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    listener.set_nonblocking(false)?;
    Ok(slots)
}

/// Fault-tolerant variant of [`run_coordinator`]: instead of aborting the
/// run, a node that misses its deadlines is declared **crashed** and the
/// run degrades gracefully to a partial [`RunOutcome`].
///
/// Differences from the strict coordinator:
///
/// * the handshake accepts whoever connects before
///   [`FtConfig::handshake_timeout`]; missing nodes start crashed;
/// * a round-barrier read retries up to [`FtConfig::retries`] times with
///   saturating exponential backoff; exhaustion, EOF, or any socket error
///   declares the node crashed (recorded in [`RunStats::crashes`] and
///   [`RunOutcome::crashed`]) — never a fatal error;
/// * crashed nodes receive no further frames, their queued mail is
///   dropped, their output is reported `None` even if they had decided
///   earlier, and completion covers the live nodes only;
/// * `on_round(r)` runs at the top of every round **before** any frame is
///   sent — the hook the choreography backend uses to kill a worker
///   process mid-run and prove the degradation path.
///
/// With responsive nodes the RNG draw order, message routing, and
/// counters are identical to [`run_coordinator`] (one bit per source per
/// round, drawn before any send), so estimates stay bit-identical when a
/// backend switches to the fault-tolerant path.
///
/// # Panics
///
/// Panics when `options.full_participation` is violated by a *live* node
/// (crashed nodes are exempt).
#[allow(clippy::too_many_arguments)]
pub fn run_coordinator_ft<M, O, R, C>(
    listener: &TcpListener,
    model: &Model,
    alpha: &Assignment,
    max_rounds: usize,
    rng: &mut R,
    options: RunOptions,
    ft: &FtConfig,
    mut on_round: C,
) -> Result<RunOutcome<O>, NetError>
where
    M: Wire + Ord + Clone + fmt::Debug,
    O: Wire + Clone + fmt::Debug,
    R: Rng + ?Sized,
    C: FnMut(usize),
{
    let n = alpha.n();
    if let Model::MessagePassing(p) = model {
        assert_eq!(p.n(), n, "port numbering covers {} nodes, need {n}", p.n());
    }
    let mut streams = accept_nodes_ft(listener, n, ft)?;
    let mut crashed: Vec<bool> = streams.iter().map(Option::is_none).collect();

    let model_tag = if model.is_blackboard() {
        MODEL_BOARD
    } else {
        MODEL_PORTS
    };
    let mut config = vec![TAG_CONFIG];
    (n as u32).encode(&mut config);
    (max_rounds as u32).encode(&mut config);
    config.push(model_tag);
    for (i, stream) in streams.iter_mut().enumerate() {
        if let Some(s) = stream {
            if write_frame(s, &config).is_err() {
                crashed[i] = true;
                *stream = None;
            }
        }
    }

    let mut board: Vec<(usize, M)> = Vec::new();
    let mut mailboxes: Vec<Vec<Option<M>>> = vec![vec![None; n.saturating_sub(1)]; n];
    let mut outputs: Vec<Option<O>> = vec![None; n];
    let mut rounds = 0;
    let mut stats = RunStats::default();
    let check_participation = options.full_participation && model.is_blackboard();

    for round in 1..=max_rounds {
        on_round(round);
        rounds = round;
        // Drawn before any send, faults or not: keeps the stream aligned
        // with the strict coordinator and the in-process runner.
        let source_bits: Vec<bool> = (0..alpha.k()).map(|_| rng.gen::<bool>()).collect();

        for i in 0..n {
            let Some(stream) = streams[i].as_mut() else {
                continue;
            };
            let mut payload = vec![TAG_ROUND];
            (round as u32).encode(&mut payload);
            source_bits[alpha.source_of(i)].encode(&mut payload);
            match model {
                Model::Blackboard => {
                    let mut view: Vec<M> = board
                        .iter()
                        .filter(|(sender, _)| *sender != i)
                        .map(|(_, m)| m.clone())
                        .collect();
                    view.sort();
                    view.encode(&mut payload);
                }
                Model::MessagePassing(_) => {
                    let slots =
                        std::mem::replace(&mut mailboxes[i], vec![None; n.saturating_sub(1)]);
                    slots.encode(&mut payload);
                }
            }
            if write_frame(stream, &payload).is_err() {
                crashed[i] = true;
                outputs[i] = None;
                streams[i] = None;
            }
        }

        let mut next_board: Vec<(usize, M)> = Vec::new();
        let mut next_mailboxes: Vec<Vec<Option<M>>> = vec![vec![None; n.saturating_sub(1)]; n];
        let mut posted = vec![false; n];
        for i in 0..n {
            let Some(stream) = streams[i].as_mut() else {
                continue;
            };
            let frame = match read_frame_ft(stream, ft) {
                Ok(frame) => frame,
                Err(_) => {
                    // Missed the round barrier past every retry (or the
                    // socket died): declared crashed, not fatal.
                    crashed[i] = true;
                    outputs[i] = None;
                    streams[i] = None;
                    continue;
                }
            };
            let mut buf = frame.as_slice();
            if u8::decode(&mut buf)? != TAG_REPLY {
                return Err(NetError::Protocol(format!(
                    "node {i}: expected reply frame"
                )));
            }
            let outgoing: Outgoing<M> = decode_outgoing(&mut buf)?;
            outputs[i] = Option::<O>::decode(&mut buf)?;
            match (outgoing, model) {
                (Outgoing::Silent, _) => {}
                (Outgoing::Post(m), Model::Blackboard) => {
                    stats.posts += 1;
                    stats.max_msg_bytes = stats.max_msg_bytes.max(m.wire_len());
                    posted[i] = true;
                    next_board.push((i, m));
                }
                (Outgoing::Send(msgs), Model::MessagePassing(ports)) => {
                    for (port, m) in msgs {
                        if port < 1 || port >= n {
                            return Err(NetError::Protocol(format!(
                                "node {i}: port {port} out of range for n={n}"
                            )));
                        }
                        stats.sends += 1;
                        stats.max_msg_bytes = stats.max_msg_bytes.max(m.wire_len());
                        let target = ports.neighbor(i, port);
                        let back = ports.port_towards(target, i);
                        if next_mailboxes[target][back - 1].is_some() {
                            return Err(NetError::Protocol(format!(
                                "node {i}: duplicate message on edge"
                            )));
                        }
                        next_mailboxes[target][back - 1] = Some(m);
                    }
                }
                (Outgoing::Broadcast(m), Model::MessagePassing(ports)) => {
                    stats.sends += n.saturating_sub(1) as u64;
                    stats.max_msg_bytes = stats.max_msg_bytes.max(m.wire_len());
                    for port in 1..n {
                        let target = ports.neighbor(i, port);
                        let back = ports.port_towards(target, i);
                        next_mailboxes[target][back - 1] = Some(m.clone());
                    }
                }
                (out, _) => {
                    return Err(NetError::Protocol(format!(
                        "node {i}: outgoing {out:?} does not match model {model}"
                    )))
                }
            }
        }
        if check_participation {
            for (i, posted_i) in posted.iter().enumerate() {
                if crashed[i] {
                    continue;
                }
                let undecided = outputs[i].is_none();
                assert_eq!(
                    *posted_i,
                    undecided,
                    "full participation violated in round {round}: node {i} {}",
                    if undecided {
                        "is undecided but did not post"
                    } else {
                        "has decided but posted"
                    }
                );
            }
        }
        board = next_board;
        mailboxes = next_mailboxes;

        if outputs
            .iter()
            .enumerate()
            .all(|(i, o)| crashed[i] || o.is_some())
        {
            break;
        }
    }

    for (i, stream) in streams.iter_mut().enumerate() {
        if let Some(s) = stream {
            // A node dying between its last reply and FINISH is still just
            // a crash, not a run failure.
            if write_frame(s, &[TAG_FINISH]).is_err() {
                crashed[i] = true;
                outputs[i] = None;
            }
        }
    }
    for (i, o) in outputs.iter_mut().enumerate() {
        if crashed[i] {
            *o = None;
        }
    }
    stats.crashes = crashed.iter().filter(|&&c| c).count() as u64;
    let completed = outputs
        .iter()
        .enumerate()
        .all(|(i, o)| crashed[i] || o.is_some());
    Ok(RunOutcome {
        outputs,
        rounds,
        completed,
        stats,
        crashed,
    })
}

/// Runs the node half of a multi-process execution: connect to the
/// coordinator at `addr`, announce `index`, then serve rounds until the
/// coordinator signals the end of the run. Returns the node's decision.
pub fn run_node<P>(
    addr: SocketAddr,
    index: usize,
    mut node: P,
    timeout: Option<Duration>,
) -> Result<Option<P::Output>, NetError>
where
    P: Protocol,
    P::Msg: Wire,
    P::Output: Wire,
{
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(timeout)?;
    stream.set_nodelay(true).ok();

    let mut hello = vec![TAG_HELLO];
    (index as u32).encode(&mut hello);
    write_frame(&mut stream, &hello)?;

    let frame = read_frame(&mut stream)?;
    let mut buf = frame.as_slice();
    if u8::decode(&mut buf)? != TAG_CONFIG {
        return Err(NetError::Protocol("expected config frame".into()));
    }
    let n = u32::decode(&mut buf)? as usize;
    let _max_rounds = u32::decode(&mut buf)?;
    let model_tag = u8::decode(&mut buf)?;
    if model_tag != MODEL_BOARD && model_tag != MODEL_PORTS {
        return Err(NetError::Protocol("unknown model tag".into()));
    }

    loop {
        let frame = read_frame(&mut stream)?;
        let mut buf = frame.as_slice();
        match u8::decode(&mut buf)? {
            TAG_ROUND => {
                let round = u32::decode(&mut buf)? as usize;
                let bit = bool::decode(&mut buf)?;
                let incoming = if model_tag == MODEL_BOARD {
                    Incoming::Board(Vec::<P::Msg>::decode(&mut buf)?)
                } else {
                    Incoming::Ports(Vec::<Option<P::Msg>>::decode(&mut buf)?)
                };
                let ctx = RoundCtx { round, bit, n };
                let outgoing = node.round(ctx, &incoming);
                let mut reply = vec![TAG_REPLY];
                encode_outgoing(&outgoing, &mut reply);
                node.output().encode(&mut reply);
                write_frame(&mut stream, &reply)?;
            }
            TAG_FINISH => return Ok(node.output()),
            _ => {
                return Err(NetError::Protocol(
                    "unexpected frame from coordinator".into(),
                ))
            }
        }
    }
}

/// Runs a protocol as `n` real TCP peers on loopback, one thread per node,
/// with the coordinator on the calling thread.
///
/// This exercises the full wire path (handshake, round barriers, framing)
/// inside one process; `make(i)` builds node `i`. The spawn-per-process
/// variant lives in the choreography layer's socket backend, which shells
/// out to worker binaries and drives this module's [`run_coordinator`].
pub fn run_local<P, F, R>(
    model: &Model,
    alpha: &Assignment,
    max_rounds: usize,
    rng: &mut R,
    options: RunOptions,
    timeout: Option<Duration>,
    make: F,
) -> Result<RunOutcome<P::Output>, NetError>
where
    P: Protocol + Send,
    P::Msg: Wire,
    P::Output: Wire + Send,
    F: Fn(usize) -> P,
    R: Rng + ?Sized,
{
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let n = alpha.n();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let node = make(i);
                scope.spawn(move || run_node(addr, i, node, timeout))
            })
            .collect();
        let result = run_coordinator::<P::Msg, P::Output, _>(
            &listener, model, alpha, max_rounds, rng, options, timeout,
        );
        for handle in handles {
            // Worker errors are secondary: the coordinator result already
            // reflects any failed round.
            let _ = handle.join();
        }
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn roundtrip<T: Wire + PartialEq + fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        assert_eq!(buf.len(), v.wire_len());
        let mut cursor = buf.as_slice();
        assert_eq!(T::decode(&mut cursor).unwrap(), v);
        assert!(cursor.is_empty(), "decode consumed the whole encoding");
    }

    #[test]
    fn wire_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(vec![true, false, true]);
        roundtrip(vec![(3u64, 9u64), (1, 2)]);
        roundtrip::<Vec<u64>>(vec![]);
        roundtrip(Some(vec![1u8, 2, 3]));
        roundtrip::<Option<u32>>(None);
    }

    #[test]
    fn wire_rejects_garbage() {
        let mut buf: &[u8] = &[2u8];
        assert!(bool::decode(&mut buf).is_err());
        let mut buf: &[u8] = &[0xff, 0xff, 0xff, 0xff, 1, 2];
        assert!(
            Vec::<u8>::decode(&mut buf).is_err(),
            "absurd count rejected"
        );
        let mut buf: &[u8] = &[1, 2];
        assert!(u32::decode(&mut buf).is_err(), "truncated int rejected");
    }

    #[test]
    fn outgoing_roundtrips() {
        for out in [
            Outgoing::Silent,
            Outgoing::Post(7u8),
            Outgoing::Send(vec![(1, 3u8), (2, 4u8)]),
            Outgoing::Broadcast(9u8),
        ] {
            let mut buf = Vec::new();
            encode_outgoing(&out, &mut buf);
            let mut cursor = buf.as_slice();
            assert_eq!(decode_outgoing::<u8>(&mut cursor).unwrap(), out);
            assert!(cursor.is_empty());
        }
    }

    /// Round 1 post the bit, round 2 decide on the sorted board — the
    /// blackboard smoke protocol.
    #[derive(Default)]
    struct PostBit {
        decided: Option<Vec<bool>>,
    }

    impl Protocol for PostBit {
        type Msg = bool;
        type Output = Vec<bool>;

        fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<bool>) -> Outgoing<bool> {
            if ctx.round == 1 {
                Outgoing::Post(ctx.bit)
            } else {
                if self.decided.is_none() {
                    let board = incoming.board_view().expect("blackboard protocol");
                    self.decided = Some(board.to_vec());
                }
                Outgoing::Silent
            }
        }

        fn output(&self) -> Option<Vec<bool>> {
            self.decided.clone()
        }
    }

    #[test]
    fn loopback_matches_in_process_runner() {
        let alpha = Assignment::private(4);
        for seed in 0..8 {
            let mut sim_rng = StdRng::seed_from_u64(seed);
            let sim = crate::runner::run(
                &Model::Blackboard,
                &alpha,
                6,
                PostBit::default,
                &mut sim_rng,
            );
            let mut net_rng = StdRng::seed_from_u64(seed);
            let net = run_local(
                &Model::Blackboard,
                &alpha,
                6,
                &mut net_rng,
                RunOptions::default(),
                Some(Duration::from_secs(10)),
                |_| PostBit::default(),
            )
            .expect("loopback run");
            assert_eq!(net.completed, sim.completed);
            assert_eq!(net.rounds, sim.rounds);
            assert_eq!(net.outputs, sim.outputs);
            // bool's msg_bytes default (1) equals its wire length, so the
            // byte counters agree across backends too.
            assert_eq!(net.stats, sim.stats);
        }
    }

    /// Message-passing echo over real sockets.
    #[derive(Default)]
    struct NetEcho {
        got: Option<Vec<bool>>,
    }

    impl Protocol for NetEcho {
        type Msg = bool;
        type Output = Vec<bool>;

        fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<bool>) -> Outgoing<bool> {
            if ctx.round == 1 {
                Outgoing::Broadcast(ctx.bit)
            } else {
                if self.got.is_none() {
                    let ports = incoming.ports_view().expect("message-passing protocol");
                    let mut bits: Vec<bool> = ports.iter().map(|m| m.unwrap()).collect();
                    bits.sort_unstable();
                    self.got = Some(bits);
                }
                Outgoing::Silent
            }
        }

        fn output(&self) -> Option<Vec<bool>> {
            self.got.clone()
        }
    }

    #[test]
    fn loopback_message_passing_matches_runner() {
        let alpha = Assignment::private(3);
        let model = Model::message_passing_cyclic(3);
        let mut sim_rng = StdRng::seed_from_u64(42);
        let sim = crate::runner::run(&model, &alpha, 4, NetEcho::default, &mut sim_rng);
        let mut net_rng = StdRng::seed_from_u64(42);
        let net = run_local(
            &model,
            &alpha,
            4,
            &mut net_rng,
            RunOptions::default(),
            Some(Duration::from_secs(10)),
            |_| NetEcho::default(),
        )
        .expect("loopback run");
        assert_eq!(net.outputs, sim.outputs);
        assert_eq!(net.rounds, sim.rounds);
        assert_eq!(net.stats, sim.stats);
    }

    #[test]
    fn ft_coordinator_matches_strict_without_faults() {
        // With responsive nodes the fault-tolerant coordinator must be
        // indistinguishable from the strict one (and from the simulator):
        // same RNG draws, same outputs, same counters.
        let alpha = Assignment::private(4);
        for seed in 0..4 {
            let mut sim_rng = StdRng::seed_from_u64(seed);
            let sim = crate::runner::run(
                &Model::Blackboard,
                &alpha,
                6,
                PostBit::default,
                &mut sim_rng,
            );
            let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            let addr = listener.local_addr().unwrap();
            let mut net_rng = StdRng::seed_from_u64(seed);
            let net = std::thread::scope(|scope| {
                for i in 0..4 {
                    scope.spawn(move || {
                        run_node(addr, i, PostBit::default(), Some(Duration::from_secs(10)))
                    });
                }
                run_coordinator_ft::<bool, Vec<bool>, _, _>(
                    &listener,
                    &Model::Blackboard,
                    &alpha,
                    6,
                    &mut net_rng,
                    RunOptions::default(),
                    &FtConfig::with_timeout(Duration::from_secs(10)),
                    |_| {},
                )
            })
            .expect("loopback run");
            assert_eq!(net.outputs, sim.outputs);
            assert_eq!(net.rounds, sim.rounds);
            assert_eq!(net.stats, sim.stats);
            assert!(net.crashed.iter().all(|&c| !c));
        }
    }

    #[test]
    fn ft_coordinator_survives_mid_run_death() {
        // Node 2 replies to round 1 and then silently dies. The strict
        // coordinator would abort the whole run; the fault-tolerant one
        // must declare it crashed and let the survivors decide.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let alpha = Assignment::private(3);
        let mut rng = StdRng::seed_from_u64(7);
        let ft = FtConfig {
            round_timeout: Duration::from_millis(200),
            handshake_timeout: Duration::from_secs(5),
            retries: 1,
            backoff_start: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(50),
        };
        let out = std::thread::scope(|scope| {
            for i in 0..2 {
                scope.spawn(move || {
                    run_node(addr, i, PostBit::default(), Some(Duration::from_secs(5)))
                });
            }
            scope.spawn(move || -> Result<(), NetError> {
                let mut stream = TcpStream::connect(addr)?;
                stream.set_read_timeout(Some(Duration::from_secs(5)))?;
                let mut hello = vec![TAG_HELLO];
                2u32.encode(&mut hello);
                write_frame(&mut stream, &hello)?;
                let _config = read_frame(&mut stream)?;
                let frame = read_frame(&mut stream)?;
                let mut buf = frame.as_slice();
                assert_eq!(u8::decode(&mut buf).unwrap(), TAG_ROUND);
                let _round = u32::decode(&mut buf).unwrap();
                let bit = bool::decode(&mut buf).unwrap();
                let mut reply = vec![TAG_REPLY];
                encode_outgoing(&Outgoing::Post(bit), &mut reply);
                Option::<Vec<bool>>::None.encode(&mut reply);
                write_frame(&mut stream, &reply)?;
                Ok(()) // drop the stream: an unannounced death
            });
            run_coordinator_ft::<bool, Vec<bool>, _, _>(
                &listener,
                &Model::Blackboard,
                &alpha,
                6,
                &mut rng,
                RunOptions::default(),
                &ft,
                |_| {},
            )
        })
        .expect("graceful degradation, not an abort");
        assert!(out.completed, "survivors decided");
        assert_eq!(out.crashed, vec![false, false, true]);
        assert_eq!(out.outputs[2], None, "dead node reports None");
        assert!(out.outputs[0].is_some() && out.outputs[1].is_some());
        assert_eq!(out.stats.crashes, 1);
        // The round-1 post escaped before the death, so the survivors
        // decided on the full 3-post board.
        assert_eq!(out.stats.posts, 3);
    }

    #[test]
    fn ft_handshake_degrades_when_a_node_never_connects() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let alpha = Assignment::private(2);
        let mut rng = StdRng::seed_from_u64(3);
        let ft = FtConfig {
            round_timeout: Duration::from_secs(5),
            handshake_timeout: Duration::from_millis(300),
            retries: 0,
            backoff_start: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(50),
        };
        let out = std::thread::scope(|scope| {
            scope
                .spawn(move || run_node(addr, 0, PostBit::default(), Some(Duration::from_secs(5))));
            // Node 1 never shows up.
            run_coordinator_ft::<bool, Vec<bool>, _, _>(
                &listener,
                &Model::Blackboard,
                &alpha,
                6,
                &mut rng,
                RunOptions::default(),
                &ft,
                |_| {},
            )
        })
        .expect("degraded, not fatal");
        assert_eq!(out.crashed, vec![false, true]);
        assert_eq!(out.stats.crashes, 1);
        assert!(out.completed);
        // The lone survivor saw an empty board.
        assert_eq!(out.outputs[0], Some(vec![]));
        assert_eq!(out.outputs[1], None);
    }

    #[test]
    fn handshake_times_out_without_workers() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let alpha = Assignment::private(2);
        let mut rng = StdRng::seed_from_u64(0);
        let err = run_coordinator::<bool, bool, _>(
            &listener,
            &Model::Blackboard,
            &alpha,
            3,
            &mut rng,
            RunOptions::default(),
            Some(Duration::from_millis(50)),
        )
        .unwrap_err();
        assert!(matches!(err, NetError::Timeout(_)), "got {err:?}");
    }
}
