//! Synchronous runner for concrete anonymous protocols.
//!
//! While [`crate::Execution`] computes *full-information* knowledge (what
//! the topological framework consumes), real algorithms such as the paper's
//! `CreateMatching` (Algorithm 1) exchange small messages. This module runs
//! `n` identical anonymous state machines in lockstep rounds, wiring their
//! randomness through an [`Assignment`] so correlated sources are modeled
//! faithfully.

use std::fmt;

use rand::Rng;
use rsbt_random::Assignment;

use crate::model::Model;

/// Per-round context handed to each node.
#[derive(Clone, Copy, Debug)]
pub struct RoundCtx {
    /// The 1-based round number `r` (the round occurs between time `r − 1`
    /// and time `r`).
    pub round: usize,
    /// The bit `X_i(r)` received from the node's randomness source.
    pub bit: bool,
    /// The system size `n` (common knowledge in the paper's model).
    pub n: usize,
}

/// Messages received by a node at the start of a round.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Incoming<M> {
    /// Blackboard model: everything the *other* nodes posted in the
    /// previous round, sorted (anonymous, lexicographic board order; own
    /// post excluded, per Eq. 1). Empty in round 1.
    Board(Vec<M>),
    /// Message-passing model: `ports[j - 1]` holds the message (if any)
    /// that arrived through port `j`. Empty slots in round 1.
    Ports(Vec<Option<M>>),
}

impl<M> Incoming<M> {
    /// The board content; panics in the message-passing model.
    ///
    /// # Panics
    ///
    /// Panics when called on [`Incoming::Ports`].
    pub fn board(&self) -> &[M] {
        match self {
            Incoming::Board(b) => b,
            Incoming::Ports(_) => panic!("protocol expected the blackboard model"),
        }
    }

    /// The per-port slots; panics in the blackboard model.
    ///
    /// # Panics
    ///
    /// Panics when called on [`Incoming::Board`].
    pub fn ports(&self) -> &[Option<M>] {
        match self {
            Incoming::Ports(p) => p,
            Incoming::Board(_) => panic!("protocol expected the message-passing model"),
        }
    }
}

/// Messages emitted by a node at the end of a round.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outgoing<M> {
    /// Send nothing this round.
    Silent,
    /// Blackboard model: append one message to the board.
    Post(M),
    /// Message-passing model: send each `(port, message)` pair (at most one
    /// message per port).
    Send(Vec<(usize, M)>),
    /// Message-passing model: send the same message through every port.
    Broadcast(M),
}

/// An anonymous synchronous protocol: `n` copies of the same state machine.
///
/// Nodes have no identifiers; a node may only distinguish neighbors by its
/// local port numbers, exactly as in the paper's model.
pub trait Protocol {
    /// Message alphabet. `Ord` is required so the blackboard can be
    /// presented in lexicographic order.
    type Msg: Clone + Ord + fmt::Debug;
    /// Decision value.
    type Output: Clone + fmt::Debug;

    /// Executes one round: consume the incoming messages and the fresh
    /// random bit, update local state, and emit outgoing messages.
    fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<Self::Msg>) -> Outgoing<Self::Msg>;

    /// The node's decision, once made. The runner stops when every node
    /// has decided (or the round cap is hit).
    fn output(&self) -> Option<Self::Output>;
}

/// The result of running a protocol.
#[derive(Clone, Debug)]
pub struct RunOutcome<O> {
    /// Per-node outputs (`None` for undecided nodes on timeout).
    pub outputs: Vec<Option<O>>,
    /// Rounds executed.
    pub rounds: usize,
    /// Whether every node decided before the round cap.
    pub completed: bool,
}

/// Runs `n` identical nodes of protocol `P` under `model`, drawing
/// randomness through `alpha`, for at most `max_rounds` rounds.
///
/// `make` constructs one fresh node; it is called `n` times with no
/// arguments so that nodes are genuinely identical (anonymity).
///
/// # Panics
///
/// Panics if `alpha.n()` disagrees with the model's node count, or if a
/// node emits a message kind that does not match the model (e.g.
/// [`Outgoing::Post`] under message passing).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rsbt_random::Assignment;
/// use rsbt_sim::runner::{run, Incoming, Outgoing, Protocol, RoundCtx};
/// use rsbt_sim::Model;
///
/// /// Every node posts its bit and decides on the sorted board.
/// #[derive(Default)]
/// struct OneShot { decided: Option<Vec<bool>> }
/// impl Protocol for OneShot {
///     type Msg = bool;
///     type Output = Vec<bool>;
///     fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<bool>) -> Outgoing<bool> {
///         if ctx.round == 1 {
///             Outgoing::Post(ctx.bit)
///         } else {
///             self.decided = Some(incoming.board().to_vec());
///             Outgoing::Silent
///         }
///     }
///     fn output(&self) -> Option<Vec<bool>> { self.decided.clone() }
/// }
///
/// let alpha = Assignment::private(3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let out = run(&Model::Blackboard, &alpha, 10, OneShot::default, &mut rng);
/// assert!(out.completed);
/// assert_eq!(out.rounds, 2);
/// ```
pub fn run<P, F, R>(
    model: &Model,
    alpha: &Assignment,
    max_rounds: usize,
    make: F,
    rng: &mut R,
) -> RunOutcome<P::Output>
where
    P: Protocol,
    F: Fn() -> P,
    R: Rng + ?Sized,
{
    let nodes: Vec<P> = (0..alpha.n()).map(|_| make()).collect();
    run_nodes(model, alpha, max_rounds, nodes, rng)
}

/// Like [`run`], but with caller-constructed nodes — used for input-output
/// tasks where nodes run identical *code* but carry different inputs
/// (the Appendix C reduction).
///
/// # Panics
///
/// Same conditions as [`run`], plus `nodes.len()` must equal `alpha.n()`.
pub fn run_nodes<P, R>(
    model: &Model,
    alpha: &Assignment,
    max_rounds: usize,
    mut nodes: Vec<P>,
    rng: &mut R,
) -> RunOutcome<P::Output>
where
    P: Protocol,
    R: Rng + ?Sized,
{
    let n = alpha.n();
    assert_eq!(nodes.len(), n, "one node per assignment slot");
    if let Model::MessagePassing(p) = model {
        assert_eq!(p.n(), n, "port numbering covers {} nodes, need {n}", p.n());
    }
    // What each node will receive next round. Board posts are tagged with
    // the sender so a node's own message can be excluded from its view
    // (Eq. 1 hands node i the multiset {K_j : j ≠ i}); the tag never
    // reaches the nodes, preserving anonymity.
    let mut board: Vec<(usize, P::Msg)> = Vec::new();
    let mut mailboxes: Vec<Vec<Option<P::Msg>>> = vec![vec![None; n.saturating_sub(1)]; n];
    let mut rounds = 0;

    for round in 1..=max_rounds {
        rounds = round;
        // One fresh bit per source, wired through alpha.
        let source_bits: Vec<bool> = (0..alpha.k()).map(|_| rng.gen::<bool>()).collect();
        let mut next_board: Vec<(usize, P::Msg)> = Vec::new();
        let mut next_mailboxes: Vec<Vec<Option<P::Msg>>> = vec![vec![None; n.saturating_sub(1)]; n];

        for (i, node) in nodes.iter_mut().enumerate() {
            let ctx = RoundCtx {
                round,
                bit: source_bits[alpha.source_of(i)],
                n,
            };
            let incoming = match model {
                Model::Blackboard => {
                    let mut view: Vec<P::Msg> = board
                        .iter()
                        .filter(|(sender, _)| *sender != i)
                        .map(|(_, m)| m.clone())
                        .collect();
                    view.sort();
                    Incoming::Board(view)
                }
                Model::MessagePassing(_) => Incoming::Ports(std::mem::replace(
                    &mut mailboxes[i],
                    vec![None; n.saturating_sub(1)],
                )),
            };
            match (node.round(ctx, &incoming), model) {
                (Outgoing::Silent, _) => {}
                (Outgoing::Post(m), Model::Blackboard) => next_board.push((i, m)),
                (Outgoing::Send(msgs), Model::MessagePassing(ports)) => {
                    for (port, m) in msgs {
                        assert!(port >= 1 && port < n, "port {port} out of range for n={n}");
                        let target = ports.neighbor(i, port);
                        let back = ports.port_towards(target, i);
                        assert!(
                            next_mailboxes[target][back - 1].is_none(),
                            "duplicate message on edge"
                        );
                        next_mailboxes[target][back - 1] = Some(m);
                    }
                }
                (Outgoing::Broadcast(m), Model::MessagePassing(ports)) => {
                    for port in 1..n {
                        let target = ports.neighbor(i, port);
                        let back = ports.port_towards(target, i);
                        next_mailboxes[target][back - 1] = Some(m.clone());
                    }
                }
                (out, _) => panic!("outgoing message {out:?} does not match model {model}"),
            }
        }
        board = next_board;
        mailboxes = next_mailboxes;

        if nodes.iter().all(|nd| nd.output().is_some()) {
            return RunOutcome {
                outputs: nodes.iter().map(Protocol::output).collect(),
                rounds,
                completed: true,
            };
        }
    }
    RunOutcome {
        outputs: nodes.iter().map(Protocol::output).collect(),
        rounds,
        completed: nodes.iter().all(|nd| nd.output().is_some()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rsbt_random::Assignment;

    /// Counts how many distinct bits appeared on the board in round 1.
    #[derive(Default)]
    struct BitCounter {
        seen: Option<usize>,
    }

    impl Protocol for BitCounter {
        type Msg = bool;
        type Output = usize;

        fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<bool>) -> Outgoing<bool> {
            if ctx.round == 1 {
                Outgoing::Post(ctx.bit)
            } else {
                if self.seen.is_none() {
                    let board = incoming.board();
                    let distinct = board.windows(2).filter(|w| w[0] != w[1]).count() + 1;
                    self.seen = Some(if board.is_empty() { 0 } else { distinct });
                }
                Outgoing::Silent
            }
        }

        fn output(&self) -> Option<usize> {
            self.seen
        }
    }

    #[test]
    fn shared_source_posts_identical_bits() {
        let alpha = Assignment::shared(4);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let out = run(&Model::Blackboard, &alpha, 5, BitCounter::default, &mut rng);
            assert!(out.completed);
            assert_eq!(out.rounds, 2);
            for o in &out.outputs {
                assert_eq!(o.unwrap(), 1, "all bits equal under a shared source");
            }
        }
    }

    #[test]
    fn private_sources_eventually_differ() {
        let alpha = Assignment::private(4);
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_diff = false;
        for _ in 0..50 {
            let out = run(&Model::Blackboard, &alpha, 5, BitCounter::default, &mut rng);
            if out.outputs[0] == Some(2) {
                saw_diff = true;
            }
        }
        assert!(saw_diff, "independent bits differ with probability 7/8");
    }

    /// Message-passing echo: round 1 send bit on every port; round 2 decide
    /// on the multiset of received bits.
    #[derive(Default)]
    struct Echo {
        got: Option<Vec<bool>>,
    }

    impl Protocol for Echo {
        type Msg = bool;
        type Output = Vec<bool>;

        fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<bool>) -> Outgoing<bool> {
            if ctx.round == 1 {
                Outgoing::Broadcast(ctx.bit)
            } else {
                if self.got.is_none() {
                    let mut bits: Vec<bool> = incoming.ports().iter().map(|m| m.unwrap()).collect();
                    bits.sort_unstable();
                    self.got = Some(bits);
                }
                Outgoing::Silent
            }
        }

        fn output(&self) -> Option<Vec<bool>> {
            self.got.clone()
        }
    }

    #[test]
    fn broadcast_reaches_every_port() {
        let alpha = Assignment::private(3);
        let mut rng = StdRng::seed_from_u64(9);
        let out = run(
            &Model::message_passing_cyclic(3),
            &alpha,
            4,
            Echo::default,
            &mut rng,
        );
        assert!(out.completed);
        for o in &out.outputs {
            assert_eq!(o.as_ref().unwrap().len(), 2);
        }
    }

    /// Directed send: node sends its bit only through port 1 and records
    /// what shows up.
    #[derive(Default)]
    struct Port1 {
        got: Option<usize>,
    }

    impl Protocol for Port1 {
        type Msg = u8;
        type Output = usize;

        fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<u8>) -> Outgoing<u8> {
            if ctx.round == 1 {
                Outgoing::Send(vec![(1, 7u8)])
            } else {
                if self.got.is_none() {
                    self.got = Some(incoming.ports().iter().flatten().count());
                }
                Outgoing::Silent
            }
        }

        fn output(&self) -> Option<usize> {
            self.got
        }
    }

    #[test]
    fn unicast_is_delivered_once() {
        let alpha = Assignment::private(4);
        let mut rng = StdRng::seed_from_u64(11);
        let out = run(
            &Model::message_passing_cyclic(4),
            &alpha,
            4,
            Port1::default,
            &mut rng,
        );
        assert!(out.completed);
        // With cyclic ports every node's port 1 hits its successor: each
        // node receives exactly one message.
        assert!(out.outputs.iter().all(|o| *o == Some(1)));
    }

    /// A protocol that never decides — runner must time out gracefully.
    struct Mute;

    impl Protocol for Mute {
        type Msg = u8;
        type Output = ();

        fn round(&mut self, _ctx: RoundCtx, _incoming: &Incoming<u8>) -> Outgoing<u8> {
            Outgoing::Silent
        }

        fn output(&self) -> Option<()> {
            None
        }
    }

    #[test]
    fn timeout_reports_incomplete() {
        let alpha = Assignment::shared(2);
        let mut rng = StdRng::seed_from_u64(0);
        let out = run(&Model::Blackboard, &alpha, 3, || Mute, &mut rng);
        assert!(!out.completed);
        assert_eq!(out.rounds, 3);
        assert!(out.outputs.iter().all(Option::is_none));
    }

    #[test]
    #[should_panic(expected = "does not match model")]
    fn model_mismatch_panics() {
        struct BadPost;
        impl Protocol for BadPost {
            type Msg = u8;
            type Output = ();
            fn round(&mut self, _ctx: RoundCtx, _incoming: &Incoming<u8>) -> Outgoing<u8> {
                Outgoing::Post(0)
            }
            fn output(&self) -> Option<()> {
                None
            }
        }
        let alpha = Assignment::shared(2);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = run(
            &Model::message_passing_cyclic(2),
            &alpha,
            2,
            || BadPost,
            &mut rng,
        );
    }
}
