//! Synchronous runner for concrete anonymous protocols.
//!
//! While [`crate::Execution`] computes *full-information* knowledge (what
//! the topological framework consumes), real algorithms such as the paper's
//! `CreateMatching` (Algorithm 1) exchange small messages. This module runs
//! `n` identical anonymous state machines in lockstep rounds, wiring their
//! randomness through an [`Assignment`] so correlated sources are modeled
//! faithfully.

use std::fmt;
use std::ops::Deref;

use rand::Rng;
use rsbt_random::Assignment;

use crate::model::Model;

/// Per-round context handed to each node.
#[derive(Clone, Copy, Debug)]
pub struct RoundCtx {
    /// The 1-based round number `r` (the round occurs between time `r − 1`
    /// and time `r`).
    pub round: usize,
    /// The bit `X_i(r)` received from the node's randomness source.
    pub bit: bool,
    /// The system size `n` (common knowledge in the paper's model).
    pub n: usize,
}

/// Messages received by a node at the start of a round.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Incoming<M> {
    /// Blackboard model: everything the *other* nodes posted in the
    /// previous round, sorted (anonymous, lexicographic board order; own
    /// post excluded, per Eq. 1). Empty in round 1.
    Board(Vec<M>),
    /// Message-passing model: `ports[j - 1]` holds the message (if any)
    /// that arrived through port `j`. Empty slots in round 1.
    Ports(Vec<Option<M>>),
}

/// Model-typed view of a blackboard round: the other nodes' posts from the
/// previous round, in lexicographic order.
///
/// Produced by [`Incoming::board_view`]; a protocol written against this
/// type can only ever observe blackboard input, so wiring it to the
/// message-passing model is rejected before any round runs instead of
/// panicking mid-execution.
#[derive(Clone, Copy, Debug)]
pub struct BoardView<'a, M> {
    msgs: &'a [M],
}

impl<'a, M> BoardView<'a, M> {
    /// Wraps a sorted board slice.
    pub fn new(msgs: &'a [M]) -> Self {
        BoardView { msgs }
    }

    /// The board content as a slice (also available through `Deref`).
    pub fn as_slice(&self) -> &'a [M] {
        self.msgs
    }
}

impl<M> Deref for BoardView<'_, M> {
    type Target = [M];

    fn deref(&self) -> &[M] {
        self.msgs
    }
}

/// Model-typed view of a message-passing round: `slot j - 1` holds the
/// message (if any) that arrived through port `j`.
///
/// Produced by [`Incoming::ports_view`]; the dual of [`BoardView`] for the
/// message-passing model.
#[derive(Clone, Copy, Debug)]
pub struct PortsView<'a, M> {
    slots: &'a [Option<M>],
}

impl<'a, M> PortsView<'a, M> {
    /// Wraps a per-port slot slice.
    pub fn new(slots: &'a [Option<M>]) -> Self {
        PortsView { slots }
    }

    /// The per-port slots as a slice (also available through `Deref`).
    pub fn as_slice(&self) -> &'a [Option<M>] {
        self.slots
    }
}

impl<M> Deref for PortsView<'_, M> {
    type Target = [Option<M>];

    fn deref(&self) -> &[Option<M>] {
        self.slots
    }
}

impl<M> Incoming<M> {
    /// The blackboard view, or `None` under message passing.
    ///
    /// Non-panicking and model-typed: the choreography layer's projected
    /// machines receive a [`BoardView`] directly, so a model mismatch
    /// surfaces at projection time rather than as a runtime panic.
    pub fn board_view(&self) -> Option<BoardView<'_, M>> {
        match self {
            Incoming::Board(b) => Some(BoardView::new(b)),
            Incoming::Ports(_) => None,
        }
    }

    /// The per-port view, or `None` under the blackboard model.
    ///
    /// Non-panicking, model-typed dual of [`Incoming::board_view`].
    pub fn ports_view(&self) -> Option<PortsView<'_, M>> {
        match self {
            Incoming::Ports(p) => Some(PortsView::new(p)),
            Incoming::Board(_) => None,
        }
    }
}

/// Messages emitted by a node at the end of a round.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outgoing<M> {
    /// Send nothing this round.
    Silent,
    /// Blackboard model: append one message to the board.
    Post(M),
    /// Message-passing model: send each `(port, message)` pair (at most one
    /// message per port).
    Send(Vec<(usize, M)>),
    /// Message-passing model: send the same message through every port.
    Broadcast(M),
}

/// An anonymous synchronous protocol: `n` copies of the same state machine.
///
/// Nodes have no identifiers; a node may only distinguish neighbors by its
/// local port numbers, exactly as in the paper's model.
pub trait Protocol {
    /// Message alphabet. `Ord` is required so the blackboard can be
    /// presented in lexicographic order.
    type Msg: Clone + Ord + fmt::Debug;
    /// Decision value.
    type Output: Clone + fmt::Debug;

    /// Executes one round: consume the incoming messages and the fresh
    /// random bit, update local state, and emit outgoing messages.
    fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<Self::Msg>) -> Outgoing<Self::Msg>;

    /// The node's decision, once made. The runner stops when every node
    /// has decided (or the round cap is hit).
    fn output(&self) -> Option<Self::Output>;

    /// Size in bytes charged to one message for the [`RunStats`]
    /// `max_msg_bytes` counter.
    ///
    /// Defaults to the in-memory size; protocols with a wire encoding
    /// override this with the encoded length so simulator and socket
    /// backends report comparable byte costs.
    fn msg_bytes(msg: &Self::Msg) -> usize {
        std::mem::size_of_val(msg)
    }
}

/// Per-run communication counters, accumulated by the runner.
///
/// The socket backend reports the same fields measured on the real wire,
/// so backend costs are directly comparable.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct RunStats {
    /// Total blackboard posts across all nodes and rounds.
    pub posts: u64,
    /// Total point-to-point deliveries (each [`Outgoing::Send`] entry
    /// counts once; a [`Outgoing::Broadcast`] counts `n − 1`).
    pub sends: u64,
    /// Largest single message, in bytes (see [`Protocol::msg_bytes`]).
    pub max_msg_bytes: usize,
    /// Nodes that crashed during the run (permanent silence — injected by
    /// a [`crate::faults::FaultSchedule`], or declared by the
    /// fault-tolerant socket coordinator).
    pub crashes: u64,
    /// Transmissions dropped by omission faults (a dropped
    /// [`Outgoing::Post`] counts 1, a dropped [`Outgoing::Send`] counts
    /// its entries, a dropped [`Outgoing::Broadcast`] counts `n − 1`).
    pub omissions: u64,
}

/// The result of running a protocol.
#[derive(Clone, Debug)]
pub struct RunOutcome<O> {
    /// Per-node outputs (`None` for undecided nodes on timeout, and
    /// always `None` for crashed nodes).
    pub outputs: Vec<Option<O>>,
    /// Rounds executed.
    pub rounds: usize,
    /// Whether every *live* (non-crashed) node decided before the round
    /// cap.
    pub completed: bool,
    /// Message and byte counters for the run.
    pub stats: RunStats,
    /// Which nodes had crashed by the end of the run (all `false` on the
    /// fault-free paths).
    pub crashed: Vec<bool>,
}

/// Execution options for [`run_nodes_with`].
#[derive(Clone, Copy, Default, Debug)]
pub struct RunOptions {
    /// Enforce the blackboard full-participation invariant in *release*
    /// builds: in every round, each node that has not decided by the end
    /// of the round must have posted exactly one message, and each node
    /// that has decided must have stayed silent.
    ///
    /// This promotes the debug-only `debug_assert` the blackboard
    /// protocols used to carry locally into a runner-level check. Only
    /// meaningful under [`Model::Blackboard`]; ignored (vacuously true)
    /// under message passing.
    pub full_participation: bool,
}

/// Runs `n` identical nodes of protocol `P` under `model`, drawing
/// randomness through `alpha`, for at most `max_rounds` rounds.
///
/// `make` constructs one fresh node; it is called `n` times with no
/// arguments so that nodes are genuinely identical (anonymity).
///
/// # Panics
///
/// Panics if `alpha.n()` disagrees with the model's node count, or if a
/// node emits a message kind that does not match the model (e.g.
/// [`Outgoing::Post`] under message passing).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rsbt_random::Assignment;
/// use rsbt_sim::runner::{run, Incoming, Outgoing, Protocol, RoundCtx};
/// use rsbt_sim::Model;
///
/// /// Every node posts its bit and decides on the sorted board.
/// #[derive(Default)]
/// struct OneShot { decided: Option<Vec<bool>> }
/// impl Protocol for OneShot {
///     type Msg = bool;
///     type Output = Vec<bool>;
///     fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<bool>) -> Outgoing<bool> {
///         if ctx.round == 1 {
///             Outgoing::Post(ctx.bit)
///         } else {
///             self.decided = Some(incoming.board_view().unwrap().to_vec());
///             Outgoing::Silent
///         }
///     }
///     fn output(&self) -> Option<Vec<bool>> { self.decided.clone() }
/// }
///
/// let alpha = Assignment::private(3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let out = run(&Model::Blackboard, &alpha, 10, OneShot::default, &mut rng);
/// assert!(out.completed);
/// assert_eq!(out.rounds, 2);
/// assert_eq!(out.stats.posts, 3);
/// ```
pub fn run<P, F, R>(
    model: &Model,
    alpha: &Assignment,
    max_rounds: usize,
    make: F,
    rng: &mut R,
) -> RunOutcome<P::Output>
where
    P: Protocol,
    F: Fn() -> P,
    R: Rng + ?Sized,
{
    let nodes: Vec<P> = (0..alpha.n()).map(|_| make()).collect();
    run_nodes(model, alpha, max_rounds, nodes, rng)
}

/// Like [`run`], but with caller-constructed nodes — used for input-output
/// tasks where nodes run identical *code* but carry different inputs
/// (the Appendix C reduction).
///
/// # Panics
///
/// Same conditions as [`run`], plus `nodes.len()` must equal `alpha.n()`.
pub fn run_nodes<P, R>(
    model: &Model,
    alpha: &Assignment,
    max_rounds: usize,
    nodes: Vec<P>,
    rng: &mut R,
) -> RunOutcome<P::Output>
where
    P: Protocol,
    R: Rng + ?Sized,
{
    run_nodes_with(model, alpha, max_rounds, nodes, rng, RunOptions::default())
}

/// Like [`run_nodes`], with explicit [`RunOptions`] (the choreography
/// layer derives the options from the projected global protocol).
///
/// # Panics
///
/// Same conditions as [`run_nodes`]; additionally panics — in release
/// builds too — when `options.full_participation` is set under the
/// blackboard model and a round violates the invariant documented on
/// [`RunOptions::full_participation`].
pub fn run_nodes_with<P, R>(
    model: &Model,
    alpha: &Assignment,
    max_rounds: usize,
    nodes: Vec<P>,
    rng: &mut R,
    options: RunOptions,
) -> RunOutcome<P::Output>
where
    P: Protocol,
    R: Rng + ?Sized,
{
    // A zero-horizon schedule is never silent: this is exactly the
    // fault-free run (identical RNG draws, identical behavior).
    let faults = crate::faults::FaultSchedule::empty(alpha.n(), 0);
    run_nodes_with_faults(model, alpha, max_rounds, nodes, rng, options, &faults)
}

/// Like [`run_nodes_with`], under a [`crate::faults::FaultSchedule`].
///
/// Fault semantics (see [`crate::faults`]): a node that *omits* in a
/// round still executes it, but every transmission it emitted is dropped
/// (counted in [`RunStats::omissions`]); a node that has *crashed* stops
/// executing entirely — its output is reported as `None` even if it had
/// decided earlier, it is flagged in [`RunOutcome::crashed`], and
/// completion only requires the live nodes to decide. Source bits are
/// drawn identically every round regardless of faults, so runs under
/// different schedules stay coupled to the same randomness.
///
/// # Panics
///
/// Same conditions as [`run_nodes_with`] (the participation check
/// exempts nodes silent in the violating round), plus
/// `faults.n() == alpha.n()`.
#[allow(clippy::too_many_arguments)]
pub fn run_nodes_with_faults<P, R>(
    model: &Model,
    alpha: &Assignment,
    max_rounds: usize,
    mut nodes: Vec<P>,
    rng: &mut R,
    options: RunOptions,
    faults: &crate::faults::FaultSchedule,
) -> RunOutcome<P::Output>
where
    P: Protocol,
    R: Rng + ?Sized,
{
    let n = alpha.n();
    assert_eq!(nodes.len(), n, "one node per assignment slot");
    assert_eq!(faults.n(), n, "fault schedule covers {} nodes", faults.n());
    if let Model::MessagePassing(p) = model {
        assert_eq!(p.n(), n, "port numbering covers {} nodes, need {n}", p.n());
    }
    // What each node will receive next round. Board posts are tagged with
    // the sender so a node's own message can be excluded from its view
    // (Eq. 1 hands node i the multiset {K_j : j ≠ i}); the tag never
    // reaches the nodes, preserving anonymity.
    let mut board: Vec<(usize, P::Msg)> = Vec::new();
    let mut mailboxes: Vec<Vec<Option<P::Msg>>> = vec![vec![None; n.saturating_sub(1)]; n];
    let mut rounds = 0;
    let mut stats = RunStats::default();
    let check_participation = options.full_participation && model.is_blackboard();
    let mut posted = vec![false; n];

    for round in 1..=max_rounds {
        rounds = round;
        // One fresh bit per source, wired through alpha.
        let source_bits: Vec<bool> = (0..alpha.k()).map(|_| rng.gen::<bool>()).collect();
        let mut next_board: Vec<(usize, P::Msg)> = Vec::new();
        let mut next_mailboxes: Vec<Vec<Option<P::Msg>>> = vec![vec![None; n.saturating_sub(1)]; n];
        posted.fill(false);

        for (i, node) in nodes.iter_mut().enumerate() {
            if faults.crashed_by(i, round) {
                // Dead: no execution at all. Mail addressed to it is
                // simply never read.
                continue;
            }
            let silent_now = faults.is_silent(i, round);
            let ctx = RoundCtx {
                round,
                bit: source_bits[alpha.source_of(i)],
                n,
            };
            let incoming = match model {
                Model::Blackboard => {
                    let mut view: Vec<P::Msg> = board
                        .iter()
                        .filter(|(sender, _)| *sender != i)
                        .map(|(_, m)| m.clone())
                        .collect();
                    view.sort();
                    Incoming::Board(view)
                }
                Model::MessagePassing(_) => Incoming::Ports(std::mem::replace(
                    &mut mailboxes[i],
                    vec![None; n.saturating_sub(1)],
                )),
            };
            match (node.round(ctx, &incoming), model) {
                (Outgoing::Silent, _) => {}
                (Outgoing::Post(m), Model::Blackboard) => {
                    if silent_now {
                        stats.omissions += 1;
                    } else {
                        stats.posts += 1;
                        stats.max_msg_bytes = stats.max_msg_bytes.max(P::msg_bytes(&m));
                        posted[i] = true;
                        next_board.push((i, m));
                    }
                }
                (Outgoing::Send(msgs), Model::MessagePassing(ports)) => {
                    if silent_now {
                        stats.omissions += msgs.len() as u64;
                    } else {
                        for (port, m) in msgs {
                            assert!(port >= 1 && port < n, "port {port} out of range for n={n}");
                            stats.sends += 1;
                            stats.max_msg_bytes = stats.max_msg_bytes.max(P::msg_bytes(&m));
                            let target = ports.neighbor(i, port);
                            let back = ports.port_towards(target, i);
                            assert!(
                                next_mailboxes[target][back - 1].is_none(),
                                "duplicate message on edge"
                            );
                            next_mailboxes[target][back - 1] = Some(m);
                        }
                    }
                }
                (Outgoing::Broadcast(m), Model::MessagePassing(ports)) => {
                    if silent_now {
                        stats.omissions += n.saturating_sub(1) as u64;
                    } else {
                        stats.sends += n.saturating_sub(1) as u64;
                        stats.max_msg_bytes = stats.max_msg_bytes.max(P::msg_bytes(&m));
                        for port in 1..n {
                            let target = ports.neighbor(i, port);
                            let back = ports.port_towards(target, i);
                            next_mailboxes[target][back - 1] = Some(m.clone());
                        }
                    }
                }
                (out, _) => panic!("outgoing message {out:?} does not match model {model}"),
            }
        }
        if check_participation {
            for (i, node) in nodes.iter().enumerate() {
                if faults.is_silent(i, round) {
                    // A silent node cannot post; don't hold that against
                    // the protocol.
                    continue;
                }
                let undecided = node.output().is_none();
                assert_eq!(
                    posted[i],
                    undecided,
                    "full participation violated in round {round}: node {i} {}",
                    if undecided {
                        "is undecided but did not post"
                    } else {
                        "has decided but posted"
                    }
                );
            }
        }
        board = next_board;
        mailboxes = next_mailboxes;

        if nodes
            .iter()
            .enumerate()
            .all(|(i, nd)| faults.crashed_by(i, round) || nd.output().is_some())
        {
            return faulted_outcome(&nodes, rounds, stats, faults);
        }
    }
    faulted_outcome(&nodes, rounds, stats, faults)
}

/// Builds a [`RunOutcome`] at the end of a (possibly faulted) run:
/// crashed nodes report `None` and are flagged, completion covers the
/// live nodes only.
fn faulted_outcome<P: Protocol>(
    nodes: &[P],
    rounds: usize,
    mut stats: RunStats,
    faults: &crate::faults::FaultSchedule,
) -> RunOutcome<P::Output> {
    let crashed: Vec<bool> = (0..nodes.len())
        .map(|i| faults.crashed_by(i, rounds))
        .collect();
    stats.crashes = crashed.iter().filter(|&&c| c).count() as u64;
    RunOutcome {
        completed: nodes
            .iter()
            .enumerate()
            .all(|(i, nd)| crashed[i] || nd.output().is_some()),
        outputs: nodes
            .iter()
            .enumerate()
            .map(|(i, nd)| if crashed[i] { None } else { nd.output() })
            .collect(),
        rounds,
        stats,
        crashed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rsbt_random::Assignment;

    /// Counts how many distinct bits appeared on the board in round 1.
    #[derive(Default)]
    struct BitCounter {
        seen: Option<usize>,
    }

    impl Protocol for BitCounter {
        type Msg = bool;
        type Output = usize;

        fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<bool>) -> Outgoing<bool> {
            if ctx.round == 1 {
                Outgoing::Post(ctx.bit)
            } else {
                if self.seen.is_none() {
                    let board = incoming.board_view().expect("blackboard protocol");
                    let distinct = board.windows(2).filter(|w| w[0] != w[1]).count() + 1;
                    self.seen = Some(if board.is_empty() { 0 } else { distinct });
                }
                Outgoing::Silent
            }
        }

        fn output(&self) -> Option<usize> {
            self.seen
        }
    }

    #[test]
    fn shared_source_posts_identical_bits() {
        let alpha = Assignment::shared(4);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let out = run(&Model::Blackboard, &alpha, 5, BitCounter::default, &mut rng);
            assert!(out.completed);
            assert_eq!(out.rounds, 2);
            for o in &out.outputs {
                assert_eq!(o.unwrap(), 1, "all bits equal under a shared source");
            }
        }
    }

    #[test]
    fn private_sources_eventually_differ() {
        let alpha = Assignment::private(4);
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_diff = false;
        for _ in 0..50 {
            let out = run(&Model::Blackboard, &alpha, 5, BitCounter::default, &mut rng);
            if out.outputs[0] == Some(2) {
                saw_diff = true;
            }
        }
        assert!(saw_diff, "independent bits differ with probability 7/8");
    }

    #[test]
    fn stats_count_posts_and_bytes() {
        let alpha = Assignment::private(4);
        let mut rng = StdRng::seed_from_u64(5);
        let out = run(&Model::Blackboard, &alpha, 5, BitCounter::default, &mut rng);
        assert!(out.completed);
        // Round 1: four posts; round 2: everyone decides silently.
        assert_eq!(out.stats.posts, 4);
        assert_eq!(out.stats.sends, 0);
        assert_eq!(out.stats.max_msg_bytes, std::mem::size_of::<bool>());
    }

    /// Message-passing echo: round 1 send bit on every port; round 2 decide
    /// on the multiset of received bits.
    #[derive(Default)]
    struct Echo {
        got: Option<Vec<bool>>,
    }

    impl Protocol for Echo {
        type Msg = bool;
        type Output = Vec<bool>;

        fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<bool>) -> Outgoing<bool> {
            if ctx.round == 1 {
                Outgoing::Broadcast(ctx.bit)
            } else {
                if self.got.is_none() {
                    let ports = incoming.ports_view().expect("message-passing protocol");
                    let mut bits: Vec<bool> = ports.iter().map(|m| m.unwrap()).collect();
                    bits.sort_unstable();
                    self.got = Some(bits);
                }
                Outgoing::Silent
            }
        }

        fn output(&self) -> Option<Vec<bool>> {
            self.got.clone()
        }
    }

    #[test]
    fn broadcast_reaches_every_port() {
        let alpha = Assignment::private(3);
        let mut rng = StdRng::seed_from_u64(9);
        let out = run(
            &Model::message_passing_cyclic(3),
            &alpha,
            4,
            Echo::default,
            &mut rng,
        );
        assert!(out.completed);
        for o in &out.outputs {
            assert_eq!(o.as_ref().unwrap().len(), 2);
        }
        // Three broadcasts over two ports each.
        assert_eq!(out.stats.sends, 6);
        assert_eq!(out.stats.posts, 0);
    }

    /// Directed send: node sends its bit only through port 1 and records
    /// what shows up.
    #[derive(Default)]
    struct Port1 {
        got: Option<usize>,
    }

    impl Protocol for Port1 {
        type Msg = u8;
        type Output = usize;

        fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<u8>) -> Outgoing<u8> {
            if ctx.round == 1 {
                Outgoing::Send(vec![(1, 7u8)])
            } else {
                if self.got.is_none() {
                    let ports = incoming.ports_view().expect("message-passing protocol");
                    self.got = Some(ports.iter().flatten().count());
                }
                Outgoing::Silent
            }
        }

        fn output(&self) -> Option<usize> {
            self.got
        }
    }

    #[test]
    fn unicast_is_delivered_once() {
        let alpha = Assignment::private(4);
        let mut rng = StdRng::seed_from_u64(11);
        let out = run(
            &Model::message_passing_cyclic(4),
            &alpha,
            4,
            Port1::default,
            &mut rng,
        );
        assert!(out.completed);
        // With cyclic ports every node's port 1 hits its successor: each
        // node receives exactly one message.
        assert!(out.outputs.iter().all(|o| *o == Some(1)));
        assert_eq!(out.stats.sends, 4);
    }

    /// A protocol that never decides — runner must time out gracefully.
    struct Mute;

    impl Protocol for Mute {
        type Msg = u8;
        type Output = ();

        fn round(&mut self, _ctx: RoundCtx, _incoming: &Incoming<u8>) -> Outgoing<u8> {
            Outgoing::Silent
        }

        fn output(&self) -> Option<()> {
            None
        }
    }

    #[test]
    fn timeout_reports_incomplete() {
        let alpha = Assignment::shared(2);
        let mut rng = StdRng::seed_from_u64(0);
        let out = run(&Model::Blackboard, &alpha, 3, || Mute, &mut rng);
        assert!(!out.completed);
        assert_eq!(out.rounds, 3);
        assert!(out.outputs.iter().all(Option::is_none));
    }

    #[test]
    fn empty_schedule_matches_fault_free_run() {
        // run_nodes_with delegates through the faulted core; a run with
        // an explicit empty schedule must be identical, RNG and all.
        let alpha = Assignment::private(4);
        let faults = crate::faults::FaultSchedule::empty(4, 0);
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = StdRng::seed_from_u64(21);
        let a = run(
            &Model::Blackboard,
            &alpha,
            5,
            BitCounter::default,
            &mut rng_a,
        );
        let nodes = (0..4).map(|_| BitCounter::default()).collect();
        let b = run_nodes_with_faults(
            &Model::Blackboard,
            &alpha,
            5,
            nodes,
            &mut rng_b,
            RunOptions::default(),
            &faults,
        );
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.stats, b.stats);
        assert!(b.crashed.iter().all(|&c| !c));
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "same draw count");
    }

    #[test]
    fn crashed_node_reports_none_and_survivors_decide() {
        // Node 2 crashes in round 1: it never posts, each survivor sees
        // a 2-post board (the other two live nodes), everyone live
        // decides in round 2, and the outcome flags the crash.
        let alpha = Assignment::private(4);
        let mut faults = crate::faults::FaultSchedule::empty(4, 5);
        faults.set_crash(2, 1);
        let mut rng = StdRng::seed_from_u64(5);
        let nodes = (0..4).map(|_| BitCounter::default()).collect();
        let out = run_nodes_with_faults(
            &Model::Blackboard,
            &alpha,
            5,
            nodes,
            &mut rng,
            RunOptions::default(),
            &faults,
        );
        assert!(out.completed, "live nodes decided");
        assert_eq!(out.crashed, vec![false, false, true, false]);
        assert_eq!(out.outputs[2], None, "crashed node's output is forced out");
        for i in [0usize, 1, 3] {
            assert!(out.outputs[i].is_some(), "survivor {i} decided");
        }
        assert_eq!(out.stats.crashes, 1);
        // Three live posts in round 1; the crashed node never executed,
        // so nothing of its was dropped either.
        assert_eq!(out.stats.posts, 3);
        assert_eq!(out.stats.omissions, 0);
    }

    #[test]
    fn omission_drops_the_post_and_counts_it() {
        let alpha = Assignment::private(3);
        let mut faults = crate::faults::FaultSchedule::empty(3, 5);
        faults.set_omission(1, 1);
        let mut rng = StdRng::seed_from_u64(13);
        let nodes = (0..3).map(|_| BitCounter::default()).collect();
        let out = run_nodes_with_faults(
            &Model::Blackboard,
            &alpha,
            5,
            nodes,
            &mut rng,
            RunOptions {
                full_participation: true, // silent rounds are exempt
            },
            &faults,
        );
        assert!(out.completed);
        assert_eq!(out.stats.posts, 2, "round-1 post of node 1 dropped");
        assert_eq!(out.stats.omissions, 1);
        assert_eq!(out.stats.crashes, 0);
        assert!(out.outputs[1].is_some(), "omitting node still decides");
    }

    /// Broadcasts in round 1, decides on how many messages arrived —
    /// tolerant of empty slots, so omissions surface in the output.
    #[derive(Default)]
    struct CountArrivals {
        got: Option<usize>,
    }

    impl Protocol for CountArrivals {
        type Msg = bool;
        type Output = usize;

        fn round(&mut self, ctx: RoundCtx, incoming: &Incoming<bool>) -> Outgoing<bool> {
            if ctx.round == 1 {
                Outgoing::Broadcast(ctx.bit)
            } else {
                if self.got.is_none() {
                    let ports = incoming.ports_view().expect("message-passing protocol");
                    self.got = Some(ports.iter().flatten().count());
                }
                Outgoing::Silent
            }
        }

        fn output(&self) -> Option<usize> {
            self.got
        }
    }

    #[test]
    fn omitted_broadcast_counts_per_port() {
        let alpha = Assignment::private(3);
        let mut faults = crate::faults::FaultSchedule::empty(3, 4);
        faults.set_omission(0, 1);
        let mut rng = StdRng::seed_from_u64(9);
        let nodes = (0..3).map(|_| CountArrivals::default()).collect();
        let out = run_nodes_with_faults(
            &Model::message_passing_cyclic(3),
            &alpha,
            4,
            nodes,
            &mut rng,
            RunOptions::default(),
            &faults,
        );
        assert!(out.completed);
        assert_eq!(out.stats.omissions, 2, "one dropped broadcast x 2 ports");
        assert_eq!(out.stats.sends, 4, "two live broadcasts delivered");
        // The omitting node still hears both neighbors; the neighbors
        // each miss exactly its message.
        assert_eq!(out.outputs[0], Some(2));
        assert_eq!(out.outputs[1], Some(1));
        assert_eq!(out.outputs[2], Some(1));
    }

    #[test]
    #[should_panic(expected = "does not match model")]
    fn model_mismatch_panics() {
        struct BadPost;
        impl Protocol for BadPost {
            type Msg = u8;
            type Output = ();
            fn round(&mut self, _ctx: RoundCtx, _incoming: &Incoming<u8>) -> Outgoing<u8> {
                Outgoing::Post(0)
            }
            fn output(&self) -> Option<()> {
                None
            }
        }
        let alpha = Assignment::shared(2);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = run(
            &Model::message_passing_cyclic(2),
            &alpha,
            2,
            || BadPost,
            &mut rng,
        );
    }

    #[test]
    #[should_panic(expected = "full participation violated")]
    fn full_participation_catches_silent_undecided_node() {
        // `Mute` never decides and never posts: under the invariant this
        // must abort in round 1 — in release builds too (plain `assert`).
        let alpha = Assignment::shared(3);
        let mut rng = StdRng::seed_from_u64(0);
        let nodes = vec![Mute, Mute, Mute];
        let _ = run_nodes_with(
            &Model::Blackboard,
            &alpha,
            3,
            nodes,
            &mut rng,
            RunOptions {
                full_participation: true,
            },
        );
    }

    #[test]
    fn full_participation_accepts_conforming_protocol() {
        // BitCounter posts while undecided and is silent once decided, so
        // the invariant holds in every round.
        let alpha = Assignment::private(4);
        let mut rng = StdRng::seed_from_u64(7);
        let nodes = (0..4).map(|_| BitCounter::default()).collect();
        let out = run_nodes_with(
            &Model::Blackboard,
            &alpha,
            5,
            nodes,
            &mut rng,
            RunOptions {
                full_participation: true,
            },
        );
        assert!(out.completed);
    }
}
