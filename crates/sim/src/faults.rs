//! Deterministic fault injection: per-node crash and omission schedules.
//!
//! The paper's model is fault-free — every node participates in every
//! round. This module adds the classical round-based failure modes on
//! top of it, with the same determinism discipline as the Monte-Carlo
//! subsystem: a [`FaultSpec`] (per-node per-round crash and omission
//! probabilities, or a fixed hand-written schedule) compiles into a
//! concrete [`FaultSchedule`] per sample, drawn from a **dedicated**
//! [`StreamRng`] substream keyed by `(seed ⊕ salt, sample)`. Fault draws
//! therefore never perturb the source-bit streams, so a spec with all
//! rates zero is *bit-identical* to the fault-free kernels — for any
//! worker-thread count — and the fault dimension can be swept without
//! re-keying anything else.
//!
//! # Semantics: silence
//!
//! Both failure modes reduce to one observable, **silence**: a node that
//! is silent in round `r` makes none of its round-`r` transmissions (its
//! blackboard post, or all of its port messages). An *omission* is
//! silence in a single round; a *crash* at round `r` is permanent
//! silence from round `r` on (send-omission semantics). A silent node
//! keeps listening, its own bit keeps entering its own knowledge, and it
//! still occupies its slot in the consistency partition — only its
//! outgoing information is lost. In the blackboard model the board
//! simply shortens (silence is observable); under message passing the
//! receiver's port slot holds a distinguished *hole* value
//! ([`crate::KnowledgeNode::Hole`]) rather than the sender's knowledge.
//!
//! # Monotone coupling
//!
//! [`FaultSpec::fill_schedule`] always draws **both** a crash word and an
//! omission word for every `(node, round)` cell, even after the node has
//! crashed and even when one rate is zero (unless both are, in which
//! case the schedule is empty without touching any RNG). Draw positions
//! are therefore a pure function of `(n, t)`: raising a rate can only
//! *add* silences to the schedule produced under a lower rate with the
//! same seed — the common-random-numbers coupling that makes degradation
//! curves monotone sample-by-sample.

use rand::rngs::StreamRng;
use rand::RngCore;

/// The salt folded into the base seed to key the fault substream. Any
/// fixed constant works; it only has to differ from the (unsalted)
/// source-bit stream family.
pub const FAULT_STREAM_SALT: u64 = 0x6661_756c_7473_2121; // "faults!!"

/// The dedicated fault-draw stream for `sample` under base `seed`:
/// `StreamRng::new(seed ^ FAULT_STREAM_SALT, sample)`. Decorrelated from
/// the source-bit stream `StreamRng::new(seed, sample)` by the salt (the
/// stream keying runs the pair through a full-avalanche finalizer).
pub fn fault_stream(seed: u64, sample: u64) -> StreamRng {
    StreamRng::new(seed ^ FAULT_STREAM_SALT, sample)
}

/// Whether a `[0, 1)` threshold test fires for a raw 64-bit draw:
/// `draw < p · 2⁶⁴`, saturating at the endpoints so `p ≤ 0` never fires
/// and `p ≥ 1` always does.
fn fires(p: f64, draw: u64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    (u128::from(draw)) < (p * 18_446_744_073_709_551_616.0) as u128
}

/// A probabilistic fault model: i.i.d. per-node per-round crash and
/// omission rates, or a fixed [`FaultSchedule`] overriding both (the
/// exact enumerator only accepts the fixed form — counts stay provably
/// exact because nothing random is marginalized).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Per-node per-round crash probability in `[0, 1]`.
    pub crash: f64,
    /// Per-node per-round omission probability in `[0, 1]`.
    pub omission: f64,
    /// A fixed schedule; when present, the rates are ignored and every
    /// sample receives this exact schedule.
    pub fixed: Option<FaultSchedule>,
}

impl FaultSpec {
    /// A fault-free spec (both rates zero, no fixed schedule).
    pub fn none() -> FaultSpec {
        FaultSpec::default()
    }

    /// A spec with the given crash and omission rates.
    ///
    /// # Panics
    ///
    /// Panics unless both rates are finite and in `[0, 1]`.
    pub fn rates(crash: f64, omission: f64) -> FaultSpec {
        assert!(
            (0.0..=1.0).contains(&crash) && (0.0..=1.0).contains(&omission),
            "fault rates must lie in [0, 1], got crash={crash} omission={omission}"
        );
        FaultSpec {
            crash,
            omission,
            fixed: None,
        }
    }

    /// A spec that replays one fixed schedule for every sample.
    pub fn fixed(schedule: FaultSchedule) -> FaultSpec {
        FaultSpec {
            crash: 0.0,
            omission: 0.0,
            fixed: Some(schedule),
        }
    }

    /// Whether this spec can never produce a fault.
    pub fn is_fault_free(&self) -> bool {
        match &self.fixed {
            Some(fixed) => fixed.is_fault_free(),
            None => self.crash <= 0.0 && self.omission <= 0.0,
        }
    }

    /// Compiles the concrete schedule of one sample into `out` (reusing
    /// its buffers). Draw discipline: node-major, round-minor; for every
    /// `(node, round)` cell first a crash word then an omission word is
    /// drawn from [`fault_stream`]`(seed, sample)` — always both, so the
    /// draw positions are independent of outcomes (see the module docs on
    /// monotone coupling). With both rates zero the RNG is never even
    /// constructed.
    ///
    /// # Panics
    ///
    /// Panics if a fixed schedule's node count differs from `n`.
    pub fn fill_schedule(
        &self,
        n: usize,
        t: usize,
        seed: u64,
        sample: u64,
        out: &mut FaultSchedule,
    ) {
        if let Some(fixed) = &self.fixed {
            assert_eq!(fixed.n(), n, "fixed schedule is for {} nodes", fixed.n());
            out.clone_from(fixed);
            return;
        }
        out.reset(n, t);
        if self.crash <= 0.0 && self.omission <= 0.0 {
            return;
        }
        let mut rng = fault_stream(seed, sample);
        for node in 0..n {
            for round in 1..=t {
                let crash_draw = rng.next_u64();
                let omit_draw = rng.next_u64();
                if out.crash_round(node).is_none() && fires(self.crash, crash_draw) {
                    out.set_crash(node, round);
                }
                if fires(self.omission, omit_draw) {
                    out.set_omission(node, round);
                }
            }
        }
    }

    /// [`FaultSpec::fill_schedule`] into a fresh schedule.
    pub fn schedule(&self, n: usize, t: usize, seed: u64, sample: u64) -> FaultSchedule {
        let mut out = FaultSchedule::empty(n, t);
        self.fill_schedule(n, t, seed, sample, &mut out);
        out
    }
}

/// A concrete per-sample fault assignment: for each node, the set of
/// rounds (1-based) in which it is silent, plus its crash round if any.
/// Rounds beyond the compiled horizon are silent only for crashed nodes
/// (crashes are permanent; omissions are per-round events inside the
/// horizon).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    n: usize,
    /// Rounds covered by the silence bitset.
    horizon: usize,
    /// Words per node in `silent`.
    stride: usize,
    /// Packed silence bits: node `i`, round `r` (1-based) lives at word
    /// `i * stride + (r - 1) / 64`, bit `(r - 1) % 64`. Crash tails are
    /// baked in up to the horizon.
    silent: Vec<u64>,
    /// 1-based crash round per node (`None` = never crashes).
    crash_round: Vec<Option<u32>>,
}

impl FaultSchedule {
    /// A fault-free schedule for `n` nodes over `horizon` rounds.
    pub fn empty(n: usize, horizon: usize) -> FaultSchedule {
        let stride = horizon.div_ceil(64).max(1);
        FaultSchedule {
            n,
            horizon,
            stride,
            silent: vec![0; n * stride],
            crash_round: vec![None; n],
        }
    }

    /// Clears all faults and resizes for `n` nodes over `horizon` rounds,
    /// reusing the allocation where possible.
    pub fn reset(&mut self, n: usize, horizon: usize) {
        self.n = n;
        self.horizon = horizon;
        self.stride = horizon.div_ceil(64).max(1);
        self.silent.clear();
        self.silent.resize(n * self.stride, 0);
        self.crash_round.clear();
        self.crash_round.resize(n, None);
    }

    /// The number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The number of rounds the silence bitset covers.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Whether the schedule contains no faults at all.
    pub fn is_fault_free(&self) -> bool {
        self.silent.iter().all(|&w| w == 0) && self.crash_round.iter().all(Option::is_none)
    }

    /// Marks `node` as omitting (silent) in 1-based `round`.
    ///
    /// # Panics
    ///
    /// Panics if `round` is zero or beyond the horizon, or `node ≥ n`.
    pub fn set_omission(&mut self, node: usize, round: usize) {
        assert!(node < self.n, "node {node} out of range");
        assert!(
            (1..=self.horizon).contains(&round),
            "round {round} outside 1..={}",
            self.horizon
        );
        self.silent[node * self.stride + (round - 1) / 64] |= 1u64 << ((round - 1) % 64);
    }

    /// Marks `node` as crashed from 1-based `round` on (permanent
    /// silence). Baked into the silence bitset up to the horizon; rounds
    /// beyond it stay silent through [`FaultSchedule::is_silent`].
    ///
    /// # Panics
    ///
    /// Panics if `round` is zero, or `node ≥ n`.
    pub fn set_crash(&mut self, node: usize, round: usize) {
        assert!(node < self.n, "node {node} out of range");
        assert!(round >= 1, "rounds are 1-based");
        let prior = self.crash_round[node];
        assert!(
            prior.is_none_or(|c| c as usize >= round),
            "node {node} already crashed earlier (round {prior:?})"
        );
        self.crash_round[node] = Some(u32::try_from(round).expect("round fits u32"));
        for r in round..=self.horizon {
            self.silent[node * self.stride + (r - 1) / 64] |= 1u64 << ((r - 1) % 64);
        }
    }

    /// The 1-based crash round of `node`, if it ever crashes.
    pub fn crash_round(&self, node: usize) -> Option<usize> {
        self.crash_round[node].map(|r| r as usize)
    }

    /// Whether `node` has crashed by (at or before) 1-based `round`.
    pub fn crashed_by(&self, node: usize, round: usize) -> bool {
        self.crash_round[node].is_some_and(|c| c as usize <= round)
    }

    /// Whether `node` is silent in 1-based `round` (omitting this round,
    /// or crashed at or before it).
    ///
    /// # Panics
    ///
    /// Panics if `round` is zero or `node ≥ n`.
    pub fn is_silent(&self, node: usize, round: usize) -> bool {
        assert!(round >= 1, "rounds are 1-based");
        if round > self.horizon {
            return self.crashed_by(node, round);
        }
        self.silent[node * self.stride + (round - 1) / 64] >> ((round - 1) % 64) & 1 == 1
    }

    /// The first 64 rounds of `node`'s silence as one word (bit `r` =
    /// silent in round `r + 1`) — the lane-kernel layout. Exact whenever
    /// the horizon is at most 64 (always true for Monte-Carlo schedules,
    /// where `t ≤` [`rsbt_random::MAX_BITS`]).
    pub fn silent_mask64(&self, node: usize) -> u64 {
        let mut word = self.silent[node * self.stride];
        // Crash tails past the horizon still belong in the mask.
        if let Some(c) = self.crash_round[node] {
            let from = (c as usize).max(self.horizon + 1);
            if from <= 64 {
                word |= u64::MAX << (from - 1);
            }
        }
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_fault_free() {
        let s = FaultSchedule::empty(3, 10);
        assert!(s.is_fault_free());
        for node in 0..3 {
            assert_eq!(s.crash_round(node), None);
            for round in 1..=20 {
                assert!(!s.is_silent(node, round));
            }
        }
    }

    #[test]
    fn omissions_are_per_round_and_crashes_permanent() {
        let mut s = FaultSchedule::empty(2, 100);
        s.set_omission(0, 3);
        s.set_crash(1, 70);
        assert!(s.is_silent(0, 3));
        assert!(!s.is_silent(0, 2) && !s.is_silent(0, 4));
        assert_eq!(s.crash_round(0), None);
        assert!(!s.is_silent(1, 69));
        for round in [70usize, 71, 100, 101, 5000] {
            assert!(s.is_silent(1, round), "round {round}");
        }
        assert!(s.crashed_by(1, 70) && !s.crashed_by(1, 69));
        assert!(!s.is_fault_free());
    }

    #[test]
    fn mask64_matches_is_silent() {
        let mut s = FaultSchedule::empty(2, 20);
        s.set_omission(0, 1);
        s.set_omission(0, 17);
        s.set_crash(1, 19);
        for node in 0..2 {
            let mask = s.silent_mask64(node);
            for round in 1..=20 {
                assert_eq!(
                    mask >> (round - 1) & 1 == 1,
                    s.is_silent(node, round),
                    "node {node} round {round}"
                );
            }
        }
        // The crash tail extends past the horizon inside the mask.
        assert_eq!(s.silent_mask64(1) >> 63 & 1, 1);
    }

    #[test]
    fn zero_rates_compile_to_empty_without_rng() {
        let spec = FaultSpec::none();
        assert!(spec.is_fault_free());
        let s = spec.schedule(4, 8, 42, 7);
        assert_eq!(s, FaultSchedule::empty(4, 8));
    }

    #[test]
    fn fixed_schedules_replay_verbatim() {
        let mut fixed = FaultSchedule::empty(3, 5);
        fixed.set_crash(2, 2);
        let spec = FaultSpec::fixed(fixed.clone());
        assert!(!spec.is_fault_free());
        for sample in [0u64, 1, 99] {
            assert_eq!(spec.schedule(3, 5, 11, sample), fixed);
        }
    }

    #[test]
    fn compilation_is_deterministic_and_seed_sensitive() {
        let spec = FaultSpec::rates(0.1, 0.2);
        let a = spec.schedule(5, 30, 7, 3);
        let b = spec.schedule(5, 30, 7, 3);
        assert_eq!(a, b, "pure function of (seed, sample)");
        let c = spec.schedule(5, 30, 8, 3);
        let d = spec.schedule(5, 30, 7, 4);
        assert!(a != c || a != d, "seed and sample must matter");
    }

    #[test]
    fn raising_rates_only_adds_silence() {
        // The always-draw coupling: under the same (seed, sample), every
        // silence at the lower rates persists at the higher rates.
        let lo = FaultSpec::rates(0.05, 0.05);
        let hi = FaultSpec::rates(0.25, 0.30);
        for sample in 0..50u64 {
            let a = lo.schedule(6, 40, 13, sample);
            let b = hi.schedule(6, 40, 13, sample);
            for node in 0..6 {
                for round in 1..=40 {
                    if a.is_silent(node, round) {
                        assert!(
                            b.is_silent(node, round),
                            "sample {sample} node {node} round {round}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rate_one_crashes_everyone_in_round_one() {
        let spec = FaultSpec::rates(1.0, 0.0);
        let s = spec.schedule(3, 4, 0, 0);
        for node in 0..3 {
            assert_eq!(s.crash_round(node), Some(1));
            assert!(s.is_silent(node, 1));
        }
    }

    #[test]
    fn fault_draws_are_decorrelated_from_source_draws() {
        // The salted substream must differ from the unsalted family.
        let mut plain = StreamRng::new(42, 0);
        let mut faulty = fault_stream(42, 0);
        assert_ne!(plain.next_u64(), faulty.next_u64());
    }
}
