//! Deterministic fan-out of arena-backed work over scoped OS threads.
//!
//! Solvability checks need a mutable [`KnowledgeArena`], which makes naive
//! data-parallelism awkward: arenas cannot be shared across workers without
//! locking, and locking would serialize the hot interning path. The pattern
//! proven bit-identical by `probability::exact_parallel` is *per-worker
//! arenas*: interning is content-addressed, so every worker reconstructs
//! identical knowledge structure locally and only sends plain results back.
//!
//! [`map_with_arena`] packages that pattern for sweep engines: items are
//! split into contiguous chunks (one per worker), each worker folds its
//! chunk with a private arena, and results are merged back **by item
//! index** — never by completion order — so the output is deterministic
//! and independent of thread scheduling.

use crate::knowledge::KnowledgeArena;

/// Maps `f` over `items` on up to `threads` scoped OS threads, giving each
/// worker its own private [`KnowledgeArena`]. The arena persists across the
/// items of one chunk, so per-worker interning is amortized exactly like a
/// serial loop's.
///
/// The result vector is in item order regardless of which worker computed
/// which item or when it finished; with `threads == 1` this degenerates to
/// a plain serial fold (no thread is spawned).
///
/// # Panics
///
/// Panics if `threads == 0`, or propagates a worker panic.
pub fn map_with_arena<I, R, F>(items: &[I], threads: usize, f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(&mut KnowledgeArena, &I) -> R + Sync,
{
    assert!(threads >= 1, "need at least one worker");
    if threads == 1 || items.len() <= 1 {
        let mut arena = KnowledgeArena::new();
        return items.iter().map(|item| f(&mut arena, item)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| {
                let f = &f;
                scope.spawn(move || {
                    let mut arena = KnowledgeArena::new();
                    slice
                        .iter()
                        .map(|item| f(&mut arena, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        // Joining in spawn order merges chunk results back in item order,
        // independent of which worker finished first.
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for c in &mut chunks {
        out.append(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Execution, Model};
    use rsbt_random::{Assignment, Realization};

    #[test]
    fn results_are_in_item_order_for_any_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let serial = map_with_arena(&items, 1, |_, &i| i * i);
        for threads in [2, 3, 4, 8, 64] {
            let par = map_with_arena(&items, threads, |_, &i| i * i);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn per_worker_arenas_reproduce_serial_partitions() {
        // Consistency partitions computed through private arenas must be
        // identical to the single-arena serial pass.
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let rhos: Vec<Realization> = Realization::enumerate_consistent(&alpha, 3).collect();
        let partition = |arena: &mut KnowledgeArena, rho: &Realization| {
            let exec = Execution::run(&Model::Blackboard, rho, arena);
            exec.consistency_partition(exec.time())
        };
        let serial = map_with_arena(&rhos, 1, partition);
        for threads in [2, 3, 5] {
            assert_eq!(map_with_arena(&rhos, threads, partition), serial);
        }
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1u32, 2];
        assert_eq!(map_with_arena(&items, 16, |_, &i| i + 1), vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = map_with_arena(&[1u32], 0, |_, &i| i);
    }
}
