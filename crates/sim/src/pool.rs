//! Deterministic fan-out of arena-backed work over scoped OS threads.
//!
//! Solvability checks need a mutable [`KnowledgeArena`], which makes naive
//! data-parallelism awkward: arenas cannot be shared across workers without
//! locking, and locking would serialize the hot interning path. The pattern
//! proven bit-identical by `probability::exact_parallel` is *per-worker
//! arenas*: interning is content-addressed, so every worker reconstructs
//! identical knowledge structure locally and only sends plain results back.
//!
//! [`map_with_arena`] packages that pattern for sweep engines: items are
//! split into contiguous chunks (one per worker), each worker folds its
//! chunk with a private arena, and results are merged back **by item
//! index** — never by completion order — so the output is deterministic
//! and independent of thread scheduling.

use crate::knowledge::KnowledgeArena;

/// Maps `f` over `items` on up to `threads` scoped OS threads, giving each
/// worker its own private [`KnowledgeArena`]. The arena persists across the
/// items of one chunk, so per-worker interning is amortized exactly like a
/// serial loop's.
///
/// The result vector is in item order regardless of which worker computed
/// which item or when it finished; with `threads == 1` this degenerates to
/// a plain serial fold (no thread is spawned).
///
/// # Panics
///
/// Panics if `threads == 0`, or propagates a worker panic.
pub fn map_with_arena<I, R, F>(items: &[I], threads: usize, f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(&mut KnowledgeArena, &I) -> R + Sync,
{
    assert!(threads >= 1, "need at least one worker");
    if threads == 1 || items.len() <= 1 {
        let mut arena = KnowledgeArena::new();
        return items.iter().map(|item| f(&mut arena, item)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| {
                let f = &f;
                scope.spawn(move || {
                    let mut arena = KnowledgeArena::new();
                    slice
                        .iter()
                        .map(|item| f(&mut arena, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        // Joining in spawn order merges chunk results back in item order,
        // independent of which worker finished first.
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for c in &mut chunks {
        out.append(c);
    }
    out
}

/// Sample-sharding fan-out for Monte-Carlo estimators: splits the index
/// range `0..total` into one contiguous chunk per worker and folds each
/// chunk with a private [`KnowledgeArena`], merging chunk results back in
/// index order.
///
/// The contract that makes sharded estimates **bit-identical for any
/// worker count** is that `f` derives everything about sample `i` from
/// `i` itself (e.g. an RNG stream keyed by the sample index) — never from
/// the chunk boundaries, the worker identity, or shared mutable state.
/// Under that contract the multiset of per-sample verdicts is a pure
/// function of `total`, and any order-insensitive reduction of the
/// returned per-chunk values (integer sums in practice) equals the serial
/// loop's exactly.
///
/// Returns one result per non-empty chunk, ordered by chunk start; with
/// `threads == 1` this degenerates to a single serial fold.
///
/// # Panics
///
/// Panics if `threads == 0`, or propagates a worker panic.
pub fn map_sample_chunks<R, F>(total: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut KnowledgeArena, std::ops::Range<usize>) -> R + Sync,
{
    map_sample_chunks_aligned(total, threads, 1, f)
}

/// [`map_sample_chunks`] with chunk boundaries rounded up to a multiple
/// of `align`: every chunk starts at an index divisible by `align`, and
/// every chunk except the last covers a whole number of `align`-sized
/// words. The bit-sliced Monte-Carlo kernel passes `align = 64` so each
/// worker owns whole lane words and only the globally last word can be
/// partially filled.
///
/// `align = 1` is exactly [`map_sample_chunks`].
///
/// # Panics
///
/// Panics if `threads == 0` or `align == 0`, or propagates a worker
/// panic.
pub fn map_sample_chunks_aligned<R, F>(total: usize, threads: usize, align: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut KnowledgeArena, std::ops::Range<usize>) -> R + Sync,
{
    assert!(threads >= 1, "need at least one worker");
    assert!(align >= 1, "alignment must be at least 1");
    let chunk = total.div_ceil(threads).max(1).div_ceil(align) * align;
    let ranges: Vec<std::ops::Range<usize>> = (0..threads)
        .map(|w| (w * chunk).min(total)..((w + 1) * chunk).min(total))
        .filter(|r| !r.is_empty())
        .collect();
    map_with_arena(&ranges, threads, |arena, range| f(arena, range.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Execution, Model};
    use rsbt_random::{Assignment, Realization};

    #[test]
    fn results_are_in_item_order_for_any_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let serial = map_with_arena(&items, 1, |_, &i| i * i);
        for threads in [2, 3, 4, 8, 64] {
            let par = map_with_arena(&items, threads, |_, &i| i * i);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn per_worker_arenas_reproduce_serial_partitions() {
        // Consistency partitions computed through private arenas must be
        // identical to the single-arena serial pass.
        let alpha = Assignment::from_group_sizes(&[1, 2]).unwrap();
        let rhos: Vec<Realization> = Realization::enumerate_consistent(&alpha, 3).collect();
        let partition = |arena: &mut KnowledgeArena, rho: &Realization| {
            let exec = Execution::run(&Model::Blackboard, rho, arena);
            exec.consistency_partition(exec.time())
        };
        let serial = map_with_arena(&rhos, 1, partition);
        for threads in [2, 3, 5] {
            assert_eq!(map_with_arena(&rhos, threads, partition), serial);
        }
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1u32, 2];
        assert_eq!(map_with_arena(&items, 16, |_, &i| i + 1), vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = map_with_arena(&[1u32], 0, |_, &i| i);
    }

    #[test]
    fn sample_chunks_cover_the_range_exactly_once() {
        for total in [0usize, 1, 2, 7, 64, 100] {
            for threads in [1usize, 2, 3, 4, 8, 64] {
                let chunks = map_sample_chunks(total, threads, |_, r| r.collect::<Vec<usize>>());
                let flat: Vec<usize> = chunks.into_iter().flatten().collect();
                let expect: Vec<usize> = (0..total).collect();
                assert_eq!(flat, expect, "total={total} threads={threads}");
            }
        }
    }

    #[test]
    fn per_index_sums_are_thread_count_invariant() {
        // A reduction over per-index values (the Monte-Carlo shape) must
        // be identical for every worker count.
        let per_index = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9) % 7;
        let serial: u64 = (0..1000).map(per_index).sum();
        for threads in [1usize, 2, 3, 4, 8] {
            let total: u64 = map_sample_chunks(1000, threads, |_, r| r.map(per_index).sum::<u64>())
                .into_iter()
                .sum();
            assert_eq!(total, serial, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn sample_chunks_zero_threads_rejected() {
        let _ = map_sample_chunks(4, 0, |_, r| r.len());
    }

    #[test]
    fn aligned_chunks_cover_the_range_on_word_boundaries() {
        // Word-boundary edge cases: counts not divisible by 64, counts
        // below 64, and a single sample.
        for total in [0usize, 1, 2, 63, 64, 65, 127, 128, 130, 1000] {
            for threads in [1usize, 2, 3, 4, 8, 64] {
                let chunks = map_sample_chunks_aligned(total, threads, 64, |_, r| r);
                let flat: Vec<usize> = chunks.iter().cloned().flatten().collect();
                let expect: Vec<usize> = (0..total).collect();
                assert_eq!(flat, expect, "total={total} threads={threads}");
                for (c, r) in chunks.iter().enumerate() {
                    assert_eq!(r.start % 64, 0, "chunk {c} start, total={total}");
                    assert!(
                        r.end % 64 == 0 || r.end == total,
                        "only the last word may be partial: chunk {c}, total={total}"
                    );
                }
            }
        }
    }

    #[test]
    fn align_one_matches_the_unaligned_chunking() {
        for total in [0usize, 1, 7, 100, 129] {
            for threads in [1usize, 2, 3, 8] {
                let plain = map_sample_chunks(total, threads, |_, r| r);
                let aligned = map_sample_chunks_aligned(total, threads, 1, |_, r| r);
                assert_eq!(plain, aligned, "total={total} threads={threads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "alignment must be at least 1")]
    fn zero_alignment_rejected() {
        let _ = map_sample_chunks_aligned(4, 1, 0, |_, r| r.len());
    }
}
