//! A small, vendored Fx-style hasher for the hot interning index.
//!
//! The arena's content-addressed index hashes every [`KnowledgeNode`]
//! (`crate::KnowledgeNode`) on each intern; the standard library's SipHash
//! is keyed and DoS-resistant but several times slower than needed for
//! process-local, trusted keys. This module vendors the multiply-rotate
//! hash popularized by the Firefox/rustc `FxHasher` — no dependency, no
//! network, deterministic within a process — for use wherever a `HashMap`
//! sits on an enumeration hot path.
//!
//! Not for adversarial input: the hash is unkeyed and trivially
//! collidable on purpose-built keys. Every map in this workspace hashes
//! machine-generated structures, never untrusted data.

use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative constant (64-bit golden-ratio fraction, same as the
/// classic Fx implementation).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An unkeyed multiply-rotate hasher (Fx-style).
///
/// # Example
///
/// ```
/// use std::hash::{Hash, Hasher};
/// use rsbt_sim::fxhash::FxHasher;
///
/// let mut a = FxHasher::default();
/// 42u64.hash(&mut a);
/// let mut b = FxHasher::default();
/// 42u64.hash(&mut b);
/// assert_eq!(a.finish(), b.finish()); // deterministic
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the Fx hash — drop-in for `std::collections::HashMap`
/// on trusted hot paths.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&12345u64), hash_of(&12345u64));
        assert_eq!(hash_of(&"knowledge"), hash_of(&"knowledge"));
        assert_eq!(hash_of(&vec![1u32, 2, 3]), hash_of(&vec![1u32, 2, 3]));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
        assert_ne!(hash_of(&[0u8, 1]), hash_of(&[1u8, 0]));
        // Length is part of slice hashing (std prefixes the length).
        assert_ne!(hash_of(&vec![0u8]), hash_of(&vec![0u8, 0]));
    }

    #[test]
    fn byte_stream_chunking_covers_remainders() {
        for len in 0..=17usize {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut h = FxHasher::default();
            h.write(&bytes);
            let full = h.finish();
            let mut h2 = FxHasher::default();
            h2.write(&bytes);
            assert_eq!(full, h2.finish(), "len={len}");
        }
    }

    #[test]
    fn map_works_end_to_end() {
        let mut m: FxHashMap<Vec<u8>, usize> = FxHashMap::default();
        for i in 0..100usize {
            m.insert(vec![i as u8, (i * 7) as u8], i);
        }
        assert_eq!(m.len(), 100);
        for i in 0..100usize {
            assert_eq!(m.get([i as u8, (i * 7) as u8].as_slice()), Some(&i));
        }
    }
}
