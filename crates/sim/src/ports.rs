//! Port numberings for the message-passing clique `K_n`.
//!
//! Every node privately labels its `n − 1` incident edges with distinct
//! port numbers in `{1, …, n−1}`; there is no correlation between the two
//! endpoints' labels. Theorem 4.2 is a *worst-case* statement over port
//! numberings, so alongside random numberings this module implements the
//! adversarial numbering from the proof of Lemma 4.3.

use std::fmt;

use rand::seq::SliceRandom;
use rand::Rng;

/// A complete port numbering: for every node, a permutation of the other
/// nodes indexed by port.
///
/// # Example
///
/// ```
/// use rsbt_sim::PortNumbering;
///
/// let p = PortNumbering::cyclic(4);
/// assert_eq!(p.n(), 4);
/// assert_eq!(p.neighbor(0, 1), 1); // port j of node i is (i + j) mod n
/// assert_eq!(p.neighbor(3, 2), 1);
/// assert!(p.validate().is_ok());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PortNumbering {
    /// `to[i][j-1]` = the node reached from node `i` through port `j`.
    to: Vec<Vec<usize>>,
}

impl PortNumbering {
    /// Builds a numbering from the raw table `to[i][j-1] = neighbor`.
    ///
    /// # Panics
    ///
    /// Panics if the table is not a valid numbering (each row must be a
    /// permutation of the other nodes); use [`PortNumbering::validate`] for
    /// a fallible check.
    pub fn from_table(to: Vec<Vec<usize>>) -> Self {
        let p = PortNumbering { to };
        if let Err(msg) = p.validate() {
            panic!("invalid port numbering: {msg}");
        }
        p
    }

    /// The canonical cyclic numbering: port `j` of node `i` connects to
    /// `(i + j) mod n`. This is the "natural" symmetric numbering under
    /// which a ring-like symmetry survives.
    pub fn cyclic(n: usize) -> Self {
        assert!(n >= 1);
        PortNumbering {
            to: (0..n)
                .map(|i| (1..n).map(|j| (i + j) % n).collect())
                .collect(),
        }
    }

    /// A uniformly random numbering: every node independently shuffles its
    /// neighbor order.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        assert!(n >= 1);
        PortNumbering {
            to: (0..n)
                .map(|i| {
                    let mut others: Vec<usize> = (0..n).filter(|&x| x != i).collect();
                    others.shuffle(rng);
                    others
                })
                .collect(),
        }
    }

    /// The adversarial numbering from the proof of Lemma 4.3 for a system
    /// whose group sizes all share the divisor `g`:
    /// port `j` of node `i` connects to
    /// `((i + j) mod g + ⌊i/g⌋·g + ⌈j/g⌉·g) mod n`.
    ///
    /// Nodes are assumed ordered by source (the first `n_1` nodes on source
    /// 1, etc., as in the paper's proof), so each aligned block of `g`
    /// consecutive nodes shares a source. Under this numbering the rotation
    /// `f(r + m·g) = ((r+1) mod g) + m·g` preserves both sources and ports,
    /// forcing every consistency class to have size a multiple of `g`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ g`, `g | n`, and `n ≥ 1`.
    pub fn adversarial(n: usize, g: usize) -> Self {
        assert!(g >= 1 && n >= 1 && n.is_multiple_of(g), "g must divide n");
        let table: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                (1..n)
                    .map(|j| ((i + j) % g + (i / g) * g + j.div_ceil(g) * g) % n)
                    .collect()
            })
            .collect();
        PortNumbering::from_table(table)
    }

    /// The number of nodes `n`.
    pub fn n(&self) -> usize {
        self.to.len()
    }

    /// The node reached from `i` through port `j` (1-based port).
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n` or `j ∉ {1, …, n−1}`.
    pub fn neighbor(&self, i: usize, j: usize) -> usize {
        assert!(j >= 1 && j < self.n(), "port {j} out of range");
        self.to[i][j - 1]
    }

    /// The port of node `i` that leads to node `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target == i` or either index is out of range.
    pub fn port_towards(&self, i: usize, target: usize) -> usize {
        assert_ne!(i, target, "no self-loop ports");
        1 + self.to[i]
            .iter()
            .position(|&x| x == target)
            .expect("clique: every other node is a neighbor")
    }

    /// The neighbor list of node `i` in port order (`port = index + 1`).
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.to[i]
    }

    /// Checks that every row is a permutation of the other nodes.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n();
        for (i, row) in self.to.iter().enumerate() {
            if row.len() != n - 1 {
                return Err(format!(
                    "node {i} has {} ports, expected {}",
                    row.len(),
                    n - 1
                ));
            }
            let mut seen = vec![false; n];
            for &tgt in row {
                if tgt >= n {
                    return Err(format!("node {i} points at out-of-range node {tgt}"));
                }
                if tgt == i {
                    return Err(format!("node {i} has a self-loop port"));
                }
                if seen[tgt] {
                    return Err(format!("node {i} reaches node {tgt} twice"));
                }
                seen[tgt] = true;
            }
        }
        Ok(())
    }
}

impl fmt::Display for PortNumbering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "port numbering on {} node(s):", self.n())?;
        for (i, row) in self.to.iter().enumerate() {
            write!(f, "  p{i}:")?;
            for (j, tgt) in row.iter().enumerate() {
                write!(f, " {}→p{}", j + 1, tgt)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::mock::StepRng;
    use rand::SeedableRng;

    #[test]
    fn cyclic_is_valid() {
        for n in 1..8 {
            assert!(PortNumbering::cyclic(n).validate().is_ok(), "n={n}");
        }
    }

    #[test]
    fn cyclic_neighbors() {
        let p = PortNumbering::cyclic(5);
        assert_eq!(p.neighbor(0, 1), 1);
        assert_eq!(p.neighbor(4, 1), 0);
        assert_eq!(p.neighbor(2, 4), 1);
        assert_eq!(p.port_towards(0, 1), 1);
        assert_eq!(p.port_towards(1, 0), 4);
    }

    #[test]
    fn random_is_valid() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for n in 1..8 {
            assert!(PortNumbering::random(n, &mut rng).validate().is_ok());
        }
        // StepRng also works (Rng + ?Sized bound).
        let mut step = StepRng::new(1, 1);
        assert!(PortNumbering::random(4, &mut step).validate().is_ok());
    }

    #[test]
    fn adversarial_is_valid_when_g_divides_n() {
        for (n, g) in [(4, 2), (6, 2), (6, 3), (8, 4), (9, 3), (12, 6), (5, 1)] {
            let p = PortNumbering::adversarial(n, g);
            assert!(p.validate().is_ok(), "n={n} g={g}");
        }
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn adversarial_rejects_non_divisor() {
        let _ = PortNumbering::adversarial(5, 2);
    }

    /// The rotation f(r + mg) = ((r+1) mod g) + mg preserves ports: if
    /// node i's port j leads to p, then node f(i)'s port j leads to f(p).
    #[test]
    fn adversarial_rotation_preserves_ports() {
        for (n, g) in [(4, 2), (6, 2), (6, 3), (8, 2), (8, 4), (9, 3), (12, 4)] {
            let p = PortNumbering::adversarial(n, g);
            let f = |i: usize| (i % g + 1) % g + (i / g) * g;
            for i in 0..n {
                for j in 1..n {
                    assert_eq!(
                        p.neighbor(f(i), j),
                        f(p.neighbor(i, j)),
                        "n={n} g={g} i={i} j={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn validate_catches_errors() {
        let bad_len = PortNumbering {
            to: vec![vec![], vec![0]],
        };
        assert!(bad_len.validate().is_err());
        let self_loop = PortNumbering {
            to: vec![vec![0], vec![0]],
        };
        assert!(self_loop.validate().is_err());
        let dup = PortNumbering {
            to: vec![vec![1, 1], vec![0, 2], vec![0, 1]],
        };
        assert!(dup.validate().is_err());
        let out_of_range = PortNumbering {
            to: vec![vec![7], vec![0]],
        };
        assert!(out_of_range.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid port numbering")]
    fn from_table_panics_on_bad_input() {
        let _ = PortNumbering::from_table(vec![vec![0], vec![1]]);
    }

    #[test]
    fn display_lists_ports() {
        let p = PortNumbering::cyclic(3);
        let s = p.to_string();
        assert!(s.contains("p0: 1→p1 2→p2"));
    }
}
