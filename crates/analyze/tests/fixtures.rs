//! Fixture tests for the Layer-1 lint scanner: every rule fires on a
//! positive fixture, every escape hatch (comments, strings, raw strings,
//! `#[cfg(test)]` regions, allow directives) suppresses it.

use rsbt_analyze::lexer;
use rsbt_analyze::lints::{self, SourceFile};

fn scan(rel: &str, src: &str) -> lints::LintOutcome {
    lints::run(&[SourceFile {
        rel: rel.to_string(),
        scrubbed: lexer::scrub(src),
    }])
}

fn fired(outcome: &lints::LintOutcome, rule: &str) -> Vec<usize> {
    outcome
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn every_rule_fires_on_its_positive_fixture() {
    let out = scan(
        "crates/core/src/fixture.rs",
        concat!(
            "use std::collections::HashMap;\n", // L001
            "let r = thread_rng();\n",          // L002
            "let t0 = Instant::now();\n",       // L003
            "let wall = SystemTime::now();\n",  // L003
        ),
    );
    assert_eq!(fired(&out, "RSBT-L001"), vec![1]);
    assert_eq!(fired(&out, "RSBT-L002"), vec![2]);
    assert_eq!(fired(&out, "RSBT-L003"), vec![3, 4]);
}

#[test]
fn line_comments_never_fire() {
    let out = scan(
        "crates/core/src/fixture.rs",
        concat!(
            "// HashMap thread_rng Instant::now SystemTime\n",
            "/// doc: prefer thread_rng()-free code\n",
            "let x = 1;\n",
        ),
    );
    assert!(out.findings.is_empty(), "{:#?}", out.findings);
}

#[test]
fn block_comments_never_fire_even_nested() {
    let out = scan(
        "crates/core/src/fixture.rs",
        concat!(
            "/* HashMap /* nested thread_rng */ Instant::now */\n",
            "let y = 2; /* SystemTime */ let z = 3;\n",
        ),
    );
    assert!(out.findings.is_empty(), "{:#?}", out.findings);
}

#[test]
fn strings_and_raw_strings_never_fire() {
    let out = scan(
        "crates/core/src/fixture.rs",
        concat!(
            "let a = \"HashMap and thread_rng in a string\";\n",
            "let b = r#\"raw: Instant::now \"quoted\" SystemTime\"#;\n",
            "let c = \"multi-line \\\n",
            "          thread_rng continuation\";\n",
            "let line_five = thread_rng();\n",
        ),
    );
    // Only the real call on line 5 fires — and at the right line number
    // despite the escaped-newline string above it.
    assert_eq!(fired(&out, "RSBT-L002"), vec![5]);
    assert_eq!(out.findings.len(), 1, "{:#?}", out.findings);
}

#[test]
fn cfg_test_modules_are_exempt() {
    let out = scan(
        "crates/core/src/fixture.rs",
        concat!(
            "fn live() { let h = HashMap::new(); }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    use std::collections::HashMap;\n",
            "    fn t() { let t0 = Instant::now(); let r = thread_rng(); }\n",
            "}\n",
        ),
    );
    assert_eq!(fired(&out, "RSBT-L001"), vec![1], "{:#?}", out.findings);
    assert!(fired(&out, "RSBT-L002").is_empty());
    assert!(fired(&out, "RSBT-L003").is_empty());
}

#[test]
fn allow_directives_suppress_inline_and_from_preceding_comment() {
    let out = scan(
        "crates/sim/src/fixture.rs",
        concat!(
            "let t0 = Instant::now(); // rsbt-analyze: allow(RSBT-L003): socket timeout\n",
            "// rsbt-analyze: allow(RSBT-L001, RSBT-L002)\n",
            "let m: HashMap<u32, u32> = seed(thread_rng());\n",
            "let unexcused = thread_rng();\n",
        ),
    );
    assert!(fired(&out, "RSBT-L003").is_empty());
    assert!(fired(&out, "RSBT-L001").is_empty());
    assert_eq!(fired(&out, "RSBT-L002"), vec![4], "{:#?}", out.findings);
    assert_eq!(out.suppressed, 3);
}

#[test]
fn allow_directive_for_the_wrong_rule_does_not_suppress() {
    let out = scan(
        "crates/sim/src/fixture.rs",
        "let t0 = Instant::now(); // rsbt-analyze: allow(RSBT-L001)\n",
    );
    assert_eq!(fired(&out, "RSBT-L003"), vec![1]);
}

#[test]
fn ratchet_rules_count_instead_of_firing() {
    let out = scan(
        "crates/core/src/fixture.rs",
        concat!(
            "let mask = (1u64 << k) - 1;\n",
            "let p = solved_count as f64 / runs as f64;\n",
            "let v = cfg.get(&k).unwrap();\n",
        ),
    );
    assert!(out.findings.is_empty(), "{:#?}", out.findings);
    assert_eq!(
        out.ratchet.get("RSBT-L004", "crates/core/src/fixture.rs"),
        2
    );
    assert_eq!(
        out.ratchet.get("RSBT-L005", "crates/core/src/fixture.rs"),
        1
    );
}

#[test]
fn vendor_sources_only_answer_for_crate_root_attributes() {
    let out = scan(
        "vendor/rand/src/fixture.rs",
        "let r = thread_rng(); let m = HashMap::new(); let t = Instant::now();\n",
    );
    assert!(out.findings.is_empty(), "{:#?}", out.findings);

    let out = scan("vendor/rand/src/lib.rs", "pub fn noop() {}\n");
    let l006 = fired(&out, "RSBT-L006");
    assert_eq!(
        l006.len(),
        2,
        "both attributes missing: {:#?}",
        out.findings
    );
}

#[test]
fn non_kernel_crates_skip_kernel_only_rules() {
    // The analyze crate itself is neither kernel nor bench: HashMap and
    // unwrap are fine there, wall-clock reads are not.
    let out = scan(
        "crates/analyze/src/fixture.rs",
        concat!(
            "let m = HashMap::new();\n",
            "let v = m.get(&1).unwrap();\n",
            "let t = Instant::now();\n",
        ),
    );
    assert_eq!(fired(&out, "RSBT-L003"), vec![3]);
    assert_eq!(out.findings.len(), 1, "{:#?}", out.findings);
    assert_eq!(out.ratchet.counts.len(), 0);
}
