//! The `rsbt-analyze` binary: runs both analysis layers and gates CI.
//!
//! ```text
//! rsbt-analyze [--root <dir>] [--ci] [--json <path>] [--update-ratchet]
//! ```
//!
//! * `--root <dir>` — workspace root (default: the current directory).
//! * `--ci` — CI mode: always write the findings artifact
//!   (`ANALYZE_FINDINGS.json` under the root) before exiting, so a
//!   failing gate still uploads its evidence.
//! * `--json <path>` — write the findings artifact to an explicit path.
//! * `--update-ratchet` — rewrite `ANALYZE_BASELINE.json` with the
//!   measured ratchet counts instead of comparing against it.
//!
//! Exit status: 0 when no findings, 1 on findings, 2 on usage or I/O
//! errors.

#![deny(deprecated)]
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use rsbt_analyze::{analyze, findings_json, Analysis, Options};

/// The default findings-artifact name (written under the root in CI
/// mode). Git-ignored; CI uploads it on failure.
const FINDINGS_FILE: &str = "ANALYZE_FINDINGS.json";

struct Cli {
    root: PathBuf,
    ci: bool,
    json: Option<PathBuf>,
    update_ratchet: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        root: PathBuf::from("."),
        ci: false,
        json: None,
        update_ratchet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                cli.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--ci" => cli.ci = true,
            "--json" => {
                cli.json = Some(PathBuf::from(args.next().ok_or("--json needs a path")?));
            }
            "--update-ratchet" => cli.update_ratchet = true,
            "--help" | "-h" => {
                return Err("usage: rsbt-analyze [--root <dir>] [--ci] [--json <path>] \
                            [--update-ratchet]"
                    .to_string())
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    if !cli.root.join("Cargo.toml").exists() {
        return Err(format!(
            "'{}' does not look like the workspace root (no Cargo.toml)",
            cli.root.display()
        ));
    }
    Ok(cli)
}

fn render(analysis: &Analysis) -> String {
    let mut out = String::new();
    let s = &analysis.stats;
    out.push_str("=== rsbt-analyze ===\n");
    out.push_str(&format!(
        "layer 1: {} source files scanned, {} occurrences suppressed by allow directives\n",
        s.files_scanned, s.suppressed
    ));
    out.push_str(&format!(
        "layer 2: {} plans verified ({} grid points without a lowering), \
         {} protocols x {} projections, {} baselines / {} sweep rows audited\n",
        s.plans_verified,
        s.plans_skipped,
        s.protocols_checked,
        s.projections_checked,
        s.baselines_audited,
        s.rows_audited
    ));
    if !analysis.notes.is_empty() {
        out.push_str("\nnotes (non-fatal):\n");
        for note in &analysis.notes {
            out.push_str(&format!("  {note}\n"));
        }
    }
    if analysis.findings.is_empty() {
        out.push_str("\nno findings\n");
    } else {
        out.push_str(&format!("\n{} finding(s):\n", analysis.findings.len()));
        for finding in &analysis.findings {
            out.push_str(&format!("  {finding}\n"));
        }
    }
    out
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let analysis = match analyze(
        &cli.root,
        Options {
            update_ratchet: cli.update_ratchet,
        },
    ) {
        Ok(analysis) => analysis,
        Err(e) => {
            eprintln!("rsbt-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", render(&analysis));

    let artifact = cli
        .json
        .clone()
        .or_else(|| cli.ci.then(|| cli.root.join(FINDINGS_FILE)));
    if let Some(path) = artifact {
        if let Err(e) = std::fs::write(&path, findings_json(&analysis).to_pretty_string()) {
            eprintln!("rsbt-analyze: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("findings artifact: {}", path.display());
    }

    if analysis.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
