//! Layer 2b: exhaustive static checking of every registered
//! choreography.
//!
//! Each [`GlobalProtocol`] in
//! [`registered_globals`](rsbt_protocols::choreo::registered_globals) is
//! validated and then projected onto **every** concrete model in both
//! classes (the blackboard and the cyclic port numbering) for every
//! system size `n ≤ MAX_N` — the same exhaustiveness the paper's
//! model-class claims need. Five rules:
//!
//! | rule | what it proves |
//! |------|----------------|
//! | `RSBT-C001` | the global description validates (totality of roles per phase — a missing role entry is a projection-induced deadlock — plus name hygiene and participation discipline) |
//! | `RSBT-C002` | projection succeeds on every admitted `(model, n)` point and fails with exactly the expected error class (`TooFewNodes` / `ModelNotAdmitted`) elsewhere — no surprise failure modes across the grid |
//! | `RSBT-C003` | the final phase exits on `Decision` and no earlier phase does (decided ⇒ silent: after the decision guard fires nothing else may run) |
//! | `RSBT-C004` | every guard-exited phase has at least one acting role (a guard on common information can only fire if someone can change it) |
//! | `RSBT-C005` | every declared action is expressible under at least one model of the declared class |

use rsbt_protocols::choreo::{
    registered_globals, ActionKind, GlobalProtocol, ModelClass, PhaseExit, ProjectionError,
};
use rsbt_sim::Model;

use crate::Finding;

/// Largest system size the projection grid covers.
pub const MAX_N: usize = 8;

/// The result of the choreography-checking pass.
#[derive(Debug, Default)]
pub struct ChoreoCheckOutcome {
    /// Violations found.
    pub findings: Vec<Finding>,
    /// Registered protocols checked.
    pub protocols_checked: usize,
    /// `(protocol, model, n)` projection points exercised.
    pub projections_checked: usize,
}

/// Checks every registered choreography.
pub fn run() -> ChoreoCheckOutcome {
    let mut out = ChoreoCheckOutcome::default();
    for global in registered_globals() {
        out.protocols_checked += 1;
        out.projections_checked += check_global(&global, &mut out.findings);
    }
    out
}

/// Checks one global protocol; returns the number of projection points
/// exercised and pushes findings.
pub fn check_global(global: &GlobalProtocol, findings: &mut Vec<Finding>) -> usize {
    let locus = format!("choreo:{}", global.name);

    // C001: the description itself.
    if let Err(e) = global.validate() {
        findings.push(Finding::domain(
            "RSBT-C001",
            locus.clone(),
            format!("validation failed: {e}"),
        ));
        // Projection would only repeat the same error.
        return 0;
    }

    // C003: decision discipline across the phase sequence.
    for (i, phase) in global.phases.iter().enumerate() {
        let last = i + 1 == global.phases.len();
        if last && phase.exit != PhaseExit::Decision {
            findings.push(Finding::domain(
                "RSBT-C003",
                locus.clone(),
                format!("final phase `{}` does not exit on Decision", phase.name),
            ));
        }
        if !last && phase.exit == PhaseExit::Decision {
            findings.push(Finding::domain(
                "RSBT-C003",
                locus.clone(),
                format!(
                    "phase `{}` exits on Decision but phases follow it \
                     (decided nodes must stay silent)",
                    phase.name
                ),
            ));
        }

        // C004: guard progress.
        if matches!(phase.exit, PhaseExit::Guard(_))
            && phase.actions.iter().all(|(_, kinds)| kinds.is_empty())
        {
            findings.push(Finding::domain(
                "RSBT-C004",
                locus.clone(),
                format!(
                    "phase `{}` exits on a guard but no role may emit anything \
                     (the guard can never fire)",
                    phase.name
                ),
            ));
        }

        // C005: action/class expressibility.
        for (role, kinds) in &phase.actions {
            for kind in kinds {
                let expressible = match global.model {
                    ModelClass::Blackboard => *kind == ActionKind::Post,
                    ModelClass::MessagePassing => *kind != ActionKind::Post,
                    ModelClass::Any => true,
                };
                if !expressible {
                    findings.push(Finding::domain(
                        "RSBT-C005",
                        locus.clone(),
                        format!(
                            "phase `{}` role `{role}` declares `{kind}`, inexpressible \
                             under {}",
                            phase.name, global.model
                        ),
                    ));
                }
            }
        }
    }

    // C002: the exhaustive projection grid.
    let need: usize = global.roles.iter().map(|r| r.min_count).sum();
    let mut points = 0;
    for n in 1..=MAX_N {
        for model in [Model::Blackboard, Model::message_passing_cyclic(n)] {
            points += 1;
            let admitted = global.model.admits(&model);
            let enough = n >= need;
            match global.project(&model, n) {
                Ok(projection) => {
                    if !admitted || !enough {
                        findings.push(Finding::domain(
                            "RSBT-C002",
                            locus.clone(),
                            format!(
                                "projection onto {model:?} with n = {n} succeeded but should \
                                 have been rejected (admitted = {admitted}, nodes ≥ {need}: \
                                 {enough})"
                            ),
                        ));
                    } else if projection.locals().is_empty() {
                        findings.push(Finding::domain(
                            "RSBT-C002",
                            locus.clone(),
                            format!("projection onto {model:?} with n = {n} yields no locals"),
                        ));
                    }
                }
                Err(ProjectionError::ModelNotAdmitted { .. }) if !admitted => {}
                Err(ProjectionError::TooFewNodes { .. }) if admitted && !enough => {}
                Err(e) => {
                    findings.push(Finding::domain(
                        "RSBT-C002",
                        locus.clone(),
                        format!("projection onto {model:?} with n = {n} failed unexpectedly: {e}"),
                    ));
                }
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsbt_protocols::choreo::{Participation, PhaseSpec, RoleSpec};

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn every_registered_choreography_is_clean() {
        let out = run();
        assert!(out.findings.is_empty(), "{:#?}", out.findings);
        assert!(out.protocols_checked >= 7, "registry shrank unexpectedly");
        assert_eq!(
            out.projections_checked,
            out.protocols_checked * MAX_N * 2,
            "grid must cover both model classes at every n"
        );
    }

    /// A minimal valid sparse blackboard protocol to corrupt in tests.
    fn valid() -> GlobalProtocol {
        GlobalProtocol {
            name: "test-proto",
            model: ModelClass::Blackboard,
            participation: Participation::Sparse,
            roles: vec![RoleSpec {
                name: "node",
                min_count: 2,
            }],
            phases: vec![PhaseSpec {
                name: "race",
                actions: vec![("node", vec![ActionKind::Post])],
                exit: PhaseExit::Decision,
            }],
        }
    }

    #[test]
    fn the_template_protocol_is_clean() {
        let mut findings = Vec::new();
        check_global(&valid(), &mut findings);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn rejects_a_non_total_phase() {
        // An "observer" role with no action entry in the only phase: its
        // local machine would have no behavior there — a deadlock. The
        // checker must surface validate()'s MissingRole as a finding.
        let mut bad = valid();
        bad.roles.push(RoleSpec {
            name: "observer",
            min_count: 0,
        });
        let mut findings = Vec::new();
        check_global(&bad, &mut findings);
        assert!(rules(&findings).contains(&"RSBT-C001"), "{findings:#?}");
        assert!(
            findings.iter().any(|f| f.message.contains("observer")),
            "{findings:#?}"
        );
    }

    #[test]
    fn rejects_a_mid_protocol_decision_phase() {
        // Keep the description valid (both phases total over one role)
        // but put Decision in the middle.
        let mut bad = valid();
        bad.phases.push(PhaseSpec {
            name: "postscript",
            actions: vec![("node", vec![ActionKind::Post])],
            exit: PhaseExit::Rounds(1),
        });
        let mut findings = Vec::new();
        check_global(&bad, &mut findings);
        let rs = rules(&findings);
        assert!(rs.contains(&"RSBT-C003"), "{findings:#?}");
    }

    #[test]
    fn rejects_a_guard_phase_nobody_can_advance() {
        let mut bad = valid();
        bad.phases.insert(
            0,
            PhaseSpec {
                name: "stall",
                actions: vec![("node", vec![])],
                exit: PhaseExit::Guard("never"),
            },
        );
        let mut findings = Vec::new();
        check_global(&bad, &mut findings);
        assert!(rules(&findings).contains(&"RSBT-C004"), "{findings:#?}");
    }
}
