//! Layer 2a: static verification of compiled [`VerdictPlan`]s.
//!
//! Every built-in task lowering is verified over a `(task, n, layout)`
//! grid — without evaluating a single sample word. Five rules:
//!
//! | rule | what it proves |
//! |------|----------------|
//! | `RSBT-P001` | the op count respects the compilation budget ([`VerdictPlan::max_ops`]) |
//! | `RSBT-P002` | no op reads a never-written register (a read of start-zeroed scratch that was never defined is a lowering bug: the op is a constant) |
//! | `RSBT-P003` | no dead ops (backward liveness from the verdict register) |
//! | `RSBT-P004` | every register and pair index is in bounds for the plan's register file and unit count |
//! | `RSBT-P005` | endpoint correctness under refinement monotonicity (below) |
//!
//! # The refinement-monotonicity argument (P005)
//!
//! Every plan op is monotone non-decreasing in the pairwise *distinction*
//! inputs `d[pair] = !eq[pair]`: `Ones` is constant, `AndNotEq`/`OrNotEq`
//! are `&`/`|` with `d[pair]`, and `Or`/`OrAnd` are monotone boolean
//! combinations of registers that are themselves monotone by induction.
//! Running the plan on the two lattice endpoints — the *lo rail* (all
//! `d = 0`: the coarsest partition, every unit equal) and the *hi rail*
//! (all `d = 1`: the finest partition) — therefore brackets the verdict
//! for **every** intermediate equality pattern, and the two endpoint
//! outputs are exact. The verifier interprets both rails abstractly (one
//! bool per register) and compares them against the semantic authority,
//! [`Task::solves_partition`], at the matching node partitions: all
//! labels equal for the lo rail, `labels[i] = unit_of_node[i]` for the hi
//! rail. A plan whose endpoints agree with the closed form and whose op
//! set is drawn from the monotone kinds cannot be wrong *at the
//! endpoints* no matter which lane pattern arrives at run time — and the
//! rails double as a `lo ≤ hi` consistency proof obligation that any
//! future non-monotone op kind would violate.

use rsbt_tasks::{
    pair_count, KLeaderElection, LeaderAndDeputy, LeaderElection, PlanOp, Task, VerdictPlan,
    WeakSymmetryBreaking,
};

use crate::Finding;

/// Largest system size the grid covers (every task, every `n` up to
/// here, both unit layouts).
pub const MAX_N: usize = 16;

/// The result of the plan-verification pass.
#[derive(Debug, Default)]
pub struct PlanCheckOutcome {
    /// Violations found.
    pub findings: Vec<Finding>,
    /// Plans that were built and verified.
    pub plans_verified: usize,
    /// Grid points where the lowering declined (`lane_plan` → `None`).
    pub plans_skipped: usize,
}

/// Verifies every built-in lowering over the full grid.
pub fn run() -> PlanCheckOutcome {
    let mut out = PlanCheckOutcome::default();
    let tasks: Vec<(Box<dyn Task>, Vec<usize>)> = grid_tasks();
    for (task, sizes) in &tasks {
        for &n in sizes {
            for (layout_name, unit_of_node, units) in layouts(n) {
                let locus = format!("plan:{}/n={n}/{layout_name}", task.name());
                match task.lane_plan(&unit_of_node, units) {
                    None => out.plans_skipped += 1,
                    Some(plan) => {
                        let expected = endpoint_expectations(task.as_ref(), &unit_of_node);
                        out.findings.extend(verify_plan(&locus, &plan, expected));
                        out.plans_verified += 1;
                    }
                }
            }
        }
    }
    out
}

/// The built-in tasks and the sizes each is verified at. `k`-leader
/// election covers every `1 ≤ k ≤ n` (the subset-sum verdict shapes);
/// leader-and-deputy covers the unconstrained task at every `n` plus a
/// genuinely heterogeneous constraint split at `n = 4`.
fn grid_tasks() -> Vec<(Box<dyn Task>, Vec<usize>)> {
    let mut tasks: Vec<(Box<dyn Task>, Vec<usize>)> = vec![
        (Box::new(LeaderElection), (1..=MAX_N).collect()),
        (Box::new(WeakSymmetryBreaking), (2..=MAX_N).collect()),
    ];
    for n in 2..=MAX_N {
        for k in 1..=n {
            tasks.push((Box::new(KLeaderElection::new(k)), vec![n]));
        }
        tasks.push((
            Box::new(LeaderAndDeputy::new(vec![true; n], vec![true; n])),
            vec![n],
        ));
    }
    tasks.push((
        Box::new(LeaderAndDeputy::new(
            vec![true, true, false, false],
            vec![false, false, true, true],
        )),
        vec![4],
    ));
    tasks
}

/// The unit layouts verified per size: one unit per node, and nodes
/// grouped in pairs (the bit-sliced runner's merged-knowledge shape).
fn layouts(n: usize) -> Vec<(&'static str, Vec<usize>, usize)> {
    let mut out = vec![("identity", (0..n).collect::<Vec<_>>(), n)];
    if n >= 2 {
        out.push(("paired", (0..n).map(|i| i / 2).collect(), n.div_ceil(2)));
    }
    out
}

/// The semantic endpoint verdicts: `solves_partition` at the coarsest
/// partition (all nodes one class) and the finest the layout admits
/// (classes = units). `None` when the task has no closed form.
fn endpoint_expectations(task: &dyn Task, unit_of_node: &[usize]) -> Option<(bool, bool)> {
    let coarse = task.solves_partition(&vec![0u8; unit_of_node.len()])?;
    let fine_labels: Vec<u8> = unit_of_node
        .iter()
        .map(|&u| u8::try_from(u).expect("grid sizes fit u8"))
        .collect();
    let fine = task.solves_partition(&fine_labels)?;
    Some((coarse, fine))
}

/// Statically verifies one plan. `expected` carries the semantic
/// `(coarse, fine)` endpoint verdicts when the task has a closed form.
pub fn verify_plan(
    locus: &str,
    plan: &VerdictPlan,
    expected: Option<(bool, bool)>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let regs = plan.regs();
    let pairs = pair_count(plan.units());
    let ops: Vec<PlanOp> = plan.ops().collect();

    // P001: compilation budget.
    if ops.len() > VerdictPlan::max_ops() {
        findings.push(Finding::domain(
            "RSBT-P001",
            locus.to_string(),
            format!(
                "{} ops exceed the compilation budget of {}",
                ops.len(),
                VerdictPlan::max_ops()
            ),
        ));
    }
    if regs == 0 {
        findings.push(Finding::domain(
            "RSBT-P004",
            locus.to_string(),
            "empty register file: register 0 (the verdict) must exist".to_string(),
        ));
        return findings;
    }

    // P004: bounds. Out-of-range ops are excluded from the later passes
    // (they would index past the register file).
    let mut in_bounds = vec![true; ops.len()];
    for (i, op) in ops.iter().enumerate() {
        let (regs_used, pair) = match *op {
            PlanOp::Ones { dst } => (vec![dst], None),
            PlanOp::AndNotEq { dst, pair } | PlanOp::OrNotEq { dst, pair } => {
                (vec![dst], Some(pair))
            }
            PlanOp::Or { dst, src } => (vec![dst, src], None),
            PlanOp::OrAnd { dst, a, b } => (vec![dst, a, b], None),
        };
        for r in regs_used {
            if r as usize >= regs {
                findings.push(Finding::domain(
                    "RSBT-P004",
                    locus.to_string(),
                    format!("op {i} uses register {r}, register file has {regs}"),
                ));
                in_bounds[i] = false;
            }
        }
        if let Some(p) = pair {
            if p as usize >= pairs {
                findings.push(Finding::domain(
                    "RSBT-P004",
                    locus.to_string(),
                    format!(
                        "op {i} reads pair {p}, {} units pack only {pairs} pairs",
                        plan.units()
                    ),
                ));
                in_bounds[i] = false;
            }
        }
    }

    // P002: def-before-use. Registers start zeroed, so a *read* of a
    // never-written register is well-defined — and therefore a silent
    // constant, which is always a lowering bug.
    let mut defined = vec![false; regs];
    for (i, op) in ops.iter().enumerate() {
        if !in_bounds[i] {
            continue;
        }
        match *op {
            PlanOp::Ones { dst } | PlanOp::OrNotEq { dst, .. } => defined[dst as usize] = true,
            PlanOp::AndNotEq { dst, .. } => {
                if !defined[dst as usize] {
                    findings.push(Finding::domain(
                        "RSBT-P002",
                        locus.to_string(),
                        format!("op {i} masks never-written register {dst} (constant zero)"),
                    ));
                    defined[dst as usize] = true;
                }
            }
            PlanOp::Or { dst, src } => {
                if !defined[src as usize] {
                    findings.push(Finding::domain(
                        "RSBT-P002",
                        locus.to_string(),
                        format!("op {i} reads never-written register {src}"),
                    ));
                }
                defined[dst as usize] = true;
            }
            PlanOp::OrAnd { dst, a, b } => {
                for r in [a, b] {
                    if !defined[r as usize] {
                        findings.push(Finding::domain(
                            "RSBT-P002",
                            locus.to_string(),
                            format!("op {i} reads never-written register {r}"),
                        ));
                    }
                }
                defined[dst as usize] = true;
            }
        }
    }

    // P003: dead ops, by backward liveness from the verdict register.
    // `Ones` is a full overwrite and kills its destination; the RMW ops
    // keep it live and propagate liveness into their sources.
    let mut live = vec![false; regs];
    live[0] = true;
    for (i, op) in ops.iter().enumerate().rev() {
        if !in_bounds[i] {
            continue;
        }
        let dst = match *op {
            PlanOp::Ones { dst }
            | PlanOp::AndNotEq { dst, .. }
            | PlanOp::OrNotEq { dst, .. }
            | PlanOp::Or { dst, .. }
            | PlanOp::OrAnd { dst, .. } => dst as usize,
        };
        if !live[dst] {
            findings.push(Finding::domain(
                "RSBT-P003",
                locus.to_string(),
                format!("op {i} ({op:?}) writes register {dst}, which nothing reads"),
            ));
            continue;
        }
        match *op {
            PlanOp::Ones { .. } => live[dst] = false,
            PlanOp::AndNotEq { .. } | PlanOp::OrNotEq { .. } => {}
            PlanOp::Or { src, .. } => live[src as usize] = true,
            PlanOp::OrAnd { a, b, .. } => {
                live[a as usize] = true;
                live[b as usize] = true;
            }
        }
    }

    // P005: dual-rail abstract interpretation at the lattice endpoints
    // (module docs). One bool per register per rail; `lo` sees every
    // distinction as 0, `hi` as 1.
    let mut lo = vec![false; regs];
    let mut hi = vec![false; regs];
    for (i, op) in ops.iter().enumerate() {
        if !in_bounds[i] {
            continue;
        }
        match *op {
            PlanOp::Ones { dst } => {
                lo[dst as usize] = true;
                hi[dst as usize] = true;
            }
            PlanOp::AndNotEq { dst, .. } => lo[dst as usize] = false,
            PlanOp::OrNotEq { dst, .. } => hi[dst as usize] = true,
            PlanOp::Or { dst, src } => {
                lo[dst as usize] |= lo[src as usize];
                hi[dst as usize] |= hi[src as usize];
            }
            PlanOp::OrAnd { dst, a, b } => {
                lo[dst as usize] |= lo[a as usize] && lo[b as usize];
                hi[dst as usize] |= hi[a as usize] && hi[b as usize];
            }
        }
        if lo[..].iter().zip(&hi[..]).any(|(l, h)| *l && !*h) {
            findings.push(Finding::domain(
                "RSBT-P005",
                locus.to_string(),
                format!("op {i} breaks lo ≤ hi: an op kind is not monotone in distinctions"),
            ));
            return findings;
        }
    }
    if let Some((coarse, fine)) = expected {
        if lo[0] != coarse {
            findings.push(Finding::domain(
                "RSBT-P005",
                locus.to_string(),
                format!(
                    "coarse-endpoint verdict {} contradicts solves_partition = {coarse} \
                     (all units equal)",
                    lo[0]
                ),
            ));
        }
        if hi[0] != fine {
            findings.push(Finding::domain(
                "RSBT-P005",
                locus.to_string(),
                format!(
                    "fine-endpoint verdict {} contradicts solves_partition = {fine} \
                     (all units distinct)",
                    hi[0]
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn full_grid_is_clean() {
        let out = run();
        assert!(out.findings.is_empty(), "{:#?}", out.findings);
        assert!(out.plans_verified > 0, "grid must exercise real plans");
    }

    #[test]
    fn rejects_plan_exceeding_the_op_budget() {
        let ops = vec![PlanOp::OrNotEq { dst: 0, pair: 0 }; VerdictPlan::max_ops() + 1];
        let plan = VerdictPlan::from_raw_ops(2, 1, &ops);
        assert!(rules(&verify_plan("t", &plan, None)).contains(&"RSBT-P001"));
    }

    #[test]
    fn rejects_reads_of_never_written_registers() {
        let plan = VerdictPlan::from_raw_ops(2, 2, &[PlanOp::Or { dst: 0, src: 1 }]);
        let f = verify_plan("t", &plan, None);
        assert!(rules(&f).contains(&"RSBT-P002"), "{f:?}");

        let plan = VerdictPlan::from_raw_ops(2, 1, &[PlanOp::AndNotEq { dst: 0, pair: 0 }]);
        assert!(rules(&verify_plan("t", &plan, None)).contains(&"RSBT-P002"));
    }

    #[test]
    fn rejects_dead_ops() {
        // Register 1 is written, feeds nothing.
        let plan = VerdictPlan::from_raw_ops(
            2,
            2,
            &[PlanOp::Ones { dst: 1 }, PlanOp::OrNotEq { dst: 0, pair: 0 }],
        );
        let f = verify_plan("t", &plan, None);
        assert!(rules(&f).contains(&"RSBT-P003"), "{f:?}");
    }

    #[test]
    fn rejects_out_of_bounds_registers_and_pairs() {
        let plan = VerdictPlan::from_raw_ops(2, 1, &[PlanOp::Or { dst: 0, src: 7 }]);
        assert!(rules(&verify_plan("t", &plan, None)).contains(&"RSBT-P004"));

        // 2 units pack one pair; pair 3 is out of range.
        let plan = VerdictPlan::from_raw_ops(2, 1, &[PlanOp::OrNotEq { dst: 0, pair: 3 }]);
        assert!(rules(&verify_plan("t", &plan, None)).contains(&"RSBT-P004"));

        let plan = VerdictPlan::from_raw_ops(2, 0, &[]);
        assert!(rules(&verify_plan("t", &plan, None)).contains(&"RSBT-P004"));
    }

    #[test]
    fn rejects_corrupted_leader_election_plan_at_the_endpoints() {
        // `[Ones{0}]` claims leader election is solvable even when both
        // units are indistinguishable — the coarse endpoint refutes it.
        let corrupt = VerdictPlan::from_raw_ops(2, 1, &[PlanOp::Ones { dst: 0 }]);
        let expected = endpoint_expectations(&LeaderElection, &[0, 1]).expect("LE closed form");
        assert_eq!(expected, (false, true));
        let f = verify_plan("plan:corrupt-le", &corrupt, Some(expected));
        assert!(rules(&f).contains(&"RSBT-P005"), "{f:?}");
        assert!(f.iter().any(|f| f.message.contains("coarse-endpoint")));

        // The genuine lowering passes the same gauntlet.
        let real = LeaderElection.lane_plan(&[0, 1], 2).expect("LE lowers");
        assert!(verify_plan("plan:real-le", &real, Some(expected)).is_empty());
    }

    #[test]
    fn endpoint_expectations_match_closed_forms() {
        // WSB at n = 3: unsolvable when all agree, solvable when all
        // distinct.
        assert_eq!(
            endpoint_expectations(&WeakSymmetryBreaking, &[0, 1, 2]),
            Some((false, true))
        );
        // 1-leader election on one node: solvable at both endpoints.
        assert_eq!(
            endpoint_expectations(&LeaderElection, &[0]),
            Some((true, true))
        );
    }
}
