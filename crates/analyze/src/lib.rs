//! `rsbt-analyze`: the workspace's static-analysis CI gate.
//!
//! Two layers, one verdict (see `DESIGN.md` §4.11 for the rule catalog):
//!
//! * **Layer 1 — source lints** ([`lints`]): token-level determinism
//!   rules over the scrubbed sources ([`lexer`]) — no std hash-map
//!   iteration feeding results, no ambient RNG, no wall-clock reads
//!   outside bench timing, count-width discipline in `rsbt-core`, an
//!   `unwrap`/`expect` ratchet, and mandatory crate-root attributes.
//!   Existing debt is pinned by a committed ratchet baseline
//!   (`ANALYZE_BASELINE.json`); only regressions fail.
//!
//! * **Layer 2 — domain-IR verifiers**: static proofs over the
//!   workspace's two intermediate representations and its committed
//!   artifacts, without executing a single sample —
//!   [`plan_check`] abstract-interprets every built-in
//!   [`VerdictPlan`](rsbt_tasks::VerdictPlan) (def-before-use, dead
//!   ops, bounds, and endpoint correctness under refinement
//!   monotonicity), [`choreo_check`] exhaustively projects every
//!   registered [`GlobalProtocol`](rsbt_protocols::choreo::GlobalProtocol)
//!   across both model classes, and [`baseline_audit`] re-validates the
//!   seven committed `BENCH_*.json` baselines plus their cross-file
//!   invariants.
//!
//! The `rsbt-analyze` binary runs both layers and exits non-zero on any
//! finding; CI runs it right after the test suite.

#![deny(deprecated)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use rsbt_bench::report::Json;

pub mod baseline_audit;
pub mod choreo_check;
pub mod lexer;
pub mod lints;
pub mod plan_check;

/// The rules whose occurrence counts are ratcheted against
/// `ANALYZE_BASELINE.json` instead of being outright bans.
pub const RATCHET_RULES: [&str; 2] = ["RSBT-L004", "RSBT-L005"];

/// The committed ratchet baseline, relative to the workspace root.
pub const BASELINE_FILE: &str = "ANALYZE_BASELINE.json";

/// The schema tag of the ratchet baseline document.
pub const BASELINE_SCHEMA: &str = "rsbt-analyze-baseline/v1";

/// The schema tag of the findings artifact the binary writes.
pub const FINDINGS_SCHEMA: &str = "rsbt-analyze-findings/v1";

/// One finding: a rule violation anchored to a source line (Layer 1) or
/// to a domain object such as a plan, protocol, or baseline row
/// (Layer 2, `line == 0`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule ID (`RSBT-L*`, `RSBT-P*`, `RSBT-C*`, `RSBT-B*`).
    pub rule: &'static str,
    /// Repo-relative file path, or a domain locus like
    /// `plan:leader-election/n=5/identity`.
    pub file: String,
    /// 1-based source line; 0 for domain findings.
    pub line: usize,
    /// What went wrong, in one sentence.
    pub message: String,
}

impl Finding {
    /// A source-anchored finding.
    pub fn src(rule: &'static str, file: &str, line: usize, message: String) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message,
        }
    }

    /// A domain-anchored finding (no source line).
    pub fn domain(rule: &'static str, locus: String, message: String) -> Finding {
        Finding {
            rule,
            file: locus,
            line: 0,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}: {}", self.rule, self.file, self.message)
        } else {
            write!(
                f,
                "{}: {}:{}: {}",
                self.rule, self.file, self.line, self.message
            )
        }
    }
}

/// Knobs for [`analyze`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Options {
    /// Rewrite `ANALYZE_BASELINE.json` with the measured ratchet counts
    /// instead of comparing against it.
    pub update_ratchet: bool,
}

/// Coverage counters, so "no findings" is distinguishable from "nothing
/// ran".
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Source files scrubbed and linted.
    pub files_scanned: usize,
    /// Occurrences suppressed by inline allow directives.
    pub suppressed: usize,
    /// Verdict plans statically verified.
    pub plans_verified: usize,
    /// `(task, n, layout)` grid points where lowering returned no plan.
    pub plans_skipped: usize,
    /// Global protocols checked.
    pub protocols_checked: usize,
    /// `(protocol, model, n)` projections exercised.
    pub projections_checked: usize,
    /// Committed bench baselines audited.
    pub baselines_audited: usize,
    /// Sweep rows audited across the baselines.
    pub rows_audited: usize,
}

/// The result of a full analysis run.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// All findings, sorted by `(rule, file, line)`.
    pub findings: Vec<Finding>,
    /// Non-fatal observations (ratchet tightening hints).
    pub notes: Vec<String>,
    /// Coverage counters.
    pub stats: Stats,
}

/// Runs both layers over the workspace at `root`.
///
/// # Errors
///
/// I/O errors from walking the sources or reading/writing the ratchet
/// baseline. Rule violations are `findings`, never errors.
pub fn analyze(root: &Path, opts: Options) -> io::Result<Analysis> {
    let mut out = Analysis::default();

    // Layer 1: source lints + ratchet.
    let files = lints::scan_workspace(root)?;
    let lint = lints::run(&files);
    out.stats.files_scanned = lint.files_scanned;
    out.stats.suppressed = lint.suppressed;
    out.findings.extend(lint.findings);
    if opts.update_ratchet {
        fs::write(
            root.join(BASELINE_FILE),
            emit_baseline(&lint.ratchet).to_pretty_string(),
        )?;
        out.notes
            .push(format!("ratchet baseline rewritten: {BASELINE_FILE}"));
    } else {
        match fs::read_to_string(root.join(BASELINE_FILE)) {
            Ok(text) => match parse_baseline(&text) {
                Ok(baseline) => {
                    compare_ratchet(&lint.ratchet, &baseline, &mut out);
                }
                Err(e) => out.findings.push(Finding::domain(
                    "RSBT-L000",
                    BASELINE_FILE.to_string(),
                    format!("malformed ratchet baseline: {e}"),
                )),
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                out.findings.push(Finding::domain(
                    "RSBT-L000",
                    BASELINE_FILE.to_string(),
                    "ratchet baseline missing: run `rsbt-analyze --update-ratchet` and commit it"
                        .to_string(),
                ));
            }
            Err(e) => return Err(e),
        }
    }

    // Layer 2: domain-IR verifiers.
    let plans = plan_check::run();
    out.stats.plans_verified = plans.plans_verified;
    out.stats.plans_skipped = plans.plans_skipped;
    out.findings.extend(plans.findings);

    let choreo = choreo_check::run();
    out.stats.protocols_checked = choreo.protocols_checked;
    out.stats.projections_checked = choreo.projections_checked;
    out.findings.extend(choreo.findings);

    let bench = baseline_audit::run(root)?;
    out.stats.baselines_audited = bench.baselines_audited;
    out.stats.rows_audited = bench.rows_audited;
    out.findings.extend(bench.findings);

    out.findings
        .sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
    Ok(out)
}

/// Compares measured ratchet counts against the committed baseline:
/// regressions become findings, improvements become tightening notes.
fn compare_ratchet(
    measured: &lints::RatchetCounts,
    baseline: &lints::RatchetCounts,
    out: &mut Analysis,
) {
    for (rule, file, count) in &measured.counts {
        let allowed = baseline.get(rule, file);
        if *count > allowed {
            out.findings.push(Finding::domain(
                match rule.as_str() {
                    "RSBT-L004" => "RSBT-L004",
                    _ => "RSBT-L005",
                },
                file.clone(),
                format!(
                    "ratchet regression: {count} occurrences, baseline allows {allowed} \
                     (fix the new sites or justify with an inline allow)"
                ),
            ));
        } else if *count < allowed {
            out.notes.push(format!(
                "{rule}: {file} improved to {count} (baseline {allowed}); \
                 tighten with --update-ratchet"
            ));
        }
    }
    for (rule, file, allowed) in &baseline.counts {
        if measured.get(rule, file) == 0 && *allowed > 0 {
            out.notes.push(format!(
                "{rule}: {file} is clean (baseline {allowed}); tighten with --update-ratchet"
            ));
        }
    }
}

/// Serializes ratchet counts as the committed baseline document.
pub fn emit_baseline(counts: &lints::RatchetCounts) -> Json {
    Json::obj([
        ("schema", Json::Str(BASELINE_SCHEMA.to_string())),
        (
            "counts",
            Json::Arr(
                counts
                    .counts
                    .iter()
                    .map(|(rule, file, count)| {
                        Json::obj([
                            ("rule", Json::Str(rule.clone())),
                            ("file", Json::Str(file.clone())),
                            ("count", Json::Int(*count as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses a committed baseline document.
///
/// # Errors
///
/// A description of the first structural problem.
pub fn parse_baseline(text: &str) -> Result<lints::RatchetCounts, String> {
    let doc = Json::parse(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == BASELINE_SCHEMA => {}
        _ => return Err(format!("schema must be '{BASELINE_SCHEMA}'")),
    }
    let entries = doc
        .get("counts")
        .and_then(Json::as_arr)
        .ok_or("missing 'counts' array")?;
    let mut counts = lints::RatchetCounts::default();
    for entry in entries {
        let rule = entry
            .get("rule")
            .and_then(Json::as_str)
            .ok_or("entry missing string 'rule'")?;
        if !RATCHET_RULES.contains(&rule) {
            return Err(format!("'{rule}' is not a ratcheted rule"));
        }
        let file = entry
            .get("file")
            .and_then(Json::as_str)
            .ok_or("entry missing string 'file'")?;
        let count = match entry.get("count") {
            Some(Json::Int(c)) if *c >= 1 => *c as usize,
            _ => return Err("entry 'count' must be a positive integer".to_string()),
        };
        counts
            .counts
            .push((rule.to_string(), file.to_string(), count));
    }
    counts.sort();
    Ok(counts)
}

/// Serializes an analysis as the findings artifact CI uploads.
pub fn findings_json(analysis: &Analysis) -> Json {
    let stats = &analysis.stats;
    Json::obj([
        ("schema", Json::Str(FINDINGS_SCHEMA.to_string())),
        (
            "findings",
            Json::Arr(
                analysis
                    .findings
                    .iter()
                    .map(|f| {
                        Json::obj([
                            ("rule", Json::Str(f.rule.to_string())),
                            ("file", Json::Str(f.file.clone())),
                            ("line", Json::Int(f.line as i64)),
                            ("message", Json::Str(f.message.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "notes",
            Json::Arr(
                analysis
                    .notes
                    .iter()
                    .map(|n| Json::Str(n.clone()))
                    .collect(),
            ),
        ),
        (
            "stats",
            Json::obj([
                ("files_scanned", Json::Int(stats.files_scanned as i64)),
                ("suppressed", Json::Int(stats.suppressed as i64)),
                ("plans_verified", Json::Int(stats.plans_verified as i64)),
                ("plans_skipped", Json::Int(stats.plans_skipped as i64)),
                (
                    "protocols_checked",
                    Json::Int(stats.protocols_checked as i64),
                ),
                (
                    "projections_checked",
                    Json::Int(stats.projections_checked as i64),
                ),
                (
                    "baselines_audited",
                    Json::Int(stats.baselines_audited as i64),
                ),
                ("rows_audited", Json::Int(stats.rows_audited as i64)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trips() {
        let mut counts = lints::RatchetCounts::default();
        counts
            .counts
            .push(("RSBT-L005".into(), "crates/core/src/x.rs".into(), 3));
        counts
            .counts
            .push(("RSBT-L004".into(), "crates/core/src/y.rs".into(), 1));
        counts.sort();
        let parsed = parse_baseline(&emit_baseline(&counts).to_pretty_string()).unwrap();
        assert_eq!(parsed, counts);
    }

    #[test]
    fn baseline_rejects_unknown_rules() {
        let doc = Json::obj([
            ("schema", Json::Str(BASELINE_SCHEMA.into())),
            (
                "counts",
                Json::Arr(vec![Json::obj([
                    ("rule", Json::Str("RSBT-L001".into())),
                    ("file", Json::Str("x.rs".into())),
                    ("count", Json::Int(1)),
                ])]),
            ),
        ]);
        assert!(parse_baseline(&doc.to_pretty_string()).is_err());
    }

    #[test]
    fn ratchet_comparison_splits_regressions_from_improvements() {
        let mut measured = lints::RatchetCounts::default();
        measured.counts.push(("RSBT-L005".into(), "a.rs".into(), 5));
        measured.counts.push(("RSBT-L005".into(), "b.rs".into(), 1));
        let mut baseline = lints::RatchetCounts::default();
        baseline.counts.push(("RSBT-L005".into(), "a.rs".into(), 3));
        baseline.counts.push(("RSBT-L005".into(), "b.rs".into(), 2));
        baseline.counts.push(("RSBT-L005".into(), "c.rs".into(), 4));
        let mut out = Analysis::default();
        compare_ratchet(&measured, &baseline, &mut out);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert!(out.findings[0].message.contains("5 occurrences"));
        assert_eq!(out.notes.len(), 2, "b.rs improved, c.rs clean");
    }
}
