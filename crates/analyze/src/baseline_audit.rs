//! Layer 2c: auditing the committed `BENCH_*.json` baselines.
//!
//! The seven committed baselines are the repo's regression memory; a
//! silently corrupted one would let a real regression through the perf
//! gate. Each file is re-validated against the `rsbt-bench-report/v2`
//! schema and then checked against cross-file invariants the generating
//! experiments guarantee:
//!
//! | rule | what it checks |
//! |------|----------------|
//! | `RSBT-B001` | the file exists, parses, and satisfies the v2 schema |
//! | `RSBT-B002` | the document's `experiment` matches the file name, and the schema tag is exactly v2 (no silent v1 downgrades) |
//! | `RSBT-B003` | on every Monte-Carlo row, the Wilson bounds bracket the estimate pointwise (`ci_lo ≤ series ≤ ci_hi`) |
//! | `RSBT-B004` | every exact/exact-dp series is monotone non-decreasing in `t` (success-by-round-`t` is cumulative) |
//! | `RSBT-B005` | every faulted sweep row pairs with a fault-free base row — same `(model, task, n, k, sizes)` key — in its sweep |
//! | `RSBT-B006` | on the blackboard, each faulted series dominates its fault-free base pointwise (common-random-numbers coupling: faults only remove information, and earlier decisions win) |

use std::fs;
use std::io;
use std::path::Path;

use rsbt_bench::report::{validate, Json, SCHEMA};

use crate::Finding;

/// The committed baselines and the experiment each must contain.
pub const EXPECTED: [(&str, &str); 7] = [
    ("BENCH_faults.json", "faults"),
    ("BENCH_mc.json", "perf_mc"),
    ("BENCH_probability.json", "perf_enum"),
    ("BENCH_proto_mc.json", "proto_mc"),
    ("BENCH_quotient.json", "perf_quotient"),
    ("BENCH_solvability.json", "perf_solv"),
    ("BENCH_sweep.json", "zero_one"),
];

/// Numeric slack for exact-series monotonicity (shortest-round-trip
/// floats; exact series are ratios of integer counts).
const EXACT_TOL: f64 = 1e-12;

/// Numeric slack for the CRN dominance comparison.
const DOMINANCE_TOL: f64 = 1e-9;

/// The result of the baseline-audit pass.
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Violations found.
    pub findings: Vec<Finding>,
    /// Baseline files audited.
    pub baselines_audited: usize,
    /// Sweep rows audited across all files.
    pub rows_audited: usize,
}

/// Audits all committed baselines under `root`.
///
/// # Errors
///
/// Unexpected I/O errors; a *missing* baseline is a finding, not an
/// error.
pub fn run(root: &Path) -> io::Result<BaselineOutcome> {
    let mut out = BaselineOutcome::default();
    for (file, experiment) in EXPECTED {
        out.baselines_audited += 1;
        let text = match fs::read_to_string(root.join(file)) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                out.findings.push(Finding::domain(
                    "RSBT-B001",
                    file.to_string(),
                    "committed baseline is missing".to_string(),
                ));
                continue;
            }
            Err(e) => return Err(e),
        };
        let doc = match Json::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                out.findings.push(Finding::domain(
                    "RSBT-B001",
                    file.to_string(),
                    format!("does not parse: {e}"),
                ));
                continue;
            }
        };
        let (findings, rows) = audit_doc(file, experiment, &doc);
        out.findings.extend(findings);
        out.rows_audited += rows;
    }
    Ok(out)
}

/// Audits one parsed baseline document; returns findings and the number
/// of sweep rows inspected.
pub fn audit_doc(file: &str, experiment: &str, doc: &Json) -> (Vec<Finding>, usize) {
    let mut findings = Vec::new();

    // B001: schema validity.
    if let Err(e) = validate(doc) {
        findings.push(Finding::domain(
            "RSBT-B001",
            file.to_string(),
            format!("schema validation failed: {e}"),
        ));
        return (findings, 0);
    }

    // B002: identity.
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => findings.push(Finding::domain(
            "RSBT-B002",
            file.to_string(),
            format!("schema tag is '{s}', committed baselines must be '{SCHEMA}'"),
        )),
        None => unreachable!("validate() checked the schema tag"),
    }
    match doc.get("experiment").and_then(Json::as_str) {
        Some(e) if e == experiment => {}
        other => findings.push(Finding::domain(
            "RSBT-B002",
            file.to_string(),
            format!("experiment is {other:?}, expected '{experiment}'"),
        )),
    }

    // Per-row and per-sweep invariants.
    let mut rows_audited = 0;
    let empty = Vec::new();
    let sections = doc.get("sections").and_then(Json::as_arr).unwrap_or(&empty);
    for section in sections {
        let sweeps = section
            .get("sweeps")
            .and_then(Json::as_arr)
            .unwrap_or(&empty);
        for sweep in sweeps {
            let label = sweep.get("label").and_then(Json::as_str).unwrap_or("?");
            let rows = sweep.get("rows").and_then(Json::as_arr).unwrap_or(&empty);
            rows_audited += rows.len();
            for row in rows {
                audit_row(file, label, row, &mut findings);
            }
            audit_fault_pairing(file, label, rows, &mut findings);
        }
    }
    (findings, rows_audited)
}

fn series_of(row: &Json) -> Vec<f64> {
    row.get("series")
        .and_then(Json::as_arr)
        .map(|s| s.iter().filter_map(Json::as_f64).collect())
        .unwrap_or_default()
}

fn row_locus(file: &str, label: &str, row: &Json) -> String {
    let field = |key: &str| {
        row.get(key)
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let n = row.get("n").and_then(Json::as_f64).unwrap_or(0.0);
    format!(
        "bench:{file}/{label}/{}/{}/n={n}",
        field("model"),
        field("task")
    )
}

/// B003 + B004 for one sweep row.
fn audit_row(file: &str, label: &str, row: &Json, findings: &mut Vec<Finding>) {
    let series = series_of(row);
    match row.get("mode").and_then(Json::as_str) {
        Some("mc") => {
            let bound = |key: &str| -> Vec<f64> {
                row.get(key)
                    .and_then(Json::as_arr)
                    .map(|b| b.iter().filter_map(Json::as_f64).collect())
                    .unwrap_or_default()
            };
            let (lo, hi) = (bound("ci_lo"), bound("ci_hi"));
            for (t, &v) in series.iter().enumerate() {
                if lo[t] - EXACT_TOL > v || v > hi[t] + EXACT_TOL {
                    findings.push(Finding::domain(
                        "RSBT-B003",
                        row_locus(file, label, row),
                        format!(
                            "Wilson bounds do not bracket the estimate at t-index {t}: \
                             [{}, {}] vs {v}",
                            lo[t], hi[t]
                        ),
                    ));
                }
            }
        }
        Some("exact") | Some("exact-dp") => {
            for t in 1..series.len() {
                if series[t] + EXACT_TOL < series[t - 1] {
                    findings.push(Finding::domain(
                        "RSBT-B004",
                        row_locus(file, label, row),
                        format!(
                            "exact series decreases at t-index {t}: {} -> {} \
                             (success-by-t is cumulative)",
                            series[t - 1],
                            series[t]
                        ),
                    ));
                }
            }
        }
        _ => {}
    }
}

/// The fault-pairing key: sweeps pair base and faulted rows by
/// everything except the fault rates and the limit tag.
fn pair_key(row: &Json) -> String {
    let sizes = row
        .get("sizes")
        .and_then(Json::as_arr)
        .map(|s| {
            s.iter()
                .filter_map(Json::as_f64)
                .map(|v| format!("{v}"))
                .collect::<Vec<_>>()
                .join(",")
        })
        .unwrap_or_default();
    format!(
        "{}|{}|{}|{}|[{sizes}]",
        row.get("model").and_then(Json::as_str).unwrap_or("?"),
        row.get("task").and_then(Json::as_str).unwrap_or("?"),
        row.get("n").and_then(Json::as_f64).unwrap_or(0.0),
        row.get("k").and_then(Json::as_f64).unwrap_or(0.0),
    )
}

fn fault_rate(row: &Json, key: &str) -> Option<f64> {
    row.get(key).and_then(Json::as_f64)
}

/// B005 + B006 over one sweep's rows.
fn audit_fault_pairing(file: &str, label: &str, rows: &[Json], findings: &mut Vec<Finding>) {
    let is_base = |row: &Json| {
        fault_rate(row, "crash") == Some(0.0) && fault_rate(row, "omission") == Some(0.0)
    };
    let bases: Vec<(&Json, String)> = rows
        .iter()
        .filter(|r| is_base(r))
        .map(|r| (r, pair_key(r)))
        .collect();
    for row in rows {
        let (Some(crash), Some(omission)) = (fault_rate(row, "crash"), fault_rate(row, "omission"))
        else {
            continue;
        };
        if crash == 0.0 && omission == 0.0 {
            continue;
        }
        let key = pair_key(row);
        let Some((base, _)) = bases.iter().find(|(_, k)| *k == key) else {
            findings.push(Finding::domain(
                "RSBT-B005",
                row_locus(file, label, row),
                format!(
                    "faulted row (crash = {crash}, omission = {omission}) has no \
                     fault-free base row in its sweep"
                ),
            ));
            continue;
        };
        if row.get("model").and_then(Json::as_str) != Some("blackboard") {
            continue;
        }
        let (faulted, clean) = (series_of(row), series_of(base));
        if faulted.len() != clean.len() {
            findings.push(Finding::domain(
                "RSBT-B006",
                row_locus(file, label, row),
                "faulted and base series lengths differ".to_string(),
            ));
            continue;
        }
        for (t, (&f, &b)) in faulted.iter().zip(&clean).enumerate() {
            if f + DOMINANCE_TOL < b {
                findings.push(Finding::domain(
                    "RSBT-B006",
                    row_locus(file, label, row),
                    format!(
                        "faulted series drops below its fault-free base at t-index {t}: \
                         {f} < {b} (CRN coupling forbids this on the blackboard)"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    fn row(mode: &str, series: &[f64], faults: Option<(f64, f64)>) -> Json {
        let mut pairs = vec![
            ("model".to_string(), Json::Str("blackboard".into())),
            ("task".to_string(), Json::Str("leader-election".into())),
            (
                "sizes".to_string(),
                Json::Arr(vec![Json::Int(1), Json::Int(1)]),
            ),
            ("n".to_string(), Json::Int(2)),
            ("k".to_string(), Json::Int(2)),
            ("gcd".to_string(), Json::Int(1)),
            (
                "series".to_string(),
                Json::Arr(series.iter().map(|&v| Json::Num(v)).collect()),
            ),
            ("limit".to_string(), Json::Str("One".into())),
            ("mode".to_string(), Json::Str(mode.into())),
        ];
        if let Some((crash, omission)) = faults {
            pairs.push(("crash".to_string(), Json::Num(crash)));
            pairs.push(("omission".to_string(), Json::Num(omission)));
        }
        if mode == "mc" {
            pairs.push(("samples".to_string(), Json::Int(64)));
            pairs.push(("seed".to_string(), Json::Str("7".into())));
            let shift = |d: f64| Json::Arr(series.iter().map(|&v| Json::Num(v + d)).collect());
            pairs.push(("ci_lo".to_string(), shift(-0.01)));
            pairs.push(("ci_hi".to_string(), shift(0.01)));
        }
        Json::Obj(pairs)
    }

    fn doc(experiment: &str, rows: Vec<Json>) -> Json {
        Json::obj([
            ("schema", Json::Str(SCHEMA.into())),
            ("experiment", Json::Str(experiment.into())),
            ("title", Json::Str("t".into())),
            ("paper_ref", Json::Str("r".into())),
            ("threads", Json::Int(1)),
            (
                "sections",
                Json::Arr(vec![Json::obj([
                    ("title", Json::Str("s".into())),
                    ("tables", Json::Arr(vec![])),
                    (
                        "sweeps",
                        Json::Arr(vec![Json::obj([
                            ("label", Json::Str("sweep".into())),
                            ("rows", Json::Arr(rows)),
                        ])]),
                    ),
                    ("notes", Json::Arr(vec![])),
                ])]),
            ),
        ])
    }

    #[test]
    fn committed_baselines_are_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let out = run(&root).unwrap();
        assert!(out.findings.is_empty(), "{:#?}", out.findings);
        assert_eq!(out.baselines_audited, 7);
        assert!(out.rows_audited > 0);
    }

    #[test]
    fn clean_synthetic_document_audits_clean() {
        let d = doc(
            "faults",
            vec![
                row("exact", &[0.25, 0.5], Some((0.0, 0.0))),
                row("exact", &[0.3, 0.6], Some((0.1, 0.0))),
                row("mc", &[0.5, 0.75], None),
            ],
        );
        validate(&d).unwrap();
        let (findings, rows) = audit_doc("BENCH_faults.json", "faults", &d);
        assert!(findings.is_empty(), "{findings:#?}");
        assert_eq!(rows, 3);
    }

    #[test]
    fn flags_experiment_mismatch_and_v1_downgrade() {
        let d = doc("wrong-name", vec![]);
        let (findings, _) = audit_doc("BENCH_faults.json", "faults", &d);
        assert!(rules(&findings).contains(&"RSBT-B002"), "{findings:#?}");
    }

    #[test]
    fn flags_unbracketed_mc_estimates() {
        let mut bad = row("mc", &[0.5], None);
        if let Json::Obj(pairs) = &mut bad {
            for (k, v) in pairs.iter_mut() {
                if k == "ci_hi" {
                    *v = Json::Arr(vec![Json::Num(0.4)]);
                }
            }
        }
        let (findings, _) = audit_doc("BENCH_mc.json", "perf_mc", &doc("perf_mc", vec![bad]));
        assert!(rules(&findings).contains(&"RSBT-B003"), "{findings:#?}");
    }

    #[test]
    fn flags_decreasing_exact_series() {
        let d = doc("zero_one", vec![row("exact", &[0.5, 0.4], None)]);
        let (findings, _) = audit_doc("BENCH_sweep.json", "zero_one", &d);
        assert!(rules(&findings).contains(&"RSBT-B004"), "{findings:#?}");
    }

    #[test]
    fn flags_unpaired_and_dominance_breaking_fault_rows() {
        // Faulted row with no base at its key.
        let d = doc("faults", vec![row("exact", &[0.3], Some((0.1, 0.0)))]);
        let (findings, _) = audit_doc("BENCH_faults.json", "faults", &d);
        assert!(rules(&findings).contains(&"RSBT-B005"), "{findings:#?}");

        // Paired, but the faulted series dips below its base.
        let d = doc(
            "faults",
            vec![
                row("exact", &[0.5, 0.6], Some((0.0, 0.0))),
                row("exact", &[0.5, 0.55], Some((0.0, 0.2))),
            ],
        );
        let (findings, _) = audit_doc("BENCH_faults.json", "faults", &d);
        assert!(rules(&findings).contains(&"RSBT-B006"), "{findings:#?}");
    }
}
