//! Layer 1: token-level determinism lints over the workspace sources.
//!
//! Six rules, each with a stable ID, `file:line` findings, inline
//! `// rsbt-analyze: allow(RULE)` escapes, and — for the two rules whose
//! existing occurrences are audited rather than banned — a committed
//! ratchet baseline (`ANALYZE_BASELINE.json`):
//!
//! | rule | what it enforces |
//! |------|------------------|
//! | `RSBT-L001` | no std `HashMap`/`HashSet` (SipHash `RandomState`: iteration order varies per process) in kernel or bench crates — use the deterministic `rsbt_sim::FxHashMap` or sorted adapters |
//! | `RSBT-L002` | no ambient `thread_rng` outside `vendor/` — randomness flows through seeded `StreamRng` streams |
//! | `RSBT-L003` | no `Instant::now`/`SystemTime` outside `crates/bench/src` — wall-clock reads stay in bench/report timing |
//! | `RSBT-L004` | count-width discipline in `rsbt-core`: `1u64 <<`/`1usize <<` and count→`f64` casts are ratcheted (PR 9's u128 width audit made permanent); `1u64 <<` is hard-banned in `probability.rs`, where shifts reach `k·t > 64` |
//! | `RSBT-L005` | `.unwrap()`/`.expect(` in library crates: ratcheted, no new occurrences |
//! | `RSBT-L006` | every crate root carries `#![forbid(unsafe_code)]` and `#![deny(deprecated)]` |
//!
//! Rules exempt `#[cfg(test)]` items and `tests/` trees; ratchet rules
//! compare per-file counts against the committed baseline and fail only
//! on regressions (a drop prints a tightening hint instead).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Scrubbed};
use crate::Finding;

/// Crates whose results must be bit-identical across runs and thread
/// counts (the kernel crates of the determinism policy).
pub const KERNEL_CRATES: [&str; 6] = [
    "crates/complex",
    "crates/core",
    "crates/protocols",
    "crates/random",
    "crates/sim",
    "crates/tasks",
];

/// One scrubbed workspace source file.
pub struct SourceFile {
    /// Repo-relative path with `/` separators.
    pub rel: String,
    /// The scrubbed view.
    pub scrubbed: Scrubbed,
}

/// Walks the workspace sources the lints care about: `src/`,
/// `crates/*/src/`, and `vendor/*/src/` (vendor roots are scanned only
/// by the crate-attribute rule). Test trees (`tests/`, `benches/`) and
/// `examples/` are out of scope.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let mut dirs: Vec<PathBuf> = vec![root.join("src")];
    for parent in ["crates", "vendor"] {
        let parent = root.join(parent);
        let mut entries: Vec<_> = fs::read_dir(&parent)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        for crate_dir in entries {
            dirs.push(crate_dir.join("src"));
        }
    }
    for dir in dirs {
        collect_rs(&dir, root, &mut files)?;
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked under root")
                .to_string_lossy()
                .replace('\\', "/");
            let src = fs::read_to_string(&path)?;
            out.push(SourceFile {
                rel,
                scrubbed: lexer::scrub(&src),
            });
        }
    }
    Ok(())
}

/// Per-rule per-file occurrence counts for the ratcheted rules.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RatchetCounts {
    /// `(rule, file, count)`, sorted by rule then file; zero counts
    /// omitted.
    pub counts: Vec<(String, String, usize)>,
}

impl RatchetCounts {
    fn bump(&mut self, rule: &str, file: &str, by: usize) {
        if by == 0 {
            return;
        }
        if let Some(entry) = self
            .counts
            .iter_mut()
            .find(|(r, f, _)| r == rule && f == file)
        {
            entry.2 += by;
        } else {
            self.counts.push((rule.to_string(), file.to_string(), by));
        }
    }

    /// The recorded count for `(rule, file)` (0 when absent).
    pub fn get(&self, rule: &str, file: &str) -> usize {
        self.counts
            .iter()
            .find(|(r, f, _)| r == rule && f == file)
            .map_or(0, |(_, _, c)| *c)
    }

    /// Canonical ordering for deterministic emission.
    pub fn sort(&mut self) {
        self.counts.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
    }
}

/// The result of the Layer-1 pass: hard findings plus the measured
/// ratchet counts (compared against the baseline by the caller).
pub struct LintOutcome {
    /// Findings from non-ratcheted rules (and hard-ban zones of
    /// ratcheted rules).
    pub findings: Vec<Finding>,
    /// Measured counts for the ratcheted rules.
    pub ratchet: RatchetCounts,
    /// Files scanned.
    pub files_scanned: usize,
    /// Occurrences suppressed by allow directives.
    pub suppressed: usize,
}

/// Runs every Layer-1 rule over `files`.
pub fn run(files: &[SourceFile]) -> LintOutcome {
    let mut findings = Vec::new();
    let mut ratchet = RatchetCounts::default();
    let mut suppressed = 0usize;

    for file in files {
        let rel = file.rel.as_str();
        let vendor = rel.starts_with("vendor/");
        let kernel = KERNEL_CRATES.iter().any(|c| rel.starts_with(*c));
        let bench = rel.starts_with("crates/bench/");
        let core = rel.starts_with("crates/core/");

        rule_l006(rel, &file.scrubbed, &mut findings);
        if vendor {
            continue;
        }

        for (idx, line) in file.scrubbed.lines.iter().enumerate() {
            let lineno = idx + 1;
            if line.in_test || line.code.trim().is_empty() {
                continue;
            }
            let code = line.code.as_str();
            let mut emit = |rule: &'static str, msg: String| {
                if file.scrubbed.allows(lineno, rule) {
                    suppressed += 1;
                } else {
                    findings.push(Finding::src(rule, rel, lineno, msg));
                }
            };

            // RSBT-L001: unordered std hash containers in determinism-
            // critical crates (FxHashMap/FxHashSet tokens don't match).
            if (kernel || bench) && rel != "crates/sim/src/fxhash.rs" {
                for name in ["HashMap", "HashSet"] {
                    if lexer::contains_ident(code, name) {
                        emit(
                            "RSBT-L001",
                            format!(
                                "std `{name}` (randomly seeded SipHash) in a kernel/bench crate: \
                                 use `rsbt_sim::Fx{name}` or a sorted adapter so iteration order \
                                 cannot feed result order"
                            ),
                        );
                    }
                }
            }

            // RSBT-L002: ambient RNG.
            if lexer::contains_ident(code, "thread_rng") {
                emit(
                    "RSBT-L002",
                    "ambient `thread_rng`: randomness must flow through seeded \
                     `StreamRng`/`SplitMix64` streams (thread-count-invariant)"
                        .to_string(),
                );
            }

            // RSBT-L003: wall-clock reads outside bench timing.
            if !bench {
                if lexer::contains_path(code, "Instant", "now") {
                    emit(
                        "RSBT-L003",
                        "`Instant::now` outside `crates/bench/src`: wall-clock reads are \
                         confined to bench/report timing modules"
                            .to_string(),
                    );
                }
                if lexer::contains_ident(code, "SystemTime") {
                    emit(
                        "RSBT-L003",
                        "`SystemTime` outside `crates/bench/src`: wall-clock reads are \
                         confined to bench/report timing modules"
                            .to_string(),
                    );
                }
            }

            // RSBT-L004: count-width discipline in rsbt-core.
            if core {
                let shifts = count_narrow_shift(code);
                let casts = count_count_casts(code);
                let hard = rel.ends_with("/probability.rs") && shifts > 0;
                if hard {
                    // probability.rs computes `count / 2^(k·t)` with
                    // k·t up to 126: a 64-bit power-of-two there is the
                    // exact overflow PR 9's audit eliminated.
                    emit(
                        "RSBT-L004",
                        "`1u64 <<` in probability.rs: denominators reach 2^(k*t) with \
                         k*t > 64, widths must be u128 (hard ban, not ratcheted)"
                            .to_string(),
                    );
                } else if shifts + casts > 0 {
                    if file.scrubbed.allows(lineno, "RSBT-L004") {
                        suppressed += shifts + casts;
                    } else {
                        ratchet.bump("RSBT-L004", rel, shifts + casts);
                    }
                }
            }

            // RSBT-L005: unwrap/expect ratchet for library crates.
            if kernel {
                let n = lexer::count_method_calls(code, "unwrap")
                    + lexer::count_method_calls(code, "expect");
                if n > 0 {
                    if file.scrubbed.allows(lineno, "RSBT-L005") {
                        suppressed += n;
                    } else {
                        ratchet.bump("RSBT-L005", rel, n);
                    }
                }
            }
        }
    }

    ratchet.sort();
    LintOutcome {
        findings,
        ratchet,
        files_scanned: files.len(),
        suppressed,
    }
}

/// RSBT-L006: crate roots must pin the two workspace-wide guarantees.
fn rule_l006(rel: &str, scrubbed: &Scrubbed, findings: &mut Vec<Finding>) {
    if !rel.ends_with("src/lib.rs") {
        return;
    }
    let stripped: String = scrubbed
        .lines
        .iter()
        .flat_map(|l| l.code.chars())
        .filter(|c| !c.is_whitespace())
        .collect();
    for attr in ["#![forbid(unsafe_code)]", "#![deny(deprecated)]"] {
        if !stripped.contains(attr) {
            findings.push(Finding::src(
                "RSBT-L006",
                rel,
                1,
                format!("crate root is missing `{attr}`"),
            ));
        }
    }
}

/// Counts `1u64 <<` / `1usize <<` narrow power-of-two constructions.
fn count_narrow_shift(code: &str) -> usize {
    let mut count = 0;
    for lit in ["1u64", "1usize"] {
        let mut from = 0;
        while let Some(at) = lexer::find_ident(code, lit, from) {
            if code[at + lit.len()..].trim_start().starts_with("<<") {
                count += 1;
            }
            from = at + lit.len();
        }
    }
    count
}

/// Counts `<count-ish ident> as f64` and `<count-ish ident>[...] as f64`
/// casts — the float conversions of raw solved/total counters that the
/// u128 width audit tracks (precision silently degrades past 2^53).
fn count_count_casts(code: &str) -> usize {
    let mut count = 0;
    let mut from = 0;
    while let Some(at) = lexer::find_ident(code, "as", from) {
        from = at + 2;
        let rest = code[at + 2..].trim_start();
        if !rest.starts_with("f64")
            || rest[3..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            continue;
        }
        let mut before = code[..at].trim_end();
        if before.ends_with(']') {
            // Walk back over one (possibly nested) index expression.
            let mut depth = 0i32;
            let mut cut = None;
            for (i, c) in before.char_indices().rev() {
                match c {
                    ']' => depth += 1,
                    '[' => {
                        depth -= 1;
                        if depth == 0 {
                            cut = Some(i);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            match cut {
                Some(i) => before = before[..i].trim_end(),
                None => continue,
            }
        }
        let ident: String = before
            .chars()
            .rev()
            .take_while(|&c| c.is_alphanumeric() || c == '_')
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        let lower = ident.to_lowercase();
        if !ident.is_empty()
            && ["count", "solved", "hits", "total"]
                .iter()
                .any(|k| lower.contains(k))
        {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile {
            rel: rel.to_string(),
            scrubbed: lexer::scrub(src),
        }
    }

    #[test]
    fn hashmap_fires_in_kernel_and_respects_fx() {
        let out = run(&[file(
            "crates/core/src/x.rs",
            "use std::collections::HashMap;\nlet m = FxHashMap::default();\n",
        )]);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "RSBT-L001");
        assert_eq!(out.findings[0].line, 1);
    }

    #[test]
    fn wall_clock_allowed_in_bench_banned_elsewhere() {
        let out = run(&[
            file("crates/bench/src/timing.rs", "let t = Instant::now();\n"),
            file("crates/sim/src/x.rs", "let t = Instant::now();\n"),
        ]);
        let rules: Vec<_> = out
            .findings
            .iter()
            .map(|f| (f.rule, f.file.clone()))
            .collect();
        assert_eq!(
            rules,
            vec![("RSBT-L003", "crates/sim/src/x.rs".to_string())]
        );
    }

    #[test]
    fn probability_shift_is_a_hard_finding_elsewhere_ratcheted() {
        let out = run(&[
            file(
                "crates/core/src/probability.rs",
                "let d = 1u64 << (k * t);\n",
            ),
            file("crates/core/src/engine.rs", "let m = (1u64 << k) - 1;\n"),
        ]);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].rule, "RSBT-L004");
        assert_eq!(out.ratchet.get("RSBT-L004", "crates/core/src/engine.rs"), 1);
    }

    #[test]
    fn count_casts_are_ratcheted_with_index_lookbehind() {
        let out = run(&[file(
            "crates/core/src/probability.rs",
            "let p = counts[t - 1] as f64 / total as f64;\nlet q = x as f64;\n",
        )]);
        assert!(out.findings.is_empty());
        assert_eq!(
            out.ratchet
                .get("RSBT-L004", "crates/core/src/probability.rs"),
            2
        );
    }

    #[test]
    fn unwrap_ratchet_skips_tests_and_allows() {
        let src = concat!(
            "fn a() { x.unwrap(); y.expect(\"m\"); }\n",
            "fn b() { z.unwrap(); } // rsbt-analyze: allow(RSBT-L005)\n",
            "#[cfg(test)]\nmod tests { fn t() { w.unwrap(); } }\n",
        );
        let out = run(&[file("crates/sim/src/x.rs", src)]);
        assert_eq!(out.ratchet.get("RSBT-L005", "crates/sim/src/x.rs"), 2);
        assert_eq!(out.suppressed, 1);
    }

    #[test]
    fn crate_roots_must_pin_attributes() {
        let out = run(&[
            file("vendor/rand/src/lib.rs", "#![forbid(unsafe_code)]\n"),
            file(
                "crates/sim/src/lib.rs",
                "#![forbid(unsafe_code)]\n#![deny(deprecated)]\n",
            ),
        ]);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "RSBT-L006");
        assert!(out.findings[0].message.contains("deny(deprecated)"));
    }

    #[test]
    fn thread_rng_in_comments_and_strings_is_invisible() {
        let out = run(&[file(
            "crates/random/src/x.rs",
            "/// like rand::thread_rng()\nlet s = \"thread_rng\";\nlet r = thread_rng();\n",
        )]);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].line, 3);
    }
}
