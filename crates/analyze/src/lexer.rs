//! A comment/string/raw-string-aware scrubber for Rust sources.
//!
//! The Layer-1 lints match token patterns that `clippy` cannot express
//! (project-specific determinism rules), so they need a view of the
//! source in which comment bodies and string contents can never produce
//! false positives: a `thread_rng` mentioned in a doc comment, or an
//! `"Instant::now"` inside a string literal, must be invisible. This
//! module produces that view without a full parser (no `syn`, consistent
//! with the workspace's vendored-stubs discipline): a line-preserving
//! state machine that blanks comment and literal contents while keeping
//! everything else verbatim, plus three token-pattern helpers the rules
//! share.
//!
//! Three side channels survive scrubbing:
//!
//! * **allow directives** — `// rsbt-analyze: allow(RULE[, RULE])` in any
//!   comment suppresses the named rules on that line, or (for a
//!   comment-only line) on the next line carrying code;
//! * **`#[cfg(test)]` regions** — lines inside test-gated items are
//!   marked so rules can exempt test code;
//! * **line numbers** — findings report 1-based `file:line` positions.

/// One scrubbed source line.
#[derive(Clone, Debug, Default)]
pub struct Line {
    /// The line's code with comments removed and literal contents
    /// blanked (quotes are kept so strings still tokenize as opaque).
    pub code: String,
    /// Rules suppressed on this line (own directives plus directives
    /// propagated from immediately preceding comment-only lines).
    pub allows: Vec<String>,
    /// Whether the line sits inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
}

/// A whole scrubbed file.
#[derive(Clone, Debug, Default)]
pub struct Scrubbed {
    /// The scrubbed lines, index 0 = line 1.
    pub lines: Vec<Line>,
}

impl Scrubbed {
    /// Whether `rule` is suppressed on 1-based line `line`.
    pub fn allows(&self, line: usize, rule: &str) -> bool {
        self.lines
            .get(line.checked_sub(1).unwrap_or(usize::MAX))
            .is_some_and(|l| l.allows.iter().any(|a| a == rule))
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    LineComment,
    Block(u32),
    Str,
    RawStr(u32),
}

/// Scrubs `src` (see the module docs).
pub fn scrub(src: &str) -> Scrubbed {
    let chars: Vec<char> = src.chars().collect();
    let mut code: Vec<String> = vec![String::new()];
    let mut comment: Vec<String> = vec![String::new()];
    let mut mode = Mode::Code;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            code.push(String::new());
            comment.push(String::new());
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                if c == '/' && next == Some('/') {
                    mode = Mode::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::Block(1);
                    i += 2;
                } else if let Some((hashes, skip)) = raw_string_start(&chars, i) {
                    // Keep a marker so the line still shows "a literal
                    // was here" without its contents.
                    code.last_mut().expect("line").push('"');
                    mode = Mode::RawStr(hashes);
                    i += skip;
                } else if c == '"' {
                    code.last_mut().expect("line").push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if c == '\'' {
                    i += consume_char_literal(&chars, i, code.last_mut().expect("line"));
                } else {
                    code.last_mut().expect("line").push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                comment.last_mut().expect("line").push(c);
                i += 1;
            }
            Mode::Block(depth) => {
                if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::Block(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                } else {
                    comment.last_mut().expect("line").push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    // An escaped newline continues the string on the next
                    // line; let the top-of-loop newline branch count it.
                    i += if next == Some('\n') { 1 } else { 2 };
                } else if c == '"' {
                    code.last_mut().expect("line").push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' && has_hashes(&chars, i + 1, hashes) {
                    code.last_mut().expect("line").push('"');
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
        }
    }

    let mut lines: Vec<Line> = code
        .into_iter()
        .zip(comment.iter())
        .map(|(code, comment)| Line {
            code,
            allows: parse_allows(comment),
            in_test: false,
        })
        .collect();
    propagate_allows(&mut lines);
    mark_test_regions(&mut lines);
    Scrubbed { lines }
}

/// Recognizes `r"`, `r#"`, `br##"`, … at position `i`; returns the hash
/// count and the prefix length to skip (through the opening quote).
fn raw_string_start(chars: &[char], i: usize) -> Option<(u32, usize)> {
    // Don't fire inside identifiers ending in r/br (e.g. `for"x"` cannot
    // occur, but `var#` could confuse; require a non-ident predecessor).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j + 1 - i))
    } else {
        None
    }
}

fn has_hashes(chars: &[char], from: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(from + k) == Some(&'#'))
}

/// Distinguishes char literals from lifetimes at a `'`; returns how many
/// chars to consume. Literal contents are blanked; lifetimes pass
/// through as code.
fn consume_char_literal(chars: &[char], i: usize, out: &mut String) -> usize {
    debug_assert_eq!(chars[i], '\'');
    if chars.get(i + 1) == Some(&'\\') {
        // Escaped literal: scan (bounded) for the closing quote.
        let window = &chars[i + 3..(i + 12).min(chars.len())];
        if let Some(off) = window.iter().position(|&c| c == '\'') {
            out.push_str("' '");
            return off + 4;
        }
    } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
        out.push_str("' '");
        return 3;
    }
    // A lifetime (or stray quote): keep as code.
    out.push('\'');
    1
}

/// Extracts `rsbt-analyze: allow(...)` rule lists from a comment body.
fn parse_allows(comment: &str) -> Vec<String> {
    let mut allows = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("rsbt-analyze:") {
        rest = &rest[at + "rsbt-analyze:".len()..];
        let Some(open) = rest.find("allow(") else {
            break;
        };
        let inner = &rest[open + "allow(".len()..];
        let Some(close) = inner.find(')') else {
            break;
        };
        for rule in inner[..close].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                allows.push(rule.to_string());
            }
        }
        rest = &inner[close..];
    }
    allows
}

/// Directives on comment-only lines apply to the next line with code.
fn propagate_allows(lines: &mut [Line]) {
    let mut pending: Vec<String> = Vec::new();
    for line in lines.iter_mut() {
        if line.code.trim().is_empty() {
            pending.extend(line.allows.iter().cloned());
        } else {
            line.allows.append(&mut pending);
        }
    }
}

/// Marks lines inside `#[cfg(test)]`-gated items by brace tracking over
/// the scrubbed code (string/comment braces are already gone).
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth = 0i64;
    let mut armed = false;
    let mut test_base = 0i64;
    let mut in_test = false;
    for line in lines.iter_mut() {
        let stripped: String = line.code.chars().filter(|c| !c.is_whitespace()).collect();
        if stripped.contains("#[cfg(test)]") {
            armed = true;
        }
        if armed || in_test {
            line.in_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if armed {
                        armed = false;
                        in_test = true;
                        test_base = depth;
                        line.in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if in_test && depth <= test_base {
                        in_test = false;
                    }
                }
                _ => {}
            }
        }
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whether `code` contains `name` as a whole identifier token.
pub fn contains_ident(code: &str, name: &str) -> bool {
    find_ident(code, name, 0).is_some()
}

/// The byte position of the next whole-identifier occurrence of `name`
/// at or after `from`.
pub fn find_ident(code: &str, name: &str, from: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = from;
    while let Some(at) = code[start..].find(name) {
        let at = start + at;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1] as char);
        let end = at + name.len();
        let after_ok = end >= bytes.len() || !is_ident_char(bytes[end] as char);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + name.len().max(1);
    }
    None
}

/// Whether `code` contains the token sequence `first :: second`
/// (whitespace-tolerant), e.g. `Instant :: now`.
pub fn contains_path(code: &str, first: &str, second: &str) -> bool {
    let mut from = 0;
    while let Some(at) = find_ident(code, first, from) {
        let rest = code[at + first.len()..].trim_start();
        if let Some(rest) = rest.strip_prefix("::") {
            let rest = rest.trim_start();
            if rest.starts_with(second)
                && !rest[second.len()..]
                    .chars()
                    .next()
                    .is_some_and(is_ident_char)
            {
                return true;
            }
        }
        from = at + first.len();
    }
    false
}

/// Counts `.name(` method-call occurrences (whitespace-tolerant).
pub fn count_method_calls(code: &str, name: &str) -> usize {
    let mut count = 0;
    let mut from = 0;
    while let Some(at) = find_ident(code, name, from) {
        let before = code[..at].trim_end();
        let after = code[at + name.len()..].trim_start();
        if before.ends_with('.') && after.starts_with('(') {
            count += 1;
        }
        from = at + name.len();
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let s = scrub(concat!(
            "let x = \"thread_rng inside a string\"; // thread_rng in comment\n",
            "/* thread_rng in block */ let y = 1;\n",
            "let r = r#\"raw thread_rng \"quoted\" \"#; let done = 2;\n",
        ));
        for line in &s.lines {
            assert!(!contains_ident(&line.code, "thread_rng"), "{}", line.code);
        }
        assert!(contains_ident(&s.lines[1].code, "y"));
        assert!(contains_ident(&s.lines[2].code, "done"));
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let s = scrub("if c == '\"' { cnt += 1; } let q = '\\''; let l: &'static str = \"x\";\n");
        assert!(contains_ident(&s.lines[0].code, "cnt"));
        assert!(contains_ident(&s.lines[0].code, "static"), "lifetime kept");
    }

    #[test]
    fn allow_directives_attach_and_propagate() {
        let s = scrub(concat!(
            "let a = now(); // rsbt-analyze: allow(RSBT-L003)\n",
            "// rsbt-analyze: allow(RSBT-L001, RSBT-L002): reasoned\n",
            "let b = now();\n",
            "let c = now();\n",
        ));
        assert!(s.allows(1, "RSBT-L003"));
        assert!(s.allows(3, "RSBT-L001") && s.allows(3, "RSBT-L002"));
        assert!(!s.allows(4, "RSBT-L001"), "directive reaches one line only");
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let s = scrub(concat!(
            "fn live() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn helper() {}\n",
            "}\n",
            "fn after() {}\n",
        ));
        assert!(!s.lines[0].in_test);
        assert!(s.lines[1].in_test && s.lines[2].in_test && s.lines[3].in_test);
        assert!(s.lines[4].in_test);
        assert!(!s.lines[5].in_test);
    }

    #[test]
    fn token_helpers_respect_boundaries() {
        assert!(contains_ident("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_ident("FxHashMap::default()", "HashMap"));
        assert!(contains_path("let d = Instant :: now();", "Instant", "now"));
        assert!(!contains_path(
            "let d = Instant::nowish();",
            "Instant",
            "now"
        ));
        assert_eq!(count_method_calls("a.unwrap().b.unwrap ()", "unwrap"), 2);
        assert_eq!(count_method_calls("let unwrap = f(unwrap)", "unwrap"), 0);
    }
}
